"""End-to-end integration: the full paper story on one module.

Reverse-engineer the TRR through the side channel, synthesize the attack
from nothing but the recovered profile, verify it beats the classic
baseline under a live refresh stream, and confirm the resulting bit
flips break dataword ECC — §3 through §7.4 in one test.
"""

from __future__ import annotations

import pytest

from repro.attacks import (AttackExecutor, DoubleSidedPattern,
                           choose_pattern, default_context,
                           victim_positions)
from repro.core import TrrInference
from repro.core.mapping_re import CouplingTopology
from repro.ecc import assess_ecc, dataword_flip_counts
from repro.eval import QUICK
from repro.softmc import SoftMCHost
from repro.vendors import build_module, get_module

pytestmark = pytest.mark.slow


def test_full_story_infer_attack_break_ecc():
    spec = get_module("B8")

    # 1. Reverse-engineer through the side channel only.
    probe = build_module(spec, rows_per_bank=8192, row_bits=1024,
                         weak_cells_per_row_mean=2.0, vrt_fraction=0.0)
    profile = TrrInference(SoftMCHost(probe)).run()
    truth = probe.trr.ground_truth
    assert profile.detection == truth.kind == "sampling"
    assert profile.trr_ref_period == truth.trr_ref_period == 4
    assert profile.per_bank is False

    # 2. Synthesize the attack from the recovered profile alone.
    pattern = choose_pattern(profile)
    assert pattern.name == "vendor-b-custom"

    # 3. The synthesized attack beats the classic baseline on fresh
    #    chips under a live refresh stream.
    period = profile.trr_ref_period
    windows = 2 * QUICK.scaled_cycle(spec) // period
    victims = victim_positions(QUICK.rows_per_bank, 6,
                               CouplingTopology.STANDARD, margin=64)
    flips_by_row: dict[int, list[int]] = {}
    baseline_flips = 0
    for victim in victims:
        host = QUICK.build_host(spec)
        executor = AttackExecutor(host, host._chip.mapping)
        context = default_context(0, victim, host._chip.mapping, period,
                                  host.num_banks)
        flips_by_row[victim] = executor.run(
            pattern, context, windows).victim_flips[victim]
        host2 = QUICK.build_host(spec)
        executor2 = AttackExecutor(host2, host2._chip.mapping)
        baseline_flips += executor2.run(
            DoubleSidedPattern(), context, windows).flips_at(victim)
    total = sum(len(f) for f in flips_by_row.values())
    assert baseline_flips == 0
    assert total > 0
    assert sum(1 for f in flips_by_row.values() if f) >= 5  # of 6 victims

    # 4. The flips land in datawords that defeat SECDED (7.4).
    histogram = dataword_flip_counts(flips_by_row)
    assert histogram[1] == max(histogram.values())
    assessment = assess_ecc(flips_by_row)
    assert assessment.words_total > 0
    assert assessment.max_flips_in_word >= 2
