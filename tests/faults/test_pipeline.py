"""Hardened pipeline pieces: retries, quarantine, voting, hit probes."""

from __future__ import annotations

import pytest

from repro.core import (ExperimentConfig, ProfilingConfig, RefreshCalibrator,
                        RowGroupLayout, RowScout, TrrAnalyzer)
from repro.dram import AllOnes
from repro.errors import ConfigError
from repro.faults import FaultProfile
from .conftest import make_faulty_host


def scout_config(**overrides):
    defaults = dict(bank=0, layout=RowGroupLayout.parse("R-R"),
                    group_count=2, validation_rounds=4)
    defaults.update(overrides)
    return ProfilingConfig(**defaults)


def build_analyzer(host, group_count=2):
    scout = RowScout(host)
    groups = scout.find_groups(scout_config(group_count=group_count))
    calibrator = RefreshCalibrator(host, AllOnes())
    cycle = calibrator.find_cycle(0, groups[0].logical_rows[0],
                                  groups[0].retention_ps)
    rows = [(0, r) for g in groups for r in g.logical_rows]
    schedule = calibrator.calibrate_rows(rows, groups[0].retention_ps, cycle)
    return groups, TrrAnalyzer(host, groups, schedule)


def test_round_retries_ride_out_read_noise():
    host = make_faulty_host(FaultProfile(read_noise_probability=0.02),
                            seed=5)
    scout = RowScout(host)
    groups = scout.find_groups(scout_config(round_retries=3,
                                            scan_attempts=3))
    assert len(groups) == 2
    assert scout.stats.round_retries > 0


def test_flaky_rows_are_quarantined():
    scout = RowScout(make_faulty_host())
    config = scout_config(quarantine_after=2, round_retries=1)
    scout._note_flaky(0, 50, config)
    assert 50 not in scout.quarantine.get(0, set())
    scout._note_flaky(0, 50, config)
    assert 50 in scout.quarantine[0]
    assert scout.stats.rows_quarantined == 1


def test_replace_group_quarantines_and_substitutes():
    scout = RowScout(make_faulty_host())
    config = scout_config()
    groups = scout.find_groups(config)
    replacement = scout.replace_group(config, groups[0], keep=groups[1:])
    assert replacement.retention_ps == groups[0].retention_ps
    assert set(replacement.physical_rows).isdisjoint(
        groups[0].physical_rows)
    assert set(replacement.physical_rows).isdisjoint(
        groups[1].physical_rows)
    for physical in groups[0].physical_rows:
        assert physical in scout.quarantine[0]
    assert scout.stats.groups_replaced == 1


def test_run_robust_majority_shakes_off_read_noise():
    host = make_faulty_host(FaultProfile(read_noise_probability=0.05),
                            seed=2)
    groups, analyzer = build_analyzer(host)
    result = analyzer.run_robust(ExperimentConfig(refs_per_round=1),
                                 votes=3)
    assert result.votes == 3
    # A no-TRR chip decays every victim; the majority filters the noise.
    assert all(obs.flipped for obs in result.observations)
    assert all(obs.confidence > 0.5 for obs in result.observations)
    assert analyzer.stats.vote_rounds == 2


def test_run_robust_rejects_stateful_probes():
    groups, analyzer = build_analyzer(make_faulty_host())
    with pytest.raises(ConfigError):
        analyzer.run_robust(ExperimentConfig(reset_state=False), votes=3)


def test_verify_hits_disavows_immortal_rows():
    host = make_faulty_host()
    groups, analyzer = build_analyzer(host)
    immortal = groups[0].physical_rows[0]
    # After profiling, the row's effective retention drifts far past its
    # bucket (a stale profile / cold chip): it now survives everything.
    def drifted_scale(bank, row):
        return 50.0 if row == immortal else 1.0

    host._chip.environment.row_retention_scale = drifted_scale
    analyzer.verify_hits = True
    result = analyzer.run(ExperimentConfig(refs_per_round=1))
    by_physical = {obs.physical_row: obs for obs in result.observations}
    assert not by_physical[immortal].trr_refreshed  # hit disavowed...
    assert by_physical[immortal].inconclusive       # ...not trusted
    assert analyzer.stats.hits_disavowed == 1
    other = groups[1].physical_rows[0]
    assert by_physical[other].flipped  # healthy rows decay normally
    assert not analyzer.revalidate_group(groups[0])
    assert analyzer.revalidate_group(groups[1])
