"""Unit tests for the fault injector and its profiles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram import AllOnes
from repro.errors import ConfigError
from repro.faults import (DEFAULT, NONE, FaultInjector, FaultProfile,
                          get_profile)
from repro.units import ms, us
from .conftest import make_faulty_host


def test_profile_registry_and_validation():
    assert get_profile("none") is NONE
    assert get_profile("default") is DEFAULT
    assert not NONE.enabled
    assert DEFAULT.enabled
    with pytest.raises(ConfigError):
        get_profile("hurricane")
    with pytest.raises(ConfigError):
        FaultProfile(read_noise_probability=1.5)
    with pytest.raises(ConfigError):
        FaultProfile(vrt_storm_toggle_scale=0.5)
    with pytest.raises(ConfigError):
        FaultProfile(stale_scale_range=(0.0, 1.0))
    scaled = DEFAULT.scaled(read_noise_probability=0.5)
    assert scaled.read_noise_probability == 0.5
    assert scaled.vrt_storm_rate_per_s == DEFAULT.vrt_storm_rate_per_s


def test_attach_is_exclusive():
    host = make_faulty_host("default")
    other = make_faulty_host()
    with pytest.raises(ConfigError):
        host.faults.attach(other._chip)


def test_vrt_storms_drive_toggle_scale():
    profile = FaultProfile(vrt_storm_rate_per_s=50.0,
                           vrt_storm_duration_ms=200.0,
                           vrt_storm_toggle_scale=30.0)
    host = make_faulty_host(profile)
    environment = host._chip.environment
    scales = set()
    for _ in range(200):
        host.wait(ms(10))
        scales.add(environment.vrt_toggle_scale)
    assert 30.0 in scales  # storms activated...
    assert host.faults.counters["vrt-storm"] > 0
    assert any(event == "vrt-storm" for event, _, _ in host.faults.trace)


def test_temperature_drift_scales_retention():
    profile = FaultProfile(temperature_drift_amplitude_c=10.0,
                           temperature_drift_period_s=1.0)
    host = make_faulty_host(profile)
    environment = host._chip.environment
    scales = []
    for _ in range(50):
        host.wait(ms(50))
        scales.append(environment.retention_scale)
    # +-10 C swings retention by up to 2x either way (2^(+-1)).
    assert min(scales) < 0.75
    assert max(scales) > 1.3
    assert all(0.5 <= scale <= 2.0 for scale in scales)


def test_ref_drop_desyncs_host_ledger_from_chip():
    profile = FaultProfile(ref_drop_probability=1.0)
    host = make_faulty_host(profile)
    engine = host._chip.refresh_engine
    before = engine.refs_seen if hasattr(engine, "refs_seen") else None
    host.refresh(10)
    assert host.ref_count == 10  # the experimenter's ledger advanced...
    assert host.faults.counters["ref-drop"] == 10
    if before is not None:  # ...but the chip never saw a REF.
        assert engine.refs_seen == before


def test_ref_duplicate_executes_extra_refreshes():
    profile = FaultProfile(ref_duplicate_probability=1.0)
    host = make_faulty_host(profile)
    host.refresh(5)
    assert host.ref_count == 5
    assert host.faults.counters["ref-duplicate"] == 5


def test_write_drop_leaves_stale_data():
    profile = FaultProfile(write_drop_probability=1.0)
    host = make_faulty_host(profile)
    injector = host.faults
    assert injector.drop_write(host.now_ps)
    assert injector.counters["write-drop"] == 1


def test_read_noise_toggles_one_mismatch_bit():
    profile = FaultProfile(read_noise_probability=1.0)
    injector = FaultInjector(profile, seed=3)
    corrupted = injector.corrupt_mismatches(1024, [5, 10])
    assert len(corrupted) in (1, 3)
    assert injector.counters["read-noise"] == 1
    bits = np.zeros(64, dtype=np.uint8)
    noisy = injector.corrupt_bits(bits)
    assert noisy.sum() == 1  # exactly one bit flipped
    assert bits.sum() == 0   # the original readout is untouched


def test_read_noise_is_transient_not_persistent():
    profile = FaultProfile(read_noise_probability=1.0)
    host = make_faulty_host(profile)
    host._faults = None  # write cleanly first
    host.write_row(0, 10, AllOnes())
    host._faults = FaultInjector(profile, seed=1)
    host._faults.attach(host._chip)
    host.wait(us(10))
    first = host.read_row_mismatches(0, 10)
    assert len(first) == 1  # spurious mismatch injected
    host._faults = None
    clean = host.read_row_mismatches(0, 10)
    assert clean == []  # the stored cell was never corrupted


def test_stale_scales_are_per_row_and_session_scoped():
    profile = FaultProfile(stale_row_fraction=1.0,
                           stale_scale_range=(0.8, 1.25))
    host = make_faulty_host(profile)
    injector = host.faults
    environment = host._chip.environment
    assert environment.row_retention_scale is not None
    first = environment.row_retention_scale(0, 100)
    assert first != 1.0
    assert environment.row_retention_scale(0, 100) == first  # cached
    assert environment.row_retention_scale(0, 101) != first
    injector.new_session()
    redrawn = environment.row_retention_scale(0, 100)
    assert redrawn != first  # stale rows re-drawn per session


def test_none_profile_injects_nothing():
    host = make_faulty_host("none")
    environment = host._chip.environment
    host.write_row(0, 5, AllOnes())
    host.hammer_single(0, 50, 100)
    host.refresh(32)
    host.wait(ms(100))
    host.read_row_mismatches(0, 5)
    assert environment.neutral
    assert host.faults.fault_count() == 0
    assert host.faults.trace == []
