"""Fixtures for fault-injection tests: small chips with optional faults."""

from __future__ import annotations

from repro.dram import (DeviceConfig, DisturbanceConfig, DramChip,
                        RetentionConfig)
from repro.faults import FaultInjector, FaultProfile
from repro.softmc import SoftMCHost


def make_faulty_host(profile: FaultProfile | str | None = None,
                     seed: int = 0, *, rows=2_048, banks=2, serial=7,
                     vrt_fraction=0.0, weak_mean=2.0,
                     hc_first=12_000) -> SoftMCHost:
    """A core-test-sized chip, optionally wrapped in a FaultInjector."""
    config = DeviceConfig(
        name="fault-test", serial=serial, num_banks=banks,
        rows_per_bank=rows, row_bits=1024,
        refresh_cycle_refs=min(2_048, rows),
        retention=RetentionConfig(weak_cells_per_row_mean=weak_mean,
                                  vrt_fraction=vrt_fraction),
        disturbance=DisturbanceConfig(hc_first=hc_first))
    faults = None
    if profile is not None:
        faults = FaultInjector(profile, seed=seed)
    return SoftMCHost(DramChip(config), faults=faults)
