"""End-to-end chaos: ground truth recovered under the default faults."""

from __future__ import annotations

import pytest

from repro.eval.resilience import RESILIENCE_MODULES, run_module_resilience


@pytest.mark.slow
@pytest.mark.parametrize("module_id", RESILIENCE_MODULES)
def test_module_recovers_under_default_faults(module_id):
    result = run_module_resilience(module_id)
    assert result.faults_injected > 0
    assert result.recovery_work > 0, result.recovery
    assert result.recovered, (result.profile.summary(), result.expected)

    # The chaos artifact is stamped with a byte-diffable run manifest.
    manifest = result.manifest
    assert manifest["module"] == module_id
    assert manifest["fault_profile"] == "default"
    assert manifest["seed"] == 0
    assert "created_utc" not in manifest
    assert isinstance(manifest["git"], str)
    assert set(manifest["fault_stream_seeds"]) == {
        "fault-vrt", "fault-temp", "fault-readnoise", "fault-commands",
        "fault-stale"}
    assert manifest["recovery_counters"] == result.recovery


def test_report_names_stalled_chaos_runs():
    """Watchdog-flagged modules render as STALLED lines (off by
    default: the field only fills when a stall deadline is armed)."""
    from repro.eval.resilience import ResilienceReport

    report = ResilienceReport(modules=[])
    assert "STALLED" not in report.render()
    report = ResilienceReport(
        modules=[],
        stalled=[("A5", "resilience/A5: no progress for 12.0s "
                        "(last event heartbeat in span 'scout')")])
    rendered = report.render()
    assert rendered.endswith("STALLED A5: resilience/A5: no progress "
                             "for 12.0s (last event heartbeat in span "
                             "'scout')")
