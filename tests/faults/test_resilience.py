"""End-to-end chaos: ground truth recovered under the default faults."""

from __future__ import annotations

import pytest

from repro.eval.resilience import RESILIENCE_MODULES, run_module_resilience


@pytest.mark.slow
@pytest.mark.parametrize("module_id", RESILIENCE_MODULES)
def test_module_recovers_under_default_faults(module_id):
    result = run_module_resilience(module_id)
    assert result.faults_injected > 0
    assert result.recovery_work > 0, result.recovery
    assert result.recovered, (result.profile.summary(), result.expected)

    # The chaos artifact is stamped with a byte-diffable run manifest.
    manifest = result.manifest
    assert manifest["module"] == module_id
    assert manifest["fault_profile"] == "default"
    assert manifest["seed"] == 0
    assert "created_utc" not in manifest
    assert isinstance(manifest["git"], str)
    assert set(manifest["fault_stream_seeds"]) == {
        "fault-vrt", "fault-temp", "fault-readnoise", "fault-commands",
        "fault-stale"}
    assert manifest["recovery_counters"] == result.recovery
