"""End-to-end chaos: ground truth recovered under the default faults."""

from __future__ import annotations

import pytest

from repro.eval.resilience import RESILIENCE_MODULES, run_module_resilience


@pytest.mark.slow
@pytest.mark.parametrize("module_id", RESILIENCE_MODULES)
def test_module_recovers_under_default_faults(module_id):
    result = run_module_resilience(module_id)
    assert result.faults_injected > 0
    assert result.recovery_work > 0, result.recovery
    assert result.recovered, (result.profile.summary(), result.expected)
