"""Seeded chaos is reproducible: identical seeds, identical runs."""

from __future__ import annotations

from repro.core import ProfilingConfig, RowGroupLayout, RowScout
from repro.faults import DEFAULT
from .conftest import make_faulty_host


def chaos_scout_run(seed: int):
    """A fault-heavy Row Scout run; returns everything observable."""
    profile = DEFAULT.scaled(read_noise_probability=0.01,
                             write_drop_probability=0.005)
    host = make_faulty_host(profile, seed=seed, vrt_fraction=0.005)
    groups = RowScout(host).find_groups(ProfilingConfig(
        bank=0, layout=RowGroupLayout.parse("R-R"), group_count=2,
        validation_rounds=4, round_retries=2, scan_attempts=3))
    snapshot = [(g.bank, g.base_physical, g.logical_rows,
                 g.retention_ps, g.retention_lo_ps) for g in groups]
    return (snapshot, tuple(host.faults.trace),
            dict(host.faults.counters), host.now_ps, host.ref_count)


def test_identical_seeds_produce_identical_traces():
    first = chaos_scout_run(3)
    second = chaos_scout_run(3)
    assert first == second
    assert first[1]  # the run actually injected faults


def test_different_seeds_diverge():
    first = chaos_scout_run(3)
    second = chaos_scout_run(4)
    assert first[1] != second[1]
