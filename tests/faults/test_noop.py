"""The NONE profile is a strict no-op: bit-identical to a bare host."""

from __future__ import annotations

from repro.core import InferenceConfig, ProfilingConfig, RowGroupLayout, \
    RowScout
from .conftest import make_faulty_host


def scout_snapshot(host):
    groups = RowScout(host).find_groups(ProfilingConfig(
        bank=0, layout=RowGroupLayout.parse("R-R"), group_count=2,
        validation_rounds=4))
    return ([(g.bank, g.base_physical, g.logical_rows,
              g.retention_ps, g.retention_lo_ps) for g in groups],
            host.now_ps, host.ref_count)


def test_none_profile_bit_identical_to_bare_host():
    bare = make_faulty_host(None)
    wrapped = make_faulty_host("none")
    assert scout_snapshot(bare) == scout_snapshot(wrapped)
    assert wrapped.faults.fault_count() == 0
    assert wrapped.faults.trace == []
    assert wrapped._chip.environment.neutral


def test_default_inference_config_is_unhardened():
    # Every resilience knob defaults off, so the seed pipeline's exact
    # behaviour (covered by the tier-1 inference tests) is preserved.
    config = InferenceConfig()
    assert config.experiment_votes == 1
    assert config.profiling_round_retries == 0
    assert config.profiling_scan_attempts == 1
    assert config.recalibrate_after_violations == 0
    assert config.partial_on_failure is False
