"""Prometheus text exposition: lossless round-trip of a registry dump.

The exporter's contract is that ``parse_prometheus(render_prometheus(m))``
reproduces ``m.as_dict()`` exactly — dotted metric names survive via
labels, power-of-two histogram buckets survive cumulative ``le``
encoding, and min/max ride along as explicit family members — so a
scraped endpoint is as trustworthy as the registry behind it.
"""

from __future__ import annotations

from repro.obs import (MetricsRegistry, PROMETHEUS_CONTENT_TYPE,
                       parse_prometheus, render_prometheus)


def populated_registry() -> MetricsRegistry:
    metrics = MetricsRegistry()
    metrics.inc("host.acts", 102_400)
    metrics.inc("host.refs", 512)
    metrics.inc("scout.rows_scanned")
    metrics.set_gauge("calib.offset_ps", -125.5)
    metrics.set_gauge("eval.scale", 1)
    for value in (0, 1, 3, 9, 17, 17, 1500):
        metrics.observe("attack.flips_per_run", value)
    return metrics


def test_prometheus_round_trip_is_lossless():
    metrics = populated_registry()
    text = render_prometheus(metrics)
    assert parse_prometheus(text) == metrics.as_dict()


def test_prometheus_families_and_labels():
    text = render_prometheus(populated_registry())
    assert 'repro_counter{name="host.acts"} 102400' in text
    assert 'repro_gauge{name="calib.offset_ps"} -125.5' in text
    # Buckets are cumulative and close with +Inf == _count.
    assert 'le="+Inf"} 7' in text
    assert 'repro_histogram_count{name="attack.flips_per_run"} 7' in text
    assert 'repro_histogram_min{name="attack.flips_per_run"} 0' in text
    assert 'repro_histogram_max{name="attack.flips_per_run"} 1500' in text
    # Exposition-format framing the scrapers rely on.
    assert "# TYPE repro_counter counter" in text
    assert "# TYPE repro_histogram histogram" in text
    assert text.endswith("\n")
    assert "0.0.4" in PROMETHEUS_CONTENT_TYPE


def test_prometheus_escapes_label_values():
    metrics = MetricsRegistry()
    metrics.inc('weird"name\\with\nbreaks', 3)
    text = render_prometheus(metrics)
    parsed = parse_prometheus(text)
    assert parsed["counters"] == {'weird"name\\with\nbreaks': 3}


def test_prometheus_custom_namespace():
    metrics = MetricsRegistry()
    metrics.inc("host.acts", 7)
    text = render_prometheus(metrics, namespace="utrr")
    assert 'utrr_counter{name="host.acts"} 7' in text
    parsed = parse_prometheus(text, namespace="utrr")
    assert parsed["counters"] == {"host.acts": 7}


def test_prometheus_empty_registry():
    assert parse_prometheus(render_prometheus(MetricsRegistry())) == \
        MetricsRegistry().as_dict()


def test_prometheus_round_trips_evidence_metrics():
    """The provenance counters survive a scrape losslessly."""
    from repro.obs.evidence import EvidenceLedger, ev_refs

    class _Host:
        ref_count = 40
        acts_per_bank = {0: 360}

    ledger = EvidenceLedger(module="A5")
    ledger.decide("period", 16, evidence=[ev_refs([3])], host=_Host())
    ledger.decide("capacity", 16, outcome="rejected", host=_Host())
    metrics = MetricsRegistry()
    ledger.emit_metrics(metrics)
    text = render_prometheus(metrics)
    assert 'repro_counter{name="evidence.decisions"} 2' in text
    assert ('repro_counter{name="inference.commands_to_discovery'
            '.period"} 400') in text
    assert parse_prometheus(text) == metrics.as_dict()
