"""SpanTracker: spans must close even when a stage raises."""

from __future__ import annotations

import pytest

from repro.obs import SpanTracker


class StageError(RuntimeError):
    pass


def test_span_closes_when_stage_raises():
    spans = SpanTracker()
    with pytest.raises(StageError):
        with spans.span("inference.run"):
            with spans.span("rowscout.find_groups"):
                raise StageError("mid-stage crash")
    timeline = spans.as_timeline()
    assert [entry["name"] for entry in timeline] == \
        ["inference.run", "rowscout.find_groups"]
    # Both spans closed via the finally path: no dangling end_s.
    assert all(entry["end_s"] is not None for entry in timeline)
    assert all(entry["duration_s"] is not None for entry in timeline)
    assert all(entry["duration_s"] >= 0.0 for entry in timeline)


def test_nesting_recovers_after_exception():
    # A failed stage must pop itself off the stack: the next span is a
    # sibling of the failed one, not its child.
    spans = SpanTracker()
    with spans.span("outer"):
        with pytest.raises(StageError):
            with spans.span("failed"):
                raise StageError()
        with spans.span("retry"):
            pass
    timeline = {entry["name"]: entry for entry in spans.as_timeline()}
    assert timeline["failed"]["depth"] == 1
    assert timeline["retry"]["depth"] == 1
    assert timeline["failed"]["parent"] == 0
    assert timeline["retry"]["parent"] == 0
    assert timeline["outer"]["depth"] == 0
    # Well-nested: children end no later than the parent.
    assert timeline["retry"]["end_s"] <= timeline["outer"]["end_s"]


def test_open_span_reports_none_duration():
    spans = SpanTracker()
    context = spans.span("never-closed")
    context.__enter__()
    entry = spans.as_timeline()[0]
    assert entry["end_s"] is None
    assert entry["duration_s"] is None
    assert "..." in spans.render()
