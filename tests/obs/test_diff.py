"""First-divergence trace diffing: alignment, drift, CLI exit codes."""

from __future__ import annotations

import json

import pytest

from repro.dram import HammerMode
from repro.errors import ConfigError
from repro.obs import traced
from repro.obs.diff import diff_traces, find_divergence, main, render_diff
from .conftest import drive, small_host


def _trace(path, workload=drive, manifest=None, events=()):
    obs = traced(path, manifest=manifest or {"module": "B0", "seed": 1})
    host = small_host(obs=obs)
    workload(host)
    for kind, fields in events:
        obs.event(kind, ps=host.now_ps, **fields)
    obs.finalize(host)
    return host


def _drifted_drive(host):
    """drive() with one extra hammer pulse on the first aggressor."""
    from repro.dram.patterns import AllOnes
    host.write_row(0, 10, AllOnes())
    host.read_row(0, 10)
    host.read_row_mismatches(1, 20)
    host.hammer(0, [(30, 9), (32, 5)], HammerMode.INTERLEAVED)
    host.hammer_single(1, 40, 11)
    host.hammer_multi({0: [(50, 3)], 1: [(60, 2)]})
    host.refresh(4)
    host.wait_us(50)
    host.refresh(1, at_nominal_rate=True)


def test_identical_runs_diff_clean(tmp_path):
    _trace(tmp_path / "a.jsonl")
    _trace(tmp_path / "b.jsonl")
    diff = diff_traces(tmp_path / "a.jsonl", tmp_path / "b.jsonl")
    assert diff.identical
    assert diff.divergence is None
    assert diff.compared > 0
    assert diff.per_bank_act_delta() == {}
    assert diff.by_type_delta() == {}
    assert diff.trr_hit_delta() == {"a_only": [], "b_only": []}


def test_headers_are_ignored(tmp_path):
    # Wall-clock and git metadata legitimately differ between runs of
    # the same experiment; only the command stream is compared.
    _trace(tmp_path / "a.jsonl", manifest={"module": "B0", "run": 1})
    _trace(tmp_path / "b.jsonl", manifest={"module": "B0", "run": 2})
    assert diff_traces(tmp_path / "a.jsonl", tmp_path / "b.jsonl").identical


def test_first_divergence_localized(tmp_path):
    _trace(tmp_path / "a.jsonl")
    _trace(tmp_path / "b.jsonl", workload=_drifted_drive,
           events=[("trr-hit", {"bank": 0, "row": 30, "physical": 30})])
    diff = diff_traces(tmp_path / "a.jsonl", tmp_path / "b.jsonl")
    assert not diff.identical
    fork = diff.divergence
    # Body order: WR, RD, RD, ACT(hammer) — the fork is the hammer.
    assert fork.index == 3
    assert fork.record_a["t"] == "ACT"
    assert fork.record_b["t"] == "ACT"
    assert "n" in fork.fields and "rows" in fork.fields
    assert fork.ps_a == fork.ps_b  # clocks agree *at* the fork
    assert "record #3" in fork.describe()

    # Downstream drift: two extra ACTs on bank 0, one extra EVT in B.
    assert diff.per_bank_act_delta() == {0: 2}
    by_type = diff.by_type_delta()
    assert by_type["EVT"] == {"a": 0, "b": 1}
    hits = diff.trr_hit_delta()
    assert hits["a_only"] == []
    assert len(hits["b_only"]) == 1
    ledger = diff.ledger_delta()
    assert ledger["ref_count"] == {"a": 5, "b": 5}
    assert (ledger["total_acts"]["b"]
            == ledger["total_acts"]["a"] + 2)

    text = render_diff(diff)
    assert "First divergence" in text
    assert "Downstream drift" in text
    assert "per-bank ACT delta" in text


def test_different_fault_seeds_diverge(tmp_path):
    # The run seed enters the command/data stream only through the
    # fault injector; two runs differing solely in fault seed must fork
    # at a read digest (or a fault EVT), and the diff pinpoints it.
    from repro.faults import FaultInjector, FaultProfile

    from repro.dram import DeviceConfig, DramChip
    from repro.softmc import SoftMCHost

    noisy = FaultProfile(name="test-noise", read_noise_probability=0.5)
    for name, seed in (("a", 1), ("b", 2)):
        obs = traced(tmp_path / f"{name}.jsonl",
                     manifest={"module": "B0", "seed": seed})
        config = DeviceConfig(name="obs-test", serial=7, num_banks=2,
                              rows_per_bank=4096, row_bits=64,
                              refresh_cycle_refs=1024)
        host = SoftMCHost(DramChip(config),
                          faults=FaultInjector(noisy, seed=seed),
                          obs=obs)
        drive(host)
        for _ in range(20):
            host.read_row(0, 10)
        obs.finalize(host)
    diff = diff_traces(tmp_path / "a.jsonl", tmp_path / "b.jsonl")
    assert not diff.identical
    assert diff.divergence.index >= 0
    assert diff.divergence.record_a is not None


def test_length_skew_divergence(tmp_path):
    def longer(host):
        drive(host)
        host.refresh(1)
    _trace(tmp_path / "a.jsonl")
    _trace(tmp_path / "b.jsonl", workload=longer)
    diff = diff_traces(tmp_path / "a.jsonl", tmp_path / "b.jsonl")
    fork = diff.divergence
    assert fork.fields == ("<missing>",)
    assert fork.record_a is None
    assert fork.record_b["t"] == "REF"
    assert fork.index == diff.compared
    assert "trace A ends here" in fork.describe()


def test_find_divergence_pure():
    a = [{"type": "header"}, {"t": "WR", "ps": 0, "bk": 0, "row": 1}]
    b = [{"type": "header"}, {"t": "WR", "ps": 0, "bk": 0, "row": 2}]
    fork = find_divergence(a, b)
    assert fork.index == 0
    assert fork.fields == ("row",)
    assert find_divergence(a, a) is None


def test_cli_exit_codes_and_json(tmp_path, capsys):
    _trace(tmp_path / "a.jsonl")
    _trace(tmp_path / "b.jsonl")
    _trace(tmp_path / "c.jsonl", workload=_drifted_drive)

    assert main([str(tmp_path / "a.jsonl"), str(tmp_path / "b.jsonl")]) == 0
    assert "identical" in capsys.readouterr().out

    code = main([str(tmp_path / "a.jsonl"), str(tmp_path / "c.jsonl"),
                 "--json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["identical"] is False
    assert payload["divergence"]["index"] == 3
    assert payload["per_bank_act_delta"] == {"0": 2}
    assert "ref_histogram_delta" in payload
    assert "ledger_delta" in payload

    junk = tmp_path / "junk.jsonl"
    junk.write_text('{"t":"WR"}\n', encoding="utf-8")
    assert main([str(junk), str(tmp_path / "a.jsonl")]) == 2
    assert "diff error" in capsys.readouterr().err


def test_diff_rejects_non_trace(tmp_path):
    good = tmp_path / "a.jsonl"
    _trace(good)
    bad = tmp_path / "bad.jsonl"
    bad.write_text("", encoding="utf-8")
    with pytest.raises(ConfigError):
        diff_traces(good, bad)
