"""Record/replay verification: round trips, divergences, v1 fallback."""

from __future__ import annotations

import json

import pytest

from repro.dram import AllZeros, Checkerboard, inverted
from repro.errors import ConfigError
from repro.obs import traced
from repro.obs.replay import main, replay_trace
from .conftest import drive, small_host


def _record(path, serial=7, extra=None):
    obs = traced(path, manifest={"module": "B0", "seed": 1})
    host = small_host(obs=obs, serial=serial)
    drive(host)
    if extra is not None:
        extra(host)
    obs.finalize(host)
    return host


def _extra_patterns(host):
    """Exercise every pattern codec branch, including custom data."""
    host.write_row(0, 70, AllZeros())
    host.write_row(0, 71, Checkerboard(phase=1))
    custom = inverted(Checkerboard(), host.row_bits)
    host.write_row(0, 72, custom)
    host.read_row(0, 72)
    host.read_row_mismatches(0, 72)


def test_round_trip_zero_divergence(tmp_path):
    path = tmp_path / "trace.jsonl"
    host = _record(path, extra=_extra_patterns)
    result = replay_trace(path, host=small_host())
    assert result.executed
    assert result.divergences == []
    assert result.reads_verified == 4  # 2 in drive() + 2 in extras
    assert result.ledger_ok
    assert result.ledger == host.ledger()
    assert result.ok


def test_replay_detects_tampered_read_digest(tmp_path):
    path = tmp_path / "trace.jsonl"
    _record(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    for index, line in enumerate(lines):
        record = json.loads(line)
        if record.get("t") == "RD" and "crc" in record:
            record["crc"] ^= 1
            lines[index] = json.dumps(record, separators=(",", ":"))
            break
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    result = replay_trace(path, host=small_host())
    assert not result.ok
    assert result.divergences
    assert result.divergences[0].check == "rd-digest"


def test_replay_against_wrong_module_diverges(tmp_path):
    # Replaying against a module with a different row width must fail
    # at the first read: the payload digest covers the whole row.
    from repro.dram import DeviceConfig, DramChip
    from repro.softmc import SoftMCHost
    path = tmp_path / "trace.jsonl"
    _record(path)
    config = DeviceConfig(name="obs-test", serial=7, num_banks=2,
                          rows_per_bank=4096, row_bits=128,
                          refresh_cycle_refs=1024)
    result = replay_trace(path, host=SoftMCHost(DramChip(config)))
    assert not result.ok
    assert result.divergences
    assert result.divergences[0].check in ("ps", "rd-digest")


def test_replay_truncated_trace(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs = traced(path, manifest={"module": "B0"})
    host = small_host(obs=obs)
    drive(host)
    obs.finalize(None)  # no summary: the run died mid-flight
    result = replay_trace(path, host=small_host())
    assert result.truncated
    assert not result.ok
    assert result.divergences == []  # commands themselves replayed fine


def test_replay_hammer_multi_grouping(tmp_path):
    # drive() includes a two-bank hammer_multi; a replay that issued the
    # batches sequentially would advance the clock twice and fail the
    # next record's ps check, so a clean round trip proves regrouping.
    path = tmp_path / "trace.jsonl"
    _record(path)
    records = [json.loads(line) for line in
               path.read_text(encoding="utf-8").splitlines()]
    multi = [r for r in records if r.get("t") == "ACT" and "mg" in r]
    assert len(multi) == 2
    assert all(r["mg"] == 2 for r in multi)
    assert multi[0]["ps"] == multi[1]["ps"]
    assert replay_trace(path, host=small_host()).ok


def test_v1_trace_falls_back_to_ledger_replay(tmp_path):
    # A handcrafted v1 trace: no digests, no pattern specs, version 1.
    path = tmp_path / "v1.jsonl"
    records = [
        {"type": "header", "version": 1, "meta": {"module": "B0"}},
        {"t": "WR", "ps": 0, "bk": 0, "row": 10},
        {"t": "RD", "ps": 100, "bk": 0, "row": 10},
        {"t": "ACT", "ps": 200, "bk": 1, "n": 12,
         "rows": [[30, 12]], "mode": "cascaded"},
        {"t": "REF", "ps": 300, "idx": 0, "n": 2},
        {"type": "summary", "ref_count": 2,
         "acts_per_bank": {"0": 2, "1": 12}},
    ]
    path.write_text("\n".join(json.dumps(r) for r in records) + "\n",
                    encoding="utf-8")
    result = replay_trace(path)
    assert not result.executed
    assert result.version == 1
    assert result.ledger_ok
    assert result.ok
    assert result.reads_verified == 0


def test_cli_exit_codes(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    _record(path)
    # The manifest has no chip recipe, so manifest-driven rebuild is a
    # structural error (exit 2) — the library API with an explicit host
    # is exercised above.
    assert main([str(path)]) == 2
    assert "replay error" in capsys.readouterr().err


def test_cli_replays_manifest_recipe(tmp_path, capsys):
    from repro.obs import build_manifest
    from repro.rng import derive_seed
    from repro.vendors import build_module, get_module
    from repro.softmc import SoftMCHost

    chip_kwargs = dict(rows_per_bank=4096, row_bits=128,
                       weak_cells_per_row_mean=2.0, vrt_fraction=0.0)
    manifest = build_manifest(seed=0, module="B0", fault_profile="none",
                              chip=dict(chip_kwargs),
                              fault_seed=derive_seed("t", 0, "B0"))
    path = tmp_path / "trace.jsonl"
    obs = traced(path, manifest=manifest)
    host = SoftMCHost(build_module(get_module("B0"), **chip_kwargs),
                      obs=obs)
    drive(host)
    obs.finalize(host)
    assert main([str(path)]) == 0
    assert "OK — the trace is an executable proof" in \
        capsys.readouterr().out


def test_replay_rejects_non_trace(tmp_path):
    path = tmp_path / "junk.jsonl"
    path.write_text('{"t":"WR"}\n', encoding="utf-8")
    with pytest.raises(ConfigError):
        replay_trace(path)
