"""End-to-end: traced inference replays exactly to the host ledger.

One module per vendor (counter table / activation sampler / deferred
window) runs the full pipeline under an enabled recorder; the resulting
trace must replay command-by-command to the host's own ACT/REF ledger,
and every artifact (metrics, spans, manifest) must land on disk.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.__main__ import run_traced_inference
from repro.obs.replay import replay_trace
from repro.obs.report import render_report

VENDOR_MODULES = ("A5", "B0", "C7")


@pytest.mark.slow
@pytest.mark.parametrize("module_id", VENDOR_MODULES)
def test_traced_inference_replays_to_ledger(module_id, tmp_path):
    result = run_traced_inference(module_id, tmp_path / module_id)
    report = result["report"]
    host = result["host"]

    # Exact replay: trace-reconstructed counts == host's own ledger.
    assert report.ledger_ok
    assert report.replay["ref_count"] == host.ref_count
    assert report.replay["acts_per_bank"] == \
        host.ledger()["acts_per_bank"]
    assert report.replay["events"] > 0

    # Round trip: re-execute the whole trace against a freshly built
    # module (recovered from the header manifest alone) — every read's
    # digest and the final ledger must match bit for bit.
    replay = replay_trace(result["out"] / "trace.jsonl")
    assert replay.executed
    assert replay.divergences == []
    assert replay.reads_verified > 0
    assert replay.ledger_ok
    assert replay.ledger == host.ledger()
    assert replay.ok

    # The report renders cleanly end-to-end.
    text = render_report(report)
    assert "OK — trace replays to the host ledger exactly" in text
    assert module_id in text

    # The pipeline actually produced a profile and stage spans.
    assert result["profile"].detection in ("counter", "sampling", "window")
    timeline = result["obs"].spans.as_timeline()
    assert any(span["name"] == "inference.run" for span in timeline)
    assert any(span["name"] == "rowscout.find_groups"
               for span in timeline)

    # All artifacts exist and parse.
    out = result["out"]
    assert (out / "trace.jsonl").exists()
    metrics = json.loads((out / "metrics.json").read_text())
    assert metrics["counters"]["host.refs"] == host.ref_count
    spans = json.loads((out / "spans.json").read_text())
    assert spans and spans[0]["duration_s"] is not None
    manifest = json.loads((out / "manifest.json").read_text())
    assert manifest["module"] == module_id
    assert manifest["scale"] == "smoke"

    # The provenance sidecar: every Table-1 parameter the run inferred
    # carries a non-empty evidence chain, the chain's REF indices
    # resolve inside the trace, and the metrics registry agrees with
    # the ledger's commands-to-discovery totals.
    from repro.obs.evidence import check_trace, read_evidence
    header, nodes = read_evidence(out / "evidence.jsonl")
    assert header["module"] == module_id
    assert nodes, "traced inference recorded no decision nodes"
    accepted = [node for node in nodes
                if node["outcome"] == "accepted"]
    assert accepted
    assert all(node["evidence"] for node in accepted), \
        "accepted conclusion with an empty evidence chain"
    parameters = {node["parameter"] for node in accepted}
    assert {"refresh_cycle", "mapping_scheme"} <= parameters
    ok, message = check_trace(nodes, out / "trace.jsonl")
    assert ok, message
    counters = metrics["counters"]
    assert counters["evidence.decisions"] == len(nodes)
    ledger_cost = sum(int(node.get("commands_to_discovery", 0))
                      for node in nodes)
    metric_cost = sum(value for name, value in counters.items()
                      if name.startswith(
                          "inference.commands_to_discovery."))
    assert metric_cost == ledger_cost
