"""Evidence ledger: decision nodes, merge folds, sidecar IO, CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs import NULL_EVIDENCE, MetricsRegistry, NullEvidence
from repro.obs.evidence import (EVIDENCE_SCHEMA, EvidenceLedger,
                                check_trace, command_stamp, ev_error,
                                ev_probe, ev_refs, ev_rows, ev_value,
                                ev_window, main, nodes_summary,
                                read_jsonl, render_report, write_jsonl)


class FakeHost:
    """Duck-typed command ledger (what command_stamp reads)."""

    def __init__(self, acts=0, refs=0):
        self.acts_per_bank = {0: acts}
        self.ref_count = refs


def test_command_stamp_reads_host_ledger():
    stamp = command_stamp(FakeHost(acts=120, refs=30))
    assert stamp == {"acts": 120, "refs": 30, "total": 150}
    assert command_stamp(None) == {"acts": 0, "refs": 0, "total": 0}


def test_decide_records_waterfall_deltas():
    ledger = EvidenceLedger(module="A5")
    first = ledger.decide("period", 16, stage="s1",
                          evidence=[ev_refs([3, 7])],
                          host=FakeHost(acts=90, refs=10))
    second = ledger.decide("capacity", 16, stage="s2",
                           evidence=[ev_rows([5, 6])],
                           host=FakeHost(acts=150, refs=50))
    assert first["commands_to_discovery"] == 100
    assert second["commands_to_discovery"] == 100
    assert first["module"] == "A5"
    assert [node["seq"] for node in ledger.nodes] == [0, 1]
    # A stamp that goes backwards (fresh host) never yields a negative.
    third = ledger.decide("kind", "counter", host=FakeHost(acts=10))
    assert third["commands_to_discovery"] == 0


def test_decide_rejects_unknown_outcome():
    with pytest.raises(ValueError):
        EvidenceLedger().decide("x", outcome="maybe")


def test_evidence_constructors_are_bounded():
    refs = ev_refs(range(200))
    assert refs["count"] == 200 and len(refs["refs"]) == 64
    assert refs["truncated"] is True
    assert ev_window(3, 11)["lo"] == 3
    probe = ev_probe(10, [9, 11], range(100))
    assert len(probe["testable"]) == 64
    assert ev_value("digest", {"a": 1})["value"] == {"a": 1}
    assert ev_error(ValueError("boom"))["error"] == "ValueError"


def test_merge_stamps_unit_and_reassigns_seq():
    unit_a, unit_b = EvidenceLedger(), EvidenceLedger()
    unit_a.decide("period", 16, host=FakeHost(acts=5))
    unit_b.decide("capacity", 17, host=FakeHost(acts=7))
    folded = EvidenceLedger()
    folded.merge(unit_a, unit="eval/A5")
    folded.merge(unit_b.dump(), unit="eval/B0")
    assert [node["unit"] for node in folded.nodes] == ["eval/A5",
                                                       "eval/B0"]
    assert [node["seq"] for node in folded.nodes] == [0, 1]
    # Nodes already carrying a unit tag keep it (cache replays).
    refolded = EvidenceLedger()
    refolded.merge(folded.dump(), unit="other")
    assert [node["unit"] for node in refolded.nodes] == ["eval/A5",
                                                         "eval/B0"]


def test_merge_order_is_submission_order_not_arrival():
    per_unit = {}
    for name in ("u1", "u2", "u3"):
        ledger = EvidenceLedger()
        ledger.decide(name, host=FakeHost(acts=1))
        per_unit[name] = ledger.dump()
    arrival = EvidenceLedger()
    for name in ("u3", "u1", "u2"):  # scrambled completion order
        pass  # the engine folds in submission order regardless
    for name in ("u1", "u2", "u3"):
        arrival.merge(per_unit[name], unit=f"eval/{name}")
    assert [node["parameter"] for node in arrival.nodes] == \
        ["u1", "u2", "u3"]


def test_emit_metrics_counts_outcomes_and_costs():
    ledger = EvidenceLedger()
    ledger.decide("period", 16, evidence=[ev_refs([1])],
                  host=FakeHost(acts=100))
    ledger.decide("period", 16, outcome="rejected",
                  host=FakeHost(acts=150))
    ledger.decide("capacity", None, outcome="degraded",
                  evidence=[ev_value("note", 1)],
                  host=FakeHost(acts=150))
    metrics = MetricsRegistry()
    ledger.emit_metrics(metrics)
    counters = metrics.as_dict()["counters"]
    assert counters["evidence.decisions"] == 3
    assert counters["evidence.accepted"] == 1
    assert counters["evidence.rejected"] == 1
    assert counters["evidence.degraded"] == 1
    assert counters["evidence.empty_chains"] == 1
    assert counters["inference.commands_to_discovery.period"] == 150


def test_nodes_summary_per_parameter_breakdown():
    ledger = EvidenceLedger()
    ledger.decide("period", 16, evidence=[ev_refs([1]), ev_rows([2])],
                  host=FakeHost(acts=10))
    ledger.decide("period", 16, outcome="rejected",
                  host=FakeHost(acts=30))
    summary = nodes_summary(ledger.nodes)
    assert summary["decisions"] == 2
    assert summary["commands"] == 30
    assert summary["parameters"]["period"] == {
        "decisions": 2, "accepted": 1, "commands": 30, "evidence": 2}


def test_sidecar_round_trip_and_byte_determinism(tmp_path):
    ledger = EvidenceLedger(module="B0")
    ledger.decide("period", 16, evidence=[ev_refs([4, 8])],
                  host=FakeHost(acts=40, refs=8))
    first = tmp_path / "a.jsonl"
    second = tmp_path / "b.jsonl"
    write_jsonl(first, ledger, meta={"seed": 0})
    write_jsonl(second, ledger.dump(), meta={"seed": 0})
    assert first.read_bytes() == second.read_bytes()
    header, nodes = read_jsonl(first)
    assert header["schema"] == EVIDENCE_SCHEMA
    assert header["decisions"] == 1
    assert nodes == ledger.dump()


def test_render_report_marks_empty_chains():
    ledger = EvidenceLedger(module="C7")
    ledger.decide("period", 16, evidence=[ev_refs([4])],
                  host=FakeHost(acts=9))
    ledger.decide("capacity", None, outcome="rejected")
    report = render_report(ledger.nodes)
    assert "## C7" in report
    assert "(EMPTY)" in report
    assert "ref-indices" in report


def test_check_trace_resolves_ref_indices(tmp_path):
    from repro.obs import traced
    from .conftest import small_host

    obs = traced(tmp_path / "trace.jsonl")
    host = small_host(obs=obs)
    host.refresh(32)
    obs.finalize(host)
    good = EvidenceLedger()
    good.decide("period", 4, evidence=[ev_refs([3, 31])], host=host)
    ok, message = check_trace(good.nodes, tmp_path / "trace.jsonl")
    assert ok, message
    bad = EvidenceLedger()
    bad.decide("period", 4, evidence=[ev_refs([4096])], host=host)
    ok, message = check_trace(bad.nodes, tmp_path / "trace.jsonl")
    assert not ok and "4096" in message


def test_null_evidence_is_inert():
    assert not NULL_EVIDENCE.enabled
    assert NULL_EVIDENCE.decide("x", 1, outcome="rejected") is None
    assert NULL_EVIDENCE.dump() == []
    assert NullEvidence().summary()["decisions"] == 0
    NULL_EVIDENCE.emit_metrics(MetricsRegistry())  # no-op, no raise


def test_cli_reports_and_gates_empty_chains(tmp_path, capsys):
    sidecar = tmp_path / "evidence.jsonl"
    ledger = EvidenceLedger(module="A5")
    ledger.decide("period", 16, evidence=[ev_refs([2])],
                  host=FakeHost(acts=5))
    write_jsonl(sidecar, ledger)
    assert main([str(sidecar)]) == 0
    out = capsys.readouterr().out
    assert "Evidence report" in out and "## A5" in out

    ledger.decide("capacity", None, outcome="rejected")  # empty chain
    write_jsonl(sidecar, ledger)
    assert main([str(sidecar), "--json"]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["empty_chains"] == 1
    assert report["summary"]["decisions"] == 2


def test_cli_missing_sidecar_exits_2(tmp_path, capsys):
    assert main([str(tmp_path / "nope.jsonl")]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_cli_searches_directories(tmp_path, capsys):
    ledger = EvidenceLedger(module="B0")
    ledger.decide("period", 16, evidence=[ev_refs([1])],
                  host=FakeHost(acts=2))
    write_jsonl(tmp_path / "evidence.jsonl", ledger)
    assert main([str(tmp_path), "--no-chains"]) == 0
    assert "## B0" in capsys.readouterr().out
