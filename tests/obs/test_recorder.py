"""JSONL trace round-trip fidelity, replay, and determinism."""

from __future__ import annotations

import pytest

from repro.core import ProfilingConfig, RowGroupLayout, RowScout
from repro.errors import ConfigError
from repro.obs import TRACE_VERSION, read_trace, replay_ledger, traced
from .conftest import drive, scout_host, small_host


def test_round_trip_and_ledger_replay(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs = traced(path, manifest={"module": "unit-test", "seed": 0})
    host = small_host(obs=obs)
    drive(host)
    obs.event("trr-hit", ps=host.now_ps, bank=0, row=30)
    obs.finalize(host)

    records = list(read_trace(path))
    assert records[0]["type"] == "header"
    assert records[0]["version"] == TRACE_VERSION
    assert records[0]["meta"]["module"] == "unit-test"
    assert records[-1]["type"] == "summary"

    replay = replay_ledger(records)
    # The replayed ACT/REF counts must match the host's own ledger
    # exactly: 1 implicit ACT per WR/RD, n per hammer batch, n per REF.
    assert replay["ref_count"] == host.ref_count
    assert replay["acts_per_bank"] == host.ledger()["acts_per_bank"]
    assert replay["summary"]["ref_count"] == host.ref_count
    assert replay["by_type"] == {"WR": 1, "RD": 2, "ACT": 4, "REF": 2,
                                 "WAIT": 1, "EVT": 1}


def test_record_field_fidelity(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs = traced(path)
    host = small_host(obs=obs)
    drive(host)
    obs.finalize(host)

    records = [r for r in read_trace(path) if r.get("type") is None]
    acts = [r for r in records if r["t"] == "ACT"]
    assert acts[0]["rows"] == [[30, 7], [32, 5]]
    assert acts[0]["n"] == 12
    assert acts[0]["mode"] == "interleaved"
    assert acts[1]["mode"] == "cascaded"
    refs = [r for r in records if r["t"] == "REF"]
    # idx is the host REF counter *before* the burst.
    assert refs[0]["idx"] == 0 and refs[0]["n"] == 4
    assert refs[1]["idx"] == 4 and refs[1].get("nominal") is True
    waits = [r for r in records if r["t"] == "WAIT"]
    assert waits[0]["dur"] == 50_000_000
    # Every command record carries the host picosecond clock.
    assert all(r["ps"] >= 0 for r in records)
    assert [r["ps"] for r in records] == sorted(r["ps"] for r in records)


def test_flush_bounding_and_close(tmp_path):
    path = tmp_path / "trace.jsonl"
    obs = traced(path, flush_every=2)
    host = small_host(obs=obs)
    drive(host)
    events = obs.recorder.events
    obs.finalize(host)
    lines = path.read_text().strip().split("\n")
    assert len(lines) == events + 2  # header + summary
    with pytest.raises(ConfigError):
        obs.recorder.on_write(0, 0, 0)


def test_identical_seeds_produce_identical_traces(tmp_path):
    """Traces carry only simulation-derived fields, so two identically
    seeded pipeline runs are byte-identical."""

    def one_run(path) -> bytes:
        obs = traced(path)
        host = scout_host(obs=obs, serial=11)
        RowScout(host).find_groups(ProfilingConfig(
            bank=0, layout=RowGroupLayout.parse("R-R"), group_count=2,
            validation_rounds=4))
        obs.finalize(host)
        return path.read_bytes()

    first = one_run(tmp_path / "a.jsonl")
    second = one_run(tmp_path / "b.jsonl")
    assert first == second
    assert len(first) > 0
