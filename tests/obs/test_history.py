"""Run-history store and the cross-run regression sentinel."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, SpanTracker
from repro.obs.history import (HISTORY_SCHEMA, RunHistory, flatten_metrics,
                               gate, main, span_wallclocks)


def _registry():
    metrics = MetricsRegistry()
    metrics.inc("host.acts", 24)
    metrics.inc("host.refs", 5)
    metrics.set_gauge("scout.groups", 3)
    metrics.observe("rowscout.retention_ms", 64)
    metrics.observe("rowscout.retention_ms", 200)
    return metrics


def test_flatten_metrics_shapes():
    flat = flatten_metrics(_registry())
    assert flat["host.acts"] == 24
    assert flat["scout.groups"] == 3
    assert flat["rowscout.retention_ms.count"] == 2
    assert flat["rowscout.retention_ms.mean"] == pytest.approx(132.0)
    assert flat["rowscout.retention_ms.max"] == 200
    # The as_dict form flattens identically.
    assert flatten_metrics(_registry().as_dict()) == flat


def test_span_wallclocks_sums_same_named_spans():
    spans = SpanTracker()
    with spans.span("stage"):
        pass
    with spans.span("stage"):
        pass
    with spans.span("other"):
        pass
    clocks = span_wallclocks(spans)
    assert set(clocks) == {"stage", "other"}
    assert clocks["stage"] >= 0.0
    # Summed: one "stage" entry covering both enters.
    timeline = spans.as_timeline()
    total = sum(entry["duration_s"] for entry in timeline
                if entry["name"] == "stage")
    assert clocks["stage"] == pytest.approx(total, abs=1e-6)


def test_record_and_rows_round_trip(tmp_path):
    store = RunHistory(tmp_path / "hist" / "runs.jsonl")
    row = store.record("eval.fig9", manifest={"module": "B0"},
                       metrics=_registry(), spans=SpanTracker(),
                       wall_s=1.25, extra={"workers": 2})
    store.record("eval.table1", wall_s=0.5)
    assert row["schema"] == HISTORY_SCHEMA
    assert row["metrics"]["host.acts"] == 24
    assert row["extra"] == {"workers": 2}

    rows = store.rows()
    assert [r["kind"] for r in rows] == ["eval.fig9", "eval.table1"]
    assert store.rows(kind="eval.fig9")[0]["wall_s"] == 1.25
    assert store.kinds() == ["eval.fig9", "eval.table1"]


def test_record_profile_and_gate_per_opcode_regressions(tmp_path):
    from repro.obs import CommandProfiler

    profiler = CommandProfiler()
    profiler.add("ACT", 1.5)
    profiler.add("RD", 0.25)
    store = RunHistory(tmp_path / "runs.jsonl")
    row = store.record("bench.profile", profile=profiler, wall_s=2.0)
    assert row["profile"] == {"ACT": 1.5, "RD": 0.25}
    # A plain {name: seconds} dict records the same way; empty
    # profiles are omitted entirely.
    assert store.record("x", profile={"ACT": 1.0})["profile"] == \
        {"ACT": 1.0}
    assert "profile" not in store.record("y", profile=CommandProfiler())

    def _prow(act):
        return {"schema": 1, "kind": "bench.profile",
                "profile": {"ACT": act}, "wall_s": 1.0}

    # Opcode wall time gates slower-only, like spans.
    flags = gate([_prow(1.0), _prow(1.0), _prow(2.0)])
    assert [flag.metric for flag in flags] == ["profile:ACT"]
    assert gate([_prow(1.0), _prow(1.0), _prow(0.2)]) == []


def test_rows_raise_on_corrupt_line(tmp_path):
    path = tmp_path / "runs.jsonl"
    path.write_text('{"schema":1,"kind":"x"}\nnot json\n',
                    encoding="utf-8")
    with pytest.raises(ConfigError, match="corrupt history row"):
        RunHistory(path).rows()


def _row(kind="eval.fig9", acts=100.0, stage=1.0, wall=2.0):
    return {"schema": 1, "kind": kind,
            "metrics": {"host.acts": acts},
            "spans": {"stage": stage}, "wall_s": wall}


def test_gate_vacuous_without_baseline():
    assert gate([]) == []
    assert gate([_row()]) == []


def test_gate_flags_counter_drift_both_directions():
    # +50% beyond the 25% tolerance: flagged.
    flags = gate([_row(acts=100), _row(acts=100), _row(acts=150)])
    assert [flag.metric for flag in flags] == ["host.acts"]
    assert flags[0].baseline == pytest.approx(100.0)
    assert flags[0].value == 150
    assert flags[0].delta == pytest.approx(50.0)
    assert "host.acts" in flags[0].describe()
    # Fewer events is just as suspect (a stage silently skipped).
    drops = gate([_row(acts=100), _row(acts=100), _row(acts=60)])
    assert [flag.metric for flag in drops] == ["host.acts"]
    # Within tolerance: clean.
    assert gate([_row(acts=100), _row(acts=100), _row(acts=110)]) == []


def test_gate_zero_baseline_flags_any_nonzero():
    flags = gate([_row(acts=0), _row(acts=0), _row(acts=1)])
    assert [flag.metric for flag in flags] == ["host.acts"]


def test_gate_spans_flag_slower_only():
    # 2x slower than baseline (tolerance 0.5): flagged, span: prefix.
    flags = gate([_row(stage=1.0, wall=1.0), _row(stage=1.0, wall=1.0),
                  _row(stage=2.0, wall=1.0)])
    assert [flag.metric for flag in flags] == ["span:stage"]
    # Faster is never a regression.
    assert gate([_row(stage=1.0, wall=1.0), _row(stage=1.0, wall=1.0),
                 _row(stage=0.1, wall=1.0)]) == []
    # Wall clock gates the same way.
    walls = gate([_row(wall=1.0), _row(wall=1.0), _row(wall=3.0)])
    assert "wall_s" in [flag.metric for flag in walls]


def test_gate_rolling_baseline_window():
    # An ancient outlier outside the window must not skew the baseline.
    rows = [_row(acts=1000)] + [_row(acts=100)] * 5 + [_row(acts=110)]
    assert gate(rows, baseline=5) == []


def test_cli_trend_gate_and_exit_codes(tmp_path, capsys):
    path = tmp_path / "runs.jsonl"
    assert main([str(path)]) == 2  # missing/empty store
    assert "empty" in capsys.readouterr().err

    store = RunHistory(path)
    for acts in (100, 100, 100):
        store.record("eval.fig9", metrics={"counters": {"host.acts": acts}},
                     wall_s=1.0)
    assert main([str(path)]) == 0
    out = capsys.readouterr().out
    assert "eval.fig9 (3 runs)" in out

    assert main([str(path), "--metric", "host.acts"]) == 0
    assert "host.acts = 100" in capsys.readouterr().out

    assert main([str(path), "--gate"]) == 0
    assert "gate: clean" in capsys.readouterr().out

    store.record("eval.fig9", metrics={"counters": {"host.acts": 200}},
                 wall_s=1.0)
    assert main([str(path), "--gate"]) == 1
    assert "REGRESSION" in capsys.readouterr().out

    # A generous tolerance lets the same store pass.
    assert main([str(path), "--gate", "--tolerance", "2.0"]) == 0
    capsys.readouterr()

    assert main([str(path), "--gate", "--json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload[0]["metric"] == "host.acts"

    path.write_text("garbage\n", encoding="utf-8")
    assert main([str(path)]) == 2
    assert "history error" in capsys.readouterr().err


def _effort_row(cost):
    return {"kind": "eval.table1",
            "metrics": {"inference.commands_to_discovery.period": cost}}


def test_gate_effort_metrics_flag_increases_only():
    # +100% commands-to-discovery: a cost regression, flagged.
    flags = gate([_effort_row(1000), _effort_row(1000),
                  _effort_row(2000)])
    assert [flag.metric for flag in flags] == \
        ["inference.commands_to_discovery.period"]
    # A cheaper schedule is an improvement, never flagged.
    assert gate([_effort_row(1000), _effort_row(1000),
                 _effort_row(100)]) == []
    # Within tolerance: clean.
    assert gate([_effort_row(1000), _effort_row(1000),
                 _effort_row(1200)]) == []


def test_gate_effort_metrics_do_not_relax_other_counters():
    rows = [{"kind": "k", "metrics": {"host.acts": 100}},
            {"kind": "k", "metrics": {"host.acts": 100}},
            {"kind": "k", "metrics": {"host.acts": 40}}]
    assert [flag.metric for flag in gate(rows)] == ["host.acts"]
