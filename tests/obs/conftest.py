"""Helpers for observability tests: small hosts and fixed workloads."""

from __future__ import annotations

from repro.dram import (DeviceConfig, DisturbanceConfig, DramChip,
                        HammerMode, RetentionConfig)
from repro.dram.patterns import AllOnes
from repro.softmc import SoftMCHost


def small_host(obs=None, serial=7) -> SoftMCHost:
    """A tiny module for pure command-stream tests (no profiling)."""
    config = DeviceConfig(
        name="obs-test", serial=serial, num_banks=2,
        rows_per_bank=4096, row_bits=64, refresh_cycle_refs=1024)
    return SoftMCHost(DramChip(config), obs=obs)


def scout_host(obs=None, serial=7) -> SoftMCHost:
    """A chip dense enough in weak rows for Row Scout (as in core tests)."""
    config = DeviceConfig(
        name="obs-scout", serial=serial, num_banks=4,
        rows_per_bank=8192, row_bits=1024, refresh_cycle_refs=2048,
        retention=RetentionConfig(weak_cells_per_row_mean=2.0),
        disturbance=DisturbanceConfig(hc_first=12_000))
    return SoftMCHost(DramChip(config), obs=obs)


def drive(host: SoftMCHost) -> None:
    """A fixed workload touching every host command type."""
    pattern = AllOnes()
    host.write_row(0, 10, pattern)
    host.read_row(0, 10)
    host.read_row_mismatches(1, 20)
    host.hammer(0, [(30, 7), (32, 5)], HammerMode.INTERLEAVED)
    host.hammer_single(1, 40, 11)
    host.hammer_multi({0: [(50, 3)], 1: [(60, 2)]})
    host.refresh(4)
    host.wait_us(50)
    host.refresh(1, at_nominal_rate=True)
