"""Command-bus profiler: per-opcode attribution and the stack sampler.

The conftest ``drive()`` workload issues a fixed command mix — 3 ACT,
2 RD, 2 REF, 1 WR, 1 WAIT — so opcode *counts* are exact assertions;
seconds are only checked for shape (positive, summing to ``total_s``).
"""

from __future__ import annotations

import time

from repro.obs import (CollapsedStackSampler, CommandProfiler,
                       NullProfiler, Observability, SpanTracker,
                       profile_report)

from .conftest import drive, small_host

#: drive()'s command mix, by opcode (one profiler sample per host call).
DRIVE_COUNTS = {"ACT": 3, "RD": 2, "REF": 2, "WAIT": 1, "WR": 1}


def test_host_attributes_every_command_type():
    profiler = CommandProfiler()
    host = small_host(obs=Observability(profiler=profiler))
    drive(host)
    assert profiler.counts == DRIVE_COUNTS
    assert profiler.commands == 9
    assert all(seconds > 0 for seconds in profiler.seconds.values())
    assert abs(profiler.total_s
               - sum(profiler.seconds.values())) < 1e-12


def test_host_profile_covers_measured_wall():
    """Opcode seconds must explain most of the host-call wall time."""
    profiler = CommandProfiler()
    host = small_host(obs=Observability(profiler=profiler))
    started = time.perf_counter()
    for _ in range(20):
        drive(host)
    wall = time.perf_counter() - started
    # Everything between perf_counter reads is host work; the only
    # unattributed time is the Python call glue around each bracket.
    assert profiler.total_s <= wall
    assert profiler.total_s >= 0.5 * wall


def test_stage_attribution_follows_open_span():
    spans = SpanTracker()
    profiler = CommandProfiler(spans=spans)
    host = small_host(obs=Observability(spans=spans, profiler=profiler))
    with spans.span("scout"):
        host.hammer_single(0, 100, 5)
        with spans.span("verify"):
            host.read_row(0, 100)
    host.refresh(1)  # outside any span: opcode-only attribution
    assert set(profiler.stages) == {"scout", "verify"}
    assert set(profiler.stages["scout"]) == {"ACT"}
    assert set(profiler.stages["verify"]) == {"RD"}
    assert profiler.counts["REF"] == 1


def test_profiler_merge_folds_dumps_and_instances():
    left = CommandProfiler()
    left.add("ACT", 0.25)
    left.add("RD", 0.5)
    right = CommandProfiler(spans=None)
    right.add("ACT", 0.75)
    left.merge(right)            # instance form
    left.merge(right.as_dict())  # dict form (what pool workers ship)
    assert left.counts == {"ACT": 3, "RD": 1}
    assert abs(left.seconds["ACT"] - 1.75) < 1e-9
    left.merge(NullProfiler())   # disabled profilers fold to nothing
    assert left.commands == 4


def test_profiler_merge_folds_stage_breakdowns():
    spans = SpanTracker()
    worker = CommandProfiler(spans=spans)
    with spans.span("scout"):
        worker.add("ACT", 0.1)
    folded = CommandProfiler()
    folded.merge(worker.as_dict())
    folded.merge(worker.as_dict())
    assert abs(folded.stages["scout"]["ACT"] - 0.2) < 1e-9


def test_as_span_clocks_shape_for_history_gating():
    profiler = CommandProfiler()
    profiler.add("ACT", 1.5)
    profiler.add("WAIT", 0.125)
    assert profiler.as_span_clocks() == {"opcode:ACT": 1.5,
                                         "opcode:WAIT": 0.125}
    assert profiler.as_span_clocks(prefix="op/") == {"op/ACT": 1.5,
                                                     "op/WAIT": 0.125}


def test_render_table_and_coverage():
    profiler = CommandProfiler()
    profiler.add("ACT", 3.0)
    profiler.add("RD", 1.0)
    text = profiler.render(wall_s=5.0)
    lines = text.splitlines()
    # Canonical opcode order, totals row, coverage footer.
    assert lines[1].split()[0] == "ACT"
    assert lines[2].split()[0] == "RD"
    assert "total" in lines[3]
    assert "coverage: 80.0% of 5.000s" in lines[4]
    assert CommandProfiler().render() == "  (no commands profiled)"


def test_render_stages_orders_by_cost():
    spans = SpanTracker()
    profiler = CommandProfiler(spans=spans)
    with spans.span("cheap"):
        profiler.add("RD", 0.1)
    with spans.span("dear"):
        profiler.add("ACT", 2.0)
    lines = profiler.render_stages().splitlines()
    assert lines[0].split()[0] == "dear"
    assert lines[1].split()[0] == "cheap"


def test_null_profiler_is_inert_and_cheap():
    profiler = NullProfiler()
    profiler.add("ACT", 1.0)
    assert profiler.as_dict()["commands"] == 0
    assert profiler.as_span_clocks() == {}
    assert "disabled" in profiler.render()
    # A host built with the null profiler resolves to the no-op branch.
    host = small_host(obs=Observability(profiler=profiler))
    assert host._prof is None
    drive(host)


def test_profile_report_adds_wall_and_coverage():
    profiler = CommandProfiler()
    profiler.add("ACT", 1.0)
    report = profile_report(profiler, wall_s=4.0)
    assert report["wall_s"] == 4.0
    assert report["coverage"] == 0.25
    assert report["counts"] == {"ACT": 1}
    assert "coverage" not in profile_report(profiler)


def _busy_loop(deadline_s: float) -> int:
    total = 0
    deadline = time.perf_counter() + deadline_s
    while time.perf_counter() < deadline:
        total += sum(range(200))
    return total


def test_stack_sampler_collects_collapsed_stacks():
    with CollapsedStackSampler(interval_s=0.001) as sampler:
        _busy_loop(0.2)
    assert sampler.total_samples > 0
    rendered = sampler.render()
    assert "_busy_loop" in rendered
    line = rendered.splitlines()[0]
    stack, count = line.rsplit(" ", 1)
    assert int(count) >= 1
    assert ";" in stack  # root-to-leaf frames joined by semicolons


def test_stack_sampler_write(tmp_path):
    sampler = CollapsedStackSampler(interval_s=0.001)
    with sampler:
        _busy_loop(0.05)
    out = tmp_path / "profile.stacks.txt"
    sampler.write(out)
    text = out.read_text()
    assert text == "" or text.endswith("\n")
    empty = CollapsedStackSampler()
    empty.write(out)
    assert out.read_text() == ""
