"""The telemetry HTTP layer, exercised without opening a socket.

``render_endpoint`` is a pure function of the spool directory, so
every route — including stall reporting and 404s — is testable with a
tmp spool; one test drives the real server over a loopback socket to
cover the handler/threading glue, and one covers ``--once``.
"""

from __future__ import annotations

import json
import threading
import urllib.request

from repro.obs import MetricsRegistry, parse_prometheus
from repro.obs.live import TelemetrySink, TraceContext
from repro.obs.serve import ENDPOINTS, main, render_endpoint, serve


def _seed_spool(spool):
    coordinator = TelemetrySink(spool, TraceContext("run"))
    coordinator.publish("run-start", units_total=2, workers=2)
    metrics = MetricsRegistry()
    metrics.inc("host.acts", 5000)
    done = TelemetrySink(spool, TraceContext("run", "t/a"))
    done.publish("unit-start")
    done.publish("unit-done", wall_s=2.0, commands=5000,
                 metrics=metrics.as_dict(), origin_ts=100.0,
                 spans=[{"name": "scout", "start_s": 0.0,
                         "end_s": 2.0}])
    live = TelemetrySink(spool, TraceContext("run", "t/b"))
    live.publish("unit-start")
    live.publish("heartbeat", commands=120, span="infer")


def test_metrics_endpoint_prometheus_with_progress_gauges(tmp_path):
    _seed_spool(tmp_path)
    status, content_type, body = render_endpoint(tmp_path, "/metrics")
    assert status == 200
    assert content_type.startswith("text/plain")
    parsed = parse_prometheus(body)
    assert parsed["counters"]["host.acts"] == 5000
    gauges = parsed["gauges"]
    assert gauges["telemetry.units_total"] == 2
    assert gauges["telemetry.units_done"] == 1
    assert gauges["telemetry.units_running"] == 1
    assert gauges["telemetry.commands"] == 5120
    assert gauges["telemetry.eta_s"] > 0


def test_progress_endpoint_reports_units_and_stalls(tmp_path):
    _seed_spool(tmp_path)
    status, content_type, body = render_endpoint(tmp_path, "/progress")
    summary = json.loads(body)
    assert (status, content_type) == (200, "application/json")
    assert summary["units_done"] == 1
    assert summary["units_running"]["t/b"]["span"] == "infer"
    assert "stalled" not in summary
    # With a deadline armed, the wedged unit t/b is named: its only
    # command advance happened at publish time, scanned much later.
    _, _, body = render_endpoint(tmp_path, "/progress",
                                 stall_deadline_s=1e-6)
    stalled = json.loads(body)["stalled"]
    assert [s["unit"] for s in stalled] == ["t/b"]
    assert stalled[0]["span"] == "infer"


def test_spans_endpoint_returns_merged_timeline(tmp_path):
    _seed_spool(tmp_path)
    status, _, body = render_endpoint(tmp_path, "/spans")
    timeline = json.loads(body)
    assert status == 200
    assert [(s["unit"], s["name"]) for s in timeline] == \
        [("t/a", "scout")]


def test_events_endpoint_streams_raw_jsonl(tmp_path):
    _seed_spool(tmp_path)
    status, content_type, body = render_endpoint(tmp_path, "/events")
    assert (status, content_type) == (200, "application/jsonl")
    kinds = [json.loads(line)["kind"] for line in body.splitlines()]
    assert kinds.count("unit-start") == 2
    assert "run-start" in kinds and "unit-done" in kinds


def test_root_lists_endpoints_and_unknown_404s(tmp_path):
    status, _, body = render_endpoint(tmp_path, "/")
    assert status == 200
    for endpoint in ENDPOINTS:
        assert endpoint in body
    status, _, body = render_endpoint(tmp_path, "/nope")
    assert status == 404
    assert "/nope" in body


def test_endpoints_serve_an_empty_spool(tmp_path):
    for path in ENDPOINTS:
        status, _, _ = render_endpoint(tmp_path / "missing", path)
        assert status == 200


def test_http_server_round_trip(tmp_path):
    _seed_spool(tmp_path)
    server = serve(tmp_path, port=0)  # port 0: pick a free one
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        _, port = server.server_address[:2]
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/progress", timeout=10) as rsp:
            assert rsp.status == 200
            summary = json.loads(rsp.read().decode("utf-8"))
        assert summary["units_done"] == 1
        with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/metrics", timeout=10) as rsp:
            text = rsp.read().decode("utf-8")
        assert 'repro_counter{name="host.acts"} 5000' in text
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)


def test_main_once_renders_every_endpoint(tmp_path, capsys):
    _seed_spool(tmp_path)
    assert main([str(tmp_path), "--once", "--stall-deadline", "60"]) == 0
    out = capsys.readouterr().out
    for endpoint in ENDPOINTS:
        assert f"== {endpoint}" in out
    assert 'repro_counter{name="host.acts"} 5000' in out


def test_evidence_endpoint_folds_unit_summaries(tmp_path):
    from repro.obs.evidence import EvidenceLedger, ev_refs

    coordinator = TelemetrySink(tmp_path, TraceContext("run"))
    coordinator.publish("run-start", units_total=2, workers=1)
    for unit, parameter in (("t/a", "period"), ("t/b", "capacity")):
        ledger = EvidenceLedger()
        ledger.decide(parameter, 16, evidence=[ev_refs([2, 4])])
        sink = TelemetrySink(tmp_path, TraceContext("run", unit))
        sink.publish("unit-start")
        sink.publish("unit-done", wall_s=1.0,
                     evidence=ledger.summary())
    status, content_type, body = render_endpoint(tmp_path, "/evidence")
    assert status == 200 and content_type == "application/json"
    folded = json.loads(body)
    assert folded["units"] == 2
    assert folded["decisions"] == 2
    assert folded["accepted"] == 2
    assert folded["empty_chains"] == 0
    assert set(folded["parameters"]) == {"period", "capacity"}
    assert "/evidence" in ENDPOINTS


def test_evidence_endpoint_empty_spool(tmp_path):
    status, _, body = render_endpoint(tmp_path, "/evidence")
    assert status == 200
    folded = json.loads(body)
    assert folded["units"] == 0 and folded["decisions"] == 0
