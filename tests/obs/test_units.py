"""Unit tests for the observability building blocks."""

from __future__ import annotations

import io

from repro.obs import (Histogram, MetricsRegistry, NullMetrics, NullSpans,
                       SpanTracker, StructuredLog, bucket_bound,
                       build_manifest, git_describe)


# -- histogram bucketing -----------------------------------------------------

def test_bucket_bound_powers_of_two():
    assert [bucket_bound(v) for v in (0, 1, 2, 3, 9, 1024)] == \
        [0, 1, 2, 4, 16, 1024]
    assert bucket_bound(-5) == 0


def test_histogram_observe_and_export():
    histogram = Histogram()
    for value in (1, 2, 3, 9):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.min == 1 and histogram.max == 9
    assert histogram.mean == 3.75
    exported = histogram.as_dict()
    assert exported["buckets"] == {"1": 1, "2": 1, "4": 1, "16": 1}
    assert exported["mean"] == 3.75


def test_empty_histogram_mean_is_zero():
    assert Histogram().mean == 0.0


# -- registry ----------------------------------------------------------------

def test_registry_counters_gauges_histograms():
    metrics = MetricsRegistry()
    metrics.inc("scout.rows")
    metrics.inc("scout.rows", 4)
    metrics.set_gauge("host.temp_c", 45.0)
    metrics.observe("acts_per_ref", 12)
    metrics.observe("acts_per_ref", 20)

    assert metrics.counter("scout.rows") == 5
    assert metrics.counter("missing") == 0
    assert metrics.gauge("host.temp_c") == 45.0
    assert metrics.gauge("missing") is None
    assert metrics.histogram("acts_per_ref").count == 2
    assert metrics.counters_with_prefix("scout.") == {"scout.rows": 5}

    exported = metrics.as_dict()
    assert exported["counters"] == {"scout.rows": 5}
    assert exported["gauges"] == {"host.temp_c": 45.0}
    assert exported["histograms"]["acts_per_ref"]["count"] == 2
    assert "scout.rows = 5" in metrics.render()


def test_histogram_merge_exact():
    left, right = Histogram(), Histogram()
    for value in (1, 2, 9):
        left.observe(value)
    for value in (3, 16):
        right.observe(value)
    left.merge(right)
    assert left.count == 5
    assert left.min == 1 and left.max == 16
    assert left.mean == 6.2
    assert left.buckets == {1: 1, 2: 1, 4: 1, 16: 2}
    # Merging the as_dict form (string bucket keys) is equivalent.
    other = Histogram()
    for value in (1, 2, 9):
        other.observe(value)
    dumped = Histogram()
    for value in (3, 16):
        dumped.observe(value)
    other.merge(dumped.as_dict())
    assert other.as_dict() == left.as_dict()
    # Merging an empty histogram is a no-op.
    before = left.as_dict()
    left.merge(Histogram())
    assert left.as_dict() == before


def test_registry_merge_folds_all_families():
    parent, child = MetricsRegistry(), MetricsRegistry()
    parent.inc("host.acts", 10)
    parent.set_gauge("scale", 1.0)
    child.inc("host.acts", 5)
    child.inc("host.refs", 2)
    child.set_gauge("scale", 2.0)
    child.observe("acts_per_ref", 8)
    parent.merge(child)
    assert parent.counter("host.acts") == 15
    assert parent.counter("host.refs") == 2
    assert parent.gauge("scale") == 2.0  # last writer wins
    assert parent.histogram("acts_per_ref").count == 1
    # Merging the dict dump gives the same totals.
    dumped = MetricsRegistry()
    dumped.inc("host.acts", 10)
    dumped.set_gauge("scale", 1.0)
    dumped.merge(child.as_dict())
    assert dumped.as_dict() == parent.as_dict()
    # Disabled registries fold as nothing.
    parent.merge(NullMetrics())
    assert parent.counter("host.acts") == 15


def test_null_metrics_is_inert():
    metrics = NullMetrics()
    metrics.inc("x")
    metrics.observe("y", 3)
    metrics.set_gauge("z", 1.0)
    assert metrics.enabled is False
    assert metrics.counter("x") == 0
    assert metrics.histogram("y") is None
    assert metrics.counters_with_prefix("") == {}
    assert metrics.render() == "  (metrics disabled)"


# -- spans -------------------------------------------------------------------

def test_span_nesting_with_injected_clock():
    ticks = iter(range(100))
    tracker = SpanTracker(clock=lambda: next(ticks))
    with tracker.span("outer", bank=0):
        with tracker.span("inner"):
            pass
    timeline = tracker.as_timeline()
    assert [entry["name"] for entry in timeline] == ["outer", "inner"]
    outer, inner = timeline
    assert outer["depth"] == 0 and outer["parent"] is None
    assert inner["depth"] == 1 and inner["parent"] == 0
    assert outer["attrs"] == {"bank": 0}
    # Origin is tick 0; outer spans ticks 1-4, inner spans ticks 2-3.
    assert outer["duration_s"] == 3
    assert inner["duration_s"] == 1
    render = tracker.render()
    assert "outer" in render and "    inner" in render


def test_span_closed_even_on_exception():
    tracker = SpanTracker(clock=lambda: 0.0)
    try:
        with tracker.span("boom"):
            raise ValueError()
    except ValueError:
        pass
    assert tracker.as_timeline()[0]["duration_s"] == 0.0


def test_null_spans():
    spans = NullSpans()
    with spans.span("anything", k=1):
        pass
    assert spans.enabled is False
    assert spans.as_timeline() == []


# -- structured logging ------------------------------------------------------

def test_structured_log_formatting():
    stream = io.StringIO()
    log = StructuredLog(stream=stream)
    log.info("run-start", scale="quick", seconds=1.25, note="two words")
    log.warning("retry", count=3)
    lines = stream.getvalue().splitlines()
    assert lines[0] == ('event=run-start level=info scale=quick '
                       'seconds=1.25 note="two words"')
    assert lines[1] == "event=retry level=warning count=3"


def test_structured_log_elapsed_stamp_is_monotonic():
    stream = io.StringIO()
    ticks = iter([10.0, 10.025, 11.5])  # construction, then two emits
    log = StructuredLog(stream=stream, elapsed=True,
                        clock=lambda: next(ticks))
    log.info("run-start", scale="quick")
    log.info("run-done", seconds=1.475)
    lines = stream.getvalue().splitlines()
    assert lines[0] == ("event=run-start level=info elapsed_ms=25 "
                        "scale=quick")
    assert lines[1] == ("event=run-done level=info elapsed_ms=1500 "
                        "seconds=1.475")


def test_structured_log_elapsed_off_by_default():
    stream = io.StringIO()
    StructuredLog(stream=stream).info("run-start")
    assert "elapsed_ms" not in stream.getvalue()


def test_structured_log_quiet_is_silent():
    stream = io.StringIO()
    log = StructuredLog(stream=stream, enabled=False)
    log.info("x")
    log.error("y", detail="z")
    assert stream.getvalue() == ""


# -- manifest ----------------------------------------------------------------

def test_manifest_deterministic_without_time():
    first = build_manifest(seed=3, module="B0", fault_profile="default",
                           scale="smoke", include_time=False, extra_key=7)
    second = build_manifest(seed=3, module="B0", fault_profile="default",
                            scale="smoke", include_time=False, extra_key=7)
    assert first == second
    assert "created_utc" not in first
    assert first["seed"] == 3 and first["module"] == "B0"
    assert first["fault_profile"] == "default"
    assert first["scale"] == "smoke"
    assert first["extra_key"] == 7
    assert isinstance(first["git"], str) and first["git"]


def test_manifest_with_time():
    manifest = build_manifest()
    assert "created_utc" in manifest
    assert "seed" not in manifest


def test_git_describe_returns_string_anywhere(tmp_path):
    assert isinstance(git_describe(), str)
    assert git_describe(cwd=tmp_path) == "unknown"
