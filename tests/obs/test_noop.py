"""The disabled observability path is a strict no-op.

A host built without observability, a host built with the ``NULL_OBS``
bundle and a host with the default (metrics-only) bundle must all
produce bit-identical profiling results and identical command ledgers.
"""

from __future__ import annotations

from repro.core import ProfilingConfig, RowGroupLayout, RowScout
from repro.obs import NULL_OBS, Observability
from .conftest import scout_host


def scout_snapshot(host):
    """Run a fixed Row Scout pass and capture everything observable."""
    groups = RowScout(host).find_groups(ProfilingConfig(
        bank=0, layout=RowGroupLayout.parse("R-R"), group_count=2,
        validation_rounds=4))
    rows = tuple((group.bank, group.logical_rows, group.retention_ps)
                 for group in groups)
    return rows, host.now_ps, host.ref_count, host.ledger()


def test_null_obs_is_strict_noop():
    bare = scout_snapshot(scout_host())
    nulled = scout_snapshot(scout_host(obs=NULL_OBS))
    assert nulled == bare


def test_default_bundle_does_not_perturb_simulation():
    bare = scout_snapshot(scout_host())
    observed = scout_snapshot(scout_host(obs=Observability()))
    assert observed == bare


def test_null_bundle_shape():
    assert NULL_OBS.enabled is False
    assert NULL_OBS.recorder.enabled is False
    assert NULL_OBS.metrics.enabled is False
    assert NULL_OBS.spans.enabled is False
    # event() and span() must be callable and inert on the null bundle.
    NULL_OBS.event("noop", ps=0)
    with NULL_OBS.span("noop"):
        pass
    assert NULL_OBS.spans.as_timeline() == []
    assert NULL_OBS.metrics.as_dict() == {
        "counters": {}, "gauges": {}, "histograms": {}}
