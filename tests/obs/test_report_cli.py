"""The trace-report CLI: rendering, JSON mode, and exit codes."""

from __future__ import annotations

import json

from repro.obs import traced
from repro.obs.report import main, render_report, summarize
from repro.obs.recorder import read_trace
from .conftest import drive, small_host


def _make_trace(path, finalize=True):
    obs = traced(path, manifest={"module": "B0", "seed": 1})
    host = small_host(obs=obs)
    drive(host)
    obs.event("trr-hit", ps=host.now_ps, bank=0, row=30, physical=30)
    obs.finalize(host if finalize else None)
    return host


def test_report_sections_and_ok(tmp_path):
    path = tmp_path / "trace.jsonl"
    _make_trace(path)
    report = summarize(read_trace(path))
    assert report.ledger_ok
    text = render_report(report)
    assert "Record totals" in text
    assert "REF-interval timeline" in text
    assert "Per-bank ACT totals" in text
    assert "trr-hit bank=0" in text
    assert "OK — trace replays to the host ledger exactly" in text
    assert "module" in text and "B0" in text


def test_cli_exit_zero_and_json(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    _make_trace(path)
    assert main([str(path)]) == 0
    assert "Trace report" in capsys.readouterr().out

    assert main([str(path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["ledger_ok"] is True
    assert payload["replay"]["ref_count"] == 5
    assert payload["per_bank_acts"].keys() == {"0", "1"}


def test_cli_truncated_trace_distinct_exit_code(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    _make_trace(path, finalize=False)
    # A cut-off trace is its own failure mode: exit 3, not the ledger
    # mismatch's exit 1, with an explicit diagnostic on stderr.
    assert main([str(path)]) == 3
    captured = capsys.readouterr()
    assert "FAIL: trace truncated: no summary record" in captured.out
    assert "trace truncated: no summary record" in captured.err
    report = summarize(read_trace(path))
    assert report.ledger_status == "truncated"
    assert not report.ledger_ok


def test_cli_ledger_mismatch_exit_one(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    host = _make_trace(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    summary = json.loads(lines[-1])
    summary["ref_count"] += 1
    lines[-1] = json.dumps(summary)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    assert main([str(path)]) == 1
    report = summarize(read_trace(path))
    assert report.ledger_status == "mismatch"
    assert host.ref_count == summary["ref_count"] - 1
