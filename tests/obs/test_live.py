"""Live telemetry spool: transport, progress, timeline, watchdog.

These tests exercise the coordinator-facing half of the live layer
without a process pool: sinks write JSONL events into a spool directory
and the pure readers (:func:`progress`, :func:`assemble_timeline`,
:class:`Watchdog`, :func:`pool_breakdown`) summarize them.  The
engine-integration half lives in ``tests/parallel/test_telemetry.py``.
"""

from __future__ import annotations

import json

from repro.obs import (MetricsRegistry, SpanTracker, TelemetryConfig,
                       aggregate_metrics, assemble_timeline, read_spool)
from repro.obs.live import (NullTelemetrySink, TelemetrySink,
                            TraceContext, Watchdog, pool_breakdown,
                            progress, render_progress, spool_filename)


def test_spool_filename_is_safe_and_collision_tagged():
    assert spool_filename(None) == "_coordinator.jsonl"
    name = spool_filename("fig8/B8:x2")
    assert "/" not in name and ":" not in name
    assert name.startswith("fig8__B8__x2-")
    # Same sanitized stem, different unit → different crc tag.
    assert spool_filename("fig8/B8.x2") != name


def test_sink_stamps_context_and_sequences(tmp_path):
    sink = TelemetrySink(tmp_path, TraceContext("run7", "fig8/B8"))
    first = sink.publish("unit-start", pid=1234)
    second = sink.publish("heartbeat", commands=10)
    assert (first["run"], first["unit"]) == ("run7", "fig8/B8")
    assert first["pid"] == 1234
    assert (first["seq"], second["seq"]) == (0, 1)
    events = read_spool(tmp_path)
    assert [e["kind"] for e in events] == ["unit-start", "heartbeat"]


def test_heartbeat_rate_limit_and_snapshot_fields(tmp_path):
    metrics = MetricsRegistry()
    metrics.inc("host.acts", 640)
    metrics.inc("host.refs", 8)
    spans = SpanTracker()
    sink = TelemetrySink(tmp_path, TraceContext("run", "u"),
                         min_interval_s=60.0)
    with spans.span("scout"):
        assert sink.heartbeat(metrics, spans) is True
        # Inside the rate-limit window the event is suppressed.
        assert sink.heartbeat(metrics, spans) is False
    events = read_spool(tmp_path)
    assert len(events) == 1
    beat = events[0]
    assert beat["commands"] == 648
    assert beat["counters"]["host.acts"] == 640
    assert beat["span"] == "scout"


def test_null_sink_is_inert():
    sink = NullTelemetrySink()
    assert sink.enabled is False
    assert sink.publish("unit-start") == {}
    assert sink.heartbeat() is False


def test_telemetry_config_builds_sinks(tmp_path):
    config = TelemetryConfig(spool=str(tmp_path), run_id="eval.fig8",
                             interval_s=2.0)
    sink = config.sink("fig8/B8")
    assert sink.context == TraceContext("eval.fig8", "fig8/B8")
    assert sink.min_interval_s == 1.0
    coordinator = config.sink()
    assert coordinator.path.name == "_coordinator.jsonl"


def test_read_spool_skips_corrupt_tail_and_foreign_files(tmp_path):
    sink = TelemetrySink(tmp_path, TraceContext("run", "a"))
    sink.publish("unit-start")
    sink.publish("unit-done", wall_s=1.0)
    # A worker died mid-write: truncated JSON on the tail.
    with open(sink.path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "heartbe')
    (tmp_path / "notes.txt").write_text("not telemetry")
    (tmp_path / "list.jsonl").write_text('["not", "a", "dict"]\n')
    events = read_spool(tmp_path)
    assert [e["kind"] for e in events] == ["unit-start", "unit-done"]
    assert read_spool(tmp_path / "missing") == []


def _spool_events(tmp_path):
    """A small synthetic run: one done unit, one mid-flight."""
    coordinator = TelemetrySink(tmp_path, TraceContext("run"))
    coordinator.publish("run-start", units_total=3, workers=2)
    done = TelemetrySink(tmp_path, TraceContext("run", "t/a"))
    done.publish("unit-start")
    done.publish("unit-done", wall_s=4.0, commands=100)
    live = TelemetrySink(tmp_path, TraceContext("run", "t/b"))
    event = live.publish("unit-start")
    live.publish("heartbeat", commands=40, span="scout")
    return read_spool(tmp_path), event["ts"]


def test_progress_counts_eta_and_running_spans(tmp_path):
    events, started_ts = _spool_events(tmp_path)
    summary = progress(events, now=started_ts + 2.0)
    assert summary["run"] == "run"
    assert summary["units_total"] == 3
    assert summary["units_done"] == 1
    assert summary["unit_walls"] == {"t/a": 4.0}
    assert summary["commands"] == 140
    running = summary["units_running"]["t/b"]
    assert running["span"] == "scout"
    assert running["commands"] == 40
    assert running["age_s"] >= 0
    # 2 remaining at mean wall 4.0s over 2 workers → 4s.
    assert summary["eta_s"] == 4.0
    text = render_progress(summary)
    assert "1/3 units done" in text
    assert "running t/b" in text and "span=scout" in text


def test_progress_flags_failed_units(tmp_path):
    sink = TelemetrySink(tmp_path, TraceContext("run", "t/bad"))
    sink.publish("unit-start")
    sink.publish("unit-done", wall_s=0.5, error="BrokenChip: bank 3")
    summary = progress(read_spool(tmp_path))
    assert summary["units_failed"] == ["t/bad"]
    assert "FAILED t/bad" in render_progress(summary)


def test_aggregate_metrics_folds_done_and_inflight(tmp_path):
    finished = MetricsRegistry()
    finished.inc("host.acts", 1000)
    done = TelemetrySink(tmp_path, TraceContext("run", "t/a"))
    done.publish("unit-done", metrics=finished.as_dict())
    live = TelemetrySink(tmp_path, TraceContext("run", "t/b"))
    live.publish("heartbeat", counters={"host.acts": 250})
    live.publish("heartbeat", counters={"host.acts": 300})
    folded = aggregate_metrics(read_spool(tmp_path))
    # Done units contribute final metrics; running ones their newest
    # heartbeat counters — never both, never a stale snapshot.
    assert folded.counter("host.acts") == 1300


def test_assemble_timeline_rebases_onto_shared_origin(tmp_path):
    early = TelemetrySink(tmp_path, TraceContext("run", "t/a"))
    early.publish("unit-done", origin_ts=100.0, spans=[
        {"name": "scout", "start_s": 0.0, "end_s": 2.0}])
    late = TelemetrySink(tmp_path, TraceContext("run", "t/b"))
    late.publish("unit-done", origin_ts=101.5, spans=[
        {"name": "scout", "start_s": 0.0, "end_s": 1.0},
        {"name": "infer", "start_s": 1.0, "end_s": None}])
    timeline = assemble_timeline(read_spool(tmp_path))
    assert [(s["unit"], s["name"], s["start_s"]) for s in timeline] == [
        ("t/a", "scout", 0.0), ("t/b", "scout", 1.5),
        ("t/b", "infer", 2.5)]
    assert timeline[1]["end_s"] == 2.5
    assert timeline[2]["end_s"] is None
    assert assemble_timeline([]) == []


class TestWatchdog:
    def _unit(self, unit, events):
        sink = TelemetrySink(events, TraceContext("run", unit))
        return sink

    def test_flags_unit_whose_commands_stopped(self, tmp_path):
        sink = self._unit("t/stuck", tmp_path)
        started = sink.publish("unit-start")["ts"]
        sink.publish("heartbeat", commands=50, span="neighbor-scan")
        sink.publish("heartbeat", commands=50)
        sink.publish("heartbeat", commands=50)
        events = read_spool(tmp_path)
        # The last command *advance* was at unit-start time; scanning
        # far past the deadline must flag the unit even though later
        # heartbeats kept arriving (alive-but-wedged).
        now = started + 100.0
        stalls = Watchdog(deadline_s=30.0).scan(events, now=now)
        assert [s.unit_id for s in stalls] == ["t/stuck"]
        stall = stalls[0]
        assert stall.span == "neighbor-scan"
        assert stall.age_s > 30.0
        assert "t/stuck" in stall.describe()
        assert "neighbor-scan" in stall.describe()

    def test_advancing_commands_reset_the_clock(self, tmp_path):
        sink = self._unit("t/busy", tmp_path)
        sink.publish("unit-start")
        sink.publish("heartbeat", commands=10)
        events = read_spool(tmp_path)
        # Fresh progress: the newest advancing event is recent.
        recent = events[-1]["ts"] + 1.0
        assert Watchdog(deadline_s=30.0).scan(events, now=recent) == []

    def test_done_units_are_never_stalled(self, tmp_path):
        sink = self._unit("t/done", tmp_path)
        started = sink.publish("unit-start")["ts"]
        sink.publish("unit-done", wall_s=1.0, commands=100)
        events = read_spool(tmp_path)
        watchdog = Watchdog(deadline_s=1.0)
        assert watchdog.scan(events, now=started + 1000.0) == []


def test_pool_breakdown_attributes_overhead(tmp_path):
    for unit, wall in (("t/a", 4.0), ("t/b", 1.0), ("t/c", 2.0),
                       ("t/d", 0.5)):
        sink = TelemetrySink(tmp_path, TraceContext("run", unit))
        sink.publish("unit-done", wall_s=wall)
    breakdown = pool_breakdown(read_spool(tmp_path), pool_wall_s=5.0)
    assert breakdown["sum_unit_s"] == 7.5
    assert breakdown["max_unit_s"] == 4.0
    assert breakdown["overhead_s"] == 1.0
    assert [s["unit"] for s in breakdown["stragglers"]] == \
        ["t/a", "t/c", "t/b"]
    assert pool_breakdown([]) == {"unit_walls": {}, "stragglers": []}


def test_events_are_one_json_object_per_line(tmp_path):
    sink = TelemetrySink(tmp_path, TraceContext("run", "t/a"))
    sink.publish("unit-start")
    sink.publish("heartbeat", commands=1)
    lines = sink.path.read_text().splitlines()
    assert len(lines) == 2
    for line in lines:
        assert isinstance(json.loads(line), dict)
