"""Engine-level telemetry: spool events, profiling fold, watchdog.

Complements ``tests/obs/test_live.py`` (which covers the spool readers
in isolation): here real ``run_units`` invocations — inline and pooled
— publish into tmp spools, and the assertions check the engine's side
of the contract: every unit reports start/done, folds are worker-count
independent, wall-clocks ride the result envelopes, and a wedged unit
is flagged without killing the run.
"""

from __future__ import annotations

import time

from repro.obs import (CommandProfiler, MetricsRegistry,
                       TelemetryConfig, aggregate_metrics,
                       assemble_timeline, read_spool)
from repro.parallel import WorkUnit, run_units, unit_observability


def metered_unit(n: int) -> int:
    obs = unit_observability()
    obs.metrics.inc("host.acts", 100 * n)
    obs.metrics.inc("unit.calls")
    return n * n


def staged_unit(n: int) -> int:
    obs = unit_observability()
    with obs.span("hammer", n=n):
        obs.metrics.inc("host.acts", n)
    return n


def profiled_unit(n: int) -> int:
    obs = unit_observability()
    for _ in range(n):
        obs.profiler.add("ACT", 0.001)
    obs.profiler.add("REF", 0.002)
    return n


def sleeping_unit(seconds: float) -> str:
    time.sleep(seconds)
    return "slept"


def _units(fn, values):
    return [WorkUnit(unit_id=f"t/{fn.__name__}-{n}", fn=fn, args=(n,))
            for n in values]


def _config(tmp_path, **overrides) -> TelemetryConfig:
    defaults = dict(spool=str(tmp_path), run_id="test-run",
                    interval_s=0.1)
    defaults.update(overrides)
    return TelemetryConfig(**defaults)


def test_every_unit_reports_start_and_done_inline_and_pooled(tmp_path):
    for workers in (1, 2):
        spool = tmp_path / f"w{workers}"
        run = run_units(_units(metered_unit, [2, 3, 4]), workers,
                        telemetry=_config(spool))
        assert run.values == [4, 9, 16]
        events = read_spool(spool)
        kinds = [e["kind"] for e in events]
        assert kinds.count("run-start") == 1
        assert kinds.count("unit-start") == 3
        assert kinds.count("unit-done") == 3
        assert kinds.count("run-done") == 1
        done = next(e for e in events if e["kind"] == "run-done")
        assert done["units_done"] == 3
        assert all(e["run"] == "test-run" for e in events)
        starts = [e for e in events if e["kind"] == "unit-start"]
        assert all("pid" in e for e in starts)


def test_spool_metrics_match_caller_fold_for_any_worker_count(tmp_path):
    registries = {}
    for workers in (1, 2):
        spool = tmp_path / f"w{workers}"
        registries[workers] = MetricsRegistry()
        run_units(_units(metered_unit, [1, 2, 3]), workers,
                  metrics=registries[workers],
                  telemetry=_config(spool))
        # The spool's unit-done snapshots fold to the caller's registry.
        folded = aggregate_metrics(read_spool(spool))
        assert folded.as_dict() == registries[workers].as_dict()
    # ...and the caller fold itself is worker-count independent.
    assert registries[1].as_dict() == registries[2].as_dict()
    assert registries[1].counter("host.acts") == 600
    assert registries[1].counter("unit.calls") == 3


def test_unit_done_events_assemble_distributed_timeline(tmp_path):
    units = _units(staged_unit, [5, 6])
    run_units(units, 2, telemetry=_config(tmp_path))
    timeline = assemble_timeline(read_spool(tmp_path))
    # Every unit contributes its span, rebased onto a shared origin.
    assert {entry["unit"] for entry in timeline} == \
        {unit.unit_id for unit in units}
    assert all(entry["name"] == "hammer" for entry in timeline)
    assert all(entry["start_s"] >= 0 for entry in timeline)
    done = [e for e in read_spool(tmp_path) if e["kind"] == "unit-done"]
    assert all("origin_ts" in e and e["spans"] for e in done)


def test_outcomes_carry_wall_clock_and_stragglers():
    run = run_units(_units(metered_unit, [1, 2, 3, 4]), 2)
    walls = run.unit_walls()
    assert set(walls) == {o.unit_id for o in run.outcomes}
    assert all(wall >= 0 for wall in walls.values())
    stragglers = run.stragglers(2)
    assert len(stragglers) == 2
    assert stragglers[0].wall_s >= stragglers[1].wall_s
    # Inline runs measure walls too — same envelope contract.
    inline = run_units(_units(metered_unit, [1, 2]), 1)
    assert len(inline.unit_walls()) == 2


def test_profiler_fold_is_worker_count_independent():
    dumps = {}
    for workers in (1, 2):
        profiler = CommandProfiler()
        run_units(_units(profiled_unit, [3, 5]), workers,
                  profiler=profiler)
        dumps[workers] = profiler.as_dict()
    assert dumps[1] == dumps[2]
    assert dumps[1]["counts"] == {"ACT": 8, "REF": 2}
    assert abs(dumps[1]["seconds"]["ACT"] - 0.008) < 1e-9


def test_profiled_unit_done_events_carry_profiles(tmp_path):
    profiler = CommandProfiler()
    run = run_units(_units(profiled_unit, [4]), 2, profiler=profiler,
                    telemetry=_config(tmp_path))
    outcome = run.outcomes[0]
    assert outcome.profile["counts"] == {"ACT": 4, "REF": 1}
    done = [e for e in read_spool(tmp_path)
            if e["kind"] == "unit-done"]
    assert done[0]["profile"]["counts"] == {"ACT": 4, "REF": 1}


def test_watchdog_flags_stalled_unit_without_killing_the_run(tmp_path):
    config = _config(tmp_path, stall_deadline_s=0.3)
    run = run_units([WorkUnit(unit_id="t/wedged", fn=sleeping_unit,
                              args=(1.5,))], 2, telemetry=config)
    # The unit finished (a stall is a flag, not a failure)...
    assert run.values == ["slept"]
    # ...but the watchdog named it while its counters stood still.
    assert [stall.unit_id for stall in run.stalled] == ["t/wedged"]
    assert run.stalled[0].age_s > 0.3
    kinds = [e["kind"] for e in read_spool(tmp_path)]
    assert "unit-stalled" in kinds


def test_no_stalls_reported_without_a_deadline(tmp_path):
    run = run_units(_units(metered_unit, [1, 2]), 2,
                    telemetry=_config(tmp_path))
    assert run.stalled == []
    assert "unit-stalled" not in [e["kind"]
                                  for e in read_spool(tmp_path)]


def test_telemetry_is_resilient_to_unwritable_spool(tmp_path):
    missing = tmp_path / "a" / "b" / "spool"
    run = run_units(_units(metered_unit, [2]), 1,
                    telemetry=_config(missing))
    # Sinks create the spool on demand; results never depend on it.
    assert run.values == [4]
    assert read_spool(missing) != []
