"""Cache-backed execution: resume, dedup, replay, byte-identity.

Worker functions live at module top level (the pool pickles them by
reference) and count their executions through marker files, so tests
can assert "this unit never ran again" — the cache's whole point.
"""

from __future__ import annotations

import os

import pytest

from repro.cache import ResultCache
from repro.errors import CacheError
from repro.obs import MetricsRegistry, TelemetryConfig, read_spool
from repro.obs.live import progress
from repro.parallel import WorkUnit, run_units, unit_observability


def counted_square(value: int, counter_dir: str) -> int:
    """Squares *value*, leaving one execution tally per call."""
    obs = unit_observability()
    obs.metrics.inc("unit.calls")
    obs.metrics.observe("unit.value", value)
    with obs.spans.span("square"):
        path = os.path.join(counter_dir, f"count-{value}")
        with open(path, "a") as handle:
            handle.write("x")
        return value * value


def listing(value: int) -> list[int]:
    return [value, value + 1]


def raises_until_marked(value: int, marker: str) -> int:
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("raised once")
        raise RuntimeError("transient failure")
    return value * value


def crash_if_unmarked(value: int, marker: str) -> int:
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed once")
        os._exit(13)
    return value * value


def always_raises(value: int) -> int:
    raise ValueError(f"bad unit {value}")


def uncachable_passthrough(value: int, sink: object) -> int:
    return value


def _executions(counter_dir, value: int) -> int:
    path = os.path.join(str(counter_dir), f"count-{value}")
    try:
        return os.path.getsize(path)
    except OSError:
        return 0


def _units(values, counter_dir, prefix="unit"):
    return [WorkUnit(unit_id=f"{prefix}/{value}", fn=counted_square,
                     args=(value, str(counter_dir)))
            for value in values]


@pytest.mark.parametrize("workers", [1, 2])
def test_warm_run_serves_every_unit_without_executing(tmp_path, workers):
    units = _units([2, 3, 5], tmp_path)
    cold_cache = ResultCache(tmp_path / "store")
    cold = run_units(units, workers, cache=cold_cache)
    assert cold.values == [4, 9, 25]
    assert cold_cache.summary()["misses"] == 3
    assert cold_cache.stores == 3

    warm_cache = ResultCache(tmp_path / "store")
    warm = run_units(units, workers, cache=warm_cache)
    assert warm.values == cold.values
    assert warm.cache_hits == 3 and warm.retries == 0
    assert all(o.cached and o.attempts == 0 for o in warm.outcomes)
    assert warm_cache.summary() == {"hits": 3, "misses": 0, "dedups": 0,
                                    "stores": 0, "errors": 0,
                                    "hit_ratio": 1.0}
    for value in (2, 3, 5):
        assert _executions(tmp_path, value) == 1  # never ran again


@pytest.mark.parametrize("workers", [1, 2])
def test_folded_metrics_identical_cold_warm_and_uncached(tmp_path,
                                                         workers):
    units = _units([2, 3], tmp_path)
    reference = MetricsRegistry()
    run_units(units, workers, metrics=reference)

    cold_metrics = MetricsRegistry()
    cold = run_units(units, workers, metrics=cold_metrics,
                     cache=ResultCache(tmp_path / "store"))
    warm_metrics = MetricsRegistry()
    warm = run_units(units, workers, metrics=warm_metrics,
                     cache=ResultCache(tmp_path / "store"))
    assert cold_metrics.as_dict() == reference.as_dict()
    assert warm_metrics.as_dict() == reference.as_dict()
    assert [o.manifest for o in warm.outcomes] == \
        [o.manifest for o in cold.outcomes]
    # Hits replay the stored span timeline at the unit's position.
    assert [o.spans for o in warm.outcomes] == \
        [o.spans for o in cold.outcomes]


def test_interrupted_sweep_resumes_from_published_units(tmp_path):
    """Units completed before a mid-sweep failure publish as they
    finish, so the re-run only executes what never completed."""
    marker = str(tmp_path / "raise-once.marker")
    units = (_units([2], tmp_path)
             + [WorkUnit(unit_id="flaky", fn=raises_until_marked,
                         args=(6, marker))]
             + _units([3], tmp_path))
    with pytest.raises(RuntimeError, match="transient"):
        run_units(units, workers=1, max_attempts=1,
                  cache=ResultCache(tmp_path / "store"))
    assert _executions(tmp_path, 2) == 1

    resumed_cache = ResultCache(tmp_path / "store")
    resumed = run_units(units, workers=1, max_attempts=1,
                        cache=resumed_cache)
    assert resumed.values == [4, 36, 9]
    assert _executions(tmp_path, 2) == 1  # resumed, not re-run
    assert resumed_cache.hits == 1
    assert resumed_cache.stores == 2  # flaky + the tail unit


def test_resume_survives_worker_crash(tmp_path):
    """A BrokenProcessPool mid-sweep must not cost completed units."""
    marker = str(tmp_path / "crash-once.marker")
    units = (_units([2, 3], tmp_path)
             + [WorkUnit(unit_id="crasher", fn=crash_if_unmarked,
                         args=(5, marker))])
    first = run_units(units, workers=2, max_attempts=1, quarantine=True,
                      cache=ResultCache(tmp_path / "store"))
    assert [o.unit_id for o in first.quarantined] == ["crasher"]

    resumed = run_units(units, workers=2, max_attempts=1,
                        quarantine=True,
                        cache=ResultCache(tmp_path / "store"))
    assert resumed.values == [4, 9, 25]
    assert not resumed.quarantined
    assert resumed.cache_hits == 2
    for value in (2, 3):
        assert _executions(tmp_path, value) == 1


def test_identical_recipes_execute_once_and_fan_out(tmp_path):
    units = (_units([4], tmp_path, "lead")
             + _units([4], tmp_path, "tail")   # same recipe, new id
             + _units([5], tmp_path, "solo"))
    cache = ResultCache(tmp_path / "store")
    run = run_units(units, workers=1, cache=cache)
    assert run.values == [16, 16, 25]
    assert run.deduped == 1 and cache.dedups == 1
    assert _executions(tmp_path, 4) == 1      # executed once, fanned out
    follower = run.outcomes[1]
    assert follower.coalesced and follower.attempts == 0
    assert follower.manifest["unit"] == "tail/4"
    # The follower's envelope is published under its own key: a later
    # run of just that unit is a pure hit.
    alone = run_units(_units([4], tmp_path, "tail"), workers=1,
                      cache=ResultCache(tmp_path / "store"))
    assert alone.cache_hits == 1
    assert _executions(tmp_path, 4) == 1


def test_fanned_out_values_do_not_alias(tmp_path):
    units = [WorkUnit(unit_id="a", fn=listing, args=(1,)),
             WorkUnit(unit_id="b", fn=listing, args=(1,))]
    run = run_units(units, workers=1,
                    cache=ResultCache(tmp_path / "store"))
    leader, follower = run.outcomes
    leader.value.append(99)
    assert follower.value == [1, 2]  # deep-copied, not shared


def test_followers_mirror_a_quarantined_leader(tmp_path):
    units = [WorkUnit(unit_id="a", fn=always_raises, args=(7,)),
             WorkUnit(unit_id="b", fn=always_raises, args=(7,))]
    cache = ResultCache(tmp_path / "store")
    run = run_units(units, workers=2, max_attempts=1, quarantine=True,
                    cache=cache)
    assert [o.unit_id for o in run.quarantined] == ["a", "b"]
    assert cache.stores == 0  # failures are never published


def test_uncachable_units_always_execute(tmp_path):
    unit = [WorkUnit(unit_id="foreign", fn=uncachable_passthrough,
                     args=(3, object()))]
    cache = ResultCache(tmp_path / "store")
    assert run_units(unit, workers=1, cache=cache).values == [3]
    assert cache.stores == 0 and cache.hits == cache.misses == 0
    again = ResultCache(tmp_path / "store")
    rerun = run_units(unit, workers=1, cache=again)
    assert rerun.values == [3] and rerun.cache_hits == 0


def test_verify_passes_on_faithful_store_and_rejects_tampering(tmp_path):
    units = _units([2, 3], tmp_path)
    store = tmp_path / "store"
    run_units(units, workers=1, cache=ResultCache(store))
    verified = run_units(units, workers=1,
                         cache=ResultCache(store, verify=True))
    assert verified.cache_hits == 2

    # Tamper with every stored envelope's metrics: the sampled
    # re-execution must now diverge and abort the run.
    tampered = ResultCache(store)
    for unit in units:
        key, material = tampered.keyed(unit)
        envelope = tampered.lookup(key)
        tampered.publish_unit(key, material, unit.unit_id,
                              value=envelope.value,
                              metrics={"counters": {"bogus": 1}},
                              wall_s=envelope.wall_s)
    with pytest.raises(CacheError, match="verify failed"):
        run_units(units, workers=1,
                  cache=ResultCache(store, verify=True))


def test_telemetry_counts_cached_units_as_done(tmp_path):
    units = _units([2, 3], tmp_path)
    store = tmp_path / "store"
    run_units(units, workers=1, cache=ResultCache(store))
    telemetry = TelemetryConfig(spool=str(tmp_path / "spool"),
                                run_id="warm", heartbeats=False)
    warm_cache = ResultCache(store)
    run_units(units, workers=1, cache=warm_cache, telemetry=telemetry)
    events = read_spool(telemetry.spool)
    summary = progress(events)
    assert summary["units_done"] == summary["units_total"] == 2
    assert summary["units_cached"] == 2
    done = [e for e in events if e["kind"] == "run-done"]
    assert done[-1]["cache"] == warm_cache.summary()
