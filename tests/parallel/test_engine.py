"""Execution engine: ordering, retries, quarantine, crash recovery.

The worker functions live at module top level because the process pool
pickles them by reference.  Crash tests kill the worker process with
``os._exit`` — the engine must rebuild the broken pool and retry.
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ConfigError
from repro.obs import MetricsRegistry, NullMetrics
from repro.parallel import (WorkUnit, default_workers, parallel_map,
                            run_units, unit_observability, unit_seed)

_FLAKY_SENTINEL = "/tmp/repro-parallel-flaky-{unit}.marker"


def square(value: int) -> int:
    return value * value


def slow_square(value: int) -> int:
    # Tiny stagger so completion order scrambles relative to submission.
    import time
    time.sleep(0.01 * (value % 3))
    return value * value


def always_raises(value: int) -> int:
    raise ValueError(f"bad unit {value}")


def crash_if_marked(value: int, marker: str) -> int:
    """Dies hard on the first call, succeeds on the retry."""
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("crashed once")
        os._exit(13)
    return value * value


def flaky_raises_once(value: int, marker: str) -> int:
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("raised once")
        raise RuntimeError("transient")
    return value * value


def metered_square(value: int) -> int:
    """Records into the ambient per-unit registry, like eval units do."""
    obs = unit_observability()
    obs.metrics.inc("unit.calls")
    obs.metrics.inc("unit.total", value)
    obs.metrics.observe("unit.value", value)
    return value * value


def _units(fn, values, prefix="unit", extra_args=()):
    return [WorkUnit(unit_id=f"{prefix}/{value}", fn=fn,
                     args=(value, *extra_args))
            for value in values]


def test_inline_run_matches_direct_calls():
    run = run_units(_units(square, [3, 1, 2]), workers=1)
    assert run.values == [9, 1, 4]
    assert run.workers == 1
    assert run.retries == 0


def test_pool_results_keep_submission_order():
    values = list(range(8))
    run = run_units(_units(slow_square, values), workers=4)
    assert run.values == [v * v for v in values]


def test_inline_and_pool_agree():
    units = _units(square, [5, 7, 11])
    assert run_units(units, workers=1).values == \
        run_units(units, workers=2).values


def test_manifests_are_worker_count_independent():
    units = _units(square, [1, 2], prefix="manifest")
    sequential = run_units(units, workers=1).manifests()
    parallel = run_units(units, workers=2).manifests()
    assert sequential == parallel
    assert all(m["unit"].startswith("manifest/") for m in sequential)
    assert all("unit_seed" in m for m in sequential)


def test_unit_seed_is_stable_and_distinct():
    assert unit_seed("eval/A5") == unit_seed("eval/A5")
    assert unit_seed("eval/A5") != unit_seed("eval/B0")
    assert WorkUnit(unit_id="eval/A5", fn=square).seed == \
        unit_seed("eval/A5")


def test_duplicate_unit_ids_rejected():
    units = [WorkUnit(unit_id="same", fn=square, args=(1,)),
             WorkUnit(unit_id="same", fn=square, args=(2,))]
    with pytest.raises(ConfigError):
        run_units(units, workers=2)


def test_bad_worker_count_rejected():
    with pytest.raises(ConfigError):
        run_units([], workers=0)
    assert default_workers() >= 1


def test_exception_propagates_without_quarantine():
    units = _units(always_raises, [1])
    with pytest.raises(ValueError, match="bad unit 1"):
        run_units(units, workers=2, max_attempts=1)


def test_quarantine_isolates_failing_unit():
    units = (_units(square, [2]) + _units(always_raises, [9], "bad")
             + _units(square, [3], "tail"))
    run = run_units(units, workers=2, max_attempts=2, quarantine=True)
    assert run.values == [4, 9]
    assert [o.unit_id for o in run.quarantined] == ["bad/9"]
    outcome = run.quarantined[0]
    assert outcome.attempts == 2
    assert "ValueError" in outcome.error
    assert not outcome.ok
    assert run.retries >= 1


def test_transient_exception_recovers_on_retry(tmp_path):
    marker = str(tmp_path / "raise-once.marker")
    units = [WorkUnit(unit_id="flaky", fn=flaky_raises_once,
                      args=(6, marker))]
    run = run_units(units, workers=2, max_attempts=2)
    assert run.values == [36]
    assert run.outcomes[0].attempts == 2
    assert run.retries == 1


def test_worker_crash_rebuilds_pool_and_retries(tmp_path):
    """os._exit in a worker breaks the pool; the unit must still finish."""
    marker = str(tmp_path / "crash-once.marker")
    units = (_units(square, [2], "pre")
             + [WorkUnit(unit_id="crasher", fn=crash_if_marked,
                         args=(5, marker))]
             + _units(square, [3], "post"))
    run = run_units(units, workers=2, max_attempts=2)
    assert run.values == [4, 25, 9]
    crasher = next(o for o in run.outcomes if o.unit_id == "crasher")
    assert crasher.attempts == 2


def test_worker_crash_quarantines_after_max_attempts():
    units = [WorkUnit(unit_id="hopeless", fn=os._exit, args=(17,))]
    run = run_units(units, workers=2, max_attempts=2, quarantine=True)
    assert run.values == []
    assert [o.unit_id for o in run.quarantined] == ["hopeless"]
    assert run.quarantined[0].attempts == 2
    assert "BrokenProcessPool" in run.quarantined[0].error


def test_metrics_fold_is_worker_count_independent():
    values = [2, 3, 5]
    sequential = MetricsRegistry()
    pooled = MetricsRegistry()
    run_a = run_units(_units(metered_square, values, "met"),
                      workers=1, metrics=sequential)
    run_b = run_units(_units(metered_square, values, "met"),
                      workers=2, metrics=pooled)
    assert run_a.values == run_b.values == [4, 9, 25]
    assert sequential.as_dict() == pooled.as_dict()
    assert pooled.counter("unit.calls") == 3
    assert pooled.counter("unit.total") == 10
    assert pooled.histogram("unit.value").count == 3


def test_pool_outcomes_carry_unit_metrics():
    run = run_units(_units(metered_square, [4], "met"), workers=2)
    assert run.outcomes[0].metrics["counters"]["unit.calls"] == 1
    # Inline units write straight into the caller's registry instead.
    inline = run_units(_units(metered_square, [4], "met"), workers=1,
                       metrics=MetricsRegistry())
    assert inline.outcomes[0].metrics is None


def test_units_without_metrics_see_null_obs():
    # No registry passed: unit_observability() is the inert bundle and
    # results are unaffected.
    run = run_units(_units(metered_square, [6], "met"), workers=1)
    assert run.values == [36]
    assert unit_observability().metrics.enabled is False


def test_disabled_registry_is_ignored():
    run = run_units(_units(metered_square, [2], "met"), workers=2,
                    metrics=NullMetrics())
    assert run.values == [4]


def test_parallel_map_wraps_calls():
    run = parallel_map(square, [(2,), (3,)], ["map/a", "map/b"],
                       workers=2, meta=[{"k": "a"}, {"k": "b"}])
    assert run.values == [4, 9]
    assert [m["k"] for m in run.manifests()] == ["a", "b"]


def test_parallel_map_validates_lengths():
    with pytest.raises(ConfigError):
        parallel_map(square, [(1,)], ["a", "b"])
    with pytest.raises(ConfigError):
        parallel_map(square, [(1,)], ["a"], meta=[{}, {}])
