"""Evidence fold through the engine: worker counts, cache replays.

Worker functions live at module top level (the pool pickles them by
reference); each records decision nodes through the ambient per-unit
ledger exactly as the core inference stages do.
"""

from __future__ import annotations

from repro.cache import ResultCache
from repro.obs import MetricsRegistry
from repro.obs.evidence import EvidenceLedger, ev_refs, write_jsonl
from repro.parallel import WorkUnit, run_units, unit_observability


def deciding_square(value: int) -> int:
    """Squares *value*, recording one decision per call."""
    obs = unit_observability()
    obs.evidence.decide(
        f"square_{value}", value * value, stage="test.square",
        confidence=1.0, evidence=[ev_refs([value, value + 1])],
        detail={"input": value})
    # A second node exercises per-unit seq ordering inside one unit.
    if value % 2:
        obs.evidence.decide(f"odd_{value}", True, outcome="degraded",
                            stage="test.parity",
                            evidence=[ev_refs([value])])
    return value * value


def silent_square(value: int) -> int:
    return value * value


def _units(values, fn=deciding_square):
    return [WorkUnit(unit_id=f"ev/{value}", fn=fn, args=(value,))
            for value in values]


def _run_ledger(values, workers, cache=None):
    ledger = EvidenceLedger()
    run = run_units(_units(values), workers=workers, evidence=ledger,
                    cache=cache)
    assert run.values == [v * v for v in values]
    return ledger


def test_inline_fold_tags_units_in_submission_order():
    ledger = _run_ledger([3, 1, 2], workers=1)
    assert [node["unit"] for node in ledger.nodes] == \
        ["ev/3", "ev/3", "ev/1", "ev/1", "ev/2"]
    assert [node["seq"] for node in ledger.nodes] == list(range(5))
    assert ledger.nodes[0]["parameter"] == "square_3"


def test_workers_fold_is_byte_identical_to_sequential(tmp_path):
    values = list(range(6))
    sequential = _run_ledger(values, workers=1)
    pooled = _run_ledger(values, workers=3)
    seq_path = tmp_path / "seq.jsonl"
    pool_path = tmp_path / "pool.jsonl"
    write_jsonl(seq_path, sequential)
    write_jsonl(pool_path, pooled)
    assert seq_path.read_bytes() == pool_path.read_bytes()


def test_units_without_nodes_contribute_nothing():
    ledger = EvidenceLedger()
    run = run_units(_units([1, 2], fn=silent_square), workers=1,
                    evidence=ledger)
    assert run.values == [1, 4]
    assert ledger.nodes == []


def test_disabled_ledger_is_not_threaded():
    ledger = EvidenceLedger()
    ledger.enabled = False
    run = run_units(_units([2]), workers=1, evidence=ledger)
    assert run.values == [4]
    assert ledger.nodes == []


def test_no_ledger_runs_clean():
    run = run_units(_units([2, 3]), workers=2)
    assert run.values == [4, 9]


def test_cache_replay_reproduces_ledger(tmp_path):
    store = tmp_path / "store"
    cold = _run_ledger([4, 5], workers=1,
                       cache=ResultCache(store))
    warm_cache = ResultCache(store)
    warm = _run_ledger([4, 5], workers=1, cache=warm_cache)
    assert warm_cache.summary()["hits"] == 2
    cold_path = tmp_path / "cold.jsonl"
    warm_path = tmp_path / "warm.jsonl"
    write_jsonl(cold_path, cold)
    write_jsonl(warm_path, warm)
    assert cold_path.read_bytes() == warm_path.read_bytes()


def test_cache_replay_pool_matches_sequential(tmp_path):
    store = tmp_path / "store"
    cold = _run_ledger([1, 2, 3], workers=2, cache=ResultCache(store))
    warm = _run_ledger([1, 2, 3], workers=2, cache=ResultCache(store))
    assert [n["parameter"] for n in warm.nodes] == \
        [n["parameter"] for n in cold.nodes]
    assert [n["unit"] for n in warm.nodes] == \
        [n["unit"] for n in cold.nodes]


def test_unit_done_events_carry_evidence_summary(tmp_path):
    from repro.obs import TelemetryConfig, read_spool
    spool = tmp_path / "spool"
    ledger = EvidenceLedger()
    run_units(_units([3]), workers=1, evidence=ledger,
              telemetry=TelemetryConfig(spool=spool, run_id="ev-test"))
    done = [event for event in read_spool(spool)
            if event.get("kind") == "unit-done"]
    assert done and done[0].get("evidence")
    summary = done[0]["evidence"]
    assert summary["decisions"] == 2
    assert "square_3" in summary["parameters"]


def test_evidence_rides_alongside_metrics():
    metrics = MetricsRegistry()
    ledger = EvidenceLedger()
    run_units(_units([2]), workers=1, metrics=metrics, evidence=ledger)
    ledger.emit_metrics(metrics)
    counters = metrics.as_dict()["counters"]
    assert counters["evidence.decisions"] == 1
    assert counters["evidence.accepted"] == 1
