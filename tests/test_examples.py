"""The shipped examples run end to end (smoke level)."""

from __future__ import annotations

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

pytestmark = pytest.mark.slow


def run_example(name: str, *args: str) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=600)
    assert completed.returncode == 0, completed.stderr
    return completed.stdout


def test_quickstart_demonstrates_the_side_channel():
    out = run_example("quickstart.py")
    assert "unrefreshed past retention" in out
    assert "0 bit flip(s)" in out       # the refreshed case
    assert "TRR refreshed the victim" in out


def test_reverse_engineer_recovers_c12():
    out = run_example("reverse_engineer.py", "C12")
    assert "TRR-capable REF every 8 REFs" in out
    assert "(truth: window)" in out
    assert "window" in out


def test_errors_form_one_hierarchy():
    # (not an example, but the catch-all contract examples rely on)
    import repro.errors as errors
    for name in ("ConfigError", "TimingViolationError", "ProtocolError",
                 "ProfilingError", "ExperimentError", "MappingError",
                 "DecodingError", "AttackConfigError"):
        assert issubclass(getattr(errors, name), errors.ReproError)
    assert issubclass(errors.AttackConfigError, errors.ConfigError)


def test_rig_workflow_roundtrip():
    out = run_example("rig_workflow.py")
    assert "regular refresh cycle: 3758 REFs" in out
    assert "replayed TRR-A experiment" in out
