"""Row Scout: bucket discovery, layout placement, VRT rejection."""

from __future__ import annotations

import pytest

from repro.core import ProfilingConfig, RowScout, RowGroupLayout
from repro.dram import AllOnes
from repro.errors import ConfigError, ProfilingError
from .conftest import make_host


def scout_config(**overrides):
    defaults = dict(bank=0, layout=RowGroupLayout.parse("R-R"),
                    group_count=2, validation_rounds=4)
    defaults.update(overrides)
    return ProfilingConfig(**defaults)


def test_groups_match_layout_and_share_bucket():
    host = make_host(rows=4096)
    groups = RowScout(host).find_groups(scout_config())
    assert len(groups) == 2
    retention = {g.retention_ps for g in groups}
    assert len(retention) == 1
    for group in groups:
        assert group.physical_rows == (group.base_physical,
                                       group.base_physical + 2)
        assert group.retention_lo_ps * 2 >= group.retention_ps


def test_groups_respect_spacing():
    host = make_host(rows=4096)
    groups = RowScout(host).find_groups(
        scout_config(group_count=3, group_spacing=8))
    spans = sorted((g.base_physical, g.base_physical + g.layout.span)
                   for g in groups)
    for (_, end_a), (start_b, _) in zip(spans, spans[1:]):
        assert start_b - end_a >= 8


def test_found_rows_truly_fail_in_bucket():
    host = make_host(rows=4096)
    groups = RowScout(host).find_groups(scout_config())
    chip = host._chip
    for group in groups:
        for logical in group.logical_rows:
            truth = chip.true_retention_ps(0, logical, AllOnes())
            assert group.retention_lo_ps < truth <= group.retention_ps


def test_vrt_rows_rejected_with_enough_validation():
    host = make_host(rows=4096, vrt_fraction=0.5, serial=13)
    groups = RowScout(host).find_groups(
        scout_config(validation_rounds=40, group_count=2))
    # Ground truth check: no returned row's bucket-critical weak cell is
    # VRT (its retention would wander out of the bucket).
    chip = host._chip
    for group in groups:
        for logical, physical in group.row_pairs():
            bank = chip.banks[0]
            state = bank.state(physical)
            profile = bank._retention(physical, state)
            exposed = profile.polarity == AllOnes().bits_at(profile.positions)
            critical = (profile.base_retention_ps <= group.retention_ps) \
                & exposed
            assert not (critical & profile.is_vrt).any()


def test_paper_validation_rounds_reject_all_vrt_keep_stable():
    # Paper fidelity (§4.1): at the paper's 1000 validation rounds every
    # VRT-critical row is rejected while stable rows still qualify.
    host = make_host(rows=4096, vrt_fraction=0.5, serial=21)
    scout = RowScout(host)
    groups = scout.find_groups(
        scout_config(validation_rounds=1000, group_count=2))
    assert len(groups) == 2  # stable rows survive the full budget
    assert scout.stats.rows_rejected > 0  # ...and VRT rows were culled
    chip = host._chip
    for group in groups:
        for logical, physical in group.row_pairs():
            bank = chip.banks[0]
            state = bank.state(physical)
            profile = bank._retention(physical, state)
            exposed = profile.polarity == AllOnes().bits_at(profile.positions)
            critical = (profile.base_retention_ps <= group.retention_ps) \
                & exposed
            assert not (critical & profile.is_vrt).any()


def test_row_range_respected():
    host = make_host(rows=4096)
    groups = RowScout(host).find_groups(
        scout_config(row_range=(1000, 3000), group_count=1))
    group = groups[0]
    assert 1000 <= group.base_physical < 3000


def test_profiling_error_when_impossible():
    # A chip with no weak cells can never satisfy the profiler.
    host = make_host(rows=1024, weak_mean=0.0)
    with pytest.raises(ProfilingError):
        RowScout(host).find_groups(scout_config(group_count=1,
                                                max_t_ms=400.0))


def test_joint_multibank_shares_bucket():
    host = make_host(rows=4096)
    scout = RowScout(host)
    results = scout.find_groups_joint([
        scout_config(bank=0, group_count=1),
        scout_config(bank=1, group_count=1),
    ])
    assert len(results) == 2
    assert results[0][0].bank == 0
    assert results[1][0].bank == 1
    assert results[0][0].retention_ps == results[1][0].retention_ps


def test_joint_requires_identical_escalation():
    host = make_host(rows=1024)
    scout = RowScout(host)
    with pytest.raises(ConfigError):
        scout.find_groups_joint([
            scout_config(bank=0, initial_t_ms=100.0),
            scout_config(bank=1, initial_t_ms=200.0),
        ])


def test_config_validation():
    with pytest.raises(ConfigError):
        scout_config(group_count=0)
    with pytest.raises(ConfigError):
        scout_config(growth=2.5)  # breaks footnote 4
    with pytest.raises(ConfigError):
        scout_config(initial_t_ms=0)
    with pytest.raises(ConfigError):
        scout_config(validation_rounds=0)
    host = make_host(rows=1024)
    with pytest.raises(ConfigError):
        RowScout(host).find_groups(scout_config(row_range=(500, 5000)))
