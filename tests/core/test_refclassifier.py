"""Refresh-schedule calibration through the retention side channel."""

from __future__ import annotations


from repro.core import (ProfilingConfig, RefreshCalibrator, RefreshSchedule,
                        RowGroupLayout, RowScout)
from repro.dram import AllOnes
from repro.trr import CounterBasedTrr, SamplingBasedTrr
from .conftest import make_host


def find_group(host, count=1, layout="R-R"):
    return RowScout(host).find_groups(ProfilingConfig(
        bank=0, layout=RowGroupLayout.parse(layout), group_count=count,
        validation_rounds=4))


def test_probe_detects_coverage():
    host = make_host(rows=4096, cycle=512)
    group = find_group(host)[0]
    row = group.logical_rows[0]
    calibrator = RefreshCalibrator(host, AllOnes())
    engine = host._chip.refresh_engine
    slot = engine.slot_of(host._chip.mapping.to_physical(row))
    # Position just before the row's slot: a burst crossing it survives.
    distance = (slot - host.ref_count) % 512
    host.refresh(distance)
    assert calibrator.probe(0, row, group.retention_ps, burst=4)
    # Now the slot just passed: a short burst cannot cover it again.
    assert not calibrator.probe(0, row, group.retention_ps, burst=4)


def test_find_cycle_matches_ground_truth():
    for cycle in (512, 1024):
        host = make_host(rows=4096, cycle=cycle, serial=21)
        group = find_group(host)[0]
        calibrator = RefreshCalibrator(host, AllOnes())
        measured = calibrator.find_cycle(0, group.logical_rows[0],
                                         group.retention_ps)
        assert measured == cycle


def test_find_cycle_under_active_trr():
    # TRR-induced refreshes must not corrupt the measurement.
    host = make_host(CounterBasedTrr(), rows=4096, cycle=512, serial=3)
    group = find_group(host)[0]
    calibrator = RefreshCalibrator(host, AllOnes())
    assert calibrator.find_cycle(0, group.logical_rows[0],
                                 group.retention_ps) == 512


def test_calibrate_rows_windows_contain_true_slot():
    host = make_host(SamplingBasedTrr(seed=5), rows=4096, cycle=512)
    groups = find_group(host, count=2)
    rows = [(0, r) for g in groups for r in g.logical_rows]
    calibrator = RefreshCalibrator(host, AllOnes())
    schedule = calibrator.calibrate_rows(rows, groups[0].retention_ps, 512)
    engine = host._chip.refresh_engine
    mapping = host._chip.mapping
    for bank, row in rows:
        start, width = schedule.phase_windows[(bank, row)]
        slot = engine.slot_of(mapping.to_physical(row))
        assert (slot - start) % 512 < width
        assert schedule.may_cover(bank, row, slot)
        assert schedule.may_cover(bank, row, slot + 512)
        assert not schedule.may_cover(bank, row,
                                      slot + 256)  # half a cycle away


def test_schedule_unknown_rows_are_conservative():
    schedule = RefreshSchedule(cycle_refs=512)
    assert schedule.may_cover(0, 1234, 77)  # unknown -> cannot rule out


def test_schedule_slack_widens_window():
    schedule = RefreshSchedule(cycle_refs=512, slack=2)
    schedule.phase_windows[(0, 5)] = (100, 8)
    assert schedule.may_cover(0, 5, 98)    # within slack
    assert schedule.may_cover(0, 5, 109)   # within slack past the window
    assert not schedule.may_cover(0, 5, 95)
    assert not schedule.may_cover(0, 5, 112)
