"""REF-independence probe: tells ACT-coupled PARA apart from any TRR."""

from __future__ import annotations

from repro.core import TrrInference
from repro.trr import CounterBasedTrr, ParaMitigation, SamplingBasedTrr
from .conftest import fast_inference_config, make_host


def inference(trr):
    return TrrInference(make_host(trr), fast_inference_config())


def test_ref_piggybacked_trr_is_not_ref_independent():
    for trr in (CounterBasedTrr(), SamplingBasedTrr(seed=1)):
        independent, detail = inference(trr).test_ref_independence()
        assert independent is False, detail


def test_para_detected_as_ref_independent():
    independent, detail = inference(
        ParaMitigation(probability=1 / 200, seed=2)).test_ref_independence()
    assert independent is True, detail


def test_full_run_classifies_para_as_act_coupled():
    profile = inference(ParaMitigation(probability=1 / 200, seed=3)).run()
    assert profile.ref_independent is True
    assert profile.detection == "act-coupled"
    assert profile.trr_ref_period is None
    assert "ACT-coupled" in profile.summary()
