"""JSON round-tripping of measurement artifacts."""

from __future__ import annotations

import pytest

from repro.core import (InferredTrrProfile, RefreshSchedule, RowGroup,
                        RowGroupLayout)
from repro.core.mapping_re import CouplingTopology
from repro.core.serialization import (load_measurement, pattern_from_dict,
                                      pattern_to_dict, profile_from_dict,
                                      profile_to_dict, row_group_from_dict,
                                      row_group_to_dict, save_measurement,
                                      schedule_from_dict, schedule_to_dict)
from repro.dram import AllOnes, ByteFill, Checkerboard, CustomPattern
from repro.errors import ConfigError
from repro.units import ms


def sample_group(base=100):
    layout = RowGroupLayout.parse("R-R")
    return RowGroup(bank=0, base_physical=base, layout=layout,
                    logical_rows=(base, base + 2),
                    retention_ps=ms(150), retention_lo_ps=ms(100),
                    pattern=AllOnes())


def sample_schedule():
    schedule = RefreshSchedule(cycle_refs=1024, slack=3)
    schedule.phase_windows[(0, 100)] = (17, 8)
    schedule.phase_windows[(1, 200)] = (900, 8)
    return schedule


def sample_profile():
    return InferredTrrProfile(
        mapping_scheme="bit_swap_0_1",
        coupling=CouplingTopology.PAIRED,
        regular_refresh_cycle=3758,
        trr_ref_period=9, detection="counter",
        neighbor_distances_refreshed=(1, 2), neighbors_refreshed=4,
        persists_without_activity=True, aggressor_capacity=16,
        per_bank=True)


def test_pattern_roundtrip():
    for pattern in (AllOnes(), Checkerboard(1), ByteFill(0xA5)):
        assert pattern_from_dict(pattern_to_dict(pattern)) == pattern
    with pytest.raises(ConfigError):
        pattern_to_dict(CustomPattern([1, 0, 1]))
    with pytest.raises(ConfigError):
        pattern_from_dict({"name": "nope"})


def test_row_group_roundtrip():
    group = sample_group()
    restored = row_group_from_dict(row_group_to_dict(group))
    assert restored == group


def test_schedule_roundtrip_preserves_classification():
    schedule = sample_schedule()
    restored = schedule_from_dict(schedule_to_dict(schedule))
    assert restored.cycle_refs == schedule.cycle_refs
    assert restored.slack == schedule.slack
    for key in schedule.phase_windows:
        bank, row = key
        for index in (17, 20, 27, 500):
            assert (restored.may_cover(bank, row, index)
                    == schedule.may_cover(bank, row, index))


def test_profile_roundtrip():
    profile = sample_profile()
    restored = profile_from_dict(profile_to_dict(profile))
    assert restored == profile
    assert restored.summary() == profile.summary()


def test_measurement_bundle_roundtrip(tmp_path):
    path = tmp_path / "module.json"
    groups = [sample_group(100), sample_group(300)]
    save_measurement(path, groups, sample_schedule(), sample_profile())
    loaded_groups, schedule, profile = load_measurement(path)
    assert loaded_groups == groups
    assert profile == sample_profile()
    assert schedule.phase_windows[(0, 100)] == (17, 8)


def test_bundle_without_profile(tmp_path):
    path = tmp_path / "bare.json"
    save_measurement(path, [sample_group()], sample_schedule())
    _, _, profile = load_measurement(path)
    assert profile is None
