"""§6 observations, recovered end-to-end through the side channel.

Each test stands in for one of the paper's numbered observations: the
chip implants a known TRR mechanism, and the inference procedures must
recover the implanted parameter using only command-level access and
read-back data.
"""

from __future__ import annotations


from repro.core import TrrInference
from repro.trr import CounterBasedTrr, SamplingBasedTrr, WindowBasedTrr
from .conftest import fast_inference_config, make_host


def inference(trr, **host_kwargs):
    host = make_host(trr, **host_kwargs)
    return TrrInference(host, fast_inference_config())


# ---- Vendor A (counter-based) -----------------------------------------------

def test_obs_a1_every_ninth_ref_is_trr_capable():
    inf = inference(CounterBasedTrr(trr_ref_period=9))
    period, detail = inf.find_trr_period()
    assert period == 9


def test_obs_a2_four_closest_neighbors_refreshed():
    inf = inference(CounterBasedTrr(neighbor_radius=2))
    distances, detail = inf.find_refreshed_neighbors(9)
    assert distances == (1, 2)
    assert detail["sides"][1] == {"left", "right"}
    assert detail["sides"][2] == {"left", "right"}


def test_a_trr2_refreshes_two_neighbors():
    inf = inference(CounterBasedTrr(neighbor_radius=1))
    distances, _ = inf.find_refreshed_neighbors(9)
    assert distances == (1,)


def test_obs_a3_counter_detection_prefers_most_hammered():
    inf = inference(CounterBasedTrr())
    detection, detail = inf.classify_detection(9, persists=True)
    assert detection == "counter"
    assert detail["first_heavy_hits"] > 0


def test_obs_a4_sixteen_entry_capacity():
    inf = inference(CounterBasedTrr(table_size=16))
    capacity, detail = inf.estimate_capacity(9, "counter")
    assert capacity == 16
    assert len(detail[16]) == 16
    assert len(detail[17]) < 17


def test_obs_a4_per_bank_tables():
    inf = inference(CounterBasedTrr())
    per_bank, _ = inf.test_per_bank(9)
    assert per_bank is True


def test_obs_a7_table_entries_persist():
    inf = inference(CounterBasedTrr())
    persists, detail = inf.test_state_persistence(9)
    assert persists is True
    assert detail["watch_hits"] > 0


def test_obs_a8_regular_refresh_cycle_shorter_than_nominal():
    inf = inference(CounterBasedTrr(), cycle=1024)
    assert inf.regular_refresh_cycle == 1024


# ---- Vendor B (sampling-based) ----------------------------------------------

def test_obs_b1_period_variants():
    for period in (4, 2):
        inf = inference(SamplingBasedTrr(trr_ref_period=period, seed=period))
        measured, _ = inf.find_trr_period()
        assert measured == period


def test_obs_b2_two_neighbors_refreshed():
    inf = inference(SamplingBasedTrr(seed=3))
    distances, detail = inf.find_refreshed_neighbors(4)
    assert distances == (1,)
    assert detail["sides"][1] == {"left", "right"}


def test_obs_b3_recency_sampling_detected():
    inf = inference(SamplingBasedTrr(seed=4))
    detection, detail = inf.classify_detection(4, persists=True)
    assert detection == "sampling"
    assert detail["first_heavy_hits"] == 0
    assert detail["last_light_hits"] > 0


def test_obs_b4_single_shared_sample_slot():
    inf = inference(SamplingBasedTrr(per_bank=False, seed=5))
    capacity, _ = inf.estimate_capacity(4, "sampling")
    assert capacity == 1
    per_bank, _ = inf.test_per_bank(4)
    assert per_bank is False


def test_obs_b4_b_trr3_is_per_bank():
    inf = inference(SamplingBasedTrr(per_bank=True, trr_ref_period=2,
                                     seed=6))
    per_bank, _ = inf.test_per_bank(2)
    assert per_bank is True


def test_obs_b5_sample_persists_after_trr_refresh():
    inf = inference(SamplingBasedTrr(seed=7))
    persists, detail = inf.test_state_persistence(4)
    assert persists is True


# ---- Vendor C (window-based) ------------------------------------------------

def test_obs_c1_period_and_deferral():
    inf = inference(WindowBasedTrr(trr_ref_period=17, seed=8))
    period, _ = inf.find_trr_period()
    assert period == 17
    persists, _ = inf.test_state_persistence(17)
    assert persists is False  # deferred window clears after one refresh
    detection, _ = inf.classify_detection(17, persists)
    assert detection == "window"


def test_obs_c3_paired_rows_refresh_pair_only():
    inf = inference(WindowBasedTrr(trr_ref_period=8, seed=9), paired=True)
    distances, detail = inf.find_refreshed_neighbors(8)
    assert distances == (1,)
    # Asymmetric: only one side (the pair row) is ever refreshed.
    assert len(detail["sides"][1]) == 1


def test_c_window_capacity_reported_unknown():
    inf = inference(WindowBasedTrr(seed=10))
    capacity, detail = inf.estimate_capacity(17, "window")
    assert capacity is None
