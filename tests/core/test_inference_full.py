"""Full end-to-end reverse-engineering runs against Table 1 module specs.

The integration-level validation of the whole methodology: build a real
module from the registry, run the complete inference pipeline, and check
the recovered profile against the mechanism's implanted ground truth.
"""

from __future__ import annotations

import pytest

from repro.core import CouplingTopology, TrrInference
from repro.softmc import SoftMCHost
from repro.vendors import build_module, get_module
from .conftest import fast_inference_config


def run_inference(module_id: str):
    spec = get_module(module_id)
    chip = build_module(spec, rows_per_bank=8192, row_bits=1024,
                        weak_cells_per_row_mean=2.0, vrt_fraction=0.0)
    inference = TrrInference(SoftMCHost(chip), fast_inference_config())
    return spec, chip, inference.run()


@pytest.mark.slow
def test_full_run_vendor_a_module():
    spec, chip, profile = run_inference("A5")
    truth = chip.trr.ground_truth
    assert profile.detection == "counter"
    assert profile.trr_ref_period == truth.trr_ref_period == 9
    assert profile.neighbors_refreshed == truth.neighbors_refreshed == 4
    assert profile.aggressor_capacity == truth.aggressor_capacity == 16
    assert profile.per_bank is True
    assert profile.regular_refresh_cycle == 3758
    assert profile.mapping_scheme == spec.mapping_scheme == "bit_swap_0_1"
    assert profile.persists_without_activity is True


@pytest.mark.slow
def test_full_run_vendor_b_module():
    spec, chip, profile = run_inference("B0")
    truth = chip.trr.ground_truth
    assert profile.detection == "sampling"
    assert profile.trr_ref_period == truth.trr_ref_period == 4
    assert profile.neighbors_refreshed == truth.neighbors_refreshed == 2
    assert profile.aggressor_capacity == 1
    assert profile.per_bank is False
    assert profile.regular_refresh_cycle == 8192
    assert profile.persists_without_activity is True


@pytest.mark.slow
def test_full_run_vendor_c_paired_module():
    spec, chip, profile = run_inference("C7")
    assert profile.detection == "window"
    assert profile.trr_ref_period == 17
    assert profile.coupling is CouplingTopology.PAIRED
    assert profile.neighbors_refreshed == 1
    assert profile.aggressor_capacity is None
    assert profile.persists_without_activity is False
