"""Fixtures for U-TRR core tests: inference-friendly chips."""

from __future__ import annotations

import pytest

from repro.core import InferenceConfig
from repro.dram import (DeviceConfig, DisturbanceConfig, DramChip,
                        RetentionConfig)
from repro.softmc import SoftMCHost


def make_host(trr=None, *, hc_first=12_000, paired=False, cycle=2_048,
              rows=8_192, banks=4, serial=7, vrt_fraction=0.0,
              weak_mean=2.0, mapping="direct") -> SoftMCHost:
    """A chip dense enough in weak rows for Row Scout to find groups fast."""
    config = DeviceConfig(
        name="core-test", serial=serial, num_banks=banks,
        rows_per_bank=rows, row_bits=1024,
        refresh_cycle_refs=min(cycle, rows),
        mapping_scheme=mapping,
        retention=RetentionConfig(weak_cells_per_row_mean=weak_mean,
                                  vrt_fraction=vrt_fraction),
        disturbance=DisturbanceConfig(hc_first=hc_first,
                                      paired_coupling=paired))
    return SoftMCHost(DramChip(config, trr))


def fast_inference_config(**overrides) -> InferenceConfig:
    """Reduced-effort settings for unit tests (VRT-free chips)."""
    defaults = dict(
        validation_rounds=4,
        # Budget for >= 4-5 hits even at the largest stride (17) with
        # occasional masked hits; the scan stops early once it has them.
        period_scan_experiments=120,
        neighbor_distances=(1, 2),
        neighbor_repeats=2,
        persistence_probes=2,
        kind_repeats=3,
        capacity_candidates=(16, 17),
        capacity_repeats=2,
    )
    defaults.update(overrides)
    return InferenceConfig(**defaults)


@pytest.fixture
def host_factory():
    return make_host
