"""Refresh-calibrator decision branches record provenance nodes."""

from __future__ import annotations

import pytest

from repro.core import ProfilingConfig, RefreshCalibrator, RowGroupLayout, \
    RowScout
from repro.dram import AllOnes
from repro.errors import ExperimentError, TransientFaultError
from repro.obs import Observability
from repro.obs.evidence import EvidenceLedger
from .conftest import make_host


def evidence_obs():
    return Observability(evidence=EvidenceLedger())


def find_group(host, count=1, layout="R-R"):
    return RowScout(host).find_groups(ProfilingConfig(
        bank=0, layout=RowGroupLayout.parse(layout), group_count=count,
        validation_rounds=4))


def nodes_for(obs, parameter):
    return [node for node in obs.evidence.nodes
            if node["parameter"] == parameter]


def test_find_cycle_accepted_node_cites_covering_refs():
    host = make_host(rows=4096, cycle=512)
    group = find_group(host)[0]
    obs = evidence_obs()
    calibrator = RefreshCalibrator(host, AllOnes(), obs=obs)
    cycle = calibrator.find_cycle(0, group.logical_rows[0],
                                  group.retention_ps)
    accepted = nodes_for(obs, "refresh_cycle")
    assert len(accepted) == 1
    node = accepted[0]
    assert node["outcome"] == "accepted"
    assert node["value"] == cycle
    assert node["stage"] == "calibrator.find_cycle"
    refs = [obs_item for obs_item in node["evidence"]
            if obs_item["kind"] == "covering-refs"]
    assert refs and refs[0]["count"] == 2
    # The two covering REFs are exactly one measured cycle apart.
    first, second = refs[0]["refs"]
    assert second - first == cycle
    # The stamp reflects real commands spent reaching the conclusion.
    assert node["commands"]["total"] > 0
    assert node["commands_to_discovery"] > 0


def test_find_cycle_decay_check_rejection_records_node():
    host = make_host(rows=4096, cycle=512)
    group = find_group(host)[0]
    row = group.logical_rows[0]
    obs = evidence_obs()
    calibrator = RefreshCalibrator(host, AllOnes(), obs=obs)
    # An absurdly short retention claim survives the REF-free decay
    # check (the row cannot decay that fast), which must be recorded as
    # a rejection before the TransientFaultError propagates.
    with pytest.raises(TransientFaultError):
        calibrator.find_cycle(0, row, retention_ps=10 ** 9,
                              check_decay=True)
    rejected = nodes_for(obs, "refresh_cycle")
    assert len(rejected) == 1
    assert rejected[0]["outcome"] == "rejected"
    kinds = [item["kind"] for item in rejected[0]["evidence"]]
    assert "decay-check" in kinds


def test_calibrate_rows_accepted_node_carries_phase_windows():
    host = make_host(rows=4096, cycle=512)
    group = find_group(host)[0]
    obs = evidence_obs()
    calibrator = RefreshCalibrator(host, AllOnes(), obs=obs)
    rows = [(0, row) for row in group.logical_rows]
    schedule = calibrator.calibrate_rows(rows, group.retention_ps,
                                         cycle=512)
    nodes = nodes_for(obs, "refresh_phases")
    assert [node["outcome"] for node in nodes] == ["accepted"]
    assert nodes[0]["value"] == len(schedule.phase_windows)
    kinds = {item["kind"] for item in nodes[0]["evidence"]}
    assert {"phase-windows", "cycle-refs"} <= kinds


def test_calibrate_rows_drop_uncovered_records_rejection():
    host = make_host(rows=4096, cycle=512)
    group = find_group(host)[0]
    obs = evidence_obs()
    calibrator = RefreshCalibrator(host, AllOnes(), obs=obs)
    rows = [(0, row) for row in group.logical_rows]
    # With an absurdly short retention claim every row survives the
    # REF-free decay check, so all are weeded out as immortal.
    schedule = calibrator.calibrate_rows(rows, retention_ps=10 ** 9,
                                         cycle=512, drop_uncovered=True)
    assert not schedule.phase_windows
    rejections = [node for node in nodes_for(obs, "refresh_phases")
                  if node["outcome"] == "rejected"]
    assert rejections
    kinds = {item["kind"] for node in rejections
             for item in node["evidence"]}
    assert "immortal-rows" in kinds


def test_recalibrate_row_records_accepted_window():
    host = make_host(rows=4096, cycle=512)
    group = find_group(host)[0]
    row = group.logical_rows[0]
    obs = evidence_obs()
    calibrator = RefreshCalibrator(host, AllOnes(), obs=obs)
    schedule = calibrator.calibrate_rows([(0, row)], group.retention_ps,
                                         cycle=512)
    obs.evidence.nodes.clear()
    entry = calibrator.recalibrate_row(schedule, 0, row,
                                       group.retention_ps)
    nodes = nodes_for(obs, "refresh_phase")
    assert len(nodes) == 1
    assert nodes[0]["outcome"] == "accepted"
    assert nodes[0]["value"] == list(entry)
    window = [item for item in nodes[0]["evidence"]
              if item["kind"] == "covering-ref-window"]
    assert window and window[0]["hi"] - window[0]["lo"] == entry[1]


def test_recalibrate_row_failure_records_rejection():
    host = make_host(rows=4096, cycle=512)
    group = find_group(host)[0]
    row = group.logical_rows[0]
    obs = evidence_obs()
    calibrator = RefreshCalibrator(host, AllOnes(), obs=obs)
    from repro.core import RefreshSchedule
    schedule = RefreshSchedule(cycle_refs=512)
    with pytest.raises(ExperimentError):
        calibrator.recalibrate_row(schedule, 0, row,
                                   retention_ps=10 ** 15)
    nodes = nodes_for(obs, "refresh_phase")
    assert nodes and nodes[-1]["outcome"] == "rejected"
    assert any(item["kind"] == "uncovered"
               for item in nodes[-1]["evidence"])
