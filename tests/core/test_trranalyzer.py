"""TRR Analyzer: the Fig. 7 experiment engine."""

from __future__ import annotations

import pytest

from repro.core import (AggressorHammer, ExperimentConfig, ProfilingConfig,
                        RefreshCalibrator, RowGroupLayout, RowScout,
                        TrrAnalyzer)
from repro.dram import AllOnes
from repro.errors import ConfigError
from repro.trr import CounterBasedTrr
from .conftest import make_host


def build(host, group_count=2, calibrate=True):
    groups = RowScout(host).find_groups(ProfilingConfig(
        bank=0, layout=RowGroupLayout.parse("R-R"),
        group_count=group_count, validation_rounds=4))
    schedule = None
    if calibrate:
        calibrator = RefreshCalibrator(host, AllOnes())
        cycle = calibrator.find_cycle(0, groups[0].logical_rows[0],
                                      groups[0].retention_ps)
        rows = [(0, r) for g in groups for r in g.logical_rows]
        schedule = calibrator.calibrate_rows(rows, groups[0].retention_ps,
                                             cycle)
    return groups, TrrAnalyzer(host, groups, schedule)


def gap_aggressor(groups, analyzer, index=0, count=5000):
    logical = groups[index].gap_logical_rows(analyzer._mapping)[0]
    return AggressorHammer(bank=0, logical_row=logical, count=count)


def test_no_trr_chip_always_flips():
    host = make_host(trr=None, rows=4096, cycle=512)
    groups, analyzer = build(host)
    aggressor = gap_aggressor(groups, analyzer)
    result = analyzer.run(ExperimentConfig(aggressors=(aggressor,),
                                           refs_per_round=1))
    assert all(obs.flipped for obs in result.observations)
    assert result.trr_refreshed_physical(0) == set()


def test_counter_trr_refresh_detected_and_attributed():
    host = make_host(CounterBasedTrr(), rows=4096, cycle=512)
    groups, analyzer = build(host)
    aggressor = gap_aggressor(groups, analyzer)
    # Enough REFs for a TRR-capable one (period 9) regardless of phase.
    result = analyzer.run(ExperimentConfig(aggressors=(aggressor,),
                                           refs_per_round=20))
    hit = result.trr_refreshed_physical(0)
    assert groups[0].physical_rows[0] in hit
    assert groups[0].physical_rows[1] in hit
    # The untouched second group flips (decays normally).
    assert set(groups[1].physical_rows) <= result.flipped_physical(0)


def test_align_refs_makes_experiments_conclusive():
    host = make_host(CounterBasedTrr(), rows=4096, cycle=512)
    groups, analyzer = build(host)
    aggressor = gap_aggressor(groups, analyzer)
    for _ in range(6):
        result = analyzer.run(ExperimentConfig(
            aggressors=(aggressor,), refs_per_round=20, align_refs=True))
        assert not result.any_inconclusive


def test_ref_indices_recorded_consecutively():
    host = make_host(trr=None, rows=4096, cycle=512)
    groups, analyzer = build(host)
    result = analyzer.run(ExperimentConfig(rounds=3, refs_per_round=2,
                                           align_refs=False,
                                           reset_state=False))
    assert len(result.ref_indices) == 6
    diffs = [b - a for a, b in zip(result.ref_indices,
                                   result.ref_indices[1:])]
    assert diffs == [1] * 5


def test_dummy_rows_keep_clearance():
    host = make_host(CounterBasedTrr(), rows=4096, cycle=512)
    groups, analyzer = build(host)
    aggressor = gap_aggressor(groups, analyzer)
    config = ExperimentConfig(aggressors=(aggressor,), dummy_row_count=8,
                              dummy_hammers=32, refs_per_round=2)
    result = analyzer.run(config)
    protected = {r for g in groups for r in g.logical_rows}
    protected.add(aggressor.logical_row)
    for bank, rows in result.dummy_rows.items():
        assert len(rows) == 8
        for dummy in rows:
            assert all(abs(dummy - p) >= TrrAnalyzer.DUMMY_CLEARANCE
                       for p in protected)


def test_reset_state_flushes_counter_table():
    trr = CounterBasedTrr()
    host = make_host(trr, rows=4096, cycle=512)
    groups, analyzer = build(host, calibrate=False)
    # Plant an aggressor in the table.
    host.hammer_single(0, groups[0].gap_logical_rows(analyzer._mapping)[0],
                       5000)
    planted = groups[0].gap_physical_rows[0]
    assert any(e.row == planted for e in trr._tables[0].entries)
    analyzer.reset_trr_state()
    assert not any(e.row == planted for e in trr._tables[0].entries)


def test_verify_hammer_count_harmless():
    host = make_host(trr=None, rows=4096, cycle=512, hc_first=4000)
    groups, analyzer = build(host, calibrate=False)
    safe = ExperimentConfig(aggressors=(gap_aggressor(groups, analyzer,
                                                      count=500),))
    assert analyzer.verify_hammer_count_harmless(safe)
    harmful = ExperimentConfig(
        aggressors=(gap_aggressor(groups, analyzer, count=200_000),))
    assert not analyzer.verify_hammer_count_harmless(harmful)


def test_mixed_retention_buckets_rejected():
    host = make_host(rows=4096, cycle=512)
    groups, _ = build(host, calibrate=False)
    import dataclasses
    other = dataclasses.replace(groups[1],
                                retention_ps=groups[1].retention_ps * 2,
                                retention_lo_ps=groups[1].retention_ps)
    with pytest.raises(ConfigError):
        TrrAnalyzer(host, [groups[0], other])


def test_wide_bucket_rejected():
    host = make_host(rows=4096, cycle=512)
    groups, _ = build(host, calibrate=False)
    import dataclasses
    bad = dataclasses.replace(groups[0],
                              retention_lo_ps=groups[0].retention_ps // 3)
    with pytest.raises(ConfigError):
        TrrAnalyzer(host, [bad])


def test_experiment_config_validation():
    with pytest.raises(ConfigError):
        ExperimentConfig(rounds=0)
    with pytest.raises(ConfigError):
        ExperimentConfig(refs_per_round=-1)
    with pytest.raises(ConfigError):
        ExperimentConfig(dummy_row_count=-1)
    with pytest.raises(ConfigError):
        AggressorHammer(bank=0, logical_row=1, count=-5)


def test_analyzer_requires_groups():
    host = make_host(rows=1024)
    with pytest.raises(ConfigError):
        TrrAnalyzer(host, [])
