"""Extension probes: deeper §6 details the paper left unmeasured."""

from __future__ import annotations

import pytest

from repro.core import TrrInference
from repro.errors import ExperimentError
from repro.trr import CounterBasedTrr, SamplingBasedTrr, WindowBasedTrr
from .conftest import fast_inference_config, make_host


def inference(trr, **host_kwargs):
    return TrrInference(make_host(trr, **host_kwargs),
                        fast_inference_config())


def test_eviction_policy_min_counter_recovered():
    inf = inference(CounterBasedTrr())
    policy, detail = inf.test_eviction_policy()
    assert policy == "min-counter"
    assert detail["heavy_first_protected"] is True
    assert detail["light_first_protected"] is False


def test_obs_a6_counter_reset_recovered():
    inf = inference(CounterBasedTrr())
    reset, detail = inf.test_counter_reset(9)
    assert reset is True
    # The stale entry is only revisited by the table walk: rare hits.
    assert detail["ref_only_hits"] <= detail["probes"] // 3


def test_sample_period_estimate_within_tolerance():
    for true_period, seed in ((500, 2), (1500, 4)):
        inf = inference(SamplingBasedTrr(sample_period=true_period,
                                         trr_ref_period=4, seed=seed))
        measured, detail = inf.measure_sample_period(4)
        assert 0.75 * true_period <= measured <= 1.05 * true_period, (
            true_period, measured)


def test_sample_period_raises_on_non_sampler():
    # A deferred-window mechanism never gives the all-hits signature
    # (its candidate is the burst's early dummy, not the probe row).
    inf = inference(WindowBasedTrr(seed=5))
    with pytest.raises(ExperimentError):
        inf.measure_sample_period(17, max_period=512, trials=4)


def test_detection_horizon_orders_with_window_size():
    horizons = {}
    for window, seed in ((1000, 6), (2000, 7)):
        inf = inference(WindowBasedTrr(window_acts=window,
                                       trr_ref_period=8, seed=seed))
        horizons[window], _ = inf.measure_detection_horizon(8)
    # Horizons are lower bounds on the window and scale with it.
    assert 0 < horizons[1000] <= 1000
    assert horizons[2000] <= 2000
    assert horizons[2000] >= horizons[1000] * 0.5
