"""§5.3 mapping reverse engineering."""

from __future__ import annotations

import pytest

from repro.core import CouplingTopology, discover_row_mapping
from repro.errors import MappingError
from .conftest import make_host


@pytest.mark.parametrize("scheme", ["direct", "bit_swap_0_1", "xor_1_0",
                                    "bit_swap_1_2", "xor_2_0"])
def test_recovers_scramble_scheme(scheme):
    host = make_host(rows=4096, mapping=scheme, serial=31)
    discovery = discover_row_mapping(host, probe_count=10)
    assert discovery.scheme == scheme
    assert discovery.coupling is CouplingTopology.STANDARD


def test_recovers_paired_coupling():
    host = make_host(rows=4096, paired=True, serial=32)
    discovery = discover_row_mapping(host, probe_count=10)
    assert discovery.coupling is CouplingTopology.PAIRED
    assert discovery.scheme == "direct"
    # Evidence: every informative probe flipped exactly one row.
    informative = [e for e in discovery.evidence.values() if e.flipped]
    assert informative
    assert all(len(e.flipped) == 1 for e in informative)


def test_insufficient_hammering_raises():
    host = make_host(rows=4096, hc_first=150_000, serial=33)
    with pytest.raises(MappingError):
        discover_row_mapping(host, hammer_count=10_000, probe_count=6)


def test_strong_module_needs_big_hammer_counts():
    host = make_host(rows=4096, hc_first=190_000, serial=34)
    discovery = discover_row_mapping(host)  # default 2.4M activations
    assert discovery.scheme == "direct"


def test_mapping_consistent_with_ground_truth_adjacency():
    host = make_host(rows=4096, mapping="xor_1_0", serial=35)
    discovery = discover_row_mapping(host, probe_count=8)
    truth = host._chip.mapping
    fitted = discovery.mapping
    for logical in range(0, 4096, 173):
        assert fitted.to_physical(logical) == truth.to_physical(logical)
