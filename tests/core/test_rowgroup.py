"""Row-group layout notation."""

from __future__ import annotations

import pytest

from repro.core.rowgroup import RowGroup, RowGroupLayout
from repro.dram.mapping import BitSwapMapping, DirectMapping
from repro.dram.patterns import AllOnes
from repro.errors import ConfigError
from repro.units import ms


def test_parse_r_gap_r():
    layout = RowGroupLayout.parse("R-R")
    assert layout.profiled_offsets == (0, 2)
    assert layout.gap_offsets == (1,)
    assert layout.span == 3


def test_parse_rrr_gap_rrr():
    layout = RowGroupLayout.parse("RRR-RRR")
    assert layout.profiled_offsets == (0, 1, 2, 4, 5, 6)
    assert layout.gap_offsets == (3,)


def test_parse_single_r():
    layout = RowGroupLayout.parse("R")
    assert layout.profiled_offsets == (0,)
    assert layout.gap_offsets == ()


def test_parse_rejects_garbage():
    for bad in ("", "RXR", "-R", "R-", "--"):
        with pytest.raises(ConfigError):
            RowGroupLayout.parse(bad)


def make_group(base=100, layout="R-R", retention_ms=150.0, lo_ms=100.0):
    parsed = RowGroupLayout.parse(layout)
    return RowGroup(bank=0, base_physical=base, layout=parsed,
                    logical_rows=tuple(base + off
                                       for off in parsed.profiled_offsets),
                    retention_ps=ms(retention_ms),
                    retention_lo_ps=ms(lo_ms), pattern=AllOnes())


def test_placed_group_rows():
    group = make_group(base=100)
    assert group.physical_rows == (100, 102)
    assert group.gap_physical_rows == (101,)


def test_gap_logical_rows_translate_through_mapping():
    group = make_group(base=100)
    mapping = BitSwapMapping(1024, 0, 1)
    assert group.gap_logical_rows(mapping) == (mapping.to_logical(101),)
    assert group.gap_logical_rows(DirectMapping(1024)) == (101,)


def test_group_validation():
    parsed = RowGroupLayout.parse("R-R")
    with pytest.raises(ConfigError):
        RowGroup(bank=0, base_physical=0, layout=parsed,
                 logical_rows=(0,), retention_ps=ms(100),
                 retention_lo_ps=ms(50), pattern=AllOnes())
    with pytest.raises(ConfigError):
        RowGroup(bank=0, base_physical=0, layout=parsed,
                 logical_rows=(0, 2), retention_ps=ms(100),
                 retention_lo_ps=ms(100), pattern=AllOnes())


def test_row_pairs():
    group = make_group(base=10)
    assert group.row_pairs() == [(10, 10), (12, 12)]
