"""GF(2^8) field axioms (property-based)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc import gf256
from repro.errors import DecodingError

element = st.integers(0, 255)
nonzero = st.integers(1, 255)


@given(element, element)
def test_addition_is_xor_and_self_inverse(a, b):
    assert gf256.add(a, b) == (a ^ b)
    assert gf256.add(a, a) == 0


@given(element, element, element)
def test_multiplication_associative_commutative(a, b, c):
    assert gf256.multiply(a, b) == gf256.multiply(b, a)
    assert (gf256.multiply(gf256.multiply(a, b), c)
            == gf256.multiply(a, gf256.multiply(b, c)))


@given(element, element, element)
def test_distributivity(a, b, c):
    left = gf256.multiply(a, b ^ c)
    right = gf256.multiply(a, b) ^ gf256.multiply(a, c)
    assert left == right


@given(nonzero)
def test_multiplicative_inverse(a):
    assert gf256.multiply(a, gf256.inverse(a)) == 1


@given(element, nonzero)
def test_division_inverts_multiplication(a, b):
    assert gf256.divide(gf256.multiply(a, b), b) == a


def test_zero_division_and_inverse_rejected():
    with pytest.raises(DecodingError):
        gf256.divide(5, 0)
    with pytest.raises(DecodingError):
        gf256.inverse(0)


@given(nonzero, st.integers(0, 300))
def test_power_matches_repeated_multiplication(a, exponent):
    expected = 1
    for _ in range(exponent):
        expected = gf256.multiply(expected, a)
    assert gf256.power(a, exponent) == expected


def test_generator_has_full_order():
    seen = set()
    value = 1
    for _ in range(255):
        seen.add(value)
        value = gf256.multiply(value, 2)
    assert len(seen) == 255
    assert value == 1  # order divides 255


@given(st.lists(element, min_size=1, max_size=6),
       st.lists(element, min_size=1, max_size=6), element)
def test_poly_multiply_evaluates_consistently(a, b, x):
    product = gf256.poly_multiply(a, b)
    assert (gf256.poly_evaluate(product, x)
            == gf256.multiply(gf256.poly_evaluate(a, x),
                              gf256.poly_evaluate(b, x)))
