"""Chipkill model and the §7.4 dataword analysis."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ecc import (ChipkillLayout, ChipkillOutcome, assess_ecc,
                       chipkill_rs, dataword_flip_counts,
                       required_rs_parity_symbols)
from repro.ecc.hamming import DecodeStatus
from repro.errors import ConfigError, DecodingError


def test_chipkill_classification_by_symbol_count():
    layout = ChipkillLayout(symbol_bits=4)
    assert layout.classify([]) is ChipkillOutcome.CLEAN
    assert layout.classify([0, 1, 2]) is ChipkillOutcome.CORRECTED
    assert layout.classify([0, 5]) is ChipkillOutcome.DETECTED
    assert layout.classify([0, 5, 9]) is ChipkillOutcome.BEYOND_GUARANTEE


@given(st.sets(st.integers(0, 63), min_size=1, max_size=8))
def test_chipkill_symbols_hit_consistent(flips):
    layout = ChipkillLayout(symbol_bits=8)
    symbols = layout.symbols_hit(flips)
    assert symbols == {f // 8 for f in flips}


def test_chipkill_rs_realizes_ssc():
    rs = chipkill_rs(ChipkillLayout(symbol_bits=8))
    data = list(range(8))
    code = rs.encode(data)
    corrupted = list(code)
    corrupted[3] ^= 0xFF  # one whole symbol (chip) fails
    assert rs.decode(corrupted).data == data
    # Three corrupted symbols exceed the SSC-DSD guarantee.
    for position in (1, 4, 6):
        corrupted[position] ^= 0x0F
    with pytest.raises(DecodingError):
        rs.decode(corrupted)


def test_dataword_flip_counts_buckets_by_64_bits():
    flips = {10: [0, 1, 64, 200, 201, 202]}
    histogram = dataword_flip_counts(flips)
    # word 0: 2 flips; word 1: 1 flip; word 3: 3 flips.
    assert histogram == {2: 1, 1: 1, 3: 1}


def test_dataword_flip_counts_across_rows():
    flips = {1: [0], 2: [0], 3: [5, 6]}
    histogram = dataword_flip_counts(flips)
    assert histogram == {1: 2, 2: 1}


def test_assess_ecc_end_to_end():
    flips = {
        1: [3],                      # 1 flip: SECDED corrects
        2: [3, 40],                  # 2 flips: SECDED detects
        3: [3, 17, 40, 55, 5, 29, 60],  # 7 flips: beyond everything
    }
    assessment = assess_ecc(flips)
    assert assessment.words_total == 3
    assert assessment.max_flips_in_word == 7
    assert assessment.secded[DecodeStatus.CORRECTED] == 1
    assert assessment.secded[DecodeStatus.DETECTED] >= 1
    assert assessment.chipkill[ChipkillOutcome.CORRECTED] == 1
    assert assessment.chipkill[ChipkillOutcome.BEYOND_GUARANTEE] >= 1


def test_required_parity_symbols_matches_paper():
    assert required_rs_parity_symbols(7) == 7


def test_validation():
    with pytest.raises(ConfigError):
        ChipkillLayout(symbol_bits=3)
    with pytest.raises(ConfigError):
        ChipkillLayout(symbol_bits=4, data_bits=63)
    with pytest.raises(ConfigError):
        ChipkillLayout().symbols_hit([99])
    with pytest.raises(ConfigError):
        dataword_flip_counts({}, word_bits=0)
    with pytest.raises(ConfigError):
        required_rs_parity_symbols(-1)


def test_verify_chipkill_with_rs_matches_symbol_model():
    from repro.ecc import verify_chipkill_with_rs
    flips = {
        1: [3],                 # one flip -> one symbol -> RS corrects
        2: [0, 1, 2, 5],        # four flips in symbol 0 -> RS corrects
        3: [0, 9],              # two symbols: beyond t=2? RS(12,8) t=2
        4: [0, 9, 17, 25, 33],  # five symbols -> rejected or silent
    }
    outcome = verify_chipkill_with_rs(flips)
    assert outcome["corrected"] >= 3   # words 1-3 within t=2
    assert outcome["rejected"] + outcome["silent"] >= 1
    assert sum(outcome.values()) == 4


def test_verify_chipkill_never_silently_fixes_single_symbol():
    from repro.ecc import verify_chipkill_with_rs
    flips = {row: [row % 64] for row in range(1, 30)}
    outcome = verify_chipkill_with_rs(flips)
    assert outcome == {"corrected": 29, "rejected": 0, "silent": 0}
