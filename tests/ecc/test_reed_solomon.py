"""Reed-Solomon over GF(256) (property-based)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import ReedSolomon
from repro.errors import ConfigError, DecodingError


@st.composite
def rs_case(draw):
    n = draw(st.integers(8, 40))
    k = draw(st.integers(2, n - 2))
    rs = ReedSolomon(n, k)
    data = draw(st.lists(st.integers(0, 255), min_size=k, max_size=k))
    errors = draw(st.integers(0, rs.t))
    positions = draw(st.lists(st.integers(0, n - 1), min_size=errors,
                              max_size=errors, unique=True))
    values = draw(st.lists(st.integers(1, 255), min_size=errors,
                           max_size=errors))
    return rs, data, list(zip(positions, values))


@settings(max_examples=60, deadline=None)
@given(rs_case())
def test_corrects_up_to_t_errors(case):
    rs, data, errors = case
    codeword = rs.encode(data)
    corrupted = list(codeword)
    for position, value in errors:
        corrupted[position] ^= value
    outcome = rs.decode(corrupted)
    assert outcome.data == data
    assert sorted(outcome.corrected_positions) == sorted(
        p for p, _ in errors)


def test_clean_codeword_decodes_without_corrections():
    rs = ReedSolomon(18, 10)
    code = rs.encode(list(range(10)))
    outcome = rs.decode(code)
    assert outcome.data == list(range(10))
    assert outcome.corrections == 0


def test_beyond_t_errors_raise():
    rs = ReedSolomon(18, 10)  # t = 4
    code = rs.encode([7] * 10)
    corrupted = list(code)
    for position in range(6):
        corrupted[position] ^= 0x55
    with pytest.raises(DecodingError):
        rs.decode(corrupted)


def test_seven_parity_symbols_detect_seven_flips():
    # 7.4's closing argument: RS with 7 parity symbols (t=3) cannot
    # correct 7 symbol errors, but a larger code with 14 can.
    weak = ReedSolomon(15, 8)   # 7 parity, t=3
    strong = ReedSolomon(22, 8)  # 14 parity, t=7
    data = list(range(8))
    for rs, expect_success in ((weak, False), (strong, True)):
        corrupted = list(rs.encode(data))
        for position in range(7):
            corrupted[position] ^= 0xA5
        if expect_success:
            assert rs.decode(corrupted).data == data
        else:
            with pytest.raises(DecodingError):
                rs.decode(corrupted)


def test_parameter_validation():
    with pytest.raises(ConfigError):
        ReedSolomon(10, 10)
    with pytest.raises(ConfigError):
        ReedSolomon(300, 10)
    rs = ReedSolomon(18, 10)
    with pytest.raises(ConfigError):
        rs.encode([1] * 9)
    with pytest.raises(ConfigError):
        rs.decode([0] * 17)
    with pytest.raises(ConfigError):
        rs.encode([256] + [0] * 9)
