"""SECDED (72,64): correction, detection, and its >= 3-flip blind spot."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ecc import hamming
from repro.ecc.hamming import DecodeStatus
from repro.errors import ConfigError

words = st.lists(st.integers(0, 1), min_size=64, max_size=64)


@given(words)
def test_roundtrip_clean(data):
    code = hamming.encode(np.array(data, dtype=np.uint8))
    result = hamming.decode(code)
    assert result.status is DecodeStatus.CLEAN
    assert np.array_equal(result.data, np.array(data, dtype=np.uint8))


@given(words, st.integers(0, 71))
def test_single_flip_always_corrected(data, position):
    code = hamming.encode(np.array(data, dtype=np.uint8))
    code[position] ^= 1
    result = hamming.decode(code)
    assert result.status is DecodeStatus.CORRECTED
    assert np.array_equal(result.data, np.array(data, dtype=np.uint8))
    assert result.corrected_position == position


@given(words, st.sets(st.integers(0, 71), min_size=2, max_size=2))
def test_double_flip_always_detected(data, positions):
    code = hamming.encode(np.array(data, dtype=np.uint8))
    for position in positions:
        code[position] ^= 1
    result = hamming.decode(code)
    assert result.status is DecodeStatus.DETECTED


@settings(max_examples=40)
@given(words, st.sets(st.integers(0, 71), min_size=3, max_size=7))
def test_three_plus_flips_never_silently_fixed(data, positions):
    # With >= 3 flips the decoder either detects, or produces wrong data
    # (never a correct "CORRECTED" back to the original).
    original = np.array(data, dtype=np.uint8)
    code = hamming.encode(original)
    for position in positions:
        code[position] ^= 1
    result = hamming.decode(code)
    if result.status in (DecodeStatus.CLEAN, DecodeStatus.CORRECTED):
        assert not np.array_equal(result.data, original)


def test_classify_flips_matches_paper_story():
    assert hamming.classify_flips([]) is DecodeStatus.CLEAN
    assert hamming.classify_flips([10]) is DecodeStatus.CORRECTED
    assert hamming.classify_flips([10, 33]) is DecodeStatus.DETECTED
    # Across many 3-flip sets, silent corruption must occur (7.4).
    outcomes = {hamming.classify_flips([a, a + 7, a + 19])
                for a in range(40)}
    assert DecodeStatus.SILENT_CORRUPTION in outcomes


def test_input_validation():
    with pytest.raises(ConfigError):
        hamming.encode(np.zeros(63, dtype=np.uint8))
    with pytest.raises(ConfigError):
        hamming.decode(np.zeros(71, dtype=np.uint8))
    with pytest.raises(ConfigError):
        hamming.encode(np.full(64, 2, dtype=np.uint8))
    with pytest.raises(ConfigError):
        hamming.classify_flips([99])
