"""Shared fixtures: small, fast chip configurations for unit tests."""

from __future__ import annotations

import pytest

from repro.dram import (DeviceConfig, DisturbanceConfig, DramChip,
                        RetentionConfig)


@pytest.fixture
def small_config() -> DeviceConfig:
    """A tiny chip that keeps per-test runtimes in the milliseconds."""
    return DeviceConfig(
        name="unit-test",
        serial=1,
        num_banks=4,
        rows_per_bank=2048,
        row_bits=1024,
        refresh_cycle_refs=512,
        retention=RetentionConfig(weak_cells_per_row_mean=0.3,
                                  vrt_fraction=0.0),
        disturbance=DisturbanceConfig(hc_first=10_000),
    )


@pytest.fixture
def chip(small_config: DeviceConfig) -> DramChip:
    """A TRR-less chip (pure physics)."""
    return DramChip(small_config)
