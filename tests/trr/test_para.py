"""PARA: the stateless ACT-coupled mitigation (future-work study)."""

from __future__ import annotations

import pytest

from repro.dram import ActBatch, AllOnes, HammerMode
from repro.dram.commands import single_row_batch
from repro.errors import ConfigError
from repro.trr.base import TrrContext
from repro.trr.para import ParaMitigation


def make_para(**kwargs) -> ParaMitigation:
    para = ParaMitigation(**kwargs)
    para.bind(TrrContext(num_banks=4, num_rows=4096))
    return para


def test_never_acts_on_ref():
    para = make_para()
    para.on_activations(0, single_row_batch(0, 100, 10_000))
    assert para.on_refresh() == []


def test_heavy_hammering_always_triggers_refresh():
    para = make_para(probability=1 / 500)
    victims = para.immediate_refreshes(0, single_row_batch(0, 100, 10_000))
    assert (0, 99) in victims and (0, 101) in victims


def test_single_acts_rarely_trigger():
    para = make_para(probability=1 / 500, seed=3)
    triggered = sum(
        1 for _ in range(200)
        if para.immediate_refreshes(0, single_row_batch(0, 7, 1)))
    assert triggered < 10  # ~0.2% expected


def test_statelessness_no_dummy_diversion():
    # Hammering dummies cannot displace anything: the aggressor's own
    # activations keep their full per-ACT refresh probability.
    para = make_para(probability=1 / 100, seed=4)
    para.immediate_refreshes(0, single_row_batch(0, 900, 50_000))  # "dummies"
    victims = para.immediate_refreshes(0, single_row_batch(0, 100, 2_000))
    assert (0, 99) in victims


def test_para_protects_chip_end_to_end(small_config):
    from repro.dram import DramChip
    chip = DramChip(small_config, ParaMitigation(probability=1 / 200))
    victim = 512
    threshold = chip.true_min_hammer_threshold(0, victim, AllOnes())
    chip.write_row(0, victim, AllOnes())
    per_side = int(threshold / 2 * 0.6)
    batch = ActBatch(bank=0, pattern=((victim - 1, per_side),
                                      (victim + 1, per_side)),
                     mode=HammerMode.INTERLEAVED)
    # Two bursts, no REF at all: PARA refreshes mid-hammering anyway.
    chip.hammer(batch)
    chip.hammer(batch)
    assert chip.read_row_mismatches(0, victim) == []
    assert chip.stats.trr_refreshes > 0


def test_ground_truth_descriptor():
    truth = make_para(probability=1 / 333).ground_truth
    assert truth.kind == "para"
    assert truth.extra["ref_independent"] is True
    assert truth.trr_ref_period == 0


def test_config_validation():
    with pytest.raises(ConfigError):
        ParaMitigation(probability=0.0)
    with pytest.raises(ConfigError):
        ParaMitigation(probability=1.0)
    with pytest.raises(ConfigError):
        ParaMitigation(neighbor_radius=0)
