"""Vendor A counter-based TRR: every §6.1 observation as a unit test."""

from __future__ import annotations

import pytest

from repro.dram.commands import single_row_batch
from repro.errors import ConfigError
from repro.trr.base import TrrContext
from repro.trr.counter import CounterBasedTrr

ROWS = 4096


def make_trr(**kwargs) -> CounterBasedTrr:
    trr = CounterBasedTrr(**kwargs)
    trr.bind(TrrContext(num_banks=2, num_rows=ROWS))
    return trr


def drain_refs(trr, count):
    """Issue *count* REFs; return {ref_index(1-based): victims}."""
    result = {}
    for i in range(1, count + 1):
        victims = trr.on_refresh()
        if victims:
            result[i] = victims
    return result


def test_obs1_only_every_ninth_ref_is_trr_capable():
    trr = make_trr()
    trr.on_activations(0, single_row_batch(0, 100, 5000))
    refreshes = drain_refs(trr, 40)
    assert set(refreshes) <= {9, 18, 27, 36}
    assert 9 in refreshes


def test_obs2_four_neighbors_refreshed():
    trr = make_trr(neighbor_radius=2)
    trr.on_activations(0, single_row_batch(0, 100, 5000))
    victims = drain_refs(trr, 9)[9]
    assert sorted(row for bank, row in victims if bank == 0) == [98, 99,
                                                                 101, 102]


def test_radius_one_variant_refreshes_two_neighbors():
    trr = make_trr(neighbor_radius=1)  # A_TRR2
    trr.on_activations(0, single_row_batch(0, 100, 5000))
    victims = drain_refs(trr, 9)[9]
    assert sorted(row for bank, row in victims if bank == 0) == [99, 101]


def test_obs3_trefa_detects_max_counter():
    trr = make_trr()
    trr.on_activations(0, single_row_batch(0, 10, 50))
    trr.on_activations(0, single_row_batch(0, 20, 5000))
    # First TRR-capable REF (9th) is TREFb: pointer starts at entry 0
    # (row 10).  Second (18th) is TREFa: picks the max counter (row 20,
    # still 5000 since TREFb reset row 10's counter).
    refreshes = drain_refs(trr, 18)
    tref_b_rows = {row for _, row in refreshes[9]}
    tref_a_rows = {row for _, row in refreshes[18]}
    assert tref_b_rows == {8, 9, 11, 12}
    assert tref_a_rows == {18, 19, 21, 22}


def test_obs3_trefb_walks_the_table():
    trr = make_trr()
    for i in range(4):
        trr.on_activations(0, single_row_batch(0, 100 * (i + 1), 100))
    detected = []
    for _ in range(8):  # 72 REFs = 8 TRR-capable, alternating b/a
        victims = drain_refs(trr, 9)
        for _, rows in victims.items():
            detected.append(sorted({row for _, row in rows}))
    # TREFb instances (even positions: 1st, 3rd, ...) walk entries in
    # insertion order: 100, 200, 300, 400.
    walked = detected[::2]
    assert [v[1] + 1 for v in walked] == [100, 200, 300, 400]


def test_obs4_table_capacity_sixteen_evicts_overflow():
    trr = make_trr(table_size=16)
    # Insert 16 rows with high counts, then a 17th with a low count: the
    # 17th evicts the minimum (one of the earlier if all higher? no — the
    # new row enters by evicting the smallest, which is one of the 16).
    for i in range(16):
        trr.on_activations(0, single_row_batch(0, 100 + 10 * i, 1000))
    trr.on_activations(0, single_row_batch(0, 900, 50))
    table = trr._tables[0]
    assert len(table.entries) == 16
    assert any(e.row == 900 for e in table.entries)


def test_obs5_eviction_removes_smallest_counter():
    trr = make_trr(table_size=3)
    trr.on_activations(0, single_row_batch(0, 1, 500))
    trr.on_activations(0, single_row_batch(0, 2, 100))  # smallest
    trr.on_activations(0, single_row_batch(0, 3, 300))
    trr.on_activations(0, single_row_batch(0, 4, 200))  # evicts row 2
    rows = {e.row for e in trr._tables[0].entries}
    assert rows == {1, 3, 4}


def test_obs6_detection_resets_counter():
    trr = make_trr()
    trr.on_activations(0, single_row_batch(0, 10, 3000))
    trr.on_activations(0, single_row_batch(0, 20, 2000))
    # 9th REF: TREFb detects row 10 (entry 0) and resets it.
    drain_refs(trr, 9)
    counters = {e.row: e.counter for e in trr._tables[0].entries}
    assert counters[10] == 0
    assert counters[20] == 2000


def test_obs7_entries_persist_without_activity():
    trr = make_trr()
    trr.on_activations(0, single_row_batch(0, 10, 3000))
    # Many refresh periods with no further activity: TREFb keeps
    # detecting the stale entry; TREFa never does (counter is zero).
    detections = 0
    for _ in range(64):
        refreshes = drain_refs(trr, 9)
        detections += sum(1 for v in refreshes.values()
                          if any(row in (9, 11) for _, row in v))
    assert detections >= 30  # every TREFb instance = every other capable REF
    assert any(e.row == 10 for e in trr._tables[0].entries)


def test_per_bank_tables_are_independent():
    trr = make_trr()
    trr.on_activations(0, single_row_batch(0, 100, 1000))
    trr.on_activations(1, single_row_batch(1, 200, 1000))
    victims = drain_refs(trr, 9)[9]
    banks = {bank for bank, _ in victims}
    assert banks == {0, 1}
    rows_bank0 = {row for bank, row in victims if bank == 0}
    rows_bank1 = {row for bank, row in victims if bank == 1}
    assert 99 in rows_bank0 and 199 in rows_bank1


def test_power_cycle_clears_state():
    trr = make_trr()
    trr.on_activations(0, single_row_batch(0, 100, 1000))
    trr.power_cycle()
    assert drain_refs(trr, 40) == {}


def test_ground_truth_descriptor():
    truth = make_trr(trr_ref_period=9, table_size=16,
                     neighbor_radius=2).ground_truth
    assert truth.kind == "counter"
    assert truth.trr_ref_period == 9
    assert truth.aggressor_capacity == 16
    assert truth.neighbors_refreshed == 4
    assert truth.per_bank is True


def test_config_validation():
    with pytest.raises(ConfigError):
        CounterBasedTrr(trr_ref_period=0)
    with pytest.raises(ConfigError):
        CounterBasedTrr(table_size=0)
    with pytest.raises(ConfigError):
        CounterBasedTrr(neighbor_radius=0)


def test_burst_filter_gates_insertions_by_rate():
    from repro.units import ns, us
    trr = make_trr()
    # Spaced-out single activations (ordinary traffic) never insert.
    for i in range(6):
        trr.on_activations(0, single_row_batch(0, 700, 1),
                           now_ps=us(10) * i)
    assert not any(e.row == 700 for e in trr._tables[0].entries)
    # Back-to-back single activations (bus-level hammering) insert.
    for i in range(3):
        trr.on_activations(0, single_row_batch(0, 800, 1),
                           now_ps=us(100) + ns(50) * i)
    assert any(e.row == 800 for e in trr._tables[0].entries)
    # Once inserted, even spaced-out activations keep counting.
    trr.on_activations(0, single_row_batch(0, 800, 1), now_ps=us(900))
    entry = next(e for e in trr._tables[0].entries if e.row == 800)
    assert entry.counter == 3
