"""Vendor C window-based TRR: every §6.3 observation as a unit test."""

from __future__ import annotations

import pytest

from repro.dram.commands import ActBatch, HammerMode, single_row_batch
from repro.errors import ConfigError
from repro.trr.base import TrrContext
from repro.trr.window import WindowBasedTrr

ROWS = 4096


def make_trr(paired=False, **kwargs) -> WindowBasedTrr:
    kwargs.setdefault("seed", 5)
    trr = WindowBasedTrr(**kwargs)
    trr.bind(TrrContext(num_banks=2, num_rows=ROWS, paired_rows=paired))
    return trr


def test_obs1_period_under_sustained_attack():
    trr = make_trr(trr_ref_period=17)
    hits = []
    for i in range(1, 70):
        trr.on_activations(0, single_row_batch(0, 100, 50))
        if trr.on_refresh():
            hits.append(i)
    assert hits[0] == 17
    # Never more frequent than once per 17 REFs.
    assert all(b - a >= 17 for a, b in zip(hits, hits[1:]))


def test_obs1_deferral_when_no_candidate():
    trr = make_trr(trr_ref_period=17)
    # 20 REFs with no activations: nothing detected, refresh deferred.
    assert not any(trr.on_refresh() for _ in range(20))
    # First activation after the deferral window: very next REF carries
    # the TRR-induced refresh (already past the 17-REF budget).
    trr.on_activations(0, single_row_batch(0, 100, 10))
    victims = trr.on_refresh()
    assert sorted(row for _, row in victims) == [99, 101]


def test_obs2_detection_limited_to_window():
    trr = make_trr(trr_ref_period=4, window_acts=100, early_bias_tau=30.0)
    # Row A occupies the whole window; row B activates after it closed.
    batch = ActBatch(bank=0, pattern=((100, 100), (200, 5000)),
                     mode=HammerMode.CASCADED)
    trr.on_activations(0, batch)
    victims = None
    for _ in range(4):
        victims = trr.on_refresh()
    assert sorted(row for _, row in victims) == [99, 101]


def test_obs2_early_rows_more_likely_detected():
    early_wins = 0
    for seed in range(60):
        trr = make_trr(trr_ref_period=4, window_acts=2000,
                       early_bias_tau=700.0, seed=seed)
        batch = ActBatch(bank=0, pattern=((100, 1000), (200, 1000)),
                         mode=HammerMode.CASCADED)
        trr.on_activations(0, batch)
        victims = None
        for _ in range(4):
            victims = trr.on_refresh()
        assert victims, "a full window must always yield a candidate"
        if victims[0][1] == 99:
            early_wins += 1
    assert early_wins > 40  # strong early bias, but not deterministic
    assert early_wins < 60


def test_window_resets_after_trr_refresh():
    trr = make_trr(trr_ref_period=2, window_acts=50, early_bias_tau=10.0)
    trr.on_activations(0, single_row_batch(0, 100, 50))
    for _ in range(2):
        trr.on_refresh()
    # New window: a different row can now be detected.
    trr.on_activations(0, single_row_batch(0, 300, 50))
    victims = None
    for _ in range(2):
        victims = trr.on_refresh()
    assert sorted(row for _, row in victims) == [299, 301]


def test_obs3_paired_rows_refresh_only_pair():
    trr = make_trr(paired=True, trr_ref_period=8)
    trr.on_activations(0, single_row_batch(0, 101, 50))
    victims = None
    for _ in range(8):
        victims = trr.on_refresh()
    assert victims == [(0, 100)]


def test_per_bank_windows_and_deferral_are_independent():
    trr = make_trr(trr_ref_period=4)
    trr.on_activations(0, single_row_batch(0, 100, 50))
    # Bank 1 sees no ACTs: only bank 0 gets a TRR refresh.
    victims = None
    for _ in range(4):
        victims = trr.on_refresh()
    assert {bank for bank, _ in victims} == {0}
    # Bank 1 activates later; its refresh fires at the next REF (due).
    trr.on_activations(1, single_row_batch(1, 700, 50))
    victims = trr.on_refresh()
    assert {bank for bank, _ in victims} == {1}


def test_first_activation_always_becomes_initial_candidate():
    trr = make_trr(trr_ref_period=1, early_bias_tau=0.001)
    # tau ~ 0: only position 0 has non-negligible adoption probability.
    batch = ActBatch(bank=0, pattern=((42, 1), (900, 1999)),
                     mode=HammerMode.CASCADED)
    trr.on_activations(0, batch)
    victims = trr.on_refresh()
    assert sorted(row for _, row in victims) == [41, 43]


def test_power_cycle_clears_windows():
    trr = make_trr(trr_ref_period=2)
    trr.on_activations(0, single_row_batch(0, 100, 50))
    trr.power_cycle()
    assert not any(trr.on_refresh() for _ in range(6))


def test_ground_truth_descriptor():
    truth = make_trr(trr_ref_period=17, window_acts=2000).ground_truth
    assert truth.kind == "window"
    assert truth.trr_ref_period == 17
    assert truth.extra["window_acts"] == 2000
    assert truth.extra["deferred"] is True
    assert truth.per_bank is True
    paired_truth = make_trr(paired=True).ground_truth
    assert paired_truth.neighbors_refreshed == 1


def test_config_validation():
    with pytest.raises(ConfigError):
        WindowBasedTrr(trr_ref_period=0)
    with pytest.raises(ConfigError):
        WindowBasedTrr(window_acts=0)
    with pytest.raises(ConfigError):
        WindowBasedTrr(early_bias_tau=0)
