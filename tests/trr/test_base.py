"""TRR interface: contexts, victim geometry, NoTrr."""

from __future__ import annotations

import pytest

from repro.dram.commands import single_row_batch
from repro.errors import ConfigError
from repro.trr.base import NoTrr, TrrContext, neighbor_victims


def test_neighbor_victims_radius_two():
    context = TrrContext(num_banks=4, num_rows=100)
    assert sorted(neighbor_victims(50, 2, context)) == [48, 49, 51, 52]


def test_neighbor_victims_radius_one():
    context = TrrContext(num_banks=4, num_rows=100)
    assert sorted(neighbor_victims(50, 1, context)) == [49, 51]


def test_neighbor_victims_clip_at_edges():
    context = TrrContext(num_banks=1, num_rows=100)
    assert sorted(neighbor_victims(0, 2, context)) == [1, 2]
    assert sorted(neighbor_victims(99, 2, context)) == [97, 98]


def test_neighbor_victims_paired_rows():
    context = TrrContext(num_banks=1, num_rows=100, paired_rows=True)
    assert neighbor_victims(51, 2, context) == [50]
    assert neighbor_victims(50, 2, context) == [51]


def test_no_trr_is_inert():
    trr = NoTrr()
    trr.bind(TrrContext(num_banks=1, num_rows=16))
    trr.on_activations(0, single_row_batch(0, 3, 1000))
    for _ in range(100):
        assert trr.on_refresh() == []
    assert trr.ground_truth.kind == "none"


def test_unbound_mechanism_rejects_use():
    trr = NoTrr()
    with pytest.raises(ConfigError):
        _ = trr.context


def test_context_validation():
    with pytest.raises(ConfigError):
        TrrContext(num_banks=0, num_rows=10)
