"""Vendor B sampling-based TRR: every §6.2 observation as a unit test.

The sampler is a deterministic free-running every-Nth-ACT counter (the
paper: "likely based on pseudo-random sampling of an incoming ACT"), so
tests can reason exactly about which activation gets sampled.
"""

from __future__ import annotations

import pytest

from repro.dram.commands import ActBatch, HammerMode, single_row_batch
from repro.errors import ConfigError
from repro.trr.base import TrrContext
from repro.trr.sampling import SamplingBasedTrr

ROWS = 4096


def make_trr(**kwargs) -> SamplingBasedTrr:
    trr = SamplingBasedTrr(**kwargs)
    trr.bind(TrrContext(num_banks=4, num_rows=ROWS))
    return trr


def test_obs1_period_controls_trr_capable_refs():
    for period in (4, 9, 2):
        trr = make_trr(trr_ref_period=period)
        trr.on_activations(0, single_row_batch(0, 100, 5000))
        hits = [i for i in range(1, 37) if trr.on_refresh()]
        assert hits == [i for i in range(1, 37) if i % period == 0]


def test_obs2_two_neighbors_refreshed():
    trr = make_trr()
    trr.on_activations(0, single_row_batch(0, 100, 5000))
    for _ in range(3):
        assert trr.on_refresh() == []
    victims = trr.on_refresh()
    assert sorted(row for _, row in victims) == [99, 101]


def test_obs3_long_bursts_always_sampled_short_ones_phase_dependent():
    # 2K consecutive ACTs always cross a sample point (Obs B3's "2K
    # consecutive activations consistently cause detection").
    trr = make_trr(sample_period=500)
    trr.on_activations(0, single_row_batch(0, 100, 2000))
    assert trr._shared.row == 100
    # A 10-ACT burst is only sampled if it happens to straddle a sample
    # point: right after a sample (countdown 500) it never is.
    trr2 = make_trr(sample_period=500)
    trr2.on_activations(0, single_row_batch(0, 100, 10))
    assert trr2._shared.row is None
    # ... but at the right phase it is.
    trr2.on_activations(0, single_row_batch(0, 200, 485))
    trr2.on_activations(0, single_row_batch(0, 300, 10))
    assert trr2._shared.row == 300


def test_obs3_recency_wins_last_hammered_row_detected():
    # Hammer row A 5K times then row B 3K times (cascaded): B owns the
    # last sample point and is the one detected (§6.2.2's H0/H1 finding).
    trr = make_trr()
    batch = ActBatch(bank=0, pattern=((1000, 5000), (2000, 3000)),
                     mode=HammerMode.CASCADED)
    trr.on_activations(0, batch)
    victims = []
    for _ in range(4):
        victims = trr.on_refresh()
    assert sorted(row for _, row in victims) == [1999, 2001]


def test_sample_counter_runs_across_batches():
    trr = make_trr(sample_period=500)
    # 499 ACTs to row A, then 1 ACT to row B: the 500th ACT is B's.
    trr.on_activations(0, single_row_batch(0, 100, 499))
    assert trr._shared.row is None
    trr.on_activations(0, single_row_batch(0, 200, 1))
    assert trr._shared.row == 200


def test_obs4_single_slot_shared_across_banks():
    trr = make_trr(per_bank=False)
    trr.on_activations(0, single_row_batch(0, 100, 3000))
    trr.on_activations(2, single_row_batch(2, 700, 3000))  # overwrites
    victims = []
    for _ in range(4):
        victims = trr.on_refresh()
    assert victims == [(2, 699), (2, 701)]


def test_obs4_per_bank_variant_keeps_one_sample_per_bank():
    trr = make_trr(per_bank=True, trr_ref_period=2)  # B_TRR3
    trr.on_activations(0, single_row_batch(0, 100, 3000))
    trr.on_activations(2, single_row_batch(2, 700, 3000))
    victims = []
    for _ in range(2):
        victims = trr.on_refresh()
    assert ((0, 99) in victims and (0, 101) in victims
            and (2, 699) in victims and (2, 701) in victims)


def test_obs5_sample_not_cleared_by_trr_refresh():
    trr = make_trr()
    trr.on_activations(0, single_row_batch(0, 100, 3000))
    first = None
    repeats = 0
    for _ in range(40):
        victims = trr.on_refresh()
        if victims:
            if first is None:
                first = victims
            assert victims == first
            repeats += 1
    assert repeats == 10  # every 4th of 40 REFs, all protecting row 100


def test_diversion_guarantee_for_custom_pattern():
    # §7.1 vendor B: a trailing dummy phase at least one sample period
    # long always owns the final sample before the TRR-capable REF.
    trr = make_trr(sample_period=500)
    for phase_spoiler in (0, 123, 456):
        if phase_spoiler:
            trr.on_activations(0, single_row_batch(0, 900, phase_spoiler))
        trr.on_activations(0, ActBatch(
            bank=0, pattern=((100, 220), (102, 220)),
            mode=HammerMode.INTERLEAVED))
        trr.on_activations(0, single_row_batch(0, 2000, 624))
        assert trr._shared.row == 2000


def test_power_cycle_resets_sampler():
    trr = make_trr()
    trr.on_activations(0, single_row_batch(0, 100, 5000))
    trr.power_cycle()
    assert not any(trr.on_refresh() for _ in range(12))
    assert trr._shared.countdown == 500


def test_ground_truth_descriptor():
    truth = make_trr(trr_ref_period=4).ground_truth
    assert truth.kind == "sampling"
    assert truth.trr_ref_period == 4
    assert truth.aggressor_capacity == 1
    assert truth.per_bank is False
    assert truth.neighbors_refreshed == 2
    assert truth.extra["sample_period"] == 500


def test_config_validation():
    with pytest.raises(ConfigError):
        SamplingBasedTrr(trr_ref_period=0)
    with pytest.raises(ConfigError):
        SamplingBasedTrr(sample_period=0)
    with pytest.raises(ConfigError):
        SamplingBasedTrr(neighbor_radius=0)
