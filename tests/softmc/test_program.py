"""Declarative SoftMC programs."""

from __future__ import annotations

import pytest

from repro.dram import AllOnes, AllZeros, DramChip
from repro.errors import ConfigError
from repro.softmc import SoftMCHost, SoftMCProgram
from repro.units import ms


@pytest.fixture
def host(small_config):
    return SoftMCHost(DramChip(small_config))


def find_weak_row(host, max_ms=5000):
    chip = host._chip
    for row in range(host.rows_per_bank):
        retention = chip.true_retention_ps(0, row, AllOnes())
        if retention < ms(max_ms):
            return row, retention
    raise AssertionError("no weak row")


def test_program_reads_and_checks(host):
    program = (SoftMCProgram()
               .write(0, 5, AllOnes())
               .read(0, 5, label="victim")
               .check(0, 5, label="victim-check"))
    result = program.run(host)
    assert result.rows["victim"].sum() == host.row_bits
    assert result.mismatches["victim-check"] == []
    assert result.duration_ps > 0


def test_program_reproduces_side_channel(host):
    row, retention = find_weak_row(host)
    program = (SoftMCProgram()
               .write(0, row, AllOnes())
               .wait(retention + ms(1))
               .check(0, row, label="decayed"))
    result = program.run(host)
    assert result.mismatches["decayed"] != []


def test_default_labels_are_bank_row(host):
    result = (SoftMCProgram().write(0, 9, AllZeros()).read(0, 9)).run(host)
    assert "0:9" in result.rows


def test_duplicate_labels_rejected(host):
    program = SoftMCProgram().read(0, 1, "x").read(0, 2, "x")
    with pytest.raises(ConfigError):
        program.run(host)


def test_loop_repeats_body(host):
    body = SoftMCProgram().hammer(0, [(100, 10)]).refresh()
    program = SoftMCProgram().loop(8, body)
    program.run(host)
    assert host.ref_count == 8
    assert host._chip.stats.activates == 80


def test_loop_with_reads_requires_single_iteration(host):
    body = SoftMCProgram().read(0, 1, "r")
    program = SoftMCProgram().loop(3, body)
    with pytest.raises(ConfigError):
        program.run(host)
    once = SoftMCProgram().loop(1, SoftMCProgram().read(0, 1, "r"))
    assert "r" in once.run(host).rows
