"""SoftMC host interface."""

from __future__ import annotations

import pytest

from repro.dram import AllOnes, DramChip, HammerMode
from repro.errors import ConfigError
from repro.softmc import SoftMCHost
from repro.units import ms, us


@pytest.fixture
def host(small_config):
    return SoftMCHost(DramChip(small_config))


def find_weak_row(host, bank=0, max_ms=5000):
    chip = host._chip
    for row in range(host.rows_per_bank):
        if chip.true_retention_ps(bank, row, AllOnes()) < ms(max_ms):
            return row, chip.true_retention_ps(bank, row, AllOnes())
    raise AssertionError("no weak row")


def test_module_facts(host, small_config):
    assert host.num_banks == small_config.num_banks
    assert host.rows_per_bank == small_config.rows_per_bank
    assert host.row_bits == small_config.row_bits
    assert host.hammers_per_ref_interval() == 149


def test_write_read_roundtrip(host):
    host.write_row(0, 7, AllOnes())
    assert host.read_row(0, 7).sum() == host.row_bits
    assert host.read_row_mismatches(0, 7) == []


def test_ref_count_tracks_host_issued_refs(host):
    host.refresh(count=5)
    host.refresh()
    assert host.ref_count == 6


def test_refresh_at_nominal_rate_paces_trefi(host):
    start = host.now_ps
    host.refresh(count=100, at_nominal_rate=True)
    assert host.now_ps - start == 100 * us(7.8)


def test_wait_helpers(host):
    start = host.now_ps
    host.wait_us(2.5)
    host.wait_ms(1.0)
    assert host.now_ps - start == us(2.5) + ms(1.0)


def test_side_channel_visible_through_host(host):
    row, retention = find_weak_row(host)
    host.write_row(0, row, AllOnes())
    host.wait(retention + ms(1))
    assert host.read_row_mismatches(0, row) != []


def test_hammer_modes_forwarded(host):
    start = host.now_ps
    host.hammer(0, [(100, 50), (102, 50)], HammerMode.INTERLEAVED)
    assert host.now_ps - start == 100 * host.timing.trc_ps
    host.hammer_single(0, 100, 10)


def test_hammer_multi_limited_to_four_banks(host):
    with pytest.raises(ConfigError):
        host.hammer_multi({b: [(10, 5)] for b in range(5)})
    host.hammer_multi({b: [(10, 5)] for b in range(4)})


def test_pick_rows_away_from_enforces_distance(host):
    protected = [500, 900]
    rows = host.pick_rows_away_from(0, protected, count=20,
                                    min_distance=100)
    assert len(rows) == 20
    assert len(set(rows)) == 20
    for row in rows:
        assert all(abs(row - p) >= 100 for p in protected)


def test_pick_rows_away_from_impossible_request(host):
    # Protect everything: no candidate can be 2000 rows away in a
    # 2048-row bank straddled by protected rows.
    protected = list(range(0, host.rows_per_bank, 50))
    with pytest.raises(ConfigError):
        host.pick_rows_away_from(0, protected, count=1, min_distance=100)
