"""Command-granular DDR bus: protocol and timing enforcement."""

from __future__ import annotations

import pytest

from repro.dram import AllOnes, DramChip
from repro.errors import ProtocolError, TimingViolationError
from repro.softmc import Ddr, DdrBus, SoftMCHost
from repro.units import ms


@pytest.fixture
def bus(small_config):
    return DdrBus(DramChip(small_config))


def test_act_rd_pre_sequence(bus):
    bus.activate(0, 100)
    bus.write(0, AllOnes())
    bits = bus.read(0)
    assert bits.sum() == bus._chip.config.row_bits
    bus.precharge(0)
    assert bus.open_rows() == {}


def test_double_activate_rejected(bus):
    bus.activate(0, 100)
    with pytest.raises(ProtocolError):
        bus.activate(0, 200)


def test_read_write_pre_require_open_row(bus):
    with pytest.raises(ProtocolError):
        bus.read(0)
    with pytest.raises(ProtocolError):
        bus.write(0, AllOnes())
    with pytest.raises(ProtocolError):
        bus.precharge(0)


def test_tras_trp_enforced(bus):
    timing = bus._chip.config.timing
    act = bus.activate(0, 100)
    with pytest.raises(TimingViolationError):
        bus.precharge(0, at_ps=act + timing.tras_ps - 1)
    pre = bus.precharge(0)
    assert pre == act + timing.tras_ps
    with pytest.raises(TimingViolationError):
        bus.activate(0, 101, at_ps=pre + timing.trp_ps - 1)
    act2 = bus.activate(0, 101)
    assert act2 == pre + timing.trp_ps


def test_trcd_enforced(bus):
    timing = bus._chip.config.timing
    act = bus.activate(0, 100)
    with pytest.raises(TimingViolationError):
        bus.read(0, at_ps=act + timing.trcd_ps - 1)
    bus.read(0)


def test_tfaw_limits_cross_bank_activation_rate(bus):
    timing = bus._chip.config.timing
    issues = [bus.activate(bank, 50) for bank in range(4)]
    # First four ACTs are tRRD-paced; add a fifth in a "bank" we must
    # first free up — use precharge on bank 0 and re-activate.
    bus.precharge(0)
    fifth = bus.activate(0, 51)
    assert fifth - issues[0] >= timing.tfaw_ps


def test_refresh_requires_all_banks_precharged(bus):
    bus.activate(2, 100)
    with pytest.raises(ProtocolError):
        bus.refresh()
    bus.precharge(2)
    bus.refresh()
    assert bus.ref_count == 1


def test_trace_records_commands(bus):
    bus.activate(0, 100)
    bus.write(0, AllOnes())
    bus.precharge(0)
    bus.refresh()
    kinds = [entry.command for entry in bus.trace]
    assert kinds == [Ddr.ACT, Ddr.WR, Ddr.PRE, Ddr.REF]
    assert bus.trace[0].row == 100


def test_hammer_once_costs_trc(bus):
    timing = bus._chip.config.timing
    first = bus.hammer_once(0, 100)
    second = bus.hammer_once(0, 100)
    assert second - first == timing.trc_ps


def test_side_channel_visible_through_bus(small_config):
    chip = DramChip(small_config)
    bus = DdrBus(chip)
    host = SoftMCHost(chip)  # ground-truth scan helper only
    weak = next(row for row in range(small_config.rows_per_bank)
                if chip.true_retention_ps(0, row, AllOnes()) < ms(3000))
    retention = chip.true_retention_ps(0, weak, AllOnes())
    bus.activate(0, weak)
    bus.write(0, AllOnes())
    bus.precharge(0)
    chip.wait(retention + ms(1))
    bus.activate(0, weak)
    bits = bus.read(0)
    assert int(bits.sum()) < small_config.row_bits  # decay observed


def test_bus_hammering_matches_host_hammering(small_config):
    def flips_via_bus(count):
        chip = DramChip(small_config)
        bus = DdrBus(chip, record_trace=False)
        victim = 512
        bus.activate(0, victim)
        bus.write(0, AllOnes())
        bus.precharge(0)
        for _ in range(count):
            bus.hammer_once(0, victim - 1)
            bus.hammer_once(0, victim + 1)
        bus.activate(0, victim)
        return small_config.row_bits - int(bus.read(0).sum())

    def flips_via_host(count):
        chip = DramChip(small_config)
        host = SoftMCHost(chip)
        victim = 512
        host.write_row(0, victim, AllOnes())
        host.hammer(0, [(victim - 1, count), (victim + 1, count)])
        return len(host.read_row_mismatches(0, victim))

    threshold = DramChip(small_config).true_min_hammer_threshold(
        0, 512, AllOnes())
    count = int(threshold / 2) + 50
    assert flips_via_bus(count) == flips_via_host(count)
    assert flips_via_bus(count) > 0
