"""Result store: codec framing, atomic object IO, GC, verification."""

from __future__ import annotations

import pytest

from repro.cache import (CacheEnvelope, ResultCache, decode, encode,
                         value_digest)
from repro.errors import CacheError
from repro.parallel import WorkUnit


def entry_point(value: int) -> int:
    return value * value


def _envelope(key: str = "ab" * 32, unit_id: str = "eval/A5",
              value=41, **overrides) -> CacheEnvelope:
    spec = dict(key=key, unit_id=unit_id, value=value,
                metrics={"counters": {"host.acts": 3}},
                wall_s=0.5, material={"unit": unit_id},
                value_digest=value_digest(value))
    spec.update(overrides)
    return CacheEnvelope(**spec)


def test_codec_round_trips_nested_values():
    envelope = _envelope(value={"rows": [1, 2], "nested": (3, 4)})
    assert decode(encode(envelope)) == envelope


def test_codec_rejects_torn_and_foreign_blobs():
    blob = encode(_envelope())
    with pytest.raises(CacheError):
        decode(blob[:8])                       # truncated
    with pytest.raises(CacheError):
        decode(b"XXXX\x01" + blob[5:])         # bad magic
    flipped = bytearray(blob)
    flipped[-1] ^= 0xFF
    with pytest.raises(CacheError):
        decode(bytes(flipped))                 # CRC mismatch


def test_publish_then_lookup_round_trips(tmp_path):
    cache = ResultCache(tmp_path)
    envelope = _envelope()
    cache.publish(envelope)
    assert cache.stores == 1
    got = cache.lookup(envelope.key)
    assert got == envelope
    assert cache.hits == 1 and cache.misses == 0


def test_absent_key_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    assert cache.lookup("00" * 32) is None
    assert cache.misses == 1
    assert cache.summary()["hit_ratio"] == 0.0


def test_corrupt_object_reads_as_miss_and_is_evicted(tmp_path):
    cache = ResultCache(tmp_path)
    envelope = _envelope()
    cache.publish(envelope)
    path = cache._path(envelope.key)
    path.write_bytes(path.read_bytes()[:10])   # tear the object
    assert cache.lookup(envelope.key) is None
    assert cache.errors == 1 and cache.misses == 1
    assert not path.exists()                   # evicted, not trusted


def test_keyed_returns_none_for_uncachable_units(tmp_path):
    cache = ResultCache(tmp_path)
    cachable = WorkUnit(unit_id="ok", fn=entry_point, args=(2,))
    assert cache.keyed(cachable) is not None
    foreign = WorkUnit(unit_id="bad", fn=entry_point, args=(object(),))
    assert cache.keyed(foreign) is None
    assert cache.key(foreign) is None


def test_value_digest_is_none_for_unpicklable_values():
    assert value_digest(lambda: None) is None
    assert value_digest({"a": 1}) == value_digest({"a": 1})


def test_check_hit_raises_on_divergence(tmp_path):
    cache = ResultCache(tmp_path)
    envelope = _envelope()
    cache.check_hit(envelope, 41, envelope.metrics)  # clean: no raise
    with pytest.raises(CacheError, match="metrics"):
        cache.check_hit(envelope, 41, {"counters": {"host.acts": 99}})
    with pytest.raises(CacheError, match="value"):
        cache.check_hit(envelope, 42, envelope.metrics)


def test_stats_summarize_store_contents(tmp_path):
    cache = ResultCache(tmp_path)
    cache.publish(_envelope(key="aa" * 32, unit_id="eval/A5"))
    cache.publish(_envelope(key="bb" * 32, unit_id="fig8/C7"))
    stats = cache.stats()
    assert stats["objects"] == 2
    assert stats["bytes"] > 0
    assert stats["units_by_kind"] == {"eval": 1, "fig8": 1}


def test_prune_by_age_and_budget_and_drop_all(tmp_path):
    import os
    import time
    cache = ResultCache(tmp_path)
    old = _envelope(key="aa" * 32, unit_id="old")
    new = _envelope(key="bb" * 32, unit_id="new")
    cache.publish(old)
    cache.publish(new)
    stale = time.time() - 3600
    os.utime(cache._path(old.key), (stale, stale))
    report = cache.prune(max_age_s=60.0)
    assert report == {"removed": 1, "kept": 1,
                      "bytes": report["bytes"]}
    assert cache.lookup(old.key) is None
    assert cache.lookup(new.key) is not None
    # LRU budget: a zero-byte budget evicts everything that is left.
    assert cache.prune(max_bytes=0)["kept"] == 0
    cache.publish(new)
    assert cache.prune(drop_all=True)["removed"] == 1
    assert cache.stats()["objects"] == 0


def test_verify_store_flags_corrupt_and_stale_objects(tmp_path):
    cache = ResultCache(tmp_path)
    clean = _envelope(key="aa" * 32)
    cache.publish(clean)
    report = cache.verify_store()
    assert report == {"checked": 1, "corrupt": [], "stale": []}
    # Stale: the recorded digest no longer matches the stored value.
    stale = _envelope(key="bb" * 32, value=7,
                      value_digest=value_digest(8))
    cache.publish(stale)
    # Corrupt: framing destroyed on disk.
    torn = _envelope(key="cc" * 32)
    cache.publish(torn)
    cache._path(torn.key).write_bytes(b"garbage")
    report = cache.verify_store()
    assert report["corrupt"] == [torn.key]
    assert report["stale"] == [stale.key]
