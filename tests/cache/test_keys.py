"""Cache keys: canonicalization, fingerprints, and invalidation.

The invalidation contract is the whole safety story: every input that
can change a unit's result must change its key, and nothing else may.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
import pytest

from repro.cache import (Uncachable, callable_fingerprint,
                         material_digest, recipe_digest, unit_key,
                         unit_key_material)
from repro.cache.keys import canonical
from repro.parallel import WorkUnit


def entry_point(value: int) -> int:
    return value * value


def other_entry_point(value: int) -> int:
    return value * value * value


def nested_entry_point(value: int) -> int:
    def inner(x: int) -> int:
        return x + 1
    return inner(value) * value


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclass(frozen=True)
class Recipe:
    rows: int
    label: str


def _unit(**overrides):
    spec = dict(unit_id="eval/A5", fn=entry_point, args=(3,),
                kwargs={}, meta={"module": "A5"})
    spec.update(overrides)
    return WorkUnit(**spec)


def test_canonical_primitives_round_trip():
    assert canonical(None) is None
    assert canonical(True) is True
    assert canonical(7) == 7
    assert canonical("x") == "x"
    assert canonical(0.1) == ["__float__", repr(0.1)]
    assert canonical(b"\x00\xff") == ["__bytes__", "00ff"]


def test_canonical_containers_and_dataclasses():
    assert canonical((1, [2, 3])) == [1, [2, 3]]
    assert canonical({"b": 2, "a": 1}) == {"a": 1, "b": 2}
    assert canonical({2, 1}) == ["__set__", [1, 2]]
    assert canonical(Color.RED) == ["__enum__", "Color", 1]
    got = canonical(Recipe(rows=4, label="quick"))
    assert got["__dataclass__"] == "Recipe"
    assert got["rows"] == 4 and got["label"] == "quick"


def test_canonical_numpy_without_materializing_types():
    array = np.array([1, 2, 3], dtype=np.int64)
    assert canonical(array) == ["__ndarray__", "int64", [1, 2, 3]]
    # numpy scalars carry tolist()+dtype too, so they share the
    # ndarray branch — what matters is determinism, not the tag.
    assert canonical(np.int32(9)) == ["__ndarray__", "int32", 9]
    assert canonical(np.int32(9)) == canonical(np.int32(9))


def test_canonical_rejects_foreign_objects():
    with pytest.raises(Uncachable):
        canonical(object())
    with pytest.raises(Uncachable):
        canonical({(1, 2): "tuple key"})


def test_fingerprint_tracks_implementation_not_just_name():
    assert callable_fingerprint(entry_point) == \
        callable_fingerprint(entry_point)
    assert callable_fingerprint(entry_point) != \
        callable_fingerprint(other_entry_point)


def test_fingerprint_is_stable_across_processes():
    # Nested code objects repr with a memory address; the fingerprint
    # must walk them structurally or identical code keys differently
    # in every CLI invocation (observed as warm fig8 runs missing).
    script = ("import importlib, sys; sys.path.insert(0, {src!r}); "
              "sys.path.insert(0, {root!r}); "
              "module = importlib.import_module({module!r}); "
              "from repro.cache import callable_fingerprint; "
              "print(callable_fingerprint(module.nested_entry_point))")
    import pathlib
    import subprocess
    import sys
    root_dir = str(pathlib.Path(__file__).resolve().parents[2])
    src_dir = str(pathlib.Path(root_dir) / "src")
    code = script.format(src=src_dir, root=root_dir,
                         module=nested_entry_point.__module__)
    runs = [subprocess.run([sys.executable, "-c", code],
                           capture_output=True, text=True, check=True)
            for _ in range(2)]
    first, second = (run.stdout.strip() for run in runs)
    assert first == second
    assert first == callable_fingerprint(nested_entry_point)


def test_unit_key_is_deterministic():
    assert unit_key(_unit(), git="g0") == unit_key(_unit(), git="g0")


@pytest.mark.parametrize("flip", [
    dict(unit_id="eval/B0"),          # unit id (and derived seed)
    dict(args=(4,)),                  # arguments
    dict(kwargs={"positions": 6}),    # keyword arguments
    dict(meta={"module": "B0"}),      # manifest meta
    dict(fn=other_entry_point),       # entry-point implementation
])
def test_unit_key_invalidates_on_result_inputs(flip):
    assert unit_key(_unit(**flip), git="g0") != \
        unit_key(_unit(), git="g0")


def test_unit_key_invalidates_on_code_revision():
    assert unit_key(_unit(), git="g0") != unit_key(_unit(), git="g1")


def test_material_names_every_key_ingredient():
    material = unit_key_material(_unit(), git="g0")
    assert set(material) == {"schema", "unit", "seed", "git", "python",
                             "fn", "args", "kwargs", "meta"}
    assert material["unit"] == "eval/A5"
    assert material["git"] == "g0"
    assert material_digest(material) == unit_key(_unit(), git="g0")


def test_recipe_digest_drops_identity_but_keeps_inputs():
    base = unit_key_material(_unit(), git="g0")
    renamed = unit_key_material(_unit(unit_id="eval/alias",
                                      meta={"module": "alias"}),
                                git="g0")
    # Same work under a different name: same recipe, different key.
    assert recipe_digest(renamed) == recipe_digest(base)
    assert material_digest(renamed) != material_digest(base)
    # Different work under any name: different recipe.
    changed = unit_key_material(_unit(args=(4,)), git="g0")
    assert recipe_digest(changed) != recipe_digest(base)
