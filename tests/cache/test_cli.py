"""``python -m repro.cache``: stats / prune / verify maintenance."""

from __future__ import annotations

import json

from repro.cache import CacheEnvelope, ResultCache, value_digest
from repro.cache.__main__ import main as cache_main


def _envelope(key: str, unit_id: str = "eval/A5", value=41,
              **overrides) -> CacheEnvelope:
    spec = dict(key=key, unit_id=unit_id, value=value,
                metrics={"counters": {"host.acts": 3}}, wall_s=0.5,
                material={"unit": unit_id},
                value_digest=value_digest(value))
    spec.update(overrides)
    return CacheEnvelope(**spec)


def _seeded_store(tmp_path) -> ResultCache:
    cache = ResultCache(tmp_path / "store")
    cache.publish(_envelope(key="aa" * 32, unit_id="eval/A5"))
    cache.publish(_envelope(key="bb" * 32, unit_id="fig8/C7"))
    return cache


def test_stats_prints_json_summary(tmp_path, capsys):
    cache = _seeded_store(tmp_path)
    assert cache_main(["stats", str(cache.root)]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["objects"] == 2
    assert stats["units_by_kind"] == {"eval": 1, "fig8": 1}


def test_verify_exits_zero_on_clean_store(tmp_path, capsys):
    cache = _seeded_store(tmp_path)
    assert cache_main(["verify", str(cache.root)]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["checked"] == 2
    assert report["corrupt"] == [] and report["stale"] == []


def test_verify_exits_nonzero_on_stale_store(tmp_path, capsys):
    cache = _seeded_store(tmp_path)
    cache.publish(_envelope(key="cc" * 32, value=7,
                            value_digest=value_digest(8)))
    assert cache_main(["verify", str(cache.root)]) == 1
    report = json.loads(capsys.readouterr().out)
    assert report["stale"] == ["cc" * 32]


def test_prune_all_empties_the_store(tmp_path, capsys):
    cache = _seeded_store(tmp_path)
    assert cache_main(["prune", str(cache.root), "--all"]) == 0
    report = json.loads(capsys.readouterr().out)
    assert report["removed"] == 2 and report["kept"] == 0
    assert cache.stats()["objects"] == 0
