"""End-to-end module construction from specs."""

from __future__ import annotations

import pytest

from repro.dram import AllOnes, DramChip
from repro.errors import ConfigError
from repro.trr.base import NoTrr
from repro.vendors import build_module, get_module
from repro.vendors.spec import ModuleSpec, TrrVersion


def test_build_module_attaches_trr():
    chip = build_module(get_module("A0"), rows_per_bank=1024, row_bits=512)
    assert chip.trr.ground_truth.kind == "counter"
    assert chip.config.refresh_cycle_refs == min(3758, 1024)


def test_build_module_paired_coupling_propagates():
    chip = build_module(get_module("C0"), rows_per_bank=1024, row_bits=512)
    assert chip.config.disturbance.paired_coupling is True
    assert chip.trr.context.paired_rows is True


def test_build_module_mapping_scheme_propagates():
    chip = build_module(get_module("A5"), rows_per_bank=1024, row_bits=512)
    assert chip.config.mapping_scheme == "bit_swap_0_1"


def test_built_chips_replay_deterministically():
    spec = get_module("B8")
    a = build_module(spec, rows_per_bank=1024, row_bits=512)
    b = build_module(spec, rows_per_bank=1024, row_bits=512)
    for row in range(0, 1024, 111):
        assert (a.true_retention_ps(0, row, AllOnes())
                == b.true_retention_ps(0, row, AllOnes()))


def test_hc_first_implant_reaches_disturbance_config():
    spec = get_module("B1")
    chip = build_module(spec, rows_per_bank=1024, row_bits=512)
    assert chip.config.disturbance.hc_first == spec.hc_first


def test_spec_validation():
    with pytest.raises(ConfigError):
        ModuleSpec(module_id="X0", vendor="X", date_code="20-01",
                   density_gbit=8, ranks=1, num_banks=16, pins=8,
                   hc_first=10_000, trr_version=TrrVersion.NONE)
    with pytest.raises(ConfigError):
        ModuleSpec(module_id="A99", vendor="A", date_code="20-01",
                   density_gbit=8, ranks=1, num_banks=4, pins=8,
                   hc_first=10_000, trr_version=TrrVersion.A_TRR1)


def test_none_version_builds_unprotected_chip():
    spec = ModuleSpec(module_id="RAW", vendor="-", date_code="15-01",
                      density_gbit=4, ranks=1, num_banks=16, pins=8,
                      hc_first=139_000, trr_version=TrrVersion.NONE)
    chip = build_module(spec, rows_per_bank=1024, row_bits=512)
    assert isinstance(chip, DramChip)
    assert isinstance(chip.trr, NoTrr)
