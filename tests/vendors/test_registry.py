"""Registry completeness and fidelity to Table 1."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.vendors import (FIGURE8_MODULES, TrrVersion, all_modules,
                           get_module, modules_by_vendor)


def test_exactly_45_modules():
    modules = all_modules()
    assert len(modules) == 45
    assert len(modules_by_vendor("A")) == 15
    assert len(modules_by_vendor("B")) == 15
    assert len(modules_by_vendor("C")) == 15


def test_module_ids_are_contiguous():
    ids = {spec.module_id for spec in all_modules()}
    expected = {f"{v}{i}" for v in "ABC" for i in range(15)}
    assert ids == expected


def test_version_assignment_matches_table1():
    assert get_module("A0").trr_version is TrrVersion.A_TRR1
    assert get_module("A13").trr_version is TrrVersion.A_TRR2
    assert get_module("A14").trr_version is TrrVersion.A_TRR2
    assert get_module("B0").trr_version is TrrVersion.B_TRR1
    assert get_module("B9").trr_version is TrrVersion.B_TRR2
    assert get_module("B13").trr_version is TrrVersion.B_TRR3
    assert get_module("C0").trr_version is TrrVersion.C_TRR1
    assert get_module("C9").trr_version is TrrVersion.C_TRR2
    assert get_module("C12").trr_version is TrrVersion.C_TRR3


def test_hc_first_within_reported_ranges():
    for spec in all_modules():
        low, high = spec.paper.hc_first_range
        assert low <= spec.hc_first <= high


def test_vendor_a_uses_short_refresh_cycle():
    # Obs A8: vendor A's chips complete a refresh pass in 3758 REFs.
    for spec in modules_by_vendor("A"):
        assert spec.refresh_cycle_refs == 3758
    for spec in modules_by_vendor("B") + modules_by_vendor("C"):
        assert spec.refresh_cycle_refs == 8192


def test_paired_rows_only_c0_to_c8():
    for spec in all_modules():
        expected = spec.module_id in {f"C{i}" for i in range(9)}
        assert spec.paired_rows == expected, spec.module_id


def test_trr_to_ref_ratios_match_table1():
    ratios = {
        TrrVersion.A_TRR1: 9, TrrVersion.A_TRR2: 9,
        TrrVersion.B_TRR1: 4, TrrVersion.B_TRR2: 9, TrrVersion.B_TRR3: 2,
        TrrVersion.C_TRR1: 17, TrrVersion.C_TRR2: 9, TrrVersion.C_TRR3: 8,
    }
    for spec in all_modules():
        assert (spec.trr_parameters()["trr_ref_period"]
                == ratios[spec.trr_version]), spec.module_id


def test_nominal_bank_sizes_match_paper_section_7_3():
    # 8 Gbit: 16 banks -> 32K rows, 8 banks -> 64K rows.
    assert get_module("A0").nominal_rows_per_bank == 32_768
    assert get_module("A1").nominal_rows_per_bank == 65_536
    assert get_module("B0").nominal_rows_per_bank == 16_384   # 4 Gbit
    assert get_module("C12").nominal_rows_per_bank == 131_072  # 16 Gbit


def test_make_trr_ground_truth_consistency():
    for spec in all_modules():
        trr = spec.make_trr()
        params = spec.trr_parameters()
        # Mechanisms report the implant period before binding to a chip.
        assert trr.trr_ref_period == params["trr_ref_period"]


def test_neighbor_counts_match_table1():
    neighbor_count = {
        "A0": 4, "A13": 2,      # A_TRR1 refreshes 4, A_TRR2 refreshes 2
        "B0": 2, "B13": 4,      # B_TRR3 refreshes 4 (Table 1)
        "C9": 2,
    }
    for module_id, expected in neighbor_count.items():
        spec = get_module(module_id)
        trr = spec.make_trr()
        radius = getattr(trr, "neighbor_radius")
        assert 2 * radius == expected, module_id
    # Pair-isolated modules protect exactly the pair row (1 victim).
    from repro.trr.base import TrrContext
    trr = get_module("C0").make_trr()
    trr.bind(TrrContext(num_banks=16, num_rows=1024, paired_rows=True))
    assert trr.ground_truth.neighbors_refreshed == 1


def test_window_sizes_c_trr3_uses_1k():
    assert get_module("C0").trr_parameters()["window_acts"] == 2000
    assert get_module("C12").trr_parameters()["window_acts"] == 1000


def test_b_trr_sharing_across_banks():
    assert get_module("B0").trr_parameters()["per_bank"] is False
    assert get_module("B9").trr_parameters()["per_bank"] is False
    assert get_module("B13").trr_parameters()["per_bank"] is True


def test_figure8_modules_exist_and_match_footnote_15():
    versions = [get_module(m).trr_version for m in FIGURE8_MODULES]
    assert versions == [TrrVersion.A_TRR1, TrrVersion.B_TRR1,
                        TrrVersion.C_TRR1]


def test_unknown_lookups_rejected():
    with pytest.raises(ConfigError):
        get_module("Z9")
    with pytest.raises(ConfigError):
        modules_by_vendor("Z")


def test_device_configs_are_deterministic_per_module():
    a = get_module("A5").device_config(rows_per_bank=1024)
    b = get_module("A5").device_config(rows_per_bank=1024)
    assert a == b
    other = get_module("A6").device_config(rows_per_bank=1024)
    assert a.serial != other.serial


def test_paper_result_ranges_are_sane():
    for spec in all_modules():
        low, high = spec.paper.vulnerable_rows_pct_range
        assert 0.0 <= low <= high <= 100.0
        flow, fhigh = spec.paper.max_flips_per_row_per_hammer_range
        assert 0.0 <= flow <= fhigh
        hlow, hhigh = spec.paper.hc_first_range
        assert 0 < hlow <= hhigh


def test_trr_versions_partition_by_vendor():
    for spec in all_modules():
        assert spec.trr_version.vendor == spec.vendor
