"""Payload compiler: unrolling, interning, scheduling, fusion groups."""

from __future__ import annotations

import pytest

from repro.dram import AllOnes, HammerMode
from repro.errors import ConfigError
from repro.program import (OP_ACT, OP_CHK, OP_MULTI, OP_REF, OP_WAIT, OP_WR,
                           OPCODE_NAMES, compile_program)
from repro.softmc import SoftMCProgram

from .conftest import payload_host


@pytest.fixture
def timing():
    return payload_host().timing


def test_empty_program_compiles_and_runs(timing):
    payload = compile_program([], timing)
    assert len(payload) == 0
    assert payload.duration_ps == 0
    assert payload.counts() == {}
    host = payload_host()
    before = host.now_ps
    result = host.execute_payload(payload)
    assert host.now_ps == before
    assert result.rows == {} and result.mismatches == {}
    assert result.duration_ps == 0


def test_single_command_payload(timing):
    program = SoftMCProgram().hammer(0, ((100, 7),), HammerMode.CASCADED)
    payload = program.compile(timing)
    assert len(payload) == 1
    assert payload.opcode[0] == OP_ACT
    assert payload.dt[0] == timing.hammer_duration_ps(7)
    assert payload.total_acts() == 7
    assert payload.fuse_groups == ()


def test_wait_only_payload(timing):
    payload = SoftMCProgram().wait(123_456).compile(timing)
    assert len(payload) == 1
    assert payload.opcode[0] == OP_WAIT
    assert payload.arg[0] == 123_456
    assert payload.dt[0] == 123_456
    assert payload.duration_ps == 123_456
    host = payload_host()
    before = host.now_ps
    host.execute_payload(payload)
    assert host.now_ps - before == 123_456


def test_loops_unroll_recursively(timing):
    inner = SoftMCProgram().hammer(0, ((10, 1),))
    outer = SoftMCProgram().refresh(1).loop(3, inner)
    program = SoftMCProgram().loop(2, outer)
    payload = program.compile(timing)
    assert len(payload) == 2 * (1 + 3)
    assert payload.counts() == {"ACT": 6, "REF": 2}


def test_dt_schedule_matches_timing_formulas(timing):
    program = (SoftMCProgram()
               .write(0, 1, AllOnes())
               .read(0, 1)
               .check(0, 1, label="again")
               .refresh(3)
               .refresh(2, at_nominal_rate=True))
    payload = program.compile(timing)
    write_dt = timing.trcd_ps + timing.burst_write_ps + timing.trp_ps
    read_dt = timing.trcd_ps + timing.burst_read_ps + timing.trp_ps
    assert payload.dt.tolist() == [write_dt, read_dt, read_dt,
                                   3 * timing.trfc_ps,
                                   2 * timing.trefi_ps]
    assert [OPCODE_NAMES[op] for op in payload.opcode.tolist()] == [
        "WR", "RD", "CHK", "REF", "REF"]


def test_duplicate_labels_rejected_at_compile(timing):
    program = SoftMCProgram().check(0, 5).check(0, 5)
    with pytest.raises(ConfigError, match="duplicate read label"):
        program.compile(timing)


def test_multi_iteration_loop_reads_need_unique_labels(timing):
    body = SoftMCProgram().check(0, 5)
    program = SoftMCProgram().loop(2, body)
    with pytest.raises(ConfigError):
        program.run(payload_host())


def test_operand_interning_and_fuse_groups(timing):
    pattern = AllOnes()
    program = SoftMCProgram()
    for _ in range(4):
        program.hammer(0, ((100, 2), (102, 2)), HammerMode.INTERLEAVED)
    program.hammer(1, ((200, 2),), HammerMode.CASCADED)
    for _ in range(2):
        program.hammer(0, ((100, 2), (102, 2)), HammerMode.INTERLEAVED)
    program.write(0, 100, pattern).write(0, 102, pattern)
    payload = program.compile(timing)
    # Identical (bank, rows, mode) batches share one interned operand;
    # identical patterns (by content) likewise.
    assert len(payload.batches) == 2
    assert len(payload.patterns) == 1
    # Runs of >= 2 identical consecutive ACT commands become fusion
    # groups; the lone bank-1 hammer breaks the run.
    assert payload.fuse_groups == ((0, 4), (5, 2))


def test_multi_hammer_compiles_to_one_command(timing):
    program = SoftMCProgram().hammer_multi({0: [(10, 3)], 2: [(20, 4)]})
    payload = program.compile(timing)
    assert len(payload) == 1
    assert payload.opcode[0] == OP_MULTI
    assert len(payload.multis) == 1
    batches = payload.multis[0]
    assert [(batch.bank, batch.pattern) for batch in batches] == [
        (0, ((10, 3),)), (2, ((20, 4),))]


def test_unknown_instruction_rejected(timing):
    with pytest.raises(ConfigError, match="unknown instruction"):
        compile_program([object()], timing)


def test_counts_and_opcode_constants(timing):
    program = (SoftMCProgram()
               .write(0, 1, AllOnes())
               .hammer(0, ((5, 1),))
               .refresh(1)
               .wait(10)
               .check(0, 1))
    payload = program.compile(timing)
    assert payload.counts() == {"WR": 1, "ACT": 1, "REF": 1, "WAIT": 1,
                                "CHK": 1}
    assert payload.opcode.tolist() == [OP_WR, OP_ACT, OP_REF, OP_WAIT,
                                       OP_CHK]
