"""Batch executor: byte-identity with the per-command interpreter.

Every test compares the compiled engines (guarded and fused) against
the legacy per-command interpreter on identically-seeded hosts: same
read-backs, same mismatches, same ledger, same chip state to the float
bit, same trace bytes.
"""

from __future__ import annotations

import pytest

from repro.dram import HammerMode
from repro.faults import DEFAULT, FaultInjector
from repro.obs import CommandProfiler, Observability, traced
from repro.program import payloads_enabled
from repro.softmc import SoftMCProgram
from repro.trr import CounterBasedTrr

from .conftest import chip_state, mixed_program, payload_host, result_digest


def run_legacy(host, program):
    return program.run(host, compiled=False)


def run_guarded(host, program):
    return host.execute_payload(program.compile(host.timing), fuse=False)


def run_fused(host, program):
    return host.execute_payload(program.compile(host.timing), fuse=True)


@pytest.mark.parametrize("run_compiled", [run_guarded, run_fused],
                         ids=["guarded", "fused"])
def test_compiled_engines_match_per_command(run_compiled):
    program = mixed_program()
    reference_host = payload_host()
    reference = run_legacy(reference_host, program)
    host = payload_host()
    result = run_compiled(host, program)
    assert result_digest(result) == result_digest(reference)
    assert chip_state(host) == chip_state(reference_host)
    # The scan half of the workload must actually observe decay, or the
    # identity proves nothing.
    assert any(reference.mismatches.values())


def test_fusion_actually_fuses():
    """The fused path must exercise ``hammer_repeated``, not fall back."""
    program = mixed_program()
    host = payload_host()
    calls = []
    original = host._chip.hammer_repeated

    def spy(batch, repeats):
        calls.append(repeats)
        return original(batch, repeats)

    host._chip.hammer_repeated = spy
    run_fused(host, program)
    assert calls == [8] * 10


def test_vendor_trr_payloads_identical():
    """Stateful TRR blocks fusion; the guarded fallback stays exact."""
    program = mixed_program()
    reference_host = payload_host(CounterBasedTrr())
    reference = run_legacy(reference_host, program)
    host = payload_host(CounterBasedTrr())
    result = run_fused(host, program)
    assert result_digest(result) == result_digest(reference)
    assert chip_state(host) == chip_state(reference_host)


def test_fault_injector_payloads_identical():
    """Per-command fault draws survive compilation (fusion auto-off)."""
    program = mixed_program()

    def faulty_host():
        return payload_host(faults=FaultInjector(DEFAULT, seed=3))

    reference_host = faulty_host()
    reference = run_legacy(reference_host, program)
    host = faulty_host()
    result = host.execute_payload(program.compile(host.timing))
    assert result_digest(result) == result_digest(reference)
    assert chip_state(host) == chip_state(reference_host)


def test_traced_run_byte_identical(tmp_path):
    program = mixed_program()
    paths = {}
    for name, runner in (("legacy", run_legacy), ("fused", run_fused)):
        path = tmp_path / f"{name}.jsonl"
        obs = traced(path, manifest={"case": "payload-identity"})
        host = payload_host(obs=obs)
        runner(host, program)
        obs.finalize(host)
        paths[name] = path.read_bytes()
    assert paths["legacy"] == paths["fused"]


def test_interleaved_multibank_hammers_regroup(tmp_path):
    """hammer_multi commands keep their group stamps and bank order."""
    program = SoftMCProgram()
    for _ in range(3):
        program.hammer_multi({0: [(10, 2)], 1: [(20, 2)], 2: [(30, 2)]})
        program.hammer(3, ((40, 2),), HammerMode.CASCADED)
    traces = {}
    for name, runner in (("legacy", run_legacy), ("fused", run_fused)):
        path = tmp_path / f"{name}.jsonl"
        obs = traced(path, manifest={"case": "multibank"})
        host = payload_host(obs=obs)
        runner(host, program)
        obs.finalize(host)
        traces[name] = path.read_bytes()
        assert host.acts_per_bank == {0: 6, 1: 6, 2: 6, 3: 6}
    assert traces["legacy"] == traces["fused"]
    assert b'"mg":3' in traces["fused"]


def test_profiler_attributes_fused_commands_in_full():
    """A fused run of N ACT commands accounts N commands, not one."""
    program = mixed_program()
    counts = {}
    for name, runner in (("legacy", run_legacy), ("fused", run_fused)):
        profiler = CommandProfiler()
        host = payload_host(obs=Observability(profiler=profiler))
        runner(host, program)
        counts[name] = dict(profiler.counts)
    assert counts["fused"] == counts["legacy"]
    assert counts["fused"]["ACT"] == 8 * 10 + 1 + 1


def test_program_run_defaults_to_compiled(monkeypatch):
    monkeypatch.delenv("REPRO_PAYLOAD", raising=False)
    assert payloads_enabled()
    program = mixed_program()
    host = payload_host()
    compiled_calls = []
    original = host.execute_payload
    host.execute_payload = lambda payload, **kw: (
        compiled_calls.append(len(payload)) or original(payload, **kw))
    program.run(host)
    assert compiled_calls, "run() did not route through the executor"


def test_legacy_env_forces_per_command(monkeypatch):
    monkeypatch.setenv("REPRO_PAYLOAD", "legacy")
    assert not payloads_enabled()
    program = mixed_program()
    host = payload_host()
    host.execute_payload = None  # would explode if the payload path ran
    result = program.run(host)
    assert any(result.mismatches.values()) or result.mismatches
