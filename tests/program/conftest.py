"""Fixtures for compiled-payload tests: hosts and a mixed workload."""

from __future__ import annotations

from repro.dram import (AllOnes, AllZeros, DeviceConfig, DisturbanceConfig,
                        DramChip, HammerMode, RetentionConfig)
from repro.softmc import SoftMCHost, SoftMCProgram


def payload_host(trr=None, *, obs=None, faults=None, weak_mean=2.0,
                 serial=9) -> SoftMCHost:
    """A weak-cell-dense chip so scans produce non-empty mismatches."""
    config = DeviceConfig(
        name="payload-test", serial=serial, num_banks=4,
        rows_per_bank=4096, row_bits=1024, refresh_cycle_refs=1024,
        retention=RetentionConfig(weak_cells_per_row_mean=weak_mean,
                                  vrt_fraction=0.0),
        disturbance=DisturbanceConfig(hc_first=10_000))
    return SoftMCHost(DramChip(config, trr), obs=obs, faults=faults)


def mixed_program() -> SoftMCProgram:
    """Every instruction type, with fusible ACT runs and real decay.

    Ten rounds of eight identical double-sided hammers (a fusible run)
    plus a REF, bracketed by writes, a long wait, a multi-bank hammer,
    and per-row checks — the command mix every payload caller produces.
    """
    body = SoftMCProgram()
    for _ in range(8):
        body.hammer(0, ((1000, 6), (1002, 6)), HammerMode.INTERLEAVED)
    body.refresh(1)
    program = SoftMCProgram()
    for row in (999, 1000, 1001, 1002, 1003):
        program.write(0, row, AllOnes())
    program.write(1, 50, AllZeros())
    program.loop(10, body)
    program.hammer_multi({1: [(60, 3)], 2: [(70, 2)]})
    program.hammer(1, ((80, 4),), HammerMode.CASCADED)
    program.wait(int(256e9))
    for row in (999, 1001, 1003):
        program.check(0, row)
    program.read(1, 50, label="readback")
    program.refresh(2, at_nominal_rate=True)
    return program


def chip_state(host: SoftMCHost) -> tuple:
    """Full observable chip state, exact to the float bit."""
    chip = host._chip
    rows = []
    for index, bank in enumerate(chip.banks):
        for row, state in bank.rows.items():
            rows.append((index, row, int(state.last_recharge_ps),
                         float(state.disturbance),
                         tuple(state.fault_positions.tolist()),
                         tuple(state.fault_values.tolist())))
    return (host.now_ps, host.ref_count,
            tuple(sorted(host.acts_per_bank.items())),
            chip.stats.activates, chip.stats.refreshes,
            tuple(sorted(rows)))


def result_digest(result) -> tuple:
    return (result.started_ps, result.finished_ps,
            tuple(sorted((label, tuple(bits.tolist()))
                         for label, bits in result.rows.items())),
            tuple(sorted((label, tuple(positions))
                         for label, positions in
                         result.mismatches.items())))
