"""Deterministic seed derivation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.rng import SeedSequenceFactory, choice_without, derive_seed, stream

key_part = st.one_of(st.integers(-2**40, 2**40), st.text(max_size=20),
                     st.binary(max_size=20))


@given(st.lists(key_part, min_size=1, max_size=5))
def test_derive_seed_is_deterministic(parts):
    assert derive_seed(*parts) == derive_seed(*parts)


def test_derive_seed_distinguishes_types_and_order():
    assert derive_seed(1, "a") != derive_seed("a", 1)
    assert derive_seed("1") != derive_seed(1)
    assert derive_seed(b"x") != derive_seed("x")
    assert derive_seed(True) != derive_seed(1)


def test_derive_seed_no_concatenation_collision():
    # Length prefixes prevent ("ab", "c") colliding with ("a", "bc").
    assert derive_seed("ab", "c") != derive_seed("a", "bc")


def test_stream_reproducibility():
    a = stream("test", 1).integers(0, 1 << 30, size=16)
    b = stream("test", 1).integers(0, 1 << 30, size=16)
    assert np.array_equal(a, b)
    c = stream("test", 2).integers(0, 1 << 30, size=16)
    assert not np.array_equal(a, c)


def test_factory_roots_namespaces():
    f1 = SeedSequenceFactory("chip", 1)
    f2 = SeedSequenceFactory("chip", 2)
    assert f1.seed("x") != f2.seed("x")
    assert f1.child("sub").seed("x") == derive_seed("chip", 1, "sub", "x")


def test_choice_without_respects_exclusions():
    rng = stream("choice")
    exclude = set(range(0, 100, 2))
    picked = choice_without(rng, 0, 100, exclude, 20)
    assert len(picked) == 20
    assert len(set(picked)) == 20
    assert not set(picked) & exclude


def test_choice_without_rejects_impossible_request():
    rng = stream("choice2")
    with pytest.raises(ValueError):
        choice_without(rng, 0, 10, set(range(8)), 5)


def test_derive_seed_rejects_unknown_types():
    with pytest.raises(TypeError):
        derive_seed(object())  # type: ignore[arg-type]
