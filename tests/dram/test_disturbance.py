"""RowHammer disturbance model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.commands import ActBatch, HammerMode
from repro.dram.disturbance import DisturbanceConfig, generate_hammer_profile
from repro.errors import ConfigError
from repro.rng import SeedSequenceFactory

SEEDS = SeedSequenceFactory("disturbance-test")


def test_victims_default_blast_radius_two():
    config = DisturbanceConfig()
    victims = dict(config.victims_of(100, 1000))
    assert victims[99] == 1.0 and victims[101] == 1.0
    assert victims[98] == pytest.approx(0.025)
    assert victims[102] == pytest.approx(0.025)
    assert len(victims) == 4


def test_victims_clip_at_bank_edges():
    config = DisturbanceConfig()
    victims = dict(config.victims_of(0, 1000))
    assert set(victims) == {1, 2}
    victims = dict(config.victims_of(999, 1000))
    assert set(victims) == {997, 998}


def test_paired_coupling_only_odd_aggressors_disturb():
    config = DisturbanceConfig(paired_coupling=True)
    assert config.victims_of(101, 1000) == [(100, 1.0)]
    assert config.victims_of(100, 1000) == []


def test_effective_acts_interleaved_beats_cascaded():
    config = DisturbanceConfig(cascade_weight=0.35)
    interleaved = ActBatch(bank=0, pattern=((1, 1000), (3, 1000)),
                           mode=HammerMode.INTERLEAVED)
    cascaded = ActBatch(bank=0, pattern=((1, 1000), (3, 1000)),
                        mode=HammerMode.CASCADED)
    eff_i = config.effective_acts(interleaved)
    eff_c = config.effective_acts(cascaded)
    assert eff_i[1] == pytest.approx(1000.0)  # every ACT at full strength
    assert eff_c[1] == pytest.approx(1 + 999 * 0.35)
    assert eff_i[1] > eff_c[1]


def test_blast_radius_property():
    config = DisturbanceConfig(neighbor_weights={1: 1.0, 2: 0.0, 3: 0.1})
    assert config.blast_radius == 3
    assert DisturbanceConfig().blast_radius == 2


def test_profile_generation_deterministic_and_calibrated():
    config = DisturbanceConfig(hc_first=20_000)
    a = generate_hammer_profile(SEEDS, 0, 5, config, 8192)
    b = generate_hammer_profile(SEEDS, 0, 5, config, 8192)
    assert np.array_equal(a.thresholds, b.thresholds)
    # Weakest cell sits at the row base: ~2x HC_first x lognormal factor.
    assert a.base_threshold >= 2 * 20_000 * 0.5
    assert a.base_threshold <= 2 * 20_000 * 3.0


def test_bank_minimum_threshold_approximates_hc_first():
    config = DisturbanceConfig(hc_first=20_000)
    minima = [generate_hammer_profile(SEEDS, 0, row, config, 8192
                                      ).base_threshold
              for row in range(2000)]
    bank_min = min(minima)
    # Double-sided HC_first = bank_min / 2 should land near hc_first.
    assert 0.85 * 20_000 <= bank_min / 2 <= 1.6 * 20_000


def test_flip_count_grows_with_hammers():
    config = DisturbanceConfig(hc_first=10_000)
    profile = generate_hammer_profile(SEEDS, 1, 7, config, 8192)
    low = profile.flip_count_at(profile.base_threshold)
    high = profile.flip_count_at(profile.base_threshold * 3)
    assert low >= 1
    assert high > low
    assert profile.flip_count_at(0) == 0


def test_flipped_cells_respect_polarity():
    config = DisturbanceConfig(hc_first=10_000, victim_cells_mean=40)
    profile = generate_hammer_profile(SEEDS, 2, 9, config, 8192)
    everything = profile.flipped_cells(profile.thresholds.max())
    assert len(everything) == len(profile)
    none = profile.flipped_cells(profile.thresholds.max(),
                                 1 - profile.polarity)
    assert len(none) == 0


def test_positions_within_row():
    config = DisturbanceConfig(victim_cells_mean=200)
    profile = generate_hammer_profile(SEEDS, 3, 11, config, 1024)
    assert (profile.positions >= 0).all()
    assert (profile.positions < 1024).all()


def test_config_validation():
    with pytest.raises(ConfigError):
        DisturbanceConfig(hc_first=0)
    with pytest.raises(ConfigError):
        DisturbanceConfig(cascade_weight=0.0)
    with pytest.raises(ConfigError):
        DisturbanceConfig(neighbor_weights={})
    with pytest.raises(ConfigError):
        DisturbanceConfig(neighbor_weights={-1: 1.0})
    with pytest.raises(ConfigError):
        DisturbanceConfig(cluster_fraction=2.0)
