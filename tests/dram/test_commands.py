"""ActBatch ordering semantics (row_at, run_stats)."""

from __future__ import annotations

import pytest
from hypothesis import assume, given
from hypothesis import strategies as st

from repro.dram.commands import ActBatch, HammerMode, single_row_batch
from repro.errors import ConfigError


def expand(batch: ActBatch) -> list[int]:
    """Reference expansion of the exact ACT sequence."""
    if batch.mode is HammerMode.CASCADED:
        sequence = []
        for row, count in batch.pattern:
            sequence.extend([row] * count)
        return sequence
    remaining = [[row, count] for row, count in batch.pattern]
    sequence = []
    while any(count > 0 for _, count in remaining):
        for entry in remaining:
            if entry[1] > 0:
                sequence.append(entry[0])
                entry[1] -= 1
    return sequence


def _valid(pattern, mode):
    if sum(count for _, count in pattern) == 0:
        return False
    if mode is HammerMode.INTERLEAVED:
        rows = [row for row, _ in pattern]
        return len(set(rows)) == len(rows)
    return True


patterns = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 12)),
    min_size=1, max_size=5,
)


@given(patterns, st.sampled_from(list(HammerMode)), st.data())
def test_row_at_matches_reference_expansion(pattern, mode, data):
    assume(_valid(pattern, mode))
    batch = ActBatch(bank=0, pattern=tuple(pattern), mode=mode)
    sequence = expand(batch)
    assert batch.total == len(sequence)
    index = data.draw(st.integers(0, len(sequence) - 1))
    assert batch.row_at(index) == sequence[index]


@given(patterns, st.sampled_from(list(HammerMode)))
def test_run_stats_matches_reference_expansion(pattern, mode):
    assume(_valid(pattern, mode))
    batch = ActBatch(bank=0, pattern=tuple(pattern), mode=mode)
    sequence = expand(batch)
    runs: dict[int, int] = {}
    acts: dict[int, int] = {}
    previous = None
    for row in sequence:
        acts[row] = acts.get(row, 0) + 1
        if row != previous:
            runs[row] = runs.get(row, 0) + 1
        previous = row
    stats = batch.run_stats()
    assert stats == {row: (runs[row], acts[row]) for row in acts}


def test_interleaved_two_rows_alternate():
    batch = ActBatch(bank=0, pattern=((5, 3), (9, 3)),
                     mode=HammerMode.INTERLEAVED)
    assert [batch.row_at(i) for i in range(6)] == [5, 9, 5, 9, 5, 9]


def test_interleaved_unequal_counts_tail_is_solo():
    batch = ActBatch(bank=0, pattern=((1, 2), (2, 5)),
                     mode=HammerMode.INTERLEAVED)
    assert [batch.row_at(i) for i in range(7)] == [1, 2, 1, 2, 2, 2, 2]
    # Tail of row 2 merges with its last alternating slot: runs at
    # indices 1 and 3-6 -> two runs total.
    assert batch.run_stats()[2] == (2, 5)
    assert batch.run_stats()[1] == (2, 2)


def test_cascaded_adjacent_same_row_entries_merge_runs():
    batch = ActBatch(bank=0, pattern=((7, 3), (7, 4)),
                     mode=HammerMode.CASCADED)
    assert batch.run_stats() == {7: (1, 7)}


def test_counts_by_row_aggregates_duplicates():
    batch = ActBatch(bank=0, pattern=((1, 2), (2, 3), (1, 4)))
    assert batch.counts_by_row() == {1: 6, 2: 3}


def test_row_at_bounds_checked():
    batch = single_row_batch(0, 3, 5)
    with pytest.raises(IndexError):
        batch.row_at(5)
    with pytest.raises(IndexError):
        batch.row_at(-1)


def test_invalid_batches_rejected():
    with pytest.raises(ConfigError):
        ActBatch(bank=0, pattern=())
    with pytest.raises(ConfigError):
        ActBatch(bank=0, pattern=((1, -2),))
    with pytest.raises(ConfigError):
        ActBatch(bank=0, pattern=((1, 2), (1, 3)),
                 mode=HammerMode.INTERLEAVED)
