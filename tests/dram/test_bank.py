"""Bank fault physics: settle-on-observe, recharge, sparse faults."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.bank import Bank
from repro.dram.commands import ActBatch, HammerMode
from repro.dram.disturbance import DisturbanceConfig
from repro.dram.patterns import AllOnes, AllZeros
from repro.dram.refresh import RefreshEngine
from repro.dram.retention import RetentionConfig
from repro.errors import ConfigError
from repro.rng import SeedSequenceFactory
from repro.units import ms

BIG = np.iinfo(np.int64).max


def make_bank(retention=None, disturbance=None, num_rows=2048,
              row_bits=1024, cycle=256, serial=0):
    engine = RefreshEngine(num_rows, cycle)
    bank = Bank(0, num_rows, row_bits,
                retention or RetentionConfig(weak_cells_per_row_mean=0.4,
                                             vrt_fraction=0.0),
                disturbance or DisturbanceConfig(hc_first=5_000),
                SeedSequenceFactory("bank-test", serial), engine)
    return bank, engine


def find_weak_row(bank, pattern=AllOnes(), limit=2048, max_ms=5000):
    for row in range(limit):
        retention = bank.true_retention_ps(row, pattern)
        if retention < ms(max_ms):
            return row, retention
    raise AssertionError("no weak row found")


def test_write_read_roundtrip():
    bank, _ = make_bank()
    bank.write(10, AllOnes(), now_ps=0)
    bits = bank.read(10, now_ps=1)
    assert bits.sum() == bank.row_bits


def test_retention_decay_exactly_at_threshold():
    bank, _ = make_bank()
    row, retention = find_weak_row(bank)
    bank.write(row, AllOnes(), now_ps=0)
    assert bank.read_mismatches(row, now_ps=retention - 1) == []
    bank.write(row, AllOnes(), now_ps=retention)
    assert bank.read_mismatches(row, now_ps=2 * retention) != []


def test_read_recharges_row():
    bank, _ = make_bank()
    row, retention = find_weak_row(bank)
    bank.write(row, AllOnes(), now_ps=0)
    half = retention // 2
    assert bank.read_mismatches(row, now_ps=half) == []
    # The read at `half` restored charge: surviving another `half+1` only
    # fails if elapsed-since-read exceeds retention.
    assert bank.read_mismatches(row, now_ps=half + retention - 1) == []
    assert bank.read_mismatches(row, now_ps=2 * half + 2 * retention) != []


def test_refresh_after_decay_preserves_decayed_value():
    bank, _ = make_bank()
    row, retention = find_weak_row(bank)
    bank.write(row, AllOnes(), now_ps=0)
    # Let the row decay past its retention, then refresh it: the refresh
    # must restore the *decayed* data (footnote 4 of the paper).
    bank.refresh_rows([row], now_ps=retention + 1)
    mismatches = bank.read_mismatches(row, now_ps=retention + 2)
    assert mismatches != []


def test_refresh_before_decay_prevents_failure():
    bank, _ = make_bank()
    row, retention = find_weak_row(bank)
    bank.write(row, AllOnes(), now_ps=0)
    bank.refresh_rows([row], now_ps=retention // 2)
    assert bank.read_mismatches(row, now_ps=retention + retention // 4) == []


def test_hammer_disturbance_accumulates_and_flips():
    bank, _ = make_bank()
    victim = 300
    threshold = bank.true_min_hammer_threshold(victim, AllOnes())
    bank.write(victim, AllOnes(), now_ps=0)
    per_side = int(threshold / 2) + 1
    batch = ActBatch(bank=0, pattern=((victim - 1, per_side),
                                      (victim + 1, per_side)),
                     mode=HammerMode.INTERLEAVED)
    bank.absorb_hammering(batch, now_ps=1000)
    assert bank.read_mismatches(victim, now_ps=2000) != []


def test_victim_refresh_resets_disturbance():
    bank, _ = make_bank()
    victim = 300
    threshold = bank.true_min_hammer_threshold(victim, AllOnes())
    bank.write(victim, AllOnes(), now_ps=0)
    per_side = int(threshold / 2 * 0.7)
    batch = ActBatch(bank=0, pattern=((victim - 1, per_side),
                                      (victim + 1, per_side)),
                     mode=HammerMode.INTERLEAVED)
    bank.absorb_hammering(batch, now_ps=100)
    bank.refresh_rows([victim], now_ps=200)  # TRR-style victim refresh
    bank.absorb_hammering(batch, now_ps=300)
    # Neither burst alone crosses the threshold.
    assert bank.read_mismatches(victim, now_ps=400) == []


def test_unrefreshed_victim_accumulates_across_bursts():
    bank, _ = make_bank()
    victim = 300
    threshold = bank.true_min_hammer_threshold(victim, AllOnes())
    bank.write(victim, AllOnes(), now_ps=0)
    per_side = int(threshold / 2 * 0.7)
    batch = ActBatch(bank=0, pattern=((victim - 1, per_side),
                                      (victim + 1, per_side)),
                     mode=HammerMode.INTERLEAVED)
    bank.absorb_hammering(batch, now_ps=100)
    bank.absorb_hammering(batch, now_ps=300)
    assert bank.read_mismatches(victim, now_ps=400) != []


def test_aggressor_is_recharged_not_disturbed():
    bank, _ = make_bank()
    row, retention = find_weak_row(bank)
    bank.write(row, AllOnes(), now_ps=0)
    # Hammering the weak row itself keeps recharging it.
    batch = ActBatch(bank=0, pattern=((row, 10),))
    bank.absorb_hammering(batch, now_ps=retention - 1)
    assert bank.read_mismatches(row, now_ps=2 * retention - 2) == []


def test_regular_refresh_slot_covers_tracked_rows():
    bank, engine = make_bank()
    row, retention = find_weak_row(bank)
    bank.write(row, AllOnes(), now_ps=0)
    slot = engine.slot_of(row)
    bank.regular_refresh(slot, now_ps=retention - 1)
    assert bank.read_mismatches(row, now_ps=2 * retention - 2) == []


def test_lazy_materialization_uses_engine_epoch():
    bank, engine = make_bank()
    # Run the engine for a while before ever touching the row.
    target_time = 123456789
    for i in range(engine.cycle_refs):
        engine.on_ref(target_time + i)
    row = 100
    state = bank.state(row)
    assert state.last_recharge_ps == target_time + engine.slot_of(row)


def test_write_clears_prior_faults():
    bank, _ = make_bank()
    row, retention = find_weak_row(bank)
    bank.write(row, AllOnes(), now_ps=0)
    assert bank.read_mismatches(row, now_ps=2 * retention) != []
    bank.write(row, AllOnes(), now_ps=3 * retention)
    assert bank.read_mismatches(row, now_ps=3 * retention + 10) == []


def test_mismatches_only_against_current_pattern():
    bank, _ = make_bank()
    row, retention = find_weak_row(bank, AllOnes())
    # Store the complement pattern: the weak cell's polarity may not be
    # exposed, so flips differ between patterns.
    bank.write(row, AllZeros(), now_ps=0)
    zeros_flips = bank.read_mismatches(row, now_ps=2 * retention)
    bank.write(row, AllOnes(), now_ps=4 * retention)
    ones_flips = bank.read_mismatches(row, now_ps=6 * retention)
    assert ones_flips != [] or zeros_flips != []


def test_out_of_range_rows_rejected():
    bank, _ = make_bank()
    with pytest.raises(ConfigError):
        bank.state(5000)
    with pytest.raises(ConfigError):
        bank.absorb_hammering(ActBatch(bank=0, pattern=((5000, 10),)), 0)
