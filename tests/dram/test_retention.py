"""Retention model: weak cells, polarity, VRT, temperature."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram.retention import RetentionConfig, generate_profile
from repro.errors import ConfigError
from repro.rng import SeedSequenceFactory
from repro.units import ms

SEEDS = SeedSequenceFactory("retention-test")
ROW_BITS = 4096


def profile_with_cells(config: RetentionConfig, min_cells: int = 1):
    """Scan rows until one has at least *min_cells* weak cells."""
    for row in range(10_000):
        profile = generate_profile(SEEDS, 0, row, config, ROW_BITS)
        if len(profile) >= min_cells:
            return profile
    raise AssertionError("no weak row found")


def test_generation_is_deterministic():
    config = RetentionConfig(weak_cells_per_row_mean=2.0)
    a = generate_profile(SEEDS, 1, 42, config, ROW_BITS)
    b = generate_profile(SEEDS, 1, 42, config, ROW_BITS)
    assert np.array_equal(a.positions, b.positions)
    assert np.array_equal(a.base_retention_ps, b.base_retention_ps)
    c = generate_profile(SEEDS, 1, 43, config, ROW_BITS)
    assert (len(a) != len(c)
            or not np.array_equal(a.base_retention_ps, c.base_retention_ps))


def test_retention_times_within_configured_range():
    config = RetentionConfig(weak_cells_per_row_mean=3.0,
                             min_retention_ms=100, max_retention_ms=500)
    profile = profile_with_cells(config, min_cells=2)
    assert (profile.base_retention_ps >= ms(100)).all()
    assert (profile.base_retention_ps <= ms(500)).all()


def test_failed_cells_threshold_semantics():
    config = RetentionConfig(weak_cells_per_row_mean=3.0, vrt_fraction=0.0)
    profile = profile_with_cells(config, min_cells=2)
    shortest = int(profile.base_retention_ps.min())
    assert len(profile.failed_cells(shortest - 1)) == 0
    assert len(profile.failed_cells(shortest)) >= 1
    assert len(profile.failed_cells(int(profile.base_retention_ps.max()))
               ) == len(profile)


def test_polarity_gates_failures():
    config = RetentionConfig(weak_cells_per_row_mean=5.0, vrt_fraction=0.0)
    profile = profile_with_cells(config, min_cells=3)
    elapsed = int(profile.base_retention_ps.max())
    # Store exactly the charged polarity -> all cells fail.
    assert len(profile.failed_cells(elapsed, profile.polarity.copy())
               ) == len(profile)
    # Store the complement -> no cell is exposed.
    assert len(profile.failed_cells(elapsed, 1 - profile.polarity)) == 0


def test_vrt_toggle_changes_effective_retention():
    config = RetentionConfig(weak_cells_per_row_mean=4.0, vrt_fraction=1.0,
                             vrt_ratio_range=(0.3, 0.3))
    profile = profile_with_cells(config, min_cells=2)
    assert profile.is_vrt.all()
    base = profile.current_retention_ps.copy()
    profile.vrt_state[:] = True
    alt = profile.current_retention_ps
    assert (alt < base).all()
    np.testing.assert_allclose(alt / base, 0.3, rtol=0.01)


def test_vrt_toggling_is_stochastic_but_bounded():
    config = RetentionConfig(weak_cells_per_row_mean=8.0, vrt_fraction=1.0)
    profile = profile_with_cells(config, min_cells=4)
    rng = np.random.default_rng(7)
    toggles = 0
    for _ in range(200):
        before = profile.vrt_state.copy()
        profile.toggle_vrt(rng, 0.5)
        toggles += int((before != profile.vrt_state).sum())
    assert toggles > 0
    # Probability 0 never toggles.
    before = profile.vrt_state.copy()
    profile.toggle_vrt(rng, 0.0)
    assert np.array_equal(before, profile.vrt_state)


def test_non_vrt_cells_never_toggle():
    config = RetentionConfig(weak_cells_per_row_mean=5.0, vrt_fraction=0.0)
    profile = profile_with_cells(config, min_cells=2)
    rng = np.random.default_rng(3)
    profile.toggle_vrt(rng, 1.0)
    assert not profile.vrt_state.any()


def test_temperature_factor_halves_per_10c():
    hot = RetentionConfig(temperature_c=95.0)
    cold = RetentionConfig(temperature_c=75.0)
    ref = RetentionConfig(temperature_c=85.0)
    assert ref.temperature_factor() == pytest.approx(1.0)
    assert hot.temperature_factor() == pytest.approx(0.5)
    assert cold.temperature_factor() == pytest.approx(2.0)


def test_min_retention_sentinel_for_strong_rows():
    config = RetentionConfig(weak_cells_per_row_mean=0.0)
    profile = generate_profile(SEEDS, 0, 0, config, ROW_BITS)
    assert len(profile) == 0
    assert profile.min_retention_ps() == np.iinfo(np.int64).max


def test_config_validation():
    with pytest.raises(ConfigError):
        RetentionConfig(weak_cells_per_row_mean=-1)
    with pytest.raises(ConfigError):
        RetentionConfig(min_retention_ms=100, max_retention_ms=50)
    with pytest.raises(ConfigError):
        RetentionConfig(vrt_fraction=1.5)
    with pytest.raises(ConfigError):
        RetentionConfig(vrt_ratio_range=(0.0, 0.5))
