"""DDR4 timing parameters and derived budgets."""

from __future__ import annotations

import pytest

from repro.dram.timing import DDR4_DEFAULT, TimingParameters
from repro.errors import ConfigError
from repro.units import ns, us


def test_default_row_cycle_is_50ns():
    assert DDR4_DEFAULT.trc_ps == ns(50)


def test_hammers_per_ref_interval_matches_paper_footnote_10():
    # (7.8 us - 350 ns) / 50 ns = 149 hammers between two REFs.
    assert DDR4_DEFAULT.hammers_per_ref_interval() == 149


def test_hammer_duration_scales_linearly():
    assert DDR4_DEFAULT.hammer_duration_ps(0) == 0
    assert DDR4_DEFAULT.hammer_duration_ps(100) == 100 * ns(50)


def test_hammer_duration_rejects_negative():
    with pytest.raises(ConfigError):
        DDR4_DEFAULT.hammer_duration_ps(-1)


def test_multi_bank_hammering_is_tfaw_limited():
    # 4 banks x N hammers each = 4N ACTs; tFAW allows 4 ACTs per 160 ns,
    # so the whole burst takes ~N * 160 ns — slower per bank than the
    # single-bank tRC bound of N * 50 ns.
    single = DDR4_DEFAULT.multi_bank_hammer_duration_ps(100, 1)
    quad = DDR4_DEFAULT.multi_bank_hammer_duration_ps(100, 4)
    assert single == 100 * ns(50)
    assert quad == 100 * ns(160)


def test_multi_bank_hammering_rejects_more_than_four_banks():
    with pytest.raises(ConfigError):
        DDR4_DEFAULT.multi_bank_hammer_duration_ps(10, 5)


def test_invalid_timing_values_rejected():
    with pytest.raises(ConfigError):
        TimingParameters(tras_ps=0)
    with pytest.raises(ConfigError):
        TimingParameters(trefi_ps=ns(100))  # below tRFC


def test_custom_timing_changes_budget():
    fast = TimingParameters(tras_ps=ns(30), trp_ps=ns(10))
    assert fast.trc_ps == ns(40)
    assert fast.hammers_per_ref_interval() == (us(7.8) - ns(350)) // ns(40)
