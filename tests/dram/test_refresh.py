"""Regular-refresh slot arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.refresh import RefreshEngine
from repro.errors import ConfigError


def test_slots_partition_all_rows():
    engine = RefreshEngine(num_rows=1000, cycle_refs=64)
    covered = []
    for slot in range(64):
        covered.extend(engine.rows_in_slot(slot))
    assert covered == list(range(1000))


@given(st.integers(1, 5000), st.integers(1, 300))
def test_slot_of_consistent_with_rows_in_slot(num_rows, cycle_refs):
    cycle_refs = min(cycle_refs, num_rows)
    engine = RefreshEngine(num_rows, cycle_refs)
    for row in (0, num_rows // 2, num_rows - 1):
        slot = engine.slot_of(row)
        assert row in engine.rows_in_slot(slot)


def test_on_ref_round_robin_and_timestamps():
    engine = RefreshEngine(num_rows=100, cycle_refs=10)
    for i in range(25):
        slot = engine.on_ref(now_ps=1000 + i)
        assert slot == i % 10
    # Slot 4 was last refreshed at REF index 24 (time 1000+24).
    assert engine.last_regular_refresh_ps(engine.rows_in_slot(4)[0]) == 1024
    # Slot 5 was last hit at REF index 15.
    assert engine.last_regular_refresh_ps(engine.rows_in_slot(5)[0]) == 1015


def test_unrefreshed_rows_report_epoch():
    engine = RefreshEngine(num_rows=100, cycle_refs=10)
    assert engine.last_regular_refresh_ps(50) == 0
    engine.on_ref(now_ps=7)
    assert engine.last_regular_refresh_ps(0) == 7
    assert engine.last_regular_refresh_ps(99) == 0


def test_refs_until_row():
    engine = RefreshEngine(num_rows=100, cycle_refs=10)
    # Row 0 is in slot 0, due on the very next REF.
    assert engine.refs_until_row(0) == 1
    engine.on_ref(0)
    # Slot 0 just passed; now 10 REFs away.
    assert engine.refs_until_row(0) == 10
    assert engine.refs_until_row(99) == 9  # slot 9


def test_validation():
    with pytest.raises(ConfigError):
        RefreshEngine(0, 1)
    with pytest.raises(ConfigError):
        RefreshEngine(10, 0)
    with pytest.raises(ConfigError):
        RefreshEngine(10, 20)  # more slots than rows
    engine = RefreshEngine(10, 5)
    with pytest.raises(ConfigError):
        engine.slot_of(10)
    with pytest.raises(ConfigError):
        engine.rows_in_slot(5)
