"""Row data patterns."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.patterns import (AllOnes, AllZeros, ByteFill, Checkerboard,
                                 CustomPattern, inverted)
from repro.errors import ConfigError

ALL_PATTERNS = [AllOnes(), AllZeros(), Checkerboard(0), Checkerboard(1),
                ByteFill(0x55), ByteFill(0xA3)]


@pytest.mark.parametrize("pattern", ALL_PATTERNS, ids=lambda p: repr(p))
def test_bits_at_consistent_with_full(pattern):
    positions = np.array([0, 1, 7, 8, 9, 63, 64, 100], dtype=np.int64)
    full = pattern.full(128)
    assert np.array_equal(pattern.bits_at(positions), full[positions])


def test_all_ones_and_zeros():
    assert AllOnes().full(64).sum() == 64
    assert AllZeros().full(64).sum() == 0


def test_checkerboard_phases_are_complementary():
    a = Checkerboard(0).full(64)
    b = Checkerboard(1).full(64)
    assert np.array_equal(a ^ b, np.ones(64, dtype=np.uint8))


def test_byte_fill_bit_order_is_lsb_first():
    bits = ByteFill(0x01).full(16)
    assert bits[0] == 1 and bits[8] == 1
    assert bits[1:8].sum() == 0


@given(st.integers(0, 255))
def test_byte_fill_reconstructs_value(value):
    bits = ByteFill(value).full(8)
    assert sum(int(b) << i for i, b in enumerate(bits)) == value


def test_custom_pattern_roundtrip_and_validation():
    bits = np.array([1, 0, 1, 1], dtype=np.uint8)
    pattern = CustomPattern(bits)
    assert np.array_equal(pattern.full(4), bits)
    with pytest.raises(ConfigError):
        pattern.full(8)  # wrong row size
    with pytest.raises(ConfigError):
        CustomPattern(np.array([2, 0]))


def test_inverted_complements_pattern():
    inv = inverted(Checkerboard(0), 32)
    assert np.array_equal(inv.full(32), Checkerboard(1).full(32))


def test_pattern_equality_and_hash():
    assert AllOnes() == AllOnes()
    assert Checkerboard(0) != Checkerboard(1)
    assert ByteFill(0x55) == ByteFill(0x55)
    assert hash(ByteFill(7)) == hash(ByteFill(7))
    assert AllOnes() != AllZeros()


def test_inverted_of_custom_pattern():
    bits = np.array([1, 0, 1, 1, 0, 0, 1, 0] * 8, dtype=np.uint8)
    inv = inverted(CustomPattern(bits), 64)
    assert np.array_equal(inv.full(64), 1 - bits)
    # Double inversion restores the original.
    assert np.array_equal(inverted(inv, 64).full(64), bits)
