"""Raw command primitives (the DdrBus substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dram import AllOnes, Checkerboard, DramChip
from repro.trr import CounterBasedTrr
from repro.units import ms


@pytest.fixture
def chip(small_config):
    return DramChip(small_config, CounterBasedTrr())


def test_raw_ops_do_not_advance_the_clock(chip):
    start = chip.now_ps
    chip.raw_activate(0, 100)
    chip.raw_write(0, 100, AllOnes())
    chip.raw_read(0, 100)
    chip.raw_refresh()
    assert chip.now_ps == start


def test_raw_write_read_roundtrip(chip):
    chip.raw_activate(0, 7)
    chip.raw_write(0, 7, Checkerboard(1))
    bits = chip.raw_read(0, 7)
    assert np.array_equal(bits, Checkerboard(1).full(chip.config.row_bits))


def test_raw_activate_recharges_and_feeds_trr(chip):
    # Recharge: activation resets the retention clock.
    weak = next(row for row in range(chip.config.rows_per_bank)
                if chip.true_retention_ps(0, row, AllOnes()) < ms(3000))
    retention = chip.true_retention_ps(0, weak, AllOnes())
    chip.raw_activate(0, weak)
    chip.raw_write(0, weak, AllOnes())
    chip.wait(retention // 2)
    chip.raw_activate(0, weak)  # recharge mid-way
    chip.wait(retention - retention // 4)
    chip.raw_activate(0, weak)
    assert int(chip.raw_read(0, weak).sum()) == chip.config.row_bits
    # TRR ingestion: enough raw ACTs insert the row into the table.
    for _ in range(10):
        chip.raw_activate(0, 500)
    table = chip.trr._tables[0]
    assert any(entry.row == chip.mapping.to_physical(500)
               for entry in table.entries)


def test_raw_refresh_advances_regular_slots(chip):
    cycle = chip.config.refresh_cycle_refs
    before = chip.refresh_engine.total_refs
    for _ in range(cycle):
        chip.raw_refresh()
    assert chip.refresh_engine.total_refs == before + cycle
    assert chip.stats.refreshes == cycle


def test_raw_refresh_triggers_trr(chip):
    chip.raw_activate(0, 100)
    for _ in range(9):
        chip.raw_activate(0, 300)
    # Insert a trackable aggressor, then enough REFs for a capable one.
    before = chip.stats.trr_refreshes
    for _ in range(20):
        chip.raw_refresh()
    assert chip.stats.trr_refreshes > before
