"""Chip-level behaviour: clock, logical addressing, refresh, TRR hook."""

from __future__ import annotations

import pytest

from repro.dram import (ActBatch, AllOnes, DeviceConfig, DisturbanceConfig,
                        DramChip, HammerMode, RetentionConfig)
from repro.errors import ConfigError
from repro.trr import CounterBasedTrr
from repro.units import ms, us


def find_weak_row(chip, bank=0, limit=2048, max_ms=5000):
    for row in range(limit):
        retention = chip.true_retention_ps(bank, row, AllOnes())
        if retention < ms(max_ms):
            return row, retention
    raise AssertionError("no weak row found")


def test_clock_advances_with_operations(chip):
    start = chip.now_ps
    chip.write_row(0, 5, AllOnes())
    after_write = chip.now_ps
    assert after_write > start
    chip.wait(ms(1))
    assert chip.now_ps == after_write + ms(1)
    chip.refresh()
    assert chip.now_ps == after_write + ms(1) + chip.config.timing.trfc_ps


def test_wait_rejects_negative(chip):
    with pytest.raises(ConfigError):
        chip.wait(-1)


def test_refresh_spacing(chip):
    start = chip.now_ps
    chip.refresh(count=10, spacing_ps=us(7.8))
    assert chip.now_ps == start + 10 * us(7.8)
    with pytest.raises(ConfigError):
        chip.refresh(spacing_ps=100)  # below tRFC


def test_retention_side_channel_end_to_end(chip):
    row, retention = find_weak_row(chip)
    chip.write_row(0, row, AllOnes())
    chip.wait(retention // 2)
    assert chip.read_row_mismatches(0, row) == []
    chip.write_row(0, row, AllOnes())
    chip.wait(retention + ms(1))
    assert chip.read_row_mismatches(0, row) != []


def test_regular_refresh_keeps_weak_row_alive(chip):
    row, retention = find_weak_row(chip)
    chip.write_row(0, row, AllOnes())
    cycle = chip.config.refresh_cycle_refs
    # Space REFs so a full pass takes half the row's retention time.
    spacing = max(retention // (2 * cycle), chip.config.timing.trfc_ps)
    chip.refresh(count=4 * cycle, spacing_ps=spacing)
    assert chip.now_ps >= 2 * retention  # long enough to fail unrefreshed
    assert chip.read_row_mismatches(0, row) == []


def test_double_sided_hammer_flips_bits(chip):
    victim = 512
    threshold = chip.true_min_hammer_threshold(0, victim, AllOnes())
    chip.write_row(0, victim, AllOnes())
    per_side = int(threshold / 2) + 1
    chip.hammer(ActBatch(bank=0, pattern=((victim - 1, per_side),
                                          (victim + 1, per_side)),
                         mode=HammerMode.INTERLEAVED))
    assert chip.read_row_mismatches(0, victim) != []


def test_hammer_advances_clock(chip):
    start = chip.now_ps
    chip.hammer(ActBatch(bank=0, pattern=((10, 100),)))
    assert chip.now_ps == start + 100 * chip.config.timing.trc_ps


def test_hammer_multi_requires_distinct_banks(chip):
    batch0 = ActBatch(bank=0, pattern=((10, 5),))
    batch0b = ActBatch(bank=0, pattern=((20, 5),))
    with pytest.raises(ConfigError):
        chip.hammer_multi([batch0, batch0b])


def test_hammer_multi_tfaw_time(chip):
    start = chip.now_ps
    batches = [ActBatch(bank=b, pattern=((100, 50),)) for b in range(4)]
    chip.hammer_multi(batches)
    assert chip.now_ps == start + 50 * chip.config.timing.tfaw_ps


def test_mapping_applied_to_hammering(small_config):
    # With bit_swap_0_1 mapping, logical rows 1 and 2 are physical 2 and 1.
    config = small_config.scaled(mapping_scheme="bit_swap_0_1")
    chip = DramChip(config)
    # Hammer logical row 4 (physical 4) -> physical victims 3 and 5, which
    # are logical 3 and 6 respectively under the swap.
    threshold = chip.true_min_hammer_threshold(
        0, chip.mapping.to_logical(3), AllOnes())
    # Single-sided cascaded hammering: effective acts ~ cascade_weight x raw.
    count = int(threshold * 3) + 10
    logical_victim = chip.mapping.to_logical(3)
    chip.write_row(0, logical_victim, AllOnes())
    chip.hammer(ActBatch(bank=0, pattern=((4, count),)))
    assert chip.read_row_mismatches(0, logical_victim) != []


def test_trr_protects_victims_but_no_trr_does_not(small_config):
    def run(trr):
        chip = DramChip(small_config, trr)
        victim = 512
        threshold = chip.true_min_hammer_threshold(0, victim, AllOnes())
        chip.write_row(0, victim, AllOnes())
        per_side = int(threshold / 2 * 0.6)
        batch = ActBatch(bank=0, pattern=((victim - 1, per_side),
                                          (victim + 1, per_side)),
                         mode=HammerMode.INTERLEAVED)
        # Two bursts with plenty of REFs between: TRR gets its chance.
        chip.hammer(batch)
        chip.refresh(count=50)
        chip.hammer(batch)
        return chip.read_row_mismatches(0, victim)

    assert run(None) != []          # accumulates across bursts
    assert run(CounterBasedTrr()) == []  # TRR refresh resets the victim


def test_stats_counters(chip):
    chip.write_row(0, 1, AllOnes())
    chip.read_row(0, 1)
    chip.hammer(ActBatch(bank=0, pattern=((5, 10),)))
    chip.refresh(count=3)
    snapshot = chip.stats.snapshot()
    assert snapshot["row_writes"] == 1
    assert snapshot["row_reads"] == 1
    assert snapshot["activates"] == 12  # 1 write + 1 read + 10 hammers
    assert snapshot["refreshes"] == 3


def test_bank_bounds_checked(chip):
    with pytest.raises(ConfigError):
        chip.write_row(99, 0, AllOnes())


def test_device_config_validation():
    with pytest.raises(ConfigError):
        DeviceConfig(num_banks=0)
    with pytest.raises(ConfigError):
        DeviceConfig(row_bits=100)  # not a multiple of 64
    config = DeviceConfig(rows_per_bank=1024, refresh_cycle_refs=512)
    assert config.scaled(rows_per_bank=2048).rows_per_bank == 2048


def test_chips_with_same_serial_are_replicas():
    config = DeviceConfig(name="replica", serial=9, rows_per_bank=1024,
                          num_banks=2, row_bits=512, refresh_cycle_refs=256,
                          retention=RetentionConfig(
                              weak_cells_per_row_mean=0.5),
                          disturbance=DisturbanceConfig(hc_first=5_000))
    a = DramChip(config)
    b = DramChip(config)
    for row in range(0, 1024, 97):
        assert (a.true_retention_ps(0, row, AllOnes())
                == b.true_retention_ps(0, row, AllOnes()))
        assert (a.true_min_hammer_threshold(0, row)
                == b.true_min_hammer_threshold(0, row))
