"""Chip-level invariants under arbitrary operation sequences."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dram import (ActBatch, AllOnes, Checkerboard, DeviceConfig,
                        DisturbanceConfig, DramChip, HammerMode,
                        RetentionConfig)
from repro.trr import CounterBasedTrr
from repro.units import ms

CONFIG = DeviceConfig(
    name="invariant-test", serial=5, num_banks=2, rows_per_bank=512,
    row_bits=256, refresh_cycle_refs=128,
    retention=RetentionConfig(weak_cells_per_row_mean=1.0,
                              vrt_fraction=0.0),
    disturbance=DisturbanceConfig(hc_first=2_000))


def operation_strategy():
    row = st.integers(0, 511)
    return st.one_of(
        st.tuples(st.just("write"), row),
        st.tuples(st.just("read"), row),
        st.tuples(st.just("hammer"), row, st.integers(1, 400)),
        st.tuples(st.just("wait"), st.integers(1, 200)),   # milliseconds
        st.tuples(st.just("refresh"), st.integers(1, 64)),
    )


def apply(chip: DramChip, op) -> None:
    kind = op[0]
    if kind == "write":
        chip.write_row(0, op[1], AllOnes())
    elif kind == "read":
        chip.read_row(0, op[1])
    elif kind == "hammer":
        chip.hammer(ActBatch(bank=0, pattern=((op[1], op[2]),)))
    elif kind == "wait":
        chip.wait(ms(op[1]))
    else:
        chip.refresh(op[1])


@settings(max_examples=40, deadline=None)
@given(st.lists(operation_strategy(), max_size=25))
def test_clock_is_monotone_and_reads_are_wellformed(operations):
    chip = DramChip(CONFIG, CounterBasedTrr())
    last = chip.now_ps
    for op in operations:
        apply(chip, op)
        assert chip.now_ps >= last
        last = chip.now_ps
    mismatches = chip.read_row_mismatches(0, 100)
    assert mismatches == sorted(set(mismatches))
    assert all(0 <= p < CONFIG.row_bits for p in mismatches)


@settings(max_examples=25, deadline=None)
@given(st.lists(operation_strategy(), max_size=20))
def test_same_serial_chips_replay_identically(operations):
    chips = [DramChip(CONFIG, CounterBasedTrr()) for _ in range(2)]
    for op in operations:
        for chip in chips:
            apply(chip, op)
    for row in (0, 100, 101, 255):
        a = chips[0].read_row(0, row)
        b = chips[1].read_row(0, row)
        assert np.array_equal(a, b)
    assert chips[0].now_ps == chips[1].now_ps
    assert chips[0].stats.snapshot() == chips[1].stats.snapshot()


@settings(max_examples=25, deadline=None)
@given(st.lists(operation_strategy(), max_size=15), st.integers(0, 511))
def test_write_then_immediate_read_is_clean(operations, row):
    chip = DramChip(CONFIG)
    for op in operations:
        apply(chip, op)
    chip.write_row(0, row, Checkerboard(0))
    assert chip.read_row_mismatches(0, row) == []
    bits = chip.read_row(0, row)
    assert np.array_equal(bits, Checkerboard(0).full(CONFIG.row_bits))


@settings(max_examples=20, deadline=None)
@given(st.integers(100, 2_000), st.integers(2, 6))
def test_more_frequent_refresh_never_hurts_retention(wait_ms, splits):
    def flips_with_refresh_splits(parts: int) -> int:
        chip = DramChip(CONFIG)
        total = 0
        for row in range(0, 512, 37):
            chip.write_row(0, row, AllOnes())
        for _ in range(parts):
            chip.wait(ms(wait_ms) // parts)
            chip.refresh(CONFIG.refresh_cycle_refs)  # full pass
        for row in range(0, 512, 37):
            total += len(chip.read_row_mismatches(0, row))
        return total

    assert flips_with_refresh_splits(splits) <= flips_with_refresh_splits(1)


@settings(max_examples=20, deadline=None)
@given(st.integers(500, 4_000), st.integers(1, 3))
def test_hammer_damage_is_monotone_in_count(base_count, factor):
    def flips(count: int) -> int:
        chip = DramChip(CONFIG)
        victim = 300
        chip.write_row(0, victim, AllOnes())
        chip.hammer(ActBatch(bank=0, pattern=((victim - 1, count),
                                              (victim + 1, count)),
                             mode=HammerMode.INTERLEAVED))
        return len(chip.read_row_mismatches(0, victim))

    assert flips(base_count * factor + base_count) >= flips(base_count)
