"""Logical/physical row mapping schemes."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dram.mapping import (BitSwapMapping, DirectMapping,
                                XorScrambleMapping, available_schemes,
                                make_mapping)
from repro.errors import ConfigError, MappingError

N = 1024


@pytest.fixture(params=available_schemes())
def mapping(request):
    return make_mapping(request.param, N)


@given(st.integers(0, N - 1))
def test_all_schemes_are_bijections(logical):
    for scheme in available_schemes():
        m = make_mapping(scheme, N)
        physical = m.to_physical(logical)
        assert 0 <= physical < N
        assert m.to_logical(physical) == logical


def test_direct_is_identity():
    m = DirectMapping(N)
    assert [m.to_physical(r) for r in range(8)] == list(range(8))


def test_bit_swap_swaps_bits():
    m = BitSwapMapping(N, 0, 1)
    assert m.to_physical(0b01) == 0b10
    assert m.to_physical(0b10) == 0b01
    assert m.to_physical(0b11) == 0b11
    assert m.to_physical(0b00) == 0b00


def test_xor_scramble_folds_source_into_target():
    m = XorScrambleMapping(N, source_bit=1, target_bit=0)
    assert m.to_physical(0b10) == 0b11
    assert m.to_physical(0b11) == 0b10
    assert m.to_physical(0b01) == 0b01


def test_physical_neighbors_clip_at_edges(mapping):
    assert mapping.physical_neighbors(0, 1) == [1]
    assert mapping.physical_neighbors(N - 1, 1) == [N - 2]
    assert mapping.physical_neighbors(10, 2) == [8, 12]


def test_logical_neighbors_translate_back():
    m = BitSwapMapping(N, 0, 1)
    logical = 4  # physical 4; physical neighbors 3, 5 -> logical?
    neighbors = m.logical_neighbors(logical, 1)
    assert sorted(m.to_physical(x) for x in neighbors) == [3, 5]


def test_out_of_range_rejected(mapping):
    with pytest.raises(MappingError):
        mapping.to_physical(N)
    with pytest.raises(MappingError):
        mapping.to_logical(-1)


def test_config_validation():
    with pytest.raises(ConfigError):
        make_mapping("nope", N)
    with pytest.raises(ConfigError):
        BitSwapMapping(1000, 0, 1)  # not a power of two
    with pytest.raises(ConfigError):
        XorScrambleMapping(N, 2, 2)  # same bit
    with pytest.raises(ConfigError):
        DirectMapping(0)
