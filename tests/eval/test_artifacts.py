"""Artifact harnesses produce well-formed, shape-correct outputs."""

from __future__ import annotations

import dataclasses

import pytest

from repro.ecc import dataword_flip_counts
from repro.errors import ConfigError
from repro.eval import QUICK, run_fig8, run_fig9, run_fig10
from repro.eval.__main__ import main as eval_main

TINY = dataclasses.replace(QUICK, positions=6, fig8_positions=4)


def test_fig8_unknown_module_needs_counts():
    with pytest.raises(ConfigError):
        run_fig8("A1", TINY)


def test_fig8_render_contains_sweep_points():
    result = run_fig8("B8", TINY, hammer_counts=(40, 80))
    text = result.render()
    assert "B8" in text
    assert "median" in text
    assert len(result.sweep.flips_by_hammers) == 2


def test_fig9_and_fig10_share_evaluations():
    fig9 = run_fig9(["B0"], TINY)
    fig10 = run_fig10(evaluations=fig9.evaluations)
    assert fig9.evaluations is fig10.evaluations
    text9 = fig9.render()
    text10 = fig10.render()
    assert "B0" in text9 and "vulnerable" in text9
    assert "SECDED" in text10
    histogram = dict(fig10.per_module())["B0"]
    assert histogram == dataword_flip_counts(
        fig9.evaluations[0].result.flips_by_row)


def test_cli_runs_quick_fig9(capsys):
    assert eval_main(["fig9", "--modules", "B0", "--scale", "quick"]) == 0
    out = capsys.readouterr().out
    assert "Figure 9" in out
    assert "B0" in out


def test_cli_rejects_unknown_artifact():
    with pytest.raises(SystemExit):
        eval_main(["fig77"])


def test_cli_quiet_keeps_stdout_byte_stable(monkeypatch, capsys):
    """--quiet only silences stderr; the stdout artifact is unchanged."""

    class _Stub:
        def render(self):
            return "Figure 9 (stub)"

    monkeypatch.setattr("repro.eval.__main__.run_fig9",
                        lambda modules, scale, **kwargs: _Stub())

    assert eval_main(["fig9", "--scale", "quick"]) == 0
    loud = capsys.readouterr()
    assert eval_main(["fig9", "--scale", "quick", "--quiet"]) == 0
    quiet = capsys.readouterr()

    assert quiet.out == loud.out
    assert quiet.err == ""
    assert "event=run-start" in loud.err
    assert "event=run-done" in loud.err
