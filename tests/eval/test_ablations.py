"""Ablation runners (structure + the cheap AB1 shape)."""

from __future__ import annotations

import pytest

from repro.eval import QUICK, run_hammer_mode_ablation
from repro.eval.ablations import run_mitigation_ablation


def test_hammer_mode_ablation_shape():
    result = run_hammer_mode_ablation(QUICK)
    assert result.headers[0] == "mode"
    by_mode = {row[0]: row[2] for row in result.rows}
    assert set(by_mode) == {"interleaved", "cascaded"}
    assert by_mode["interleaved"] > by_mode["cascaded"]
    assert "AB1" in result.render()


@pytest.mark.slow
def test_mitigation_ablation_shape():
    result = run_mitigation_ablation(QUICK)
    labels = {row[0] for row in result.rows}
    assert labels == {"A_TRR1", "PARA 1/2000", "PARA 1/250"}
    rows = {(row[0], row[1]): row[2] for row in result.rows}
    assert rows[("A_TRR1", "vendor-a-custom")] > 0
    assert rows[("PARA 1/250", "vendor-a-custom")] == 0
