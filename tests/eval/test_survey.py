"""Survey artifact (full pipeline, one module)."""

from __future__ import annotations

import pytest

from repro.eval import QUICK
from repro.eval.survey import run_survey


@pytest.mark.slow
def test_survey_single_module_renders_and_recovers():
    result = run_survey(["B8"], QUICK)
    text = result.render()
    assert "# U-TRR module survey" in text
    assert "B8" in text
    assert "sampling" in text
    survey = result.surveys[0]
    assert survey.row.ground_truth_matches()
    assert survey.row.evaluation.vulnerable_fraction > 0.8
    assert "datawords by flip count" in survey.render()
