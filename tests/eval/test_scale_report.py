"""Evaluation scaling and report rendering."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.eval import (EvalScale, QUICK, STANDARD, format_pct, get_scale,
                        render_histogram, render_series, render_table)
from repro.vendors import get_module


def test_scale_presets():
    assert get_scale("standard") is STANDARD
    assert get_scale("quick") is QUICK
    with pytest.raises(ConfigError):
        get_scale("nope")


def test_scaled_cycle_preserves_vendor_a_proportion():
    a_spec = get_module("A0")   # real cycle 3758
    b_spec = get_module("B0")   # real cycle 8192
    assert STANDARD.scaled_cycle(b_spec) == 1024
    assert STANDARD.scaled_cycle(a_spec) == 3758 * 1024 // 8192
    assert STANDARD.scaled_cycle(a_spec) < STANDARD.scaled_cycle(b_spec)


def test_hc_scaling_roundtrip():
    spec = get_module("B1")
    scaled = STANDARD.scaled_hc_first(spec)
    assert scaled == spec.hc_first // STANDARD.hc_divisor
    assert STANDARD.unscale_hc(scaled) == scaled * STANDARD.hc_divisor


def test_build_host_applies_scale():
    spec = get_module("A0")
    host = QUICK.build_host(spec)
    assert host.rows_per_bank == QUICK.rows_per_bank
    config = host._chip.config
    assert config.disturbance.hc_first == QUICK.scaled_hc_first(spec)
    assert config.refresh_cycle_refs == QUICK.scaled_cycle(spec)
    assert host._chip.trr.ground_truth.kind == "counter"


def test_scale_validation():
    with pytest.raises(ConfigError):
        EvalScale(name="bad", rows_per_bank=100, refresh_cycle_refs=1024)
    with pytest.raises(ConfigError):
        EvalScale(name="bad", hc_divisor=0)


def test_render_table_alignment():
    text = render_table(["a", "long-header"], [[1, 2], [333, 4]],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "long-header" in lines[1]
    assert len({len(line) for line in lines[1:]}) == 1  # aligned


def test_render_series_and_histogram():
    series = render_series("s", [(1, "x"), (2, "y")])
    assert "1" in series and "y" in series
    histogram = render_histogram("h", {1: 10, 3: 2})
    assert "10" in histogram and "#" in histogram
    assert "(empty)" in render_histogram("h", {})


def test_format_pct():
    assert format_pct(0.125) == "12.5%"
