"""Module evaluation runner (quick, single-module smoke-level tests)."""

from __future__ import annotations

import dataclasses


from repro.eval import QUICK, evaluate_module
from repro.eval.runner import candidate_patterns
from repro.vendors import get_module

TINY = dataclasses.replace(QUICK, positions=6)


def test_candidate_patterns_cover_every_family():
    for module_id, expected in (("A0", "vendor-a-custom"),
                                ("B0", "vendor-b-custom"),
                                ("C9", "vendor-c-custom")):
        spec = get_module(module_id)
        host = TINY.build_host(spec)
        period = spec.trr_parameters()["trr_ref_period"]
        candidates = candidate_patterns(spec, host, period, 10)
        assert candidates
        assert all(name.name.startswith(expected[:8])
                   for name, _ in candidates)


def test_evaluate_module_vendor_a():
    evaluation = evaluate_module(get_module("A0"), TINY)
    assert evaluation.pattern_name == "vendor-a-custom"
    assert evaluation.vulnerable_fraction > 0.4
    assert evaluation.max_flips_per_row >= 1
    assert evaluation.max_flips_per_row_per_hammer > 0


def test_evaluate_module_phase_locked_for_b_trr3():
    evaluation = evaluate_module(get_module("B13"), TINY)
    assert evaluation.pattern_name == "vendor-b-phase-locked"
    assert evaluation.vulnerable_fraction > 0.8


def test_evaluate_module_paired_c():
    evaluation = evaluate_module(get_module("C7"), TINY)
    assert evaluation.pattern_name == "vendor-c-custom"
    # All sampled victims are even rows (pair isolation).
    assert all(row % 2 == 0 for row in evaluation.result.positions)
