"""Parallel evaluation is byte-identical to the sequential path.

The satellite guarantee of the execution engine: ``--workers N`` (N > 1)
must produce exactly the artifacts of ``--workers 1`` — same rendered
tables, same per-row flip ledgers, same recovered TRR parameters, same
manifests — because every work unit derives its RNG streams from its
unit id, never from scheduling order.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.eval import (QUICK, hardened_inference_config, run_fig8_many,
                        run_fig9, run_fig10, run_resilience)
from repro.eval.__main__ import main as eval_main

MODULES = ["A5", "B0", "C7"]

TINY = dataclasses.replace(QUICK, positions=6, fig8_positions=4)

#: Effort knobs cut to the bone — determinism does not depend on how
#: many validation rounds run, only that both sides run the same ones.
FAST_RESILIENCE = dict(validation_rounds=2, period_scan_experiments=30,
                       neighbor_repeats=1, persistence_probes=1,
                       kind_repeats=1, capacity_candidates=(16,),
                       capacity_repeats=1)


@pytest.mark.slow
def test_fig9_fig10_parallel_byte_identical():
    sequential = run_fig9(MODULES, QUICK)
    parallel = run_fig9(MODULES, QUICK, workers=2)
    assert parallel.render() == sequential.render()
    assert run_fig10(evaluations=parallel.evaluations).render() == \
        run_fig10(evaluations=sequential.evaluations).render()
    for seq_eval, par_eval in zip(sequential.evaluations,
                                  parallel.evaluations):
        assert par_eval.pattern_name == seq_eval.pattern_name
        assert par_eval.result.flips_by_row == seq_eval.result.flips_by_row


def test_fig8_parallel_byte_identical():
    sweeps = ["A5", "C7"]
    sequential = run_fig8_many(sweeps, TINY)
    parallel = run_fig8_many(sweeps, TINY, workers=2)
    assert [r.render() for r in parallel] == \
        [r.render() for r in sequential]
    for seq_result, par_result in zip(sequential, parallel):
        assert par_result.sweep.flips_by_hammers == \
            seq_result.sweep.flips_by_hammers


@pytest.mark.slow
def test_resilience_parallel_byte_identical_under_faults():
    """Recovered TRR parameters match under the default fault profile."""
    config = hardened_inference_config(**FAST_RESILIENCE)
    sequential = run_resilience(MODULES, fault_profile="default",
                                config=config)
    parallel = run_resilience(MODULES, fault_profile="default",
                              config=config, workers=2)
    assert parallel.render() == sequential.render()
    assert not parallel.quarantined
    for seq_mod, par_mod in zip(sequential.modules, parallel.modules):
        assert par_mod.profile == seq_mod.profile
        assert par_mod.fault_counters == seq_mod.fault_counters
        assert par_mod.recovery == seq_mod.recovery
        assert par_mod.manifest == seq_mod.manifest


def test_fig8_byte_identical_with_telemetry_enabled(tmp_path):
    """Live telemetry is a pure side channel: artifact bytes and the
    folded metrics are unchanged by enabling it, sequential or pooled."""
    from repro.obs import MetricsRegistry, TelemetryConfig, read_spool

    sweeps = ["A5"]
    plain = run_fig8_many(sweeps, TINY)
    rendered = {}
    registries = {}
    for workers in (1, 2):
        telemetry = TelemetryConfig(
            spool=str(tmp_path / f"w{workers}"), run_id="determinism",
            interval_s=0.05)
        registries[workers] = MetricsRegistry()
        results = run_fig8_many(sweeps, TINY, workers=workers,
                                metrics=registries[workers],
                                telemetry=telemetry)
        rendered[workers] = [r.render() for r in results]
        kinds = [e["kind"] for e in read_spool(telemetry.spool)]
        assert "unit-done" in kinds  # the side channel did run
    assert rendered[1] == [r.render() for r in plain]
    assert rendered[2] == rendered[1]
    assert registries[1].as_dict() == registries[2].as_dict()


def test_cli_workers_flag_keeps_stdout_byte_stable(capsys):
    args = ["fig9", "--modules", "B0", "--scale", "quick", "--quiet"]
    assert eval_main([*args, "--workers", "1"]) == 0
    sequential = capsys.readouterr().out
    assert eval_main([*args, "--workers", "2"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == sequential
    assert "B0" in sequential


def test_cli_telemetry_and_profile_leave_stdout_untouched(tmp_path,
                                                          capsys):
    from repro.obs import read_spool

    args = ["fig9", "--modules", "B0", "--scale", "quick", "--quiet",
            "--workers", "1"]
    assert eval_main(args) == 0
    plain = capsys.readouterr().out
    spool = tmp_path / "spool"
    assert eval_main([*args, "--telemetry", str(spool),
                      "--telemetry-interval", "0.05", "--profile"]) == 0
    observed = capsys.readouterr().out
    assert observed == plain
    kinds = [e["kind"] for e in read_spool(spool)]
    assert "run-start" in kinds and "unit-done" in kinds


def test_cli_stall_deadline_requires_telemetry(capsys):
    with pytest.raises(SystemExit):
        eval_main(["fig9", "--modules", "B0", "--scale", "quick",
                   "--quiet", "--stall-deadline", "5"])
    assert "--stall-deadline requires --telemetry" in \
        capsys.readouterr().err
