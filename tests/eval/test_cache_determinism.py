"""Cached evaluation is byte-identical to uncached evaluation.

The cache's acceptance contract: a warm sweep must render the same
artifact bytes, fold the same metrics, and record the same history
metrics as a cold one — at any worker count — and every input that can
change a result (seed, scale, fault profile, chip recipe, entry-point
code) must change the cache key, while pure side channels (telemetry,
worker count) must not.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.cache import ResultCache, unit_key
from repro.eval import QUICK, run_fig8_many, run_fig9
from repro.eval.__main__ import main as eval_main
from repro.eval.runner import evaluate_module_unit
from repro.eval.resilience import run_module_resilience
from repro.obs import MetricsRegistry
from repro.parallel import WorkUnit

TINY = dataclasses.replace(QUICK, positions=6, fig8_positions=4)


@pytest.mark.parametrize("workers", [1, 2])
def test_fig9_cold_and_warm_render_identical_bytes(tmp_path, workers):
    modules = ["A5", "B0"]
    cold_metrics = MetricsRegistry()
    cold = run_fig9(modules, TINY, workers=workers,
                    metrics=cold_metrics,
                    cache=ResultCache(tmp_path / "store"))
    warm_cache = ResultCache(tmp_path / "store")
    warm_metrics = MetricsRegistry()
    warm = run_fig9(modules, TINY, workers=workers,
                    metrics=warm_metrics, cache=warm_cache)
    assert warm.render() == cold.render()
    assert warm_metrics.as_dict() == cold_metrics.as_dict()
    assert warm_cache.summary()["hit_ratio"] == 1.0
    assert warm_cache.summary()["misses"] == 0
    # Uncached reference: the cache is invisible in every gated output.
    plain = run_fig9(modules, TINY, workers=workers)
    assert plain.render() == cold.render()


@pytest.mark.parametrize("workers", [1, 2])
def test_fig8_cold_and_warm_render_identical_bytes(tmp_path, workers):
    sweeps = ["A5", "C7"]
    cold = run_fig8_many(sweeps, TINY, workers=workers,
                         cache=ResultCache(tmp_path / "store"))
    warm_cache = ResultCache(tmp_path / "store")
    warm = run_fig8_many(sweeps, TINY, workers=workers,
                         cache=warm_cache)
    assert [r.render() for r in warm] == [r.render() for r in cold]
    assert warm_cache.summary()["misses"] == 0


def test_worker_count_and_telemetry_do_not_split_the_store(tmp_path):
    """A store warmed at one worker count serves any other: neither
    workers nor telemetry are key material."""
    from repro.obs import TelemetryConfig

    sweeps = ["A5"]
    run_fig8_many(sweeps, TINY, workers=1,
                  cache=ResultCache(tmp_path / "store"))
    telemetry = TelemetryConfig(spool=str(tmp_path / "spool"),
                                run_id="warm", heartbeats=False)
    warm_cache = ResultCache(tmp_path / "store")
    run_fig8_many(sweeps, TINY, workers=2, telemetry=telemetry,
                  cache=warm_cache)
    assert warm_cache.summary()["misses"] == 0
    assert warm_cache.summary()["hit_ratio"] == 1.0


def _eval_unit(module_id="A5", scale=TINY, positions=None,
               fn=evaluate_module_unit):
    return WorkUnit(unit_id=f"eval/{module_id}", fn=fn,
                    args=(module_id, scale, positions),
                    meta={"module": module_id, "scale": scale.name})


def _chaos_unit(module_id="A5", fault_profile="default", seed=0):
    return WorkUnit(unit_id=f"resilience/{module_id}",
                    fn=run_module_resilience,
                    args=(module_id, fault_profile, seed, None),
                    meta={"module": module_id,
                          "fault_profile": fault_profile,
                          "seed": seed, "artifact": "resilience"})


def test_eval_unit_keys_invalidate_on_every_result_input():
    base = unit_key(_eval_unit(), git="g0")
    # Chip recipe: another module selects a different device + TRR.
    assert unit_key(_eval_unit(module_id="B0"), git="g0") != base
    # Scale: the EvalScale operating point is part of the arguments.
    wider = dataclasses.replace(TINY, positions=8)
    assert unit_key(_eval_unit(scale=wider), git="g0") != base
    assert unit_key(_eval_unit(positions=12), git="g0") != base
    # Entry point: an edited implementation invalidates stored results.
    assert unit_key(_eval_unit(fn=run_module_resilience), git="g0") \
        != base
    # Code revision.
    assert unit_key(_eval_unit(), git="g1") != base
    # And stability: rebuilding the same recipe reproduces the key.
    assert unit_key(_eval_unit(), git="g0") == base


def test_chaos_unit_keys_invalidate_on_seed_and_fault_profile():
    base = unit_key(_chaos_unit(), git="g0")
    assert unit_key(_chaos_unit(seed=1), git="g0") != base
    assert unit_key(_chaos_unit(fault_profile="vrt-storm"),
                    git="g0") != base
    assert unit_key(_chaos_unit(), git="g0") == base


def test_cli_cached_rerun_is_byte_identical(tmp_path, capsys):
    store = tmp_path / "store"
    history = tmp_path / "hist.jsonl"
    args = ["fig9", "--modules", "B0", "--scale", "quick", "--quiet",
            "--workers", "1", "--cache", str(store),
            "--history", str(history)]
    assert eval_main(args) == 0
    cold_out = capsys.readouterr().out
    assert eval_main([*args, "--resume", "--cache-verify"]) == 0
    warm_out = capsys.readouterr().out
    assert warm_out == cold_out
    rows = [json.loads(line) for line in history.open()]
    cold_row, warm_row = rows
    assert warm_row["metrics"] == cold_row["metrics"]
    assert cold_row["extra"]["cache"]["hits"] == 0
    assert warm_row["extra"]["cache"]["misses"] == 0
    assert warm_row["extra"]["cache"]["hit_ratio"] == 1.0


def test_cli_resume_requires_a_store(capsys, monkeypatch):
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    with pytest.raises(SystemExit):
        eval_main(["fig9", "--modules", "B0", "--scale", "quick",
                   "--quiet", "--resume"])
    assert "--resume requires --cache" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        eval_main(["fig9", "--modules", "B0", "--scale", "quick",
                   "--quiet", "--cache-verify"])
    assert "--cache-verify requires --cache" in capsys.readouterr().err


def test_cli_no_cache_overrides_environment(tmp_path, capsys,
                                            monkeypatch):
    store = tmp_path / "env-store"
    monkeypatch.setenv("REPRO_CACHE", str(store))
    assert eval_main(["fig8", "--modules", "A5", "--scale", "quick",
                      "--quiet", "--workers", "1", "--no-cache"]) == 0
    capsys.readouterr()
    assert not store.exists()  # the store was never even created
