"""Unit conversions and DDR constants."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_basic_conversions():
    assert units.ns(1) == 1_000
    assert units.us(1) == 1_000_000
    assert units.ms(1) == 1_000_000_000
    assert units.seconds(1) == 1_000_000_000_000


def test_fractional_values_round_to_picoseconds():
    assert units.us(7.8) == 7_800_000
    assert units.ns(0.0004) == 0  # below resolution rounds to zero


@given(st.floats(min_value=0.001, max_value=1e6, allow_nan=False))
def test_roundtrip_ms(value):
    # Rounding to integer picoseconds bounds the error at 0.5 ps.
    assert units.to_ms(units.ms(value)) == pytest.approx(value, abs=1e-9)


def test_trefi_and_window_constants():
    assert units.TREFI_PS == 7_800_000
    assert units.TREFW_PS == 64 * units.PS_PER_MS
    # 64 ms / 7.8 us ~ 8205 REFs; the paper rounds to 8K.
    assert units.REFS_PER_WINDOW == 8205
    assert units.NOMINAL_REFS_PER_WINDOW == 8192


def test_conversion_helpers_are_inverse():
    assert units.to_us(units.us(123.5)) == pytest.approx(123.5)
    assert units.to_ns(units.ns(7.25)) == pytest.approx(7.25)
