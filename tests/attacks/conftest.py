"""Fixtures for attack tests: eval-scaled module hosts."""

from __future__ import annotations

import dataclasses

from repro.core.mapping_re import CouplingTopology
from repro.core.inference import InferredTrrProfile
from repro.dram import DramChip
from repro.softmc import SoftMCHost
from repro.vendors import get_module


def scaled_host(module_id: str, hc_divisor: int = 8, rows: int = 4096,
                cycle: int = 1024) -> tuple:
    """Build a module at evaluation scale (documented in EXPERIMENTS.md):
    the refresh cycle and RowHammer thresholds shrink by the same factor,
    preserving the protection-vs-attack balance."""
    spec = get_module(module_id)
    config = spec.device_config(rows_per_bank=rows, row_bits=8192)
    config = dataclasses.replace(
        config, refresh_cycle_refs=cycle,
        disturbance=dataclasses.replace(
            config.disturbance,
            hc_first=max(spec.hc_first // hc_divisor, 100)))
    host = SoftMCHost(DramChip(config, spec.make_trr()))
    return spec, host


def profile_for(spec, cycle: int = 1024) -> InferredTrrProfile:
    """The TRR profile U-TRR would recover for *spec* (shortcut for
    attack tests; the inference tests prove recovery works)."""
    params = spec.trr_parameters()
    coupling = (CouplingTopology.PAIRED if spec.paired_rows
                else CouplingTopology.STANDARD)
    return InferredTrrProfile(
        mapping_scheme=spec.mapping_scheme, coupling=coupling,
        regular_refresh_cycle=cycle,
        trr_ref_period=params["trr_ref_period"],
        detection=params["kind"],
        neighbor_distances_refreshed=(1,),
        neighbors_refreshed=2,
        persists_without_activity=params["kind"] != "window",
        aggressor_capacity=params.get("table_size"),
        per_bank=params.get("per_bank", True))
