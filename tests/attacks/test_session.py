"""Attack session: budgets, REF pacing, chunk splitting."""

from __future__ import annotations

import pytest

from repro.attacks.session import AttackSession
from repro.dram import DramChip, HammerMode
from repro.errors import AttackConfigError
from repro.softmc import SoftMCHost


@pytest.fixture
def host(small_config):
    return SoftMCHost(DramChip(small_config))


def test_hammer_splits_across_intervals(host):
    session = AttackSession(host, trr_period=4)
    budget = host.hammers_per_ref_interval()
    session.hammer(0, [(100, 2 * budget + 10)], HammerMode.CASCADED)
    # Two full intervals were closed with REFs; a partial one remains.
    assert session.refs_issued == 2
    assert session.acts_issued == 2 * budget + 10
    assert session.remaining_ps < host.timing.trefi_ps


def test_interleaved_split_keeps_rows_balanced(host):
    session = AttackSession(host, trr_period=4)
    session.hammer(0, [(100, 300), (102, 300)], HammerMode.INTERLEAVED)
    assert session.acts_issued == 600
    # Each interval's chunk alternates both rows; the chip saw equal
    # counts overall.
    counts = host._chip.banks[0].rows  # both aggressors materialized
    assert 100 in {r for r in counts} and 102 in {r for r in counts}


def test_fill_window_aligns_to_period(host):
    session = AttackSession(host, trr_period=9)
    session.ref(5)
    session.fill_window()
    assert host.ref_count % 9 == 0
    # Already aligned: no extra REFs.
    before = host.ref_count
    session.fill_window()
    assert host.ref_count == before


def test_refs_into_window(host):
    session = AttackSession(host, trr_period=4)
    session.ref(6)
    assert session.refs_into_window() == 2


def test_multibank_hammer_under_tfaw(host):
    session = AttackSession(host, trr_period=4)
    start = host.now_ps
    session.hammer_multibank({0: 500, 1: 501, 2: 502, 3: 503}, 100)
    # 400 acts at tFAW/4 each = 16 us: spans three intervals.
    assert session.refs_issued >= 2
    assert session.acts_issued == 400
    assert host.now_ps > start


def test_multibank_rejects_five_banks(host):
    session = AttackSession(host, trr_period=4)
    with pytest.raises(AttackConfigError):
        session.hammer_multibank({b: 10 for b in range(5)}, 5)


def test_invalid_period_rejected(host):
    with pytest.raises(AttackConfigError):
        AttackSession(host, trr_period=0)


def test_take_conserves_total_activations(host):
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 9), st.integers(1, 50)),
                    min_size=1, max_size=4),
           st.integers(1, 40),
           st.sampled_from(list(HammerMode)))
    def check(pairs, fit, mode):
        if mode is HammerMode.INTERLEAVED:
            rows = [row for row, _ in pairs]
            if len(set(rows)) != len(rows):
                return
        queue = [[row, count] for row, count in pairs]
        total_before = sum(count for _, count in queue)
        chunk = AttackSession._take(queue, fit, mode)
        taken = sum(count for _, count in chunk)
        left = sum(count for _, count in queue)
        assert taken + left == total_before
        assert taken <= fit or taken == 0
        assert all(count > 0 for _, count in chunk)

    check()
