"""Attack executor bookkeeping and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks import (AttackContext, AttackExecutor,
                           DoubleSidedPattern, default_context)
from repro.dram import Checkerboard, DramChip, inverted
from repro.errors import AttackConfigError
from repro.softmc import SoftMCHost


@pytest.fixture
def host(small_config):
    return SoftMCHost(DramChip(small_config))


def test_run_counts_refs_and_acts(host):
    executor = AttackExecutor(host, host._chip.mapping)
    context = default_context(0, 600, host._chip.mapping, 4,
                              host.num_banks)
    result = executor.run(DoubleSidedPattern(), context, windows=3)
    assert result.pattern == "double-sided"
    assert result.windows == 3
    assert result.refs_issued >= 3 * 4
    assert result.acts_issued > 0
    assert 600 in result.victim_flips


def test_windows_must_be_positive(host):
    executor = AttackExecutor(host, host._chip.mapping)
    context = default_context(0, 600, host._chip.mapping, 4,
                              host.num_banks)
    with pytest.raises(AttackConfigError):
        executor.run(DoubleSidedPattern(), context, windows=0)


def test_victim_and_aggressor_data_initialized(host):
    pattern_data = Checkerboard(0)
    executor = AttackExecutor(host, host._chip.mapping,
                              victim_pattern=pattern_data)
    context = default_context(0, 600, host._chip.mapping, 4,
                              host.num_banks)
    executor.run(DoubleSidedPattern(), context, windows=1)
    # The aggressors hold the complement, as required for worst-case
    # data-dependent coupling (5.2).
    aggressor_bits = host.read_row(0, 599)
    expected = inverted(pattern_data, host.row_bits).full(host.row_bits)
    assert np.array_equal(aggressor_bits, expected)


def test_extra_victims_reported(host):
    executor = AttackExecutor(host, host._chip.mapping)
    context = default_context(0, 600, host._chip.mapping, 4,
                              host.num_banks)
    result = executor.run(DoubleSidedPattern(), context, windows=1,
                          extra_victims=(602, 604))
    assert set(result.victim_flips) == {600, 602, 604}
    assert result.total_flips == sum(
        len(f) for f in result.victim_flips.values())


def test_context_validation(host):
    mapping = host._chip.mapping
    with pytest.raises(AttackConfigError):
        AttackContext(bank=0, victim_physical=999_999, mapping=mapping,
                      trr_period=4)
    with pytest.raises(AttackConfigError):
        AttackContext(bank=0, victim_physical=5, mapping=mapping,
                      trr_period=0)
    edge = AttackContext(bank=0, victim_physical=0, mapping=mapping,
                         trr_period=4)
    # Edge victims still get two distinct in-range aggressors.
    low, high = edge.aggressor_pair()
    assert low != high
    assert 0 <= low < host.rows_per_bank
    assert 0 <= high < host.rows_per_bank
