"""Access patterns: custom attacks beat TRR, classics do not (§7)."""

from __future__ import annotations

import pytest

from repro.attacks import (AttackExecutor, DoubleSidedPattern,
                           ManySidedPattern, SingleSidedPattern,
                           choose_pattern, default_context)
from repro.errors import AttackConfigError
from repro.vendors import build_module
from repro.vendors.spec import ModuleSpec, TrrVersion
from repro.softmc import SoftMCHost
from .conftest import profile_for, scaled_host

CYCLE = 1024
VICTIMS = (600, 1500, 2400, 3300)


def run_attack(spec, host, pattern, victims=VICTIMS):
    mapping = host._chip.mapping
    period = spec.trr_parameters().get("trr_ref_period", 9)
    executor = AttackExecutor(host, mapping)
    windows = CYCLE // period
    total = 0
    for victim in victims:
        if spec.paired_rows and victim % 2:
            victim -= 1
        context = default_context(0, victim, mapping, period,
                                  host.num_banks, paired=spec.paired_rows)
        result = executor.run(pattern, context, windows)
        total += result.flips_at(context.victim_physical)
    return total


@pytest.mark.parametrize("module_id", ["A0", "B8", "C9", "C12"])
def test_custom_patterns_defeat_trr(module_id):
    spec, host = scaled_host(module_id)
    pattern = choose_pattern(profile_for(spec))
    assert run_attack(spec, host, pattern) > 0


def test_phase_locked_pattern_defeats_b_trr3():
    # B_TRR3's 2-REF TRR window defeats the window-structured diversion;
    # the deterministic sampler falls to phase locking instead (§7.1
    # extended — see EXPERIMENTS.md).
    from repro.attacks import (AttackExecutor, PhaseLockedSamplerPattern,
                               calibrate_phase_offset)
    spec, host = scaled_host("B13")
    mapping = host._chip.mapping
    executor = AttackExecutor(host, mapping)
    windows = CYCLE // 2

    def factory(victim):
        return default_context(0, victim, mapping, 2, host.num_banks)

    offset = calibrate_phase_offset(executor, factory, 2, 500, windows,
                                    canary_victims=[700])
    pattern = PhaseLockedSamplerPattern(500, offset)
    total = sum(executor.run(pattern, factory(v), windows).flips_at(v)
                for v in VICTIMS)
    assert total > 0


def test_custom_pattern_defeats_paired_c_trr1():
    # C7's knee needs a larger aggressor share (the Fig 9 per-module
    # hammer-count selection); see EXPERIMENTS.md.
    from repro.attacks import VendorCPattern
    spec, host = scaled_host("C7")
    pattern = VendorCPattern(dummy_fraction=0.65)
    assert run_attack(spec, host, pattern) > 0


@pytest.mark.parametrize("module_id", ["A0", "B8", "B13", "C9", "C12", "C7"])
def test_classic_patterns_blocked_by_trr(module_id):
    # Footnote 18: single-/double-sided hammering flips nothing on any
    # of the 45 TRR-protected modules.
    spec, host = scaled_host(module_id)
    for pattern in (SingleSidedPattern(), DoubleSidedPattern()):
        assert run_attack(spec, host, pattern, victims=(1500, 2400)) == 0


def test_double_sided_flips_unprotected_chip():
    spec = ModuleSpec(module_id="RAW", vendor="-", date_code="15-01",
                      density_gbit=4, ranks=1, num_banks=16, pins=8,
                      hc_first=139_000 // 8, trr_version=TrrVersion.NONE)
    host = SoftMCHost(build_module(spec, rows_per_bank=4096, row_bits=8192))
    assert run_attack(spec, host, DoubleSidedPattern(),
                      victims=(1500, 2400)) > 0


def test_many_sided_overflows_small_counter_table():
    # TRRespass's premise: enough aggressors overflow a small tracker.
    import dataclasses
    from repro.dram import DramChip
    from repro.trr import CounterBasedTrr
    from repro.vendors import get_module
    spec = get_module("A0")
    config = spec.device_config(rows_per_bank=4096, row_bits=8192)
    config = dataclasses.replace(
        config, refresh_cycle_refs=CYCLE,
        disturbance=dataclasses.replace(config.disturbance,
                                        hc_first=spec.hc_first // 8))
    # Implant a weak, 2-entry counter table.
    host = SoftMCHost(DramChip(config, CounterBasedTrr(table_size=2)))
    assert run_attack(spec, host, ManySidedPattern(sides=12),
                      victims=(1500, 2400)) > 0


def test_many_sided_blocked_by_16_entry_table():
    spec, host = scaled_host("A0")
    assert run_attack(spec, host, ManySidedPattern(sides=12),
                      victims=(1500, 2400)) == 0


def test_pattern_aggressors_respect_pairing():
    spec, host = scaled_host("C7")
    mapping = host._chip.mapping
    context = default_context(0, 2400, mapping, 17, host.num_banks,
                              paired=True)
    assert context.aggressors() == (2399, 2401)
    odd_context = default_context(0, 2401, mapping, 17, host.num_banks,
                                  paired=True)
    with pytest.raises(AttackConfigError):
        odd_context.aggressors()


def test_pattern_config_validation():
    from repro.attacks import VendorAPattern, VendorBPattern, VendorCPattern
    with pytest.raises(AttackConfigError):
        VendorAPattern(aggressor_hammers=0)
    with pytest.raises(AttackConfigError):
        VendorBPattern(aggressor_hammers=0)
    with pytest.raises(AttackConfigError):
        VendorCPattern(dummy_fraction=1.5)
    with pytest.raises(AttackConfigError):
        ManySidedPattern(sides=2)
