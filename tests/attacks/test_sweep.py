"""Sweep machinery: HC_first, pattern synthesis, vulnerability sweeps."""

from __future__ import annotations

import pytest

from repro.attacks import (choose_pattern, measure_hc_first,
                           run_hammer_sweep, run_vulnerability_sweep,
                           victim_positions, VendorAPattern)
from repro.attacks.sweep import HammerSweepResult
from repro.core.mapping_re import CouplingTopology
from repro.errors import AttackConfigError
from .conftest import profile_for, scaled_host


def test_measure_hc_first_recovers_implant():
    spec, host = scaled_host("A0")  # implant hc_first // 8
    implanted = host._chip.config.disturbance.hc_first
    mapping = host._chip.mapping
    measured = measure_hc_first(host, mapping, hi=20 * implanted)
    # The bank minimum threshold is ~2x hc_first effective hammers with a
    # lognormal row factor; double-sided measurement halves it again.
    assert 0.8 * implanted <= measured <= 2.5 * implanted


def test_measure_hc_first_paired_module():
    spec, host = scaled_host("C12")
    implanted = host._chip.config.disturbance.hc_first
    measured = measure_hc_first(host._chip and host, host._chip.mapping,
                                hi=20 * implanted,
                                paired=spec.paired_rows)
    assert measured < 20 * implanted


def test_choose_pattern_by_detection_kind():
    spec_a, _ = scaled_host("A0")
    spec_b, _ = scaled_host("B13")
    spec_c, _ = scaled_host("C9")
    assert choose_pattern(profile_for(spec_a)).name == "vendor-a-custom"
    pattern_b = choose_pattern(profile_for(spec_b))
    assert pattern_b.name == "vendor-b-custom"
    assert pattern_b.same_bank_dummy is True  # B_TRR3 samples per bank
    assert choose_pattern(profile_for(spec_c)).name == "vendor-c-custom"
    bad = profile_for(spec_a)
    import dataclasses
    with pytest.raises(AttackConfigError):
        choose_pattern(dataclasses.replace(bad, detection="none"))


def test_victim_positions_paired_are_even():
    rows = victim_positions(4096, 32, CouplingTopology.PAIRED)
    assert rows
    assert all(row % 2 == 0 for row in rows)
    spread = victim_positions(4096, 32, CouplingTopology.STANDARD)
    assert len(spread) == 32


def test_hammer_sweep_shows_interior_optimum_for_vendor_a():
    spec, host = scaled_host("A0")
    mapping = host._chip.mapping
    positions = [900, 2100, 3000]
    result = run_hammer_sweep(
        host, mapping,
        pattern_factory=lambda h: VendorAPattern(aggressor_hammers=h),
        hammer_counts=(8, 72, 640), positions=positions,
        trr_period=9, windows=113)
    low = sum(result.flips_by_hammers[8])
    mid = sum(result.flips_by_hammers[72])
    high = sum(result.flips_by_hammers[640])
    # Figure 8 (vendor A): interior optimum — too few hammers cannot
    # flip, too many keep the aggressors in the counter table.
    assert mid > low
    assert mid > high


def test_quartiles_helper():
    result = HammerSweepResult(flips_by_hammers={10: [0, 2, 4, 6, 8]})
    q1, median, q3 = result.quartiles(10)
    assert q1 == 2 and median == 4 and q3 == 6


def test_vulnerability_sweep_counts_fraction():
    spec, host = scaled_host("A0")
    mapping = host._chip.mapping
    pattern = choose_pattern(profile_for(spec))
    positions = victim_positions(4096, 8, CouplingTopology.STANDARD)
    result = run_vulnerability_sweep(host, mapping, pattern, positions,
                                     trr_period=9, windows=113)
    assert 0.0 <= result.vulnerable_fraction <= 1.0
    assert result.vulnerable_fraction > 0.5  # A0 is highly vulnerable
    assert result.total_flips >= result.max_flips_per_row()
