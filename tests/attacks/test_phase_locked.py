"""Phase-locked sampler diversion (the B_TRR3 attack extension)."""

from __future__ import annotations

import pytest

from repro.attacks import (AttackExecutor, PhaseLockedSamplerPattern,
                           calibrate_phase_offset, default_context)
from repro.errors import AttackConfigError
from .conftest import scaled_host


def test_band_delta_geometry():
    pattern = PhaseLockedSamplerPattern(sample_period=100, offset=40,
                                        guard=1)
    # Reserved positions: 40, 41, 42 (offset .. offset + 2*guard).
    assert pattern._band_delta(40) == 0
    assert pattern._band_delta(41) == 0
    assert pattern._band_delta(42) == 0
    assert pattern._band_delta(43) == 97   # wraps to next band start
    assert pattern._band_delta(39) == 1
    assert pattern._band_delta(0) == 40


def test_offset_wraps_modulo_period():
    pattern = PhaseLockedSamplerPattern(sample_period=100, offset=140)
    assert pattern.offset == 40


def test_reserved_positions_receive_dummy_acts():
    spec, host = scaled_host("B13")
    mapping = host._chip.mapping
    context = default_context(0, 2000, mapping, 2, host.num_banks)
    pattern = PhaseLockedSamplerPattern(sample_period=50, offset=10,
                                        guard=1)
    from repro.attacks.session import AttackSession
    session = AttackSession(host, trr_period=2)
    dummy_logical = context.dummy_logical_rows()[0]
    pattern.run_window(session, context)
    # The dummy row absorbed roughly one guard band per sample period of
    # the window's activations.
    acts = host.acts_per_bank[0]
    dummy_acts = host._chip.banks[0].rows[
        mapping.to_physical(dummy_logical)]
    assert acts > 0
    assert dummy_acts is not None  # dummy row was touched


def test_sampler_never_captures_aggressors_when_locked():
    spec, host = scaled_host("B13")
    mapping = host._chip.mapping
    trr = host._chip.trr
    executor = AttackExecutor(host, mapping)
    context = default_context(0, 2000, mapping, 2, host.num_banks)
    # True phase: sample points hit when the per-bank ledger reaches a
    # multiple of 500; offset accounts for the executor's init writes.
    offset = 499
    pattern = PhaseLockedSamplerPattern(500, offset, guard=1)
    executor.run(pattern, context, windows=64)
    sampled = trr._bank_samplers[0].row
    aggressors = {mapping.to_physical(r)
                  for r in (context.logical(1999), context.logical(2001))}
    assert sampled is not None
    assert sampled not in aggressors


def test_calibration_raises_for_wrong_period():
    spec, host = scaled_host("B13")
    mapping = host._chip.mapping
    executor = AttackExecutor(host, mapping)

    def factory(victim):
        return default_context(0, victim, mapping, 2, host.num_banks)

    with pytest.raises(AttackConfigError):
        # A wildly wrong sample-period estimate never locks.
        calibrate_phase_offset(executor, factory, 2, 17, windows=16,
                               canary_victims=[700])


def test_configuration_validation():
    with pytest.raises(AttackConfigError):
        PhaseLockedSamplerPattern(sample_period=3)
    with pytest.raises(AttackConfigError):
        PhaseLockedSamplerPattern(sample_period=10, guard=5)
