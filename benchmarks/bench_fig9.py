"""Benchmark E-F9: regenerate Figure 9 (fraction of vulnerable rows).

One representative module per TRR version; shape targets from §7.3:
every module shows custom-pattern bit flips except the very strongest
(C0-6 class), the weaker-HC modules approach 100%, and the
high-threshold / B_TRR2 modules sit far lower.
"""

from __future__ import annotations

import pytest

from repro.eval import QUICK, run_fig9

MODULES = ["A0", "A13", "B0", "B9", "B13", "C0", "C7", "C9", "C12"]


@pytest.mark.benchmark(group="fig9")
def test_fig9_vulnerable_rows(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_fig9(MODULES, QUICK), rounds=1, iterations=1)
    record_artifact("fig9", result.render())
    by_module = {evaluation.spec.module_id: evaluation
                 for evaluation in result.evaluations}
    # Highly vulnerable modules (paper: ~99.9%).
    for module_id in ("B0", "B13", "C12"):
        assert by_module[module_id].vulnerable_fraction > 0.8, module_id
    # Vendor A modules are clearly vulnerable (paper: 73-99%).
    for module_id in ("A0", "A13"):
        assert by_module[module_id].vulnerable_fraction > 0.4, module_id
    # The resistant classes stay far below the vulnerable ones (paper:
    # C0-6 at 1-23%, B9-12 at ~37%; the simulation scale compresses
    # these toward zero — see EXPERIMENTS.md).
    for module_id in ("C0", "B9"):
        assert (by_module[module_id].vulnerable_fraction
                < by_module["B0"].vulnerable_fraction / 2), module_id
