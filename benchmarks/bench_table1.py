"""Benchmark E-T1: regenerate Table 1 rows (full U-TRR inference).

One representative module per vendor keeps the benchmark tractable;
``python -m repro.eval table1 --modules all`` regenerates the complete
45-module table.
"""

from __future__ import annotations

import pytest

from repro.eval import QUICK, run_table1

MODULES = ["A0", "B0", "C12"]


@pytest.mark.benchmark(group="table1")
def test_table1_representative_modules(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_table1(MODULES, QUICK), rounds=1, iterations=1)
    record_artifact("table1", result.render())
    for row in result.rows:
        assert row.ground_truth_matches(), row.spec.module_id
        assert row.evaluation.vulnerable_fraction > 0.5
