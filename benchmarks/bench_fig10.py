"""Benchmark E-F10: regenerate Figure 10 (datawords by flip count) and
the §7.4 ECC-bypass assessment."""

from __future__ import annotations

import pytest

from repro.ecc import assess_ecc
from repro.eval import QUICK, run_fig10

MODULES = ["A0", "B8", "B13", "C12"]


@pytest.mark.benchmark(group="fig10")
def test_fig10_dataword_distribution(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_fig10(MODULES, QUICK), rounds=1, iterations=1)
    record_artifact("fig10", result.render())
    histograms = dict(result.per_module())
    for module_id, histogram in histograms.items():
        if not histogram:
            continue
        # Single-flip words dominate (the SECDED-correctable majority).
        assert histogram[1] == max(histogram.values()), module_id
    # Somewhere across the vulnerable modules, words with >= 3 flips
    # appear — the SECDED/Chipkill-defeating tail of 7.4.
    assert any(count >= 3 for histogram in histograms.values()
               for count in histogram)
    defeated = 0
    for evaluation in result.evaluations:
        assessment = assess_ecc(evaluation.result.flips_by_row)
        defeated += assessment.secded_defeated
        defeated += assessment.chipkill_defeated
    assert defeated > 0
