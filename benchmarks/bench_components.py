"""Component benchmarks: throughput of the methodology's building blocks.

Not paper artifacts — these track the library's own performance so
regressions in the simulator or the tools show up in benchmark history.
"""

from __future__ import annotations

import time

import pytest

from repro.core import (ProfilingConfig, RefreshCalibrator, RowGroupLayout,
                        RowScout)
from repro.dram import (AllOnes, DeviceConfig, DisturbanceConfig, DramChip,
                        RetentionConfig)
from repro.obs import NULL_OBS, traced
from repro.softmc import SoftMCHost
from repro.trr import CounterBasedTrr

CONFIG = DeviceConfig(
    name="component-bench", serial=9, num_banks=4, rows_per_bank=4096,
    row_bits=1024, refresh_cycle_refs=1024,
    retention=RetentionConfig(weak_cells_per_row_mean=2.0,
                              vrt_fraction=0.0),
    disturbance=DisturbanceConfig(hc_first=12_000))


def fresh_host() -> SoftMCHost:
    return SoftMCHost(DramChip(CONFIG, CounterBasedTrr()))


@pytest.mark.benchmark(group="components")
def test_bench_row_scout(benchmark):
    def run():
        host = fresh_host()
        return RowScout(host).find_groups(ProfilingConfig(
            bank=0, layout=RowGroupLayout.parse("R-R"), group_count=4,
            validation_rounds=4))

    groups = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(groups) == 4


@pytest.mark.benchmark(group="components")
def test_bench_refresh_calibration(benchmark):
    host = fresh_host()
    groups = RowScout(host).find_groups(ProfilingConfig(
        bank=0, layout=RowGroupLayout.parse("R-R"), group_count=2,
        validation_rounds=4))
    retention = groups[0].retention_ps
    rows = [(0, row) for group in groups for row in group.logical_rows]

    def run():
        calibrator = RefreshCalibrator(host, AllOnes())
        cycle = calibrator.find_cycle(0, groups[0].logical_rows[0],
                                      retention)
        return calibrator.calibrate_rows(rows, retention, cycle)

    schedule = benchmark.pedantic(run, rounds=3, iterations=1)
    assert schedule.cycle_refs == 1024
    assert len(schedule.phase_windows) == 4


@pytest.mark.benchmark(group="components")
def test_bench_hammer_throughput(benchmark):
    host = fresh_host()

    def run():
        # One refresh window's worth of custom-pattern traffic.
        for _ in range(113):
            host.hammer(0, [(2000, 36), (2002, 36)])
            host.hammer(0, [(100 + 8 * i, 70) for i in range(16)])
            host.refresh(9)
        return host.ref_count

    benchmark.pedantic(run, rounds=3, iterations=1)


def _obs_workload(host) -> int:
    """Fixed hammer/REF mix on the host hot path (the instrumented one)."""
    for _ in range(200):
        host.hammer(0, [(2000, 36), (2002, 36)])
        host.hammer(0, [(100 + 8 * i, 70) for i in range(16)])
        host.refresh(9)
    return host.ref_count


def _digest_workload(host) -> int:
    """Hammer/REF traffic plus reads, so RD digest stamping is on the
    measured path (every read hashes its full row payload)."""
    pattern = AllOnes()
    for row in range(100, 120):
        host.write_row(0, row, pattern)
    for _ in range(50):
        host.hammer(0, [(2000, 36), (2002, 36)])
        host.hammer(0, [(100 + 8 * i, 70) for i in range(16)])
        for row in range(100, 120):
            host.read_row(0, row)
        host.refresh(9)
    return host.ref_count


def test_enabled_trace_overhead_measured(tmp_path):
    """Measure the enabled-trace path (records + per-read CRC digests).

    Unlike the disabled path there is no tight budget — recording is
    *supposed* to cost (one JSONL record per command, one zlib.crc32
    over the row payload per read).  The test reports the factor so
    benchmark history tracks it, verifies digests actually landed in
    the trace, and fails only on an order-of-magnitude blowout.
    """
    import json

    def timed(obs, host):
        start = time.perf_counter()
        _digest_workload(host)
        if obs is not None:
            obs.finalize(host)  # flush is part of the enabled cost
        return time.perf_counter() - start

    best_bare = best_traced = float("inf")
    trace_path = None
    for round_index in range(5):
        bare = SoftMCHost(DramChip(CONFIG, CounterBasedTrr()))
        best_bare = min(best_bare, timed(None, bare))
        trace_path = tmp_path / f"bench-{round_index}.jsonl"
        obs = traced(trace_path)
        host = SoftMCHost(DramChip(CONFIG, CounterBasedTrr()), obs=obs)
        best_traced = min(best_traced, timed(obs, host))

    factor = best_traced / best_bare
    print(f"\nenabled-trace overhead: {factor:.2f}x "
          f"(bare {best_bare:.4f}s, traced {best_traced:.4f}s)")

    # The last trace must carry stamped read digests end to end.
    records = [json.loads(line) for line in
               trace_path.read_text(encoding="utf-8").splitlines()]
    reads = [r for r in records if r.get("t") == "RD"]
    assert reads and all("crc" in r for r in reads)
    assert records[-1].get("type") == "summary"
    assert factor < 50.0, (
        f"enabled trace path blew up: {factor:.1f}x over bare")


def test_disabled_observability_overhead_under_5_percent():
    """The NULL_OBS path must cost < 5% over a host with no obs at all.

    The host caches its recorder/metrics to ``None`` at construction
    when observability is disabled, so the hot path is one identity
    check per command.  Timed as min-of-N with interleaved runs so
    machine drift hits both variants equally.
    """
    variants = {"bare": None, "null": NULL_OBS}

    def timed(obs) -> float:
        host = SoftMCHost(DramChip(CONFIG, CounterBasedTrr()), obs=obs)
        start = time.perf_counter()
        _obs_workload(host)
        return time.perf_counter() - start

    for obs in variants.values():  # warm caches on both paths
        timed(obs)
    # Timer noise on a busy machine can exceed the 5% budget, so the
    # measurement gets up to three attempts; a real regression in the
    # disabled path fails all of them.
    for attempt in range(3):
        best = {name: float("inf") for name in variants}
        for _ in range(7):
            for name, obs in variants.items():
                best[name] = min(best[name], timed(obs))
        overhead = best["null"] / best["bare"] - 1.0
        print(f"\ndisabled-observability overhead: {overhead * 100:+.2f}% "
              f"(bare {best['bare']:.4f}s, null {best['null']:.4f}s, "
              f"attempt {attempt + 1})")
        if overhead < 0.05:
            return
    pytest.fail(f"disabled observability costs {overhead * 100:.1f}% "
                f"(budget 5%): {best}")
