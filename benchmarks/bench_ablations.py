"""Benchmarks E-AB1..3: design-choice ablations from DESIGN.md."""

from __future__ import annotations

import pytest

from repro.eval import (QUICK, run_baseline_ablation,
                        run_dummy_count_ablation, run_hammer_mode_ablation)


@pytest.mark.benchmark(group="ablations")
def test_ablation_hammer_modes(benchmark, record_artifact):
    result = benchmark.pedantic(lambda: run_hammer_mode_ablation(QUICK),
                                rounds=1, iterations=1)
    record_artifact("ablation_modes", result.render())
    by_mode = {row[0]: row[2] for row in result.rows}
    # 5.2: interleaved hammering disturbs far more per activation.
    assert by_mode["interleaved"] > by_mode["cascaded"]


@pytest.mark.benchmark(group="ablations")
def test_ablation_dummy_count(benchmark, record_artifact):
    result = benchmark.pedantic(lambda: run_dummy_count_ablation(QUICK),
                                rounds=1, iterations=1)
    record_artifact("ablation_dummies", result.render())
    flips = {row[0]: row[1] for row in result.rows}
    # Fewer dummies than table entries leave aggressors tracked.
    assert flips[16] > flips[4]
    assert flips[16] > 0


@pytest.mark.benchmark(group="ablations")
def test_ablation_baselines(benchmark, record_artifact):
    result = benchmark.pedantic(lambda: run_baseline_ablation(QUICK),
                                rounds=1, iterations=1)
    record_artifact("ablation_baselines", result.render())
    rows = {(row[0], row[1]): row[2] for row in result.rows}
    # Footnote 18: classic patterns flip nothing on protected modules.
    for module_id in ("A0", "B8", "C9"):
        assert rows[(module_id, "single-sided")] == 0
        assert rows[(module_id, "double-sided")] == 0
    # The same double-sided pattern rips through an unprotected chip,
    # and every custom pattern beats every baseline.
    assert rows[("no-TRR", "double-sided")] > 0
    assert rows[("A0", "vendor-a-custom")] > rows[("A0", "12-sided")]
    assert rows[("B8", "vendor-b-custom")] > rows[("B8", "12-sided")]
    assert rows[("C9", "vendor-c-custom")] > rows[("C9", "12-sided")]


@pytest.mark.benchmark(group="ablations")
def test_ablation_mitigations(benchmark, record_artifact):
    from repro.eval import run_mitigation_ablation
    result = benchmark.pedantic(lambda: run_mitigation_ablation(QUICK),
                                rounds=1, iterations=1)
    record_artifact("ablation_mitigations", result.render())
    rows = {(row[0], row[1]): row[2] for row in result.rows}
    # The custom pattern defeats its TRR but classic hammering does not.
    assert rows[("A_TRR1", "vendor-a-custom")] > 0
    assert rows[("A_TRR1", "double-sided")] == 0
    # Against stateless PARA, diversion buys nothing over double-sided.
    assert (rows[("PARA 1/2000", "vendor-a-custom")]
            <= rows[("PARA 1/2000", "double-sided")])
    # A strong-enough coin blocks everything.
    assert rows[("PARA 1/250", "vendor-a-custom")] == 0
