"""Benchmark fixtures: artifact output directory and run helper.

Every benchmark regenerates one paper artifact (table/figure) at the
documented evaluation scale, saves the rendered text under
``benchmarks/results/`` and reports wall time through pytest-benchmark.
Run with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_artifact(results_dir):
    """Persist a rendered artifact and echo a pointer to it."""

    def _record(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n[artifact saved: {path}]")
        print(text)

    return _record
