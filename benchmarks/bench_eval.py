"""End-to-end evaluation benchmark: BENCH_eval.json.

Measures the two performance layers this repo's evaluation stack is
built on and writes the numbers to a machine-readable JSON file so perf
PRs are measured, not asserted:

* **settle** — the device hot path.  Cells settled per second through
  the vectorized ``Bank.settle`` overlay versus a faithful
  reimplementation of the pre-vectorization per-cell dict loop (kept
  here, frozen, as the comparison baseline).  The first pass asserts
  both implementations commit the identical fault overlay.
* **payload** — the command bus.  Commands per second through the
  compiled-payload batch executor (``repro.program``) versus the
  per-command reference interpreter, for a fusible hammer-heavy shape
  and a fusion-free scan-heavy shape.  The first pass asserts the
  compiled ledger matches the per-command one.
* **figures / eval** — wall-clock per paper artifact (Figures 8, 9, 10)
  at ``quick`` scale, sequential (``--workers 1``) versus the
  ``repro.parallel`` process pool, plus modules evaluated per second.
* **cache** — the result store.  A fig9 sweep run twice through one
  ``repro.cache`` store: the cold pass executes and publishes every
  unit, the warm pass must serve 100% hits with the identical rendered
  artifact.  The warm-over-cold speedup is gated against an absolute
  floor.

Regression checking (``--check baseline.json``) compares the
**speedup ratios** (vectorized-over-legacy, compiled-over-per-command),
not absolute rates: a ratio is a property of the code, so a baseline
committed from one machine remains meaningful on CI runners with
different clock speeds.  Absolute numbers are still recorded for
humans reading the JSON.

Usage::

    python benchmarks/bench_eval.py --scale quick --out BENCH_eval.json
    python benchmarks/bench_eval.py --check benchmarks/BENCH_eval.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

try:
    import repro  # noqa: F401
except ImportError:  # running from a checkout without pip install -e .
    sys.path.insert(
        0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.cache import ResultCache
from repro.dram import (AllOnes, DeviceConfig, DisturbanceConfig, DramChip,
                        HammerMode, RetentionConfig)
from repro.dram.bank import Bank
from repro.dram.refresh import RefreshEngine
from repro.eval import get_scale, run_fig8_many, run_fig9, run_fig10
from repro.eval.fig8 import SWEEPS
from repro.obs import (CollapsedStackSampler, CommandProfiler,
                       RunHistory, TelemetryConfig, build_manifest,
                       profile_report)
from repro.obs.live import pool_breakdown, read_spool
from repro.parallel import default_workers
from repro.rng import SeedSequenceFactory
from repro.softmc import SoftMCHost, SoftMCProgram

DEFAULT_MODULES = ("A5", "B0", "C7")


# -- settle microbenchmark -------------------------------------------------

def _legacy_stored_bits_at(pattern, faults: dict,
                           positions: np.ndarray) -> np.ndarray:
    """Pre-vectorization ``RowState.stored_bits_at`` (dict + loop)."""
    bits = pattern.bits_at(positions).copy()
    if faults:
        for i, pos in enumerate(positions):
            value = faults.get(int(pos))
            if value is not None:
                bits[i] = value
    return bits


def _legacy_settle(pattern, faults: dict, retention, hammer,
                   elapsed_ps: int, disturbance: float) -> None:
    """Pre-vectorization ``Bank.settle`` body (per-cell commit loop)."""
    if len(retention):
        stored = _legacy_stored_bits_at(pattern, faults,
                                        retention.positions)
        for cell in retention.failed_cells(elapsed_ps, stored):
            position = int(retention.positions[cell])
            faults[position] = 1 - int(retention.polarity[cell])
    if disturbance > 0 and len(hammer):
        stored = _legacy_stored_bits_at(pattern, faults, hammer.positions)
        for cell in hammer.flipped_cells(disturbance, stored):
            position = int(hammer.positions[cell])
            faults[position] = 1 - int(hammer.polarity[cell])


def _legacy_read_mismatches(pattern, faults: dict) -> list[int]:
    """Pre-vectorization ``Bank.read_mismatches`` scan (dict + genexpr)."""
    if not faults:
        return []
    positions = np.fromiter(faults.keys(), dtype=np.int64,
                            count=len(faults))
    written = pattern.bits_at(positions)
    stored = np.fromiter(faults.values(), dtype=np.uint8,
                         count=len(faults))
    return sorted(int(p) for p, w, s
                  in zip(positions, written, stored) if w != s)


def _settle_bank(rows: int, row_bits: int) -> Bank:
    """A bank whose rows get hand-built dense cell populations."""
    retention = RetentionConfig(weak_cells_per_row_mean=0.0,
                                vrt_fraction=0.0)
    disturbance = DisturbanceConfig(hc_first=10_000,
                                    victim_cells_mean=0.0)
    bank = Bank(0, rows, row_bits, retention, disturbance,
                SeedSequenceFactory("bench-settle"),
                RefreshEngine(rows, min(rows, 64)))
    return bank


def _fabricate_profiles(rng: np.random.Generator, row_bits: int,
                        cells: int):
    """Dense, disjoint weak-cell and victim-cell populations for one row.

    A physical cell has a single charged polarity, so its retention and
    disturbance failure modes can never disagree about the decayed
    value; disjoint populations keep the benchmark free of the
    re-commit churn such a disagreement would fabricate.  Dense rows
    make per-cell throughput, not per-call overhead, the measured
    quantity.
    """
    from repro.dram.disturbance import RowHammerProfile
    from repro.dram.retention import RowRetentionProfile

    chosen = rng.permutation(row_bits)[:2 * cells]
    weak_positions = np.sort(chosen[:cells]).astype(np.int64)
    victim_positions = np.sort(chosen[cells:]).astype(np.int64)
    retention_ps = rng.uniform(1e9, 5e9, size=cells).astype(np.int64)
    retention = RowRetentionProfile(
        weak_positions, retention_ps, retention_ps,
        rng.integers(0, 2, size=cells).astype(np.uint8),
        np.zeros(cells, dtype=bool))
    thresholds = rng.uniform(1e4, 1e6, size=cells)
    hammer = RowHammerProfile(
        victim_positions, thresholds,
        rng.integers(0, 2, size=cells).astype(np.uint8))
    return retention, hammer


def bench_settle(rows: int = 24, row_bits: int = 65536,
                 cells_per_row: int = 2000,
                 iterations: int = 8, repeats: int = 3) -> dict:
    """Settled cells/sec through one observe cycle, old loop vs new.

    One cycle = settle pending faults + scan for mismatches — exactly
    what every host read performs.  Two scenarios are timed:

    * ``steady`` — the dominant case in real runs: a row observed again
      after its weak cells already decayed (refresh restores the
      decayed value, so the overlay persists across REFs) with nothing
      new to commit.  The legacy loop re-walks every profile position
      against the fault dict each time; the vectorized bank memoizes
      the unchanged overlay lookup.
    * ``fresh`` — the first observation after a write: every pending
      fault is committed into an empty overlay, per cell in the legacy
      loop, as one array merge in the vectorized bank.

    The headline ``speedup`` is the steady-state one.
    """
    bank = _settle_bank(rows, row_bits)
    pattern = AllOnes()
    now_ps = int(200e9)  # far past every fabricated retention time
    disturbance = 1e9    # far above every fabricated threshold
    row_ids = list(range(rows))
    rng = np.random.default_rng(20260806)
    profiles = {}
    for row in row_ids:
        state = bank.state(row)
        state.pattern = pattern
        retention, hammer = _fabricate_profiles(rng, row_bits,
                                                cells_per_row)
        state.retention_profile = retention
        state.hammer_profile = hammer
        profiles[row] = (retention, hammer)
    cells = sum(len(ret) + len(ham) for ret, ham in profiles.values())
    epochs = {row: bank.rows[row].last_recharge_ps for row in row_ids}

    # Equivalence gate: one fresh-overlay cycle through both
    # implementations must commit the identical overlay and report the
    # identical mismatches before any timing is trusted.  The committed
    # overlays seed the timed steady-state loops.
    seeded: dict[int, tuple] = {}
    for row in row_ids:
        state = bank.rows[row]
        elapsed = now_ps - state.last_recharge_ps
        faults: dict[int, int] = {}
        _legacy_settle(pattern, faults, *profiles[row], elapsed,
                       disturbance)
        legacy_mismatches = _legacy_read_mismatches(pattern, faults)
        state.clear_faults()
        state.disturbance = disturbance
        mismatches = bank.read_mismatches(row, now_ps)
        expected = sorted(faults.items())
        got = list(zip(state.fault_positions.tolist(),
                       state.fault_values.tolist()))
        if expected != got or legacy_mismatches != mismatches:
            raise AssertionError(
                f"observe divergence on row {row}: legacy committed "
                f"{len(expected)} faults / {len(legacy_mismatches)} "
                f"mismatches, vectorized {len(got)} / {len(mismatches)}")
        seeded[row] = (faults, state.fault_positions,
                       state.fault_values)

    def legacy_steady(row: int) -> None:
        faults = dict(seeded[row][0])
        _legacy_settle(pattern, faults, *profiles[row],
                       now_ps - epochs[row], disturbance)
        _legacy_read_mismatches(pattern, faults)

    def legacy_fresh(row: int) -> None:
        faults: dict[int, int] = {}
        _legacy_settle(pattern, faults, *profiles[row],
                       now_ps - epochs[row], disturbance)
        _legacy_read_mismatches(pattern, faults)

    def vectorized_steady(row: int) -> None:
        state = bank.rows[row]
        _, positions, values = seeded[row]
        state.fault_positions = positions
        state.fault_values = values
        state.disturbance = disturbance
        state.last_recharge_ps = epochs[row]
        bank.read_mismatches(row, now_ps)

    def vectorized_fresh(row: int) -> None:
        state = bank.rows[row]
        state.clear_faults()
        state.disturbance = disturbance
        state.last_recharge_ps = epochs[row]
        bank.read_mismatches(row, now_ps)

    def timed(cycle) -> float:
        for row in row_ids:  # warm caches outside the timed region
            cycle(row)
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            for _ in range(iterations):
                for row in row_ids:
                    cycle(row)
            best = min(best, time.perf_counter() - start)
        return best

    total_cells = cells * iterations

    def scenario(legacy_cycle, vectorized_cycle) -> dict:
        legacy = timed(legacy_cycle)
        vectorized = timed(vectorized_cycle)
        return {
            "legacy_seconds": round(legacy, 6),
            "vectorized_seconds": round(vectorized, 6),
            "legacy_cells_per_sec": round(total_cells / legacy, 1),
            "vectorized_cells_per_sec": round(total_cells / vectorized,
                                              1),
            "speedup": round(legacy / vectorized, 3),
        }

    steady = scenario(legacy_steady, vectorized_steady)
    fresh = scenario(legacy_fresh, vectorized_fresh)
    return {
        "rows": rows,
        "cells_per_iteration": cells,
        "iterations": iterations,
        "steady": steady,
        "fresh": fresh,
        # Headline numbers are the steady-state scenario (the dominant
        # case in real runs) — aliased here for the regression gate.
        "legacy_cells_per_sec": steady["legacy_cells_per_sec"],
        "vectorized_cells_per_sec": steady["vectorized_cells_per_sec"],
        "speedup": steady["speedup"],
    }


# -- compiled-payload microbenchmark ---------------------------------------

def _payload_host() -> SoftMCHost:
    """A TRR-free chip: the fused executor's best case (and the only
    mechanism for which ACT-run fusion is provably exact)."""
    config = DeviceConfig(
        name="bench-payload", rows_per_bank=4096, refresh_cycle_refs=2048,
        retention=RetentionConfig(weak_cells_per_row_mean=2.0,
                                  vrt_fraction=0.0),
        disturbance=DisturbanceConfig(hc_first=50_000))
    return SoftMCHost(DramChip(config))


def _hammer_heavy_program() -> SoftMCProgram:
    """100 REF intervals of 60 identical double-sided hammer commands —
    the sustained-pressure shape attack windows produce (e.g. vendor-B
    dummy pressure), and the executor's fusible best case."""
    body = SoftMCProgram()
    for _ in range(60):
        body.hammer(0, ((1000, 4), (1002, 4)), HammerMode.INTERLEAVED)
    body.refresh(1)
    return SoftMCProgram().loop(100, body)


def _scan_heavy_program() -> SoftMCProgram:
    """Write/wait/check retention passes (the Row Scout shape): no ACT
    runs to fuse, so this measures raw interpreter overhead."""
    program = SoftMCProgram()
    rows = range(1000, 1040)
    for round_index in range(10):
        for row in rows:
            program.write(0, row, AllOnes())
        program.wait(int(64e9))
        for row in rows:
            program.check(0, row, label=f"r{round_index}:{row}")
    return program


def _ledger(host: SoftMCHost, result) -> tuple:
    chip = host._chip
    return (host.now_ps, host.ref_count,
            tuple(sorted(host.acts_per_bank.items())),
            chip.stats.activates, chip.stats.refreshes,
            tuple(sorted((label, tuple(positions))
                         for label, positions in result.mismatches.items())))


def bench_payload(repeats: int = 3) -> dict:
    """Commands/sec, per-command interpreter vs compiled batch executor.

    Two program shapes are timed: **hammer-heavy** (where consecutive
    identical ACT commands fuse into closed-form multi-command settles)
    and **scan-heavy** (no fusible runs; measures dispatch overhead
    only).  The first pass asserts the compiled run's ledger — clock,
    REF/ACT counters, chip stats, read-back mismatches — matches the
    per-command reference before any timing is trusted.  The headline
    ``speedup`` (gated in ``--check``) is the hammer-heavy one.
    """
    shapes = {"hammer": _hammer_heavy_program(),
              "scan": _scan_heavy_program()}
    results = {}
    for name, program in shapes.items():
        reference_host = _payload_host()
        reference = _ledger(reference_host,
                            program.run(reference_host, compiled=False))
        payload = program.compile(reference_host.timing)
        for fuse in (False, True):
            host = _payload_host()
            got = _ledger(host, host.execute_payload(payload, fuse=fuse))
            if got != reference:
                raise AssertionError(
                    f"compiled {name} payload (fuse={fuse}) diverged "
                    f"from the per-command reference")

        def timed(run_once) -> float:
            best = float("inf")
            for _ in range(repeats):
                host = _payload_host()
                start = time.perf_counter()
                run_once(host)
                best = min(best, time.perf_counter() - start)
            return best

        legacy = timed(lambda host: program.run(host, compiled=False))
        compiled = timed(
            lambda host: host.execute_payload(
                program.compile(host.timing), fuse=True))
        commands = len(payload)
        results[name] = {
            "commands": commands,
            "acts": payload.total_acts(),
            "per_command_seconds": round(legacy, 6),
            "compiled_seconds": round(compiled, 6),
            "per_command_cmds_per_sec": round(commands / legacy, 1),
            "compiled_cmds_per_sec": round(commands / compiled, 1),
            "speedup": round(legacy / compiled, 3),
        }
    results["speedup"] = results["hammer"]["speedup"]
    return results


# -- figure wall-clock -----------------------------------------------------

def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def bench_figures(modules: list[str], scale, workers: int) -> dict:
    """Wall-clock per figure, sequential vs the parallel engine.

    The parallel pass runs with a throwaway telemetry spool
    (heartbeats off) purely to harvest per-unit wall-clocks; the
    resulting straggler / pool-overhead breakdown is what explains a
    sub-1x ``parallel_speedup`` — e.g. one module dominating the
    critical path while pool spawn + pickling add fixed cost.
    """
    fig8_modules = [m for m in modules if m in SWEEPS] or ["A5"]
    runs = {
        "fig8": (fig8_modules,
                 lambda w, t: run_fig8_many(fig8_modules, scale,
                                            workers=w, telemetry=t)),
        "fig9": (modules,
                 lambda w, t: run_fig9(modules, scale, workers=w,
                                       telemetry=t)),
        "fig10": (modules,
                  lambda w, t: run_fig10(modules, scale, workers=w,
                                         telemetry=t)),
    }
    figures = {}
    for name, (ids, run) in runs.items():
        sequential, _ = _timed(lambda: run(1, None))
        with tempfile.TemporaryDirectory() as spool:
            telemetry = TelemetryConfig(spool=spool,
                                        run_id=f"bench.{name}",
                                        heartbeats=False)
            parallel, _ = _timed(lambda: run(workers, telemetry))
            breakdown = pool_breakdown(read_spool(spool),
                                       pool_wall_s=parallel)
        figures[name] = {
            "modules": list(ids),
            "sequential_seconds": round(sequential, 3),
            "parallel_seconds": round(parallel, 3),
            "parallel_speedup": round(sequential / parallel, 3),
            "parallel_breakdown": breakdown,
        }
    return figures


def bench_cache(modules: list[str], scale) -> dict:
    """Cold vs warm fig9 sweep through one content-addressed store.

    The cold pass executes every module unit and publishes its result
    envelope; the warm pass — a fresh :class:`ResultCache` over the
    same store, as a re-invoked CLI run would build — must serve every
    unit from the store (100% hit ratio, zero executions) and render
    the byte-identical artifact.  Both invariants are asserted before
    the timing is trusted.  The headline ``speedup`` is warm-over-cold
    wall clock; ``--check`` gates it against an absolute floor because
    the ratio is a property of the code (fetch-and-replay vs execute),
    not of the machine.
    """
    with tempfile.TemporaryDirectory() as root:
        cold_s, cold = _timed(
            lambda: run_fig9(modules, scale, workers=1,
                             cache=ResultCache(root)))
        warm_cache = ResultCache(root)
        warm_s, warm = _timed(
            lambda: run_fig9(modules, scale, workers=1,
                             cache=warm_cache))
        summary = warm_cache.summary()
        if cold.render() != warm.render():
            raise AssertionError(
                "warm cache run rendered a different fig9 artifact "
                "than the cold run")
        if summary["hit_ratio"] != 1.0 or summary["misses"]:
            raise AssertionError(
                f"warm cache run was not 100% hits: {summary}")
    return {
        "modules": list(modules),
        "cold_seconds": round(cold_s, 3),
        "warm_seconds": round(warm_s, 3),
        "speedup": round(cold_s / warm_s, 3),
        "hits": summary["hits"],
        "misses": summary["misses"],
        "hit_ratio": summary["hit_ratio"],
    }


def bench_profile(modules: list[str], scale,
                  stacks_path: pathlib.Path | None = None) -> dict:
    """Per-opcode command-bus attribution for one sequential fig9 run.

    Runs with a :class:`CommandProfiler` on the host hot path and a
    collapsed-stack sampler on the driving thread; the report carries
    the opcode table plus ``coverage`` — the fraction of the measured
    wall the opcode rows explain (the rest is Python-side work the
    sampler's flamegraph localizes).
    """
    profiler = CommandProfiler()
    sampler = CollapsedStackSampler(interval_s=0.01)
    with sampler:
        wall, _ = _timed(lambda: run_fig9(modules, scale, workers=1,
                                          profiler=profiler))
    report = profile_report(profiler, wall_s=wall)
    report["stack_samples"] = sampler.total_samples
    if stacks_path is not None:
        sampler.write(stacks_path)
        report["stacks_file"] = str(stacks_path)
    return report


def run_benchmarks(modules: list[str], scale_name: str, workers: int,
                   profile: bool = False,
                   stacks_path: pathlib.Path | None = None) -> dict:
    scale = get_scale(scale_name)
    print(f"[bench] settle microbenchmark "
          f"(vectorized vs legacy loop) ...", flush=True)
    settle = bench_settle()
    print(f"[bench]   {settle['vectorized_cells_per_sec']:,.0f} cells/s "
          f"vectorized vs {settle['legacy_cells_per_sec']:,.0f} legacy "
          f"({settle['speedup']:.1f}x)", flush=True)
    print("[bench] compiled-payload microbenchmark "
          "(batch executor vs per-command) ...", flush=True)
    payload = bench_payload()
    for shape in ("hammer", "scan"):
        numbers = payload[shape]
        print(f"[bench]   {shape}: "
              f"{numbers['compiled_cmds_per_sec']:,.0f} cmds/s compiled "
              f"vs {numbers['per_command_cmds_per_sec']:,.0f} "
              f"per-command ({numbers['speedup']:.1f}x)", flush=True)
    print("[bench] result cache (cold vs warm fig9 sweep) ...",
          flush=True)
    cache = bench_cache(modules, scale)
    print(f"[bench]   cold {cache['cold_seconds']:.1f}s, warm "
          f"{cache['warm_seconds']:.2f}s ({cache['speedup']:.0f}x, "
          f"hit ratio {cache['hit_ratio']:.0%})", flush=True)
    print(f"[bench] figures at scale={scale_name} "
          f"modules={','.join(modules)} workers={workers} ...", flush=True)
    figures = bench_figures(modules, scale, workers)
    for name, numbers in figures.items():
        print(f"[bench]   {name}: {numbers['sequential_seconds']:.1f}s "
              f"sequential, {numbers['parallel_seconds']:.1f}s with "
              f"{workers} workers", flush=True)
    fig9 = figures["fig9"]
    results = {
        "schema": 1,
        "scale": scale_name,
        "modules": list(modules),
        "workers": workers,
        "settle": settle,
        "payload": payload,
        "cache": cache,
        "figures": figures,
        "eval": {
            "modules_per_sec_sequential": round(
                len(modules) / fig9["sequential_seconds"], 3),
            "modules_per_sec_parallel": round(
                len(modules) / fig9["parallel_seconds"], 3),
        },
        "manifest": build_manifest(include_time=False,
                                   benchmark="bench_eval"),
    }
    if profile:
        print("[bench] command-bus profile (sequential fig9) ...",
              flush=True)
        results["profile"] = bench_profile(modules, scale,
                                           stacks_path=stacks_path)
        coverage = results["profile"].get("coverage")
        print(f"[bench]   {results['profile']['commands']} commands, "
              f"{results['profile']['total_s']:.2f}s on the command "
              f"bus" + (f" ({coverage:.0%} of wall)"
                        if coverage is not None else ""), flush=True)
    return results


# -- regression gate -------------------------------------------------------

def check_regression(current: dict, baseline_path: pathlib.Path,
                     tolerance: float) -> list[str]:
    """Machine-independent regression check against a committed baseline.

    Only speedup *ratios* are gated — settle (vectorized vs legacy
    loop), payload (compiled executor vs per-command interpreter,
    hammer-heavy shape) and cache (warm fetch-and-replay vs cold
    execution): each compares two code paths on the same machine, so
    it transfers across runners.  Absolute wall-clock numbers in the
    baseline are informational.  The cache ratio is gated only against
    its absolute 10x floor, not baseline-relative tolerance: the warm
    pass measures store I/O against unit execution, a ratio that spans
    orders of magnitude with unit cost, so "within 25% of baseline"
    would be noise.
    """
    baseline = json.loads(baseline_path.read_text())
    failures = []
    current_speedup = current["settle"]["speedup"]
    baseline_speedup = baseline["settle"]["speedup"]
    floor = baseline_speedup * (1.0 - tolerance)
    if current_speedup < floor:
        failures.append(
            f"settle speedup regressed: {current_speedup:.2f}x < "
            f"{floor:.2f}x ({baseline_speedup:.2f}x baseline "
            f"- {tolerance:.0%} tolerance)")
    if current_speedup < 5.0:
        failures.append(
            f"settle speedup below the 5x floor: {current_speedup:.2f}x")
    current_payload = current.get("payload", {}).get("hammer", {})
    baseline_payload = baseline.get("payload", {}).get("hammer", {})
    payload_speedup = current_payload.get("speedup")
    if payload_speedup is not None:
        payload_baseline = baseline_payload.get("speedup")
        if payload_baseline is not None:
            payload_floor = payload_baseline * (1.0 - tolerance)
            if payload_speedup < payload_floor:
                failures.append(
                    f"payload speedup regressed: {payload_speedup:.2f}x < "
                    f"{payload_floor:.2f}x ({payload_baseline:.2f}x "
                    f"baseline - {tolerance:.0%} tolerance)")
        if payload_speedup < 5.0:
            failures.append(
                f"payload (hammer) speedup below the 5x floor: "
                f"{payload_speedup:.2f}x")
    cache_speedup = current.get("cache", {}).get("speedup")
    if cache_speedup is not None and cache_speedup < 10.0:
        failures.append(
            f"cache warm/cold speedup below the 10x floor: "
            f"{cache_speedup:.2f}x")
    cache_hit_ratio = current.get("cache", {}).get("hit_ratio")
    if cache_hit_ratio is not None and cache_hit_ratio != 1.0:
        failures.append(
            f"warm cache pass was not 100% hits: {cache_hit_ratio:.0%}")
    return failures


def report_parallel(results_path: pathlib.Path) -> int:
    """Print the parallel speedups recorded in a results file.

    Informational (always exits 0): parallel speedup depends on the
    runner's core count, so it is reported in CI logs rather than gated.
    """
    results = json.loads(results_path.read_text())
    workers = results.get("workers")
    print(f"[bench] parallel speedups at workers={workers} "
          f"(from {results_path}):")
    for name, figure in sorted(results.get("figures", {}).items()):
        print(f"[bench]   {name}: {figure['parallel_speedup']:.2f}x "
              f"({figure['sequential_seconds']:.1f}s -> "
              f"{figure['parallel_seconds']:.1f}s)")
        breakdown = figure.get("parallel_breakdown") or {}
        stragglers = breakdown.get("stragglers")
        if not stragglers:
            continue
        # A speedup below 1x decomposes into its two causes: the
        # critical path (slowest unit) and pool overhead (spawn,
        # pickling, merge) on top of it.
        worst = ", ".join(f"{s['unit']}={s['wall_s']:.1f}s"
                          for s in stragglers)
        print(f"[bench]     stragglers: {worst}")
        print(f"[bench]     critical path {breakdown['max_unit_s']:.1f}s"
              f" of {breakdown['sum_unit_s']:.1f}s total unit work; "
              f"pool overhead "
              f"{breakdown.get('overhead_s', 0.0):.1f}s")
    eval_rates = results.get("eval", {})
    print(f"[bench]   eval modules/sec: "
          f"{eval_rates.get('modules_per_sec_sequential')} sequential, "
          f"{eval_rates.get('modules_per_sec_parallel')} parallel")
    profile = results.get("profile")
    if profile:
        print(f"[bench]   command bus: {profile.get('commands')} "
              f"commands, {profile.get('total_s')}s "
              f"(coverage {profile.get('coverage')})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", default="quick",
                        choices=("quick", "standard"))
    parser.add_argument("--modules", default=",".join(DEFAULT_MODULES),
                        help="comma-separated module ids "
                             f"(default {','.join(DEFAULT_MODULES)})")
    parser.add_argument("--workers", type=int, default=default_workers(),
                        help="process-pool width for the parallel runs")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_eval.json"))
    parser.add_argument("--check", type=pathlib.Path, default=None,
                        help="baseline BENCH_eval.json to gate against")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression vs baseline")
    parser.add_argument("--report-parallel", type=pathlib.Path,
                        default=None, metavar="RESULTS",
                        help="print parallel speedups from an existing "
                             "results file and exit")
    parser.add_argument("--profile", action="store_true",
                        help="additionally record per-opcode command-bus "
                             "attribution and a collapsed-stack profile "
                             "for a sequential fig9 run")
    parser.add_argument("--history", type=pathlib.Path, default=None,
                        metavar="PATH",
                        help="append the profiled run (wall + per-opcode "
                             "seconds) to a run-history store so stage "
                             "regressions gate across runs")
    args = parser.parse_args(argv)

    if args.report_parallel is not None:
        return report_parallel(args.report_parallel)

    modules = [m.strip() for m in args.modules.split(",") if m.strip()]
    stacks_path = (args.out.with_suffix(".stacks.txt")
                   if args.profile else None)
    results = run_benchmarks(modules, args.scale, max(args.workers, 1),
                             profile=args.profile,
                             stacks_path=stacks_path)
    args.out.write_text(json.dumps(results, indent=2, sort_keys=True)
                        + "\n")
    print(f"[bench] wrote {args.out}")
    if stacks_path is not None:
        print(f"[bench] wrote {stacks_path} (collapsed stacks — feed "
              f"to flamegraph.pl / speedscope)")

    if args.history is not None and args.profile:
        profile = results.get("profile", {})
        RunHistory(args.history).record(
            "bench.profile",
            manifest=results["manifest"],
            wall_s=profile.get("wall_s"),
            profile=profile.get("seconds"),
            extra={"commands": profile.get("commands"),
                   "coverage": profile.get("coverage")})
        print(f"[bench] recorded profile history row in {args.history}")

    if args.check is not None:
        failures = check_regression(results, args.check, args.tolerance)
        if failures:
            for failure in failures:
                print(f"[bench] FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"[bench] OK: within {args.tolerance:.0%} of "
              f"{args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
