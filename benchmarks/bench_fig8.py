"""Benchmark E-F8: regenerate Figure 8 (flips/row vs hammer count).

Shape assertions mirror §7.2: vendor A's custom pattern has an interior
optimum; vendors B and C rise to a knee and collapse when aggressor
hammering starves the diversion phase.
"""

from __future__ import annotations

import pytest

from repro.eval import QUICK, run_fig8


def _total(sweep, hammers):
    return sum(sweep.flips_by_hammers[hammers])


@pytest.mark.benchmark(group="fig8")
def test_fig8_vendor_a_interior_optimum(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_fig8("A5", QUICK, hammer_counts=(24, 72, 144)),
        rounds=1, iterations=1)
    record_artifact("fig8_A5", result.render())
    sweep = result.sweep
    assert _total(sweep, 72) > _total(sweep, 24)
    assert _total(sweep, 72) > _total(sweep, 144)


@pytest.mark.benchmark(group="fig8")
def test_fig8_vendor_b_knee(benchmark, record_artifact):
    result = benchmark.pedantic(
        lambda: run_fig8("B8", QUICK, hammer_counts=(20, 80, 130)),
        rounds=1, iterations=1)
    record_artifact("fig8_B8", result.render())
    sweep = result.sweep
    assert _total(sweep, 80) > _total(sweep, 20)
    assert _total(sweep, 80) > _total(sweep, 130)


@pytest.mark.benchmark(group="fig8")
def test_fig8_vendor_c_knee(benchmark, record_artifact):
    # 1225 hammers/aggressor leave only ~66 activations for the dummy
    # burst: the detection window fills with aggressors and TRR bites.
    result = benchmark.pedantic(
        lambda: run_fig8("C7", QUICK, hammer_counts=(126, 630, 1225)),
        rounds=1, iterations=1)
    record_artifact("fig8_C7", result.render())
    sweep = result.sweep
    assert _total(sweep, 630) > _total(sweep, 126)
    assert _total(sweep, 630) > _total(sweep, 1225)
