"""U-TRR-guided attack synthesis (§7.1): infer, craft, compare.

End-to-end attacker story against one module:

1. reverse-engineer the TRR mechanism through the side channel;
2. synthesize the custom access pattern the recovered profile calls for;
3. attack a set of victim rows with classic patterns and the custom one,
   under a live refresh stream, and compare the damage.

Run:  python examples/craft_attack.py [module-id]   (default B8)
"""

import sys

from repro.attacks import (AttackExecutor, DoubleSidedPattern,
                           ManySidedPattern, SingleSidedPattern,
                           choose_pattern, default_context,
                           victim_positions)
from repro.core import TrrInference
from repro.core.mapping_re import CouplingTopology
from repro.eval import STANDARD
from repro.softmc import SoftMCHost
from repro.vendors import build_module, get_module


def main() -> None:
    module_id = sys.argv[1] if len(sys.argv) > 1 else "B8"
    spec = get_module(module_id)
    scale = STANDARD

    # -- 1. reverse-engineer (separate chip instance: the profile is a
    #       property of the module design, not of one powered-on chip) --
    print(f"[1] reverse-engineering module {module_id} ...")
    probe_chip = build_module(spec, rows_per_bank=8192, row_bits=1024,
                              weak_cells_per_row_mean=2.0,
                              vrt_fraction=0.0)
    profile = TrrInference(SoftMCHost(probe_chip)).run()
    print(f"    {profile.summary()}")

    # -- 2. synthesize the custom pattern ------------------------------
    pattern = choose_pattern(profile)
    print(f"[2] synthesized pattern: {pattern.name}")

    # -- 3. attack shoot-out under a live REF stream -------------------
    host = scale.build_host(spec)
    mapping = host._chip.mapping
    period = profile.trr_ref_period
    windows = max(2 * scale.scaled_cycle(spec) // period, 1)
    paired = profile.coupling is CouplingTopology.PAIRED
    victims = victim_positions(host.rows_per_bank, 8,
                               profile.coupling, margin=64)
    print(f"[3] attacking {len(victims)} victim rows for "
          f"{windows} x {period}-REF windows each:")
    for candidate in (SingleSidedPattern(), DoubleSidedPattern(),
                      ManySidedPattern(sides=12), pattern):
        total = 0
        vulnerable = 0
        for victim in victims:
            fresh = scale.build_host(spec)
            executor = AttackExecutor(fresh, fresh._chip.mapping)
            context = default_context(0, victim, fresh._chip.mapping,
                                      period, fresh.num_banks,
                                      paired=paired)
            flips = executor.run(candidate, context, windows) \
                .flips_at(victim)
            total += flips
            vulnerable += flips > 0
        print(f"    {candidate.name:>18}: {total:5d} flips, "
              f"{vulnerable}/{len(victims)} victims hit")
    print("\nThe custom pattern wins because it was built from the "
          "recovered TRR internals — that is the paper's point.")


if __name__ == "__main__":
    main()
