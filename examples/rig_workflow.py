"""Rig workflow: command-level control, measurement reuse, replay.

The workflow a lab runs when a new DIMM lands on the rig:

1. drive a few raw DDR command sequences over the :class:`DdrBus` to
   sanity-check the module (timing-rule enforcement included);
2. profile row groups with Row Scout and calibrate the regular-refresh
   schedule — the expensive, once-per-module part;
3. persist the measurement bundle to JSON;
4. reload it (in a later "session") and run a TRR Analyzer experiment
   against the same chip without re-profiling.

Run:  python examples/rig_workflow.py
"""

import tempfile

from repro.core import (AggressorHammer, ExperimentConfig, ProfilingConfig,
                        RefreshCalibrator, RowGroupLayout, RowScout,
                        TrrAnalyzer, load_measurement, save_measurement)
from repro.dram import AllOnes
from repro.softmc import DdrBus, SoftMCHost
from repro.vendors import build_module, get_module


def main() -> None:
    spec = get_module("A6")
    chip = build_module(spec, rows_per_bank=4096, row_bits=1024,
                        weak_cells_per_row_mean=2.0, vrt_fraction=0.0)

    # -- 1. raw command-level smoke over the bus -----------------------
    bus = DdrBus(chip)
    bus.activate(0, 42)
    bus.write(0, AllOnes())
    bus.precharge(0)
    for _ in range(32):
        bus.hammer_once(0, 41)
    bus.refresh()
    print(f"[1] bus smoke: {len(bus.trace)} commands issued, e.g. "
          f"{bus.trace[0]} ... {bus.trace[-1]}")

    # -- 2. profile + calibrate ----------------------------------------
    host = SoftMCHost(chip)
    scout = RowScout(host)
    groups = scout.find_groups(ProfilingConfig(
        bank=0, layout=RowGroupLayout.parse("R-R"), group_count=2,
        validation_rounds=8))
    retention = groups[0].retention_ps
    print(f"[2] Row Scout: {len(groups)} 'R-R' groups at "
          f"T={retention / 1e9:.0f} ms "
          f"(bases {[g.base_physical for g in groups]})")
    calibrator = RefreshCalibrator(host, AllOnes())
    cycle = calibrator.find_cycle(0, groups[0].logical_rows[0], retention)
    schedule = calibrator.calibrate_rows(
        [(0, row) for group in groups for row in group.logical_rows],
        retention, cycle)
    print(f"    regular refresh cycle: {cycle} REFs "
          f"(vendor A's shortened pass)")

    # -- 3. persist ------------------------------------------------------
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as f:
        path = f.name
    save_measurement(path, groups, schedule)
    print(f"[3] measurement bundle saved to {path}")

    # -- 4. reload and experiment ----------------------------------------
    groups2, schedule2, _ = load_measurement(path)
    analyzer = TrrAnalyzer(host, groups2, schedule2)
    aggressor = AggressorHammer(
        bank=0, logical_row=groups2[0].gap_logical_rows(
            analyzer._mapping)[0], count=5000)
    result = analyzer.run(ExperimentConfig(aggressors=(aggressor,),
                                           refs_per_round=20))
    protected = result.trr_refreshed_physical(0)
    print(f"[4] replayed TRR-A experiment: TRR refreshed physical rows "
          f"{sorted(protected)} (the hammered group's neighbors)")
    assert groups2[0].physical_rows[0] in protected


if __name__ == "__main__":
    main()
