"""Quickstart: the retention side channel in five minutes.

Builds a simulated DDR4 module (Table 1's A0) with its hidden TRR
mechanism, then demonstrates the two physical effects U-TRR is built on:

1. a weak row decays when left unrefreshed past its retention time —
   and survives when any refresh lands first (the side channel);
2. double-sided hammering flips victim bits once refresh is disabled,
   but the on-die TRR protects the victim when REF commands flow.

Run:  python examples/quickstart.py
"""

from repro.dram import AllOnes, HammerMode
from repro.softmc import SoftMCHost
from repro.units import ms
from repro.vendors import build_module, get_module


def find_weak_row(host, bank=0, max_ms=2000):
    """Scan for a row that fails retention within max_ms (ground-truth
    helper used here for brevity; Row Scout does this honestly)."""
    chip = host._chip
    for row in range(host.rows_per_bank):
        retention = chip.true_retention_ps(bank, row, AllOnes())
        if retention < ms(max_ms):
            return row, retention
    raise SystemExit("no weak row found; increase max_ms")


def main() -> None:
    spec = get_module("A0")
    print(f"Module {spec.module_id}: {spec.density_gbit} Gbit, "
          f"{spec.num_banks} banks, TRR version {spec.trr_version.value}")
    host = SoftMCHost(build_module(spec, rows_per_bank=4096, row_bits=8192,
                                   weak_cells_per_row_mean=1.0))

    # --- 1. The retention side channel -------------------------------
    row, retention = find_weak_row(host)
    print(f"\nWeak row {row}: retains data for {retention / 1e9:.0f} ms")

    host.write_row(0, row, AllOnes())
    host.wait(retention + ms(1))
    flips = host.read_row_mismatches(0, row)
    print(f"unrefreshed past retention  -> {len(flips)} bit flip(s)")

    host.write_row(0, row, AllOnes())
    host.wait(retention // 2)
    host.refresh(host._chip.config.refresh_cycle_refs)  # full refresh pass
    host.wait(retention // 2 + ms(1))
    flips = host.read_row_mismatches(0, row)
    print(f"refreshed at half time      -> {len(flips)} bit flip(s)")
    print("that difference is U-TRR's entire measurement primitive.")

    # --- 2. RowHammer vs the hidden TRR --------------------------------
    victim = 2000
    threshold = host._chip.true_min_hammer_threshold(0, victim, AllOnes())
    hammers = int(threshold)  # per side; ~2x the flip threshold combined
    print(f"\nVictim row {victim}: weakest cell flips at "
          f"~{threshold:.0f} effective hammers")

    host.write_row(0, victim, AllOnes())
    host.hammer(0, [(victim - 1, hammers), (victim + 1, hammers)],
                HammerMode.INTERLEAVED)
    print(f"refresh disabled: double-sided {hammers} hammers/side -> "
          f"{len(host.read_row_mismatches(0, victim))} flips")

    host.write_row(0, victim, AllOnes())
    for _ in range(40):  # hammer in bursts with REFs between: TRR acts
        host.hammer(0, [(victim - 1, hammers // 40),
                        (victim + 1, hammers // 40)],
                    HammerMode.INTERLEAVED)
        host.refresh(9)
    print(f"REFs flowing: same total hammering  -> "
          f"{len(host.read_row_mismatches(0, victim))} flips "
          "(TRR refreshed the victim)")
    print("\nNext: examples/reverse_engineer.py uncovers HOW it did that.")


if __name__ == "__main__":
    main()
