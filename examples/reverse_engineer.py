"""Reverse-engineer a module's TRR mechanism through the side channel.

Walks the full §6 methodology against a module of your choice — the
tooling only ever issues DDR commands and reads data back:

  stage 0  row-mapping + coupling discovery (§5.3)
  stage 1  Row Scout finds retention-profiled row groups (§4)
  stage 2  regular-refresh cycle + per-row phases (Obs A8)
  stage 3  TRR-to-REF stride (Obs A1/B1/C1)
  stage 4  refreshed neighbor distances (Obs A2/B2/C3)
  stage 5  persistence vs deferral (Obs A7/B5/C1)
  stage 6  counter vs sampler detection (Obs A3/B3)
  stage 7  aggressor capacity (Obs A4/B4)
  stage 8  per-bank vs shared state (Obs A4/B4)

Run:  python examples/reverse_engineer.py [module-id]   (default A0)
"""

import sys
import time

from repro.core import TrrInference
from repro.softmc import SoftMCHost
from repro.vendors import build_module, get_module


def main() -> None:
    module_id = sys.argv[1] if len(sys.argv) > 1 else "A0"
    spec = get_module(module_id)
    print(f"Target: module {spec.module_id} "
          f"(implants {spec.trr_version.value} — the tools don't know "
          "that)")
    chip = build_module(spec, rows_per_bank=8192, row_bits=1024,
                        weak_cells_per_row_mean=2.0, vrt_fraction=0.0)
    inference = TrrInference(SoftMCHost(chip))

    started = time.time()
    print("\n[0] discovering row mapping & coupling ...")
    discovery = inference.mapping_discovery
    print(f"    scheme={discovery.scheme} "
          f"coupling={discovery.coupling.value}")

    print("[1-2] profiling rows & calibrating regular refresh ...")
    cycle = inference.regular_refresh_cycle
    print(f"    regular refresh pass every {cycle} REFs "
          f"(nominal would be ~{chip.config.rows_per_bank})")

    print("[3] measuring the TRR-to-REF stride ...")
    period, detail = inference.find_trr_period()
    print(f"    TRR-capable REF every {period} REFs "
          f"(hit indices {detail['hits'][:5]} ...)")

    print("[4] which neighbors does a TRR refresh cover?")
    distances, sides = inference.find_refreshed_neighbors(period)
    print(f"    refreshed victim distances: {distances} "
          f"(sides: {sides['sides']})")

    print("[5] does detection state persist without activity?")
    persists, _ = inference.test_state_persistence(period)
    print(f"    persists={persists} "
          f"({'counter/sampler-like' if persists else 'deferred window'})")

    print("[6] counter vs sampler?")
    detection, kind_detail = inference.classify_detection(period, persists)
    print(f"    detection={detection} ({kind_detail})")

    print("[7] aggressor capacity ...")
    capacity, _ = inference.estimate_capacity(period, detection)
    print(f"    capacity={capacity}")

    print("[8] per-bank or chip-shared state?")
    per_bank, bank_detail = inference.test_per_bank(period)
    print(f"    per_bank={per_bank} ({bank_detail})")

    print("[9] extension probes (beyond the paper) ...")
    if detection == "counter":
        policy, _ = inference.test_eviction_policy()
        reset, reset_detail = inference.test_counter_reset(period)
        print(f"    eviction policy: {policy}; "
              f"counter reset on detection: {reset} ({reset_detail})")
    elif detection == "sampling":
        sample_period, _ = inference.measure_sample_period(period)
        print(f"    sampler period estimate: ~{sample_period} ACTs")
    else:
        horizon, _ = inference.measure_detection_horizon(period)
        print(f"    detection horizon (min diversion burst): "
              f"~{horizon} ACTs")

    truth = chip.trr.ground_truth
    print(f"\nRecovered profile vs implanted ground truth "
          f"({time.time() - started:.0f}s):")
    print(f"    kind:      {detection:>10}  (truth: {truth.kind})")
    print(f"    period:    {period:>10}  (truth: {truth.trr_ref_period})")
    print(f"    capacity:  {str(capacity):>10}  "
          f"(truth: {truth.aggressor_capacity})")
    print(f"    per-bank:  {str(per_bank):>10}  (truth: {truth.per_bank})")


if __name__ == "__main__":
    main()
