"""Mitigation study: what would U-TRR say about PARA? (future work)

The paper closes by suggesting U-TRR as a tool for evaluating RowHammer
mitigations beyond vendor TRR (§8).  This study runs the pipeline
against PARA — the classic *stateless* probabilistic mitigation — and
then throws the §7.1 arsenal at it:

* U-TRR immediately classifies PARA as **ACT-coupled / REF-independent**
  (victims get refreshed with zero REF commands issued), so none of the
  REF-synchronized diversion tricks apply;
* every custom pattern collapses to roughly plain double-sided
  hammering, because there is no deterministic state to divert — only a
  per-activation coin flip;
* the security/overhead trade-off is the coin's probability: the study
  sweeps it and reports flips vs extra refreshes.

Run:  python examples/mitigation_study.py
"""

import dataclasses

from repro.attacks import (AttackExecutor, DoubleSidedPattern,
                           VendorAPattern, default_context)
from repro.core import TrrInference
from repro.dram import DramChip
from repro.eval import STANDARD
from repro.eval.report import render_table
from repro.softmc import SoftMCHost
from repro.trr import ParaMitigation
from repro.vendors import get_module


def para_host(probability: float, scale=STANDARD) -> SoftMCHost:
    spec = get_module("A0")  # organization only; PARA replaces its TRR
    config = spec.device_config(rows_per_bank=scale.rows_per_bank,
                                row_bits=scale.row_bits)
    config = dataclasses.replace(
        config, refresh_cycle_refs=scale.refresh_cycle_refs,
        disturbance=dataclasses.replace(
            config.disturbance, hc_first=scale.scaled_hc_first(spec)))
    return SoftMCHost(DramChip(config, ParaMitigation(
        probability=probability, seed=11)))


def main() -> None:
    # -- 1. U-TRR's verdict on PARA -------------------------------------
    print("[1] running U-TRR inference against PARA (p=1/200) ...")
    spec = get_module("A0")
    probe = SoftMCHost(DramChip(
        dataclasses.replace(
            spec.device_config(rows_per_bank=8192, row_bits=1024,
                               weak_cells_per_row_mean=2.0,
                               vrt_fraction=0.0),
            refresh_cycle_refs=2048),
        ParaMitigation(probability=1 / 200, seed=7)))
    profile = TrrInference(probe).run()
    print(f"    {profile.summary()}")
    assert profile.ref_independent

    # -- 2. the 7.1 arsenal vs the probability sweep ---------------------
    print("\n[2] attacks vs PARA probability (flips over 6 victims; "
          "refresh overhead per million ACTs):")
    rows = []
    for probability in (1 / 2000, 1 / 500, 1 / 125):
        for pattern in (DoubleSidedPattern(),
                        VendorAPattern(aggressor_hammers=72)):
            host = para_host(probability)
            mapping = host._chip.mapping
            executor = AttackExecutor(host, mapping)
            windows = 2 * STANDARD.refresh_cycle_refs // 9
            flips = 0
            for victim in (700, 1500, 2300, 3100, 3600, 400):
                context = default_context(0, victim, mapping, 9,
                                          host.num_banks)
                flips += executor.run(pattern, context,
                                      windows).flips_at(victim)
            stats = host._chip.stats
            overhead = 1e6 * stats.trr_refreshes / max(stats.activates, 1)
            rows.append([f"1/{round(1 / probability)}", pattern.name,
                         flips, f"{overhead:.0f}"])
    print(render_table(
        ["PARA p", "pattern", "flips", "refreshes / M ACTs"], rows))
    print("\nDummy diversion buys nothing against a stateless coin: the "
          "custom pattern stops beating plain double-sided hammering, "
          "and protection scales only with p (and its refresh overhead).")


if __name__ == "__main__":
    main()
