"""ECC bypass analysis (§7.4): are SECDED and Chipkill enough?

Attacks a module bank, buckets every bit flip into 8-byte datawords,
and runs the flips through a real (72,64) SECDED decoder and the
Chipkill SSC-DSD symbol model.  Closes with the paper's Reed-Solomon
cost argument, executed on a real RS codec.

Run:  python examples/ecc_bypass.py [module-id]   (default B13)
"""

import sys

from repro.ecc import (ChipkillOutcome, DecodeStatus, ReedSolomon,
                       assess_ecc, dataword_flip_counts)
from repro.errors import DecodingError
from repro.eval import STANDARD, evaluate_module
from repro.eval.report import render_histogram
from repro.vendors import get_module


def main() -> None:
    module_id = sys.argv[1] if len(sys.argv) > 1 else "B13"
    spec = get_module(module_id)
    print(f"Attacking module {module_id} "
          f"({spec.trr_version.value}) and auditing its ECC exposure ...")
    evaluation = evaluate_module(spec, STANDARD, positions=24)
    flips = evaluation.result.flips_by_row
    print(f"pattern: {evaluation.pattern_name}, "
          f"vulnerable rows: {100 * evaluation.vulnerable_fraction:.0f}%, "
          f"total flips: {evaluation.result.total_flips}")

    histogram = dataword_flip_counts(flips)
    print()
    print(render_histogram("8-byte datawords by bit-flip count "
                           "(Figure 10)", dict(histogram)))

    assessment = assess_ecc(flips)
    print(f"\nSECDED (72,64) outcomes over {assessment.words_total} "
          "flipped words:")
    for status in DecodeStatus:
        print(f"    {status.value:>18}: {assessment.secded[status]}")
    print("Chipkill (SSC-DSD, x4 symbols):")
    for outcome in ChipkillOutcome:
        print(f"    {outcome.value:>18}: {assessment.chipkill[outcome]}")

    worst = max(assessment.max_flips_in_word, 2)
    print(f"\nWorst dataword holds {worst} flips. Worst-case symbol "
          "errors vs Reed-Solomon dimensioning:")
    data = list(range(8))
    for parity in (max(worst // 2, 2), worst, 2 * worst):
        rs = ReedSolomon(8 + parity, 8)
        corrupted = list(rs.encode(data))
        for position in range(min(worst, rs.n)):
            corrupted[position] ^= 0x5A
        try:
            outcome = rs.decode(corrupted)
            verdict = (f"corrects all {outcome.corrections} symbol "
                       "errors")
        except DecodingError:
            verdict = "detects the error but CANNOT correct it"
        print(f"    RS({rs.n},8), {parity:2d} parity symbols (t={rs.t}): "
              f"{verdict}")
    print("-> guaranteed *correction* of the worst case costs two parity "
          "symbols per flip; even detect-only needs one each — the large "
          "overheads of 7.4's conclusion.")


if __name__ == "__main__":
    main()
