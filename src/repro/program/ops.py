"""Flat compiled-payload representation.

Real rigs do not interpret experiment scripts command by command: U-TRR's
SoftMC programs and the LiteX ``payload_executor`` both *compile* the
experiment into a flat instruction payload first, then execute that.
:class:`CompiledPayload` is this repository's payload format — parallel
numpy columns, one slot per DDR command, plus interned side tables for
the operands that do not fit in a scalar (data patterns, read labels,
prebuilt :class:`~repro.dram.ActBatch` objects).

Columns (all the same length):

``opcode``
    One of :data:`OP_WR`, :data:`OP_RD`, :data:`OP_CHK`, :data:`OP_ACT`,
    :data:`OP_MULTI`, :data:`OP_REF`, :data:`OP_WAIT` (uint8).
``bank`` / ``row``
    Logical addressing for WR/RD/CHK; ``bank`` also set for ACT.  ``-1``
    where not applicable (int32).
``arg``
    Opcode-specific operand (int64): pattern id for WR, label id for
    RD/CHK, batch id for ACT, multi-batch id for MULTI, REF count for
    REF, duration in ps for WAIT.
``dt``
    The host-clock advance of the command in the fault-free case (int64
    ps).  The executor does not *apply* these — the chip owns the clock
    — but the compiler exposes them so payload duration is a closed-form
    ``dt.sum()`` and so the fused-ACT path knows each command's step.
``flags``
    Bit :data:`FLAG_NOMINAL` marks a REF issued at the nominal tREFI
    rate (uint8).

``fuse_groups`` lists runs of identical consecutive ACT commands (same
interned batch), the unit the executor may hand to the chip's fused
hammer path when that is provably equivalent (see
:meth:`repro.dram.DramChip.fusion_safe`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..dram import ActBatch, DataPattern

OP_WR, OP_RD, OP_CHK, OP_ACT, OP_MULTI, OP_REF, OP_WAIT = range(7)

#: Index-aligned with the opcode constants.
OPCODE_NAMES = ("WR", "RD", "CHK", "ACT", "MULTI", "REF", "WAIT")

#: REF issued at the nominal tREFI rate rather than back-to-back.
FLAG_NOMINAL = 0x01


@dataclass(frozen=True)
class CompiledPayload:
    """A compiled, loop-unrolled, label-resolved command payload."""

    opcode: np.ndarray
    bank: np.ndarray
    row: np.ndarray
    arg: np.ndarray
    dt: np.ndarray
    flags: np.ndarray
    #: Interned data patterns (WR ``arg`` indexes here).
    patterns: tuple[DataPattern, ...] = ()
    #: Resolved read labels (RD/CHK ``arg`` indexes here).
    labels: tuple[str, ...] = ()
    #: Prebuilt logical-row hammer batches (ACT ``arg`` indexes here).
    batches: tuple[ActBatch, ...] = ()
    #: Prebuilt multi-bank batch groups (MULTI ``arg`` indexes here).
    multis: tuple[tuple[ActBatch, ...], ...] = ()
    #: ``(start_index, run_length)`` for every run of >= 2 identical
    #: consecutive ACT commands — fusion candidates.
    fuse_groups: tuple[tuple[int, int], ...] = ()
    meta: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return int(self.opcode.shape[0])

    @property
    def duration_ps(self) -> int:
        """Host-clock span of the payload in the fault-free case."""
        return int(self.dt.sum())

    def counts(self) -> dict[str, int]:
        """Commands per opcode name (zero entries omitted)."""
        present, tallies = np.unique(self.opcode, return_counts=True)
        return {OPCODE_NAMES[int(op)]: int(n)
                for op, n in zip(present, tallies)}

    def total_acts(self) -> int:
        """Row activations the payload issues (WR/RD/CHK count one)."""
        acts = int(np.isin(self.opcode, (OP_WR, OP_RD, OP_CHK)).sum())
        ops = self.opcode
        args = self.arg
        for index in np.flatnonzero(ops == OP_ACT):
            acts += self.batches[int(args[index])].total
        for index in np.flatnonzero(ops == OP_MULTI):
            acts += sum(batch.total
                        for batch in self.multis[int(args[index])])
        return acts
