"""Compile :class:`~repro.softmc.SoftMCProgram` instructions to payloads.

The pipeline mirrors the parse → resolve → unroll → compile shape of
real payload compilers: loops are unrolled, read labels resolved (and
duplicate labels rejected with the same errors the interpreter raises),
data patterns and hammer batches interned into side tables, and each
command's fault-free clock advance (``dt``) scheduled from the module's
:class:`~repro.dram.TimingParameters`.  Interning means an unrolled
loop's N copies of one ``Hammer`` instruction share a single prebuilt
:class:`~repro.dram.ActBatch`, which is also how the compiler discovers
fusion groups — runs of identical consecutive ACT commands the executor
may hand to the chip in one pass.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..softmc.program import (CheckRow, Hammer, Instruction, Loop,
                              MultiHammer, ReadRow, Refresh, Wait, WriteRow)
from .ops import (FLAG_NOMINAL, OP_ACT, OP_CHK, OP_MULTI, OP_RD, OP_REF,
                  OP_WAIT, OP_WR, CompiledPayload)


class _Emitter:
    """Accumulates payload columns and interned operand tables."""

    def __init__(self, timing) -> None:
        from ..dram import ActBatch

        self._act_batch = ActBatch
        self.timing = timing
        self.opcode: list[int] = []
        self.bank: list[int] = []
        self.row: list[int] = []
        self.arg: list[int] = []
        self.dt: list[int] = []
        self.flags: list[int] = []
        self._patterns: list = []
        self._pattern_ids: dict = {}
        self._labels: list[str] = []
        self._label_ids: dict[str, int] = {}
        self._batches: list = []
        self._batch_ids: dict = {}
        self._multis: list = []
        self._multi_ids: dict = {}
        self._wr_dt = timing.trcd_ps + timing.burst_write_ps + timing.trp_ps
        self._rd_dt = timing.trcd_ps + timing.burst_read_ps + timing.trp_ps

    def emit(self, opcode: int, bank: int, row: int, arg: int, dt: int,
             flags: int = 0) -> None:
        self.opcode.append(opcode)
        self.bank.append(bank)
        self.row.append(row)
        self.arg.append(arg)
        self.dt.append(dt)
        self.flags.append(flags)

    def intern_pattern(self, pattern) -> int:
        ident = self._pattern_ids.get(pattern)
        if ident is None:
            ident = len(self._patterns)
            self._patterns.append(pattern)
            self._pattern_ids[pattern] = ident
        return ident

    def intern_label(self, label: str) -> int:
        if label in self._label_ids:
            raise ConfigError(
                f"duplicate read label {label!r}; results would "
                "silently overwrite each other")
        ident = len(self._labels)
        self._labels.append(label)
        self._label_ids[label] = ident
        return ident

    def intern_batch(self, bank: int, pattern, mode) -> int:
        key = (bank, pattern, mode)
        ident = self._batch_ids.get(key)
        if ident is None:
            ident = len(self._batches)
            self._batches.append(
                self._act_batch(bank=bank, pattern=pattern, mode=mode))
            self._batch_ids[key] = ident
        return ident

    def intern_multi(self, per_bank, mode) -> int:
        key = (per_bank, mode)
        ident = self._multi_ids.get(key)
        if ident is None:
            batches = tuple(
                self._act_batch(bank=bank, pattern=pattern, mode=mode)
                for bank, pattern in per_bank)
            ident = len(self._multis)
            self._multis.append(batches)
            self._multi_ids[key] = ident
        return ident

    def walk(self, block) -> None:
        timing = self.timing
        for instruction in block:
            if isinstance(instruction, WriteRow):
                self.emit(OP_WR, instruction.bank, instruction.row,
                          self.intern_pattern(instruction.pattern),
                          self._wr_dt)
            elif isinstance(instruction, ReadRow):
                self.emit(OP_RD, instruction.bank, instruction.row,
                          self.intern_label(_label(instruction)),
                          self._rd_dt)
            elif isinstance(instruction, CheckRow):
                self.emit(OP_CHK, instruction.bank, instruction.row,
                          self.intern_label(_label(instruction)),
                          self._rd_dt)
            elif isinstance(instruction, Hammer):
                batch_id = self.intern_batch(
                    instruction.bank, instruction.pattern, instruction.mode)
                batch = self._batches[batch_id]
                self.emit(OP_ACT, instruction.bank, -1, batch_id,
                          timing.hammer_duration_ps(batch.total))
            elif isinstance(instruction, MultiHammer):
                multi_id = self.intern_multi(instruction.per_bank,
                                             instruction.mode)
                batches = self._multis[multi_id]
                max_count = max(batch.total for batch in batches)
                self.emit(OP_MULTI, -1, -1, multi_id,
                          timing.multi_bank_hammer_duration_ps(
                              max_count, len(batches)))
            elif isinstance(instruction, Refresh):
                # Per REF the clock advances tRFC, or tREFI at the
                # nominal cadence (the spacing subsumes the tRFC).
                per_ref = (timing.trefi_ps if instruction.at_nominal_rate
                           else timing.trfc_ps)
                self.emit(OP_REF, -1, -1, instruction.count,
                          instruction.count * per_ref,
                          FLAG_NOMINAL if instruction.at_nominal_rate
                          else 0)
            elif isinstance(instruction, Wait):
                self.emit(OP_WAIT, -1, -1, instruction.duration_ps,
                          instruction.duration_ps)
            elif isinstance(instruction, Loop):
                for _ in range(instruction.times):
                    self.walk(instruction.body)
            else:
                raise ConfigError(
                    f"unknown instruction {type(instruction).__name__}")

    def finish(self) -> CompiledPayload:
        opcode = np.asarray(self.opcode, dtype=np.uint8)
        arg = np.asarray(self.arg, dtype=np.int64)
        return CompiledPayload(
            opcode=opcode,
            bank=np.asarray(self.bank, dtype=np.int32),
            row=np.asarray(self.row, dtype=np.int32),
            arg=arg,
            dt=np.asarray(self.dt, dtype=np.int64),
            flags=np.asarray(self.flags, dtype=np.uint8),
            patterns=tuple(self._patterns),
            labels=tuple(self._labels),
            batches=tuple(self._batches),
            multis=tuple(self._multis),
            fuse_groups=_fuse_groups(opcode, arg),
        )


def _label(instruction: ReadRow | CheckRow) -> str:
    if instruction.label is not None:
        return instruction.label
    return f"{instruction.bank}:{instruction.row}"


def _fuse_groups(opcode: np.ndarray, arg: np.ndarray
                 ) -> tuple[tuple[int, int], ...]:
    """Runs of >= 2 identical consecutive ACT commands (same batch)."""
    groups: list[tuple[int, int]] = []
    start = -1
    batch_id = -1
    for index, (op, operand) in enumerate(zip(opcode.tolist(),
                                              arg.tolist())):
        if op == OP_ACT and operand == batch_id:
            continue
        if start >= 0 and index - start >= 2:
            groups.append((start, index - start))
        if op == OP_ACT:
            start, batch_id = index, operand
        else:
            start, batch_id = -1, -1
    if start >= 0 and len(opcode) - start >= 2:
        groups.append((start, len(opcode) - start))
    return tuple(groups)


def compile_program(instructions: "list[Instruction]", timing
                    ) -> CompiledPayload:
    """Compile an instruction list into a :class:`CompiledPayload`."""
    emitter = _Emitter(timing)
    emitter.walk(instructions)
    return emitter.finish()
