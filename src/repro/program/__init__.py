"""Compiled command payloads — the DDR program DSL's payload layer.

``repro.program`` turns a :class:`~repro.softmc.SoftMCProgram` (or any
instruction list) into a flat :class:`CompiledPayload` — loop-unrolled,
label-resolved, ``dt``-scheduled numpy command columns plus interned
operand tables — and executes it with a batch interpreter whose command
stream is byte-identical to the per-command reference path.  See
``docs/PERFORMANCE.md`` ("Compiled payloads") for when fusion kicks in
and how to force either path.
"""

from .compiler import compile_program
from .executor import (execute_payload, fusion_enabled, payload_mode,
                       payloads_enabled)
from .ops import (FLAG_NOMINAL, OP_ACT, OP_CHK, OP_MULTI, OP_RD, OP_REF,
                  OP_WAIT, OP_WR, OPCODE_NAMES, CompiledPayload)

__all__ = [
    "CompiledPayload",
    "FLAG_NOMINAL",
    "OPCODE_NAMES",
    "OP_ACT",
    "OP_CHK",
    "OP_MULTI",
    "OP_RD",
    "OP_REF",
    "OP_WAIT",
    "OP_WR",
    "compile_program",
    "execute_payload",
    "fusion_enabled",
    "payload_mode",
    "payloads_enabled",
]
