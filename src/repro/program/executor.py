"""Batch interpreter for :class:`~repro.program.CompiledPayload`.

Executes a compiled payload against a :class:`~repro.softmc.SoftMCHost`.
Two engines, one command stream:

* The **guarded engine** walks the flat columns (plain Python scalars —
  no per-command dataclass or isinstance dispatch) and issues each
  command through the host's prebuilt-operand entry points.  It is
  byte-identical to the per-command interpreter by construction under
  every configuration, including fault injection.
* The **fused engine** additionally hands each precomputed fusion group
  (a run of identical consecutive ACT commands) to
  :meth:`SoftMCHost._try_fused_hammer`, which executes the whole run in
  one pass through the chip when — and only when — the chip can prove
  the intermediate settles commit nothing (no fault injector, stateless
  TRR, no VRT cells on the aggressors, retention slack, cross-coupled
  disturbance below threshold).  When the proof fails the run falls
  back to the guarded engine mid-payload, so fusion is a pure
  performance decision, never a semantic one.

Fusion is enabled by default exactly when the host has no fault
injector; ``REPRO_PAYLOAD=guarded`` in the environment (or
``fuse=False``) forces the guarded engine, ``REPRO_PAYLOAD=legacy``
makes :meth:`SoftMCProgram.run` skip compilation entirely.
"""

from __future__ import annotations

import os

from .ops import (OP_ACT, OP_CHK, OP_MULTI, OP_RD, OP_REF, OP_WAIT, OP_WR,
                  CompiledPayload)


def payload_mode() -> str:
    """The process-wide payload routing mode (``REPRO_PAYLOAD``)."""
    return os.environ.get("REPRO_PAYLOAD", "").strip().lower()


def payloads_enabled() -> bool:
    """Whether callers should route through compiled payloads."""
    return payload_mode() != "legacy"


def fusion_enabled() -> bool:
    """Whether the executor may use the fused ACT engine."""
    return payload_mode() not in ("guarded", "legacy")


def execute_payload(host, payload: CompiledPayload, *,
                    fuse: bool | None = None):
    """Run *payload* on *host*; returns a ``ProgramResult``.

    ``fuse=None`` resolves to "the host has no fault injector and the
    environment does not force the guarded engine".
    """
    from ..softmc.program import ProgramResult

    if fuse is None:
        fuse = host.faults is None and fusion_enabled()
    result = ProgramResult(started_ps=host.now_ps)
    rows = result.rows
    mismatches = result.mismatches

    opcodes = payload.opcode.tolist()
    banks = payload.bank.tolist()
    row_col = payload.row.tolist()
    args = payload.arg.tolist()
    dts = payload.dt.tolist()
    flags = payload.flags.tolist()
    patterns = payload.patterns
    labels = payload.labels
    batches = payload.batches
    multis = payload.multis
    fuse_starts = ({start: length for start, length in payload.fuse_groups}
                   if fuse else {})

    write_row = host.write_row
    read_row = host.read_row
    read_row_mismatches = host.read_row_mismatches
    hammer_prebuilt = host._hammer_prebuilt
    index = 0
    total = len(opcodes)
    while index < total:
        op = opcodes[index]
        arg = args[index]
        if op == OP_ACT:
            length = fuse_starts.get(index, 0)
            if length and host._try_fused_hammer(batches[arg], length,
                                                 dts[index]):
                index += length
                continue
            hammer_prebuilt(batches[arg])
        elif op == OP_WR:
            write_row(banks[index], row_col[index], patterns[arg])
        elif op == OP_CHK:
            mismatches[labels[arg]] = read_row_mismatches(
                banks[index], row_col[index])
        elif op == OP_RD:
            rows[labels[arg]] = read_row(banks[index], row_col[index])
        elif op == OP_REF:
            host.refresh(arg, bool(flags[index] & 1))
        elif op == OP_WAIT:
            host.wait(arg)
        else:  # OP_MULTI
            host._hammer_multi_prebuilt(multis[arg])
        index += 1

    result.finished_ps = host.now_ps
    return result
