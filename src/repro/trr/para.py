"""PARA: Probabilistic Adjacent Row Activation (Kim et al., ISCA 2014).

The classic *stateless* RowHammer mitigation the literature contrasts
TRR against (§2.4 group iii without tracking): on every activation,
with a small probability p, the chip immediately refreshes the activated
row's neighbors.  No tables, no samplers, no REF piggybacking — and
therefore nothing for a dummy-row diversion to occupy.

Included as the paper's future-work direction ("U-TRR can be useful for
improving the security of these works"): the inference pipeline
classifies PARA as *REF-independent* (victims get refreshed with zero
REF commands issued), and the §7.1 custom patterns gain nothing over
plain double-sided hammering against it (see
``examples/mitigation_study.py``).
"""

from __future__ import annotations

from ..dram.commands import ActBatch
from ..errors import ConfigError
from ..rng import SeedSequenceFactory
from .base import TrrGroundTruth, TrrMechanism, neighbor_victims


class ParaMitigation(TrrMechanism):
    """Stateless per-ACT probabilistic neighbor refresh."""

    def __init__(self, probability: float = 1.0 / 500.0,
                 neighbor_radius: int = 1, seed: int = 0) -> None:
        super().__init__()
        if not 0 < probability < 1:
            raise ConfigError("probability must be in (0, 1)")
        if neighbor_radius < 1:
            raise ConfigError("neighbor_radius must be >= 1")
        self.probability = probability
        self.neighbor_radius = neighbor_radius
        self._seed = seed
        self._rng = SeedSequenceFactory("para", seed).stream("acts")

    def on_activations(self, bank: int, batch: ActBatch,
                       now_ps: int = 0) -> None:
        pass  # stateless; the work happens in immediate_refreshes

    def immediate_refreshes(self, bank: int,
                            batch: ActBatch) -> list[tuple[int, int]]:
        victims: list[tuple[int, int]] = []
        for row, count in batch.counts_by_row().items():
            if count <= 0:
                continue
            # At least one of `count` independent p-coin flips.
            draws = self._rng.binomial(count, self.probability)
            if draws >= 1:
                for victim in neighbor_victims(row, self.neighbor_radius,
                                               self.context):
                    victims.append((bank, victim))
        return victims

    def on_refresh(self) -> list[tuple[int, int]]:
        return []

    def power_cycle(self) -> None:
        self._rng = SeedSequenceFactory("para", self._seed).stream("acts")

    @property
    def ground_truth(self) -> TrrGroundTruth:
        return TrrGroundTruth(
            kind="para",
            trr_ref_period=0,
            neighbors_refreshed=2 * self.neighbor_radius,
            aggressor_capacity=None,
            per_bank=True,
            extra={"probability": self.probability,
                   "ref_independent": True},
        )
