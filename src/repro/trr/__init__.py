"""In-DRAM Target Row Refresh mechanisms (the reverse-engineering target).

These implementations encode the vendor behaviours the paper uncovered
(§6).  They sit behind the chip boundary: the U-TRR tools in
:mod:`repro.core` never import them — they recover their parameters
through the retention side channel, and the test suite checks the
recovered values against each mechanism's :class:`TrrGroundTruth`.
"""

from .base import (NoTrr, TrrContext, TrrGroundTruth, TrrMechanism,
                   neighbor_victims)
from .counter import CounterBasedTrr
from .para import ParaMitigation
from .sampling import SamplingBasedTrr
from .window import WindowBasedTrr

__all__ = [
    "CounterBasedTrr",
    "NoTrr",
    "ParaMitigation",
    "SamplingBasedTrr",
    "TrrContext",
    "TrrGroundTruth",
    "TrrMechanism",
    "WindowBasedTrr",
    "neighbor_victims",
]
