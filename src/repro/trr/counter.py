"""Counter-based TRR — vendor A (§6.1).

Reverse-engineered behaviour this implementation reproduces exactly:

* **Obs A1** — only every ``trr_ref_period``-th REF (9th for A_TRR1/2) can
  perform a TRR-induced refresh.
* **Obs A2** — a detected aggressor's ``neighbor_radius`` closest rows on
  each side are refreshed (radius 2 for A_TRR1, radius 1 for A_TRR2).
* **Obs A3** — two refresh types alternate across TRR-capable REFs:
  ``TREFa`` detects the table entry with the highest counter, ``TREFb``
  walks the table with a pointer, one entry per instance.
* **Obs A4** — a per-bank counter table tracks ``table_size`` (16) rows;
  every activation increments the corresponding counter.
* **Obs A5** — inserting into a full table evicts the entry with the
  smallest counter value.
* **Obs A6** — detection (by either type) resets the detected entry's
  counter to zero.
* **Obs A7** — entries persist until evicted; the table is never aged.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.commands import ActBatch
from ..errors import ConfigError
from .base import TrrGroundTruth, TrrMechanism, neighbor_victims


@dataclass
class _TableEntry:
    row: int
    counter: int


class _BankTable:
    """One bank's counter table plus its TREFb pointer."""

    __slots__ = ("entries", "pointer")

    def __init__(self) -> None:
        self.entries: list[_TableEntry] = []
        self.pointer = 0

    def observe(self, row: int, count: int, capacity: int,
                allow_insert: bool = True) -> None:
        for entry in self.entries:
            if entry.row == row:
                entry.counter += count
                return
        if not allow_insert:
            return
        if len(self.entries) < capacity:
            self.entries.append(_TableEntry(row, count))
            return
        # Evict the smallest counter (Obs A5); replace in place so the
        # TREFb pointer keeps walking a stable 16-slot structure.
        victim_index = min(range(len(self.entries)),
                           key=lambda i: (self.entries[i].counter,
                                          self.entries[i].row))
        self.entries[victim_index] = _TableEntry(row, count)

    def detect_max(self) -> int | None:
        """TREFa: entry with the highest non-zero counter (Obs A3/A6)."""
        if not self.entries:
            return None
        best = max(self.entries, key=lambda e: (e.counter, -e.row))
        if best.counter == 0:
            return None
        best.counter = 0
        return best.row

    def detect_next(self) -> int | None:
        """TREFb: the entry under the pointer; advances the pointer."""
        if not self.entries:
            return None
        self.pointer %= len(self.entries)
        entry = self.entries[self.pointer]
        self.pointer += 1
        entry.counter = 0
        return entry.row


class CounterBasedTrr(TrrMechanism):
    """Vendor A's per-bank counter-table TRR."""

    def __init__(self, trr_ref_period: int = 9, table_size: int = 16,
                 neighbor_radius: int = 2, min_insert_count: int = 2) -> None:
        super().__init__()
        if trr_ref_period < 1:
            raise ConfigError("trr_ref_period must be >= 1")
        if table_size < 1:
            raise ConfigError("table_size must be >= 1")
        if neighbor_radius < 1:
            raise ConfigError("neighbor_radius must be >= 1")
        if min_insert_count < 1:
            raise ConfigError("min_insert_count must be >= 1")
        self.trr_ref_period = trr_ref_period
        self.table_size = table_size
        self.neighbor_radius = neighbor_radius
        #: Burst filter: a row is only *inserted* once it shows
        #: hammer-like behaviour — ``min_insert_count`` activations in
        #: one batch, or back-to-back single activations within the
        #: burst window below (existing entries always count every ACT).
        #: A real counter table needs such a filter: ordinary row
        #: accesses (spaced-out reads/writes) would otherwise thrash all
        #: 16 entries between any two REF commands, and RowHammer only
        #: arises from *rapid* activation in the first place.
        self.min_insert_count = min_insert_count
        #: Two consecutive ACTs to one row count as a burst only when
        #: closer than this (an ACT/PRE hammer cycle is ~50 ns; ordinary
        #: row operations are spaced by data bursts, >= ~500 ns).
        self.burst_window_ps = 200_000
        self._tables: dict[int, _BankTable] = {}
        #: Per-bank (last single-ACT row, its timestamp) for the
        #: cross-batch burst filter.
        self._last_single: dict[int, tuple[int, int]] = {}
        self._ref_count = 0
        self._next_is_tref_a = False  # first TRR-capable REF runs TREFb

    def _table(self, bank: int) -> _BankTable:
        table = self._tables.get(bank)
        if table is None:
            table = _BankTable()
            self._tables[bank] = table
        return table

    def on_activations(self, bank: int, batch: ActBatch,
                       now_ps: int = 0) -> None:
        table = self._table(bank)
        counts = batch.counts_by_row().items()
        for row, count in counts:
            if count <= 0:
                continue
            allow = count >= self.min_insert_count
            if not allow:
                previous = self._last_single.get(bank)
                allow = (previous is not None and previous[0] == row
                         and now_ps - previous[1] <= self.burst_window_ps)
            table.observe(row, count, self.table_size, allow)
        if batch.total == 1:
            self._last_single[bank] = (batch.row_at(0), now_ps)
        else:
            self._last_single.pop(bank, None)

    def on_refresh(self) -> list[tuple[int, int]]:
        self._ref_count += 1
        if self._ref_count % self.trr_ref_period != 0:
            return []
        use_tref_a = self._next_is_tref_a
        self._next_is_tref_a = not use_tref_a
        victims: list[tuple[int, int]] = []
        for bank in range(self.context.num_banks):
            table = self._table(bank)
            detected = (table.detect_max() if use_tref_a
                        else table.detect_next())
            if detected is None:
                continue
            for victim in neighbor_victims(detected, self.neighbor_radius,
                                           self.context):
                victims.append((bank, victim))
        return victims

    def power_cycle(self) -> None:
        self._tables.clear()
        self._last_single.clear()
        self._ref_count = 0
        self._next_is_tref_a = False

    @property
    def ground_truth(self) -> TrrGroundTruth:
        return TrrGroundTruth(
            kind="counter",
            trr_ref_period=self.trr_ref_period,
            neighbors_refreshed=2 * self.neighbor_radius,
            aggressor_capacity=self.table_size,
            per_bank=True,
            extra={"tref_types": ("TREFa", "TREFb"),
                   "eviction": "min-counter",
                   "counter_reset_on_detect": True,
                   "min_insert_count": self.min_insert_count},
        )
