"""Interface between the DRAM chip and its in-DRAM TRR mechanism.

A Target Row Refresh mechanism observes the chip's activation stream and,
when the chip executes a REF command, may piggyback *TRR-induced*
refreshes of rows it believes are RowHammer victims (§2.4).  The
mechanism lives entirely behind the chip boundary: U-TRR's tools never
see this interface — they infer its behaviour through the retention side
channel.

Concrete mechanisms (:mod:`repro.trr.counter`, :mod:`repro.trr.sampling`,
:mod:`repro.trr.window`) implement the vendor behaviours the paper
reverse-engineered.  Each also carries a :class:`TrrGroundTruth`
descriptor used **only** by tests and the evaluation report to check what
the methodology recovered.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..dram.commands import ActBatch
from ..errors import ConfigError


@dataclass(frozen=True)
class TrrContext:
    """Chip facts a TRR mechanism needs to compute victim rows."""

    num_banks: int
    num_rows: int
    #: Pair-isolated row organization (vendor C modules C0-8): a detected
    #: odd aggressor protects only its even pair row.
    paired_rows: bool = False

    def __post_init__(self) -> None:
        if self.num_banks <= 0 or self.num_rows <= 0:
            raise ConfigError("num_banks and num_rows must be positive")


@dataclass(frozen=True)
class TrrGroundTruth:
    """What a perfect reverse-engineering run should recover (Table 1)."""

    kind: str          #: "counter" | "sampling" | "window" | "none"
    trr_ref_period: int            #: every Nth REF is TRR-capable (0 = never)
    neighbors_refreshed: int       #: rows refreshed per TRR-induced refresh
    aggressor_capacity: int | None #: tracked aggressors (None = unknown/n.a.)
    per_bank: bool                 #: independent state per bank?
    extra: dict = field(default_factory=dict)


def neighbor_victims(row: int, radius: int, context: TrrContext) -> list[int]:
    """Victim rows a TRR refresh protects around detected aggressor *row*.

    With pair isolation the only victim is the aggressor's pair row; the
    general layout protects the ``radius`` physically closest rows on each
    side (vendor A refreshes radius 2: rows A-+1 and A-+2).
    """
    if context.paired_rows:
        pair = row ^ 1
        return [pair] if 0 <= pair < context.num_rows else []
    victims = []
    for distance in range(1, radius + 1):
        for victim in (row - distance, row + distance):
            if 0 <= victim < context.num_rows:
                victims.append(victim)
    return victims


class TrrMechanism(ABC):
    """Abstract in-DRAM TRR mechanism."""

    #: Whether observing K identical consecutive ACT batches is
    #: equivalent to observing them one at a time — i.e. the mechanism
    #: keeps no state the batch boundary could perturb.  Only stateless
    #: mechanisms may set this; it licenses the chip's fused hammer path
    #: (:meth:`repro.dram.DramChip.hammer_repeated`) to skip the
    #: per-batch TRR hooks.
    merge_associative = False

    def __init__(self) -> None:
        self._context: TrrContext | None = None

    def bind(self, context: TrrContext) -> None:
        """Attach the mechanism to a chip (called once by the chip)."""
        self._context = context

    @property
    def context(self) -> TrrContext:
        if self._context is None:
            raise ConfigError("TRR mechanism is not bound to a chip")
        return self._context

    @abstractmethod
    def on_activations(self, bank: int, batch: ActBatch,
                       now_ps: int = 0) -> None:
        """Observe an ordered batch of activations to *bank*.

        *now_ps* is the chip clock at the batch; rate-sensitive
        mechanisms (the counter table's burst filter) use it to tell
        rapid hammering from ordinary spaced-out row accesses.
        """

    def immediate_refreshes(self, bank: int,
                            batch: ActBatch) -> list[tuple[int, int]]:
        """Victims to refresh *during* the activation batch itself.

        TRR mechanisms piggyback on REF and return nothing here;
        ACT-coupled mitigations (PARA) override it.
        """
        return []

    @abstractmethod
    def on_refresh(self) -> list[tuple[int, int]]:
        """Observe one REF command; return ``(bank, physical_row)`` victims
        the chip must refresh on the mechanism's behalf."""

    @abstractmethod
    def power_cycle(self) -> None:
        """Clear all internal state (test/bench helper, not a DDR command)."""

    @property
    @abstractmethod
    def ground_truth(self) -> TrrGroundTruth:
        """Descriptor of the implanted behaviour (for validation only)."""


class NoTrr(TrrMechanism):
    """A chip with no RowHammer mitigation (pre-TRR behaviour)."""

    merge_associative = True

    def on_activations(self, bank: int, batch: ActBatch,
                       now_ps: int = 0) -> None:
        pass

    def on_refresh(self) -> list[tuple[int, int]]:
        return []

    def power_cycle(self) -> None:
        pass

    @property
    def ground_truth(self) -> TrrGroundTruth:
        return TrrGroundTruth(kind="none", trr_ref_period=0,
                              neighbors_refreshed=0, aggressor_capacity=0,
                              per_bank=False)
