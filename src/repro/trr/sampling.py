"""Sampling-based TRR — vendor B (§6.2).

Reverse-engineered behaviour this implementation reproduces exactly:

* **Obs B1** — only every ``trr_ref_period``-th REF performs a
  TRR-induced refresh (4th for B_TRR1, 9th for B_TRR2, 2nd for B_TRR3).
* **Obs B2** — a TRR-induced refresh protects the two rows immediately
  adjacent to the detected aggressor (radius 1).
* **Obs B3** — aggressors are detected by *sampling* the row addresses
  of incoming ACT commands.  The paper's experiments suggest the
  sampling "does not happen truly randomly but is likely based on
  pseudo-random sampling of an incoming ACT": we model it as a
  deterministic free-running counter that samples every
  ``sample_period``-th activation.  Observable consequences match §6.2.2:
  ~2K consecutive activations to one row always get it sampled, while
  shorter bursts are sampled with probability proportional to their
  length (their alignment against the counter phase looks random to an
  experimenter).  The determinism is also what makes the paper's §7.1
  pattern work: a dummy phase at least one sample period long *always*
  owns the last sample before a TRR-capable REF.
* **Obs B4** — the sampler holds exactly **one** row; for B_TRR1/B_TRR2
  the single slot (and the ACT counter) is shared across all banks, for
  B_TRR3 each bank has its own.  A new sample overwrites the previous.
* **Obs B5** — a TRR-induced refresh does *not* clear the sampled row:
  the same row keeps being protected until another sample replaces it.
"""

from __future__ import annotations

from ..dram.commands import ActBatch
from ..errors import ConfigError
from .base import TrrGroundTruth, TrrMechanism, neighbor_victims


class _Sampler:
    """Free-running every-Nth-ACT sampler."""

    __slots__ = ("period", "countdown", "row")

    def __init__(self, period: int) -> None:
        self.period = period
        self.countdown = period
        self.row: int | None = None

    def observe(self, batch: ActBatch) -> bool:
        """Advance the counter over the batch; True if a sample occurred."""
        total = batch.total
        if total < self.countdown:
            self.countdown -= total
            return False
        # At least one sample lands in this batch; the register keeps the
        # last one.  Sample offsets (0-based): countdown-1, countdown-1+P, ...
        last_offset = self.countdown - 1 + (
            (total - self.countdown) // self.period) * self.period
        self.row = batch.row_at(last_offset)
        self.countdown = self.period - (total - 1 - last_offset)
        return True

    def reset(self) -> None:
        self.countdown = self.period
        self.row = None


class SamplingBasedTrr(TrrMechanism):
    """Vendor B's single-slot ACT-sampling TRR."""

    def __init__(self, trr_ref_period: int = 4, sample_period: int = 500,
                 per_bank: bool = False, neighbor_radius: int = 1,
                 seed: int = 0) -> None:
        super().__init__()
        if trr_ref_period < 1:
            raise ConfigError("trr_ref_period must be >= 1")
        if sample_period < 1:
            raise ConfigError("sample_period must be >= 1")
        if neighbor_radius < 1:
            raise ConfigError("neighbor_radius must be >= 1")
        self.trr_ref_period = trr_ref_period
        self.sample_period = sample_period
        self.per_bank = per_bank
        self.neighbor_radius = neighbor_radius
        self._seed = seed  # kept for registry API symmetry
        self._shared = _Sampler(sample_period)
        #: Which bank the shared sampler's row belongs to.
        self._shared_bank: int | None = None
        self._bank_samplers: dict[int, _Sampler] = {}
        self._ref_count = 0

    def on_activations(self, bank: int, batch: ActBatch,
                       now_ps: int = 0) -> None:
        if batch.total == 0:
            return
        if self.per_bank:
            sampler = self._bank_samplers.get(bank)
            if sampler is None:
                sampler = _Sampler(self.sample_period)
                self._bank_samplers[bank] = sampler
            sampler.observe(batch)
        elif self._shared.observe(batch):
            self._shared_bank = bank

    def on_refresh(self) -> list[tuple[int, int]]:
        self._ref_count += 1
        if self._ref_count % self.trr_ref_period != 0:
            return []
        victims: list[tuple[int, int]] = []
        if self.per_bank:
            # Obs B5: samples persist across TRR-induced refreshes.
            for bank, sampler in self._bank_samplers.items():
                if sampler.row is not None:
                    for victim in neighbor_victims(
                            sampler.row, self.neighbor_radius, self.context):
                        victims.append((bank, victim))
        elif self._shared.row is not None and self._shared_bank is not None:
            for victim in neighbor_victims(self._shared.row,
                                           self.neighbor_radius,
                                           self.context):
                victims.append((self._shared_bank, victim))
        return victims

    def power_cycle(self) -> None:
        self._shared.reset()
        self._shared_bank = None
        self._bank_samplers.clear()
        self._ref_count = 0

    @property
    def ground_truth(self) -> TrrGroundTruth:
        return TrrGroundTruth(
            kind="sampling",
            trr_ref_period=self.trr_ref_period,
            neighbors_refreshed=2 * self.neighbor_radius,
            aggressor_capacity=1,
            per_bank=self.per_bank,
            extra={"sample_period": self.sample_period,
                   "sample_cleared_on_trr": False},
        )
