"""Window-based ("mix") TRR — vendor C (§6.3).

Reverse-engineered behaviour this implementation reproduces exactly:

* **Obs C1** — a TRR-induced refresh is performed at most once per
  ``trr_ref_period`` REF commands (17th / 9th / 8th for C_TRR1/2/3), but
  *any* REF can carry it: when no aggressor candidate has been detected
  yet, the refresh is deferred to a later REF.
* **Obs C2** — aggressor candidates are drawn only from the rows
  targeted by the first ``window_acts`` activations (per bank; 2K, or 1K
  for C_TRR3) following the previous TRR-induced refresh, and rows
  activated *earlier* in the window are more likely to be selected.
* **Obs C3** — on the pair-isolated modules (C0-8) a detected aggressor
  protects only its pair row (handled by ``neighbor_victims`` via the
  chip context).

The early bias is modeled with an exponentially decaying adoption
probability over window position: the first activation is always
adopted as the candidate, and an activation at window position ``k``
replaces it with probability ``exp(-k / early_bias_tau)``.
"""

from __future__ import annotations

import math

from ..dram.commands import ActBatch
from ..errors import ConfigError
from ..rng import SeedSequenceFactory
from .base import TrrGroundTruth, TrrMechanism, neighbor_victims


class _BankWindow:
    """Per-bank detection window state."""

    __slots__ = ("acts_seen", "weight_seen", "candidate", "last_trr_ref")

    def __init__(self) -> None:
        self.acts_seen = 0
        self.weight_seen = 0.0
        self.candidate: int | None = None
        self.last_trr_ref = 0

    def reset_window(self) -> None:
        self.acts_seen = 0
        self.weight_seen = 0.0
        self.candidate = None


class WindowBasedTrr(TrrMechanism):
    """Vendor C's deferred, early-biased detection-window TRR."""

    def __init__(self, trr_ref_period: int = 17, window_acts: int = 2000,
                 early_bias_tau: float = 250.0, neighbor_radius: int = 1,
                 seed: int = 0) -> None:
        super().__init__()
        if trr_ref_period < 1:
            raise ConfigError("trr_ref_period must be >= 1")
        if window_acts < 1:
            raise ConfigError("window_acts must be >= 1")
        if early_bias_tau <= 0:
            raise ConfigError("early_bias_tau must be positive")
        if neighbor_radius < 1:
            raise ConfigError("neighbor_radius must be >= 1")
        self.trr_ref_period = trr_ref_period
        self.window_acts = window_acts
        self.early_bias_tau = early_bias_tau
        self.neighbor_radius = neighbor_radius
        self._seed = seed
        self._rng = SeedSequenceFactory("trr-window", seed).stream("adopt")
        self._banks: dict[int, _BankWindow] = {}
        self._ref_count = 0

    def _window(self, bank: int) -> _BankWindow:
        window = self._banks.get(bank)
        if window is None:
            window = _BankWindow()
            self._banks[bank] = window
        return window

    def _position_mass(self, start: int, length: int) -> float:
        """Selection weight of window positions [start, start + length).

        Per-position weight is exp(-k / tau); the geometric sum is
        evaluated in closed form so batches stay O(#runs).
        """
        tau = self.early_bias_tau
        decay = math.exp(-1.0 / tau)
        first = math.exp(-start / tau)
        if decay >= 1.0:  # enormous tau: effectively uniform weights
            return float(length)
        return first * (1.0 - decay ** length) / (1.0 - decay)

    def on_activations(self, bank: int, batch: ActBatch,
                       now_ps: int = 0) -> None:
        window = self._window(bank)
        remaining = self.window_acts - window.acts_seen
        consumed = 0
        if remaining > 0:
            # Weighted reservoir sampling over the batch's run structure:
            # the surviving candidate is distributed proportionally to the
            # exponentially decaying position weights, so rows activated
            # earlier in the window are more likely to be detected.
            for row, count in batch.pattern:
                if count == 0 or consumed >= remaining:
                    break
                usable = min(count, remaining - consumed)
                start = window.acts_seen + consumed
                mass = self._position_mass(start, usable)
                total = window.weight_seen + mass
                if total > 0 and self._rng.random() < mass / total:
                    window.candidate = row
                window.weight_seen = total
                consumed += usable
        window.acts_seen += batch.total

    def on_refresh(self) -> list[tuple[int, int]]:
        self._ref_count += 1
        victims: list[tuple[int, int]] = []
        for bank in range(self.context.num_banks):
            window = self._window(bank)
            due = self._ref_count - window.last_trr_ref >= self.trr_ref_period
            if not due or window.candidate is None:
                continue  # Obs C1: defer until a candidate exists
            detected = window.candidate
            window.reset_window()
            window.last_trr_ref = self._ref_count
            for victim in neighbor_victims(detected, self.neighbor_radius,
                                           self.context):
                victims.append((bank, victim))
        return victims

    def power_cycle(self) -> None:
        self._banks.clear()
        self._ref_count = 0
        self._rng = SeedSequenceFactory("trr-window", self._seed).stream(
            "adopt")

    @property
    def ground_truth(self) -> TrrGroundTruth:
        paired = self._context is not None and self._context.paired_rows
        return TrrGroundTruth(
            kind="window",
            trr_ref_period=self.trr_ref_period,
            neighbors_refreshed=1 if paired else 2 * self.neighbor_radius,
            aggressor_capacity=None,
            per_bank=True,
            extra={"window_acts": self.window_acts,
                   "deferred": True,
                   "early_bias_tau": self.early_bias_tau},
        )
