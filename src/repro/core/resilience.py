"""Resilience bookkeeping for the hardened U-TRR pipeline.

Every hardened tool (Row Scout, TRR Analyzer, the inference driver)
counts the recovery work it performs — retried validation rounds,
quarantined rows, outlier-rejected observations, schedule
recalibrations — into these plain counter dataclasses.  The chaos
harness (:mod:`repro.eval.resilience`) reports them so a passing run
demonstrably *exercised* the fault handling rather than dodging it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field


@dataclass
class RowScoutStats:
    """Recovery work performed by one :class:`~repro.core.RowScout`."""

    scan_passes: int = 0
    rounds_validated: int = 0
    #: Validation rounds that failed once but were re-probed.
    round_retries: int = 0
    #: Retried rounds whose re-probe agreed with the failure (hard reject).
    rows_rejected: int = 0
    #: Rows whose flakiness score crossed the quarantine threshold.
    rows_quarantined: int = 0
    groups_formed: int = 0
    #: Groups replaced mid-run after going bad under an analyzer.
    groups_replaced: int = 0
    #: Full scan restarts after a fruitless T escalation.
    scan_restarts: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


@dataclass
class AnalyzerStats:
    """Recovery work performed across TRR Analyzer experiments."""

    experiments: int = 0
    #: Extra experiment repetitions run for majority voting.
    vote_rounds: int = 0
    #: Individual row observations overruled by the majority.
    outliers_rejected: int = 0
    #: flipped-despite-covering-REF surprises (stale schedule suspects).
    schedule_violations: int = 0
    #: Apparent TRR hits rejected by the zero-REF decay probe (the row's
    #: retention drifted past its bucket, so survival proves nothing).
    hits_disavowed: int = 0
    #: Row groups re-validated after their behaviour shifted.
    groups_revalidated: int = 0

    def as_dict(self) -> dict[str, int]:
        return asdict(self)


@dataclass
class PipelineStats:
    """Aggregated resilience counters for one full inference run."""

    rowscout: RowScoutStats = field(default_factory=RowScoutStats)
    analyzer: AnalyzerStats = field(default_factory=AnalyzerStats)
    recalibrations: int = 0
    #: Stages that degraded to a partial result instead of crashing.
    degraded_stages: int = 0

    def as_dict(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        merged.update({f"rowscout_{k}": v
                       for k, v in self.rowscout.as_dict().items()})
        merged.update({f"analyzer_{k}": v
                       for k, v in self.analyzer.as_dict().items()})
        merged["recalibrations"] = self.recalibrations
        merged["degraded_stages"] = self.degraded_stages
        return merged

    @property
    def recovery_work(self) -> int:
        """Total retry/quarantine/outlier events (0 = nothing exercised)."""
        rs, an = self.rowscout, self.analyzer
        return (rs.round_retries + rs.rows_quarantined + rs.groups_replaced
                + rs.scan_restarts + an.outliers_rejected
                + an.hits_disavowed + an.groups_revalidated
                + self.recalibrations + self.degraded_stages)
