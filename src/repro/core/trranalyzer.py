"""TRR Analyzer (TRR-A): the Fig. 7 experiment engine (§5).

One experiment follows the paper's three steps:

1. **Initialize** the RS-provided victim rows with their profiling
   pattern and the aggressor rows with the configured aggressor data;
   optionally flush the TRR mechanism's internal state by hammering many
   far-away dummy rows across several refresh bursts (Requirement 4).
2. Wait half the victims' retention time, then run the configured
   **hammer rounds** — each round hammers the aggressors (and optionally
   dummy rows) in interleaved or cascaded order and ends with a
   configurable number of REF commands (Requirements 1-3).
3. Wait the remaining half and **read the victims back**.  A victim with
   no bit flips was refreshed during step 2 — by a regular refresh if one
   of the issued REF indices falls into the row's calibrated phase
   window, otherwise by a **TRR-induced refresh**.

The analyzer never touches the chip beyond the SoftMC host interface.

Hardening against a noisy substrate
-----------------------------------
:meth:`TrrAnalyzer.run_robust` repeats an experiment and majority-votes
every row observation, rejecting round-level outliers (transient read
noise, a dropped init write).  Groups whose flip behaviour is split
across the votes are automatically re-validated against their retention
bucket; a failed re-validation marks the group unstable so the caller
can replace it (``RowScout.replace_group``).  Rows that decay although
a schedule-covering REF was issued are tracked as *schedule suspects* —
the recalibration trigger for a drifted refresh-phase calibration.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

import numpy as np

from ..dram.commands import HammerMode
from ..dram.mapping import DirectMapping, RowMapping
from ..dram.patterns import AllZeros, DataPattern
from ..errors import ConfigError
from ..obs import NULL_OBS, Observability, ev_refs, ev_rows, ev_value
from ..program import compile_program, payloads_enabled
from ..softmc import SoftMCHost, SoftMCProgram
from .refclassifier import RefreshSchedule
from .resilience import AnalyzerStats
from .rowgroup import RowGroup


@dataclass(frozen=True)
class AggressorHammer:
    """One aggressor row and its per-round hammer count (Requirement 1)."""

    bank: int
    logical_row: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ConfigError("hammer count must be >= 0")


@dataclass(frozen=True)
class ExperimentConfig:
    """Knobs of one TRR-A experiment (Fig. 7's experiment configuration)."""

    aggressors: tuple[AggressorHammer, ...] = ()
    hammer_mode: HammerMode = HammerMode.CASCADED
    aggressor_pattern: DataPattern = field(default_factory=AllZeros)
    init_aggressors: bool = True
    reset_state: bool = True          #: Requirement 4
    rounds: int = 1
    refs_per_round: int = 1           #: Requirement 3
    dummy_row_count: int = 0          #: Requirement 2
    dummy_hammers: int = 0
    #: Hammer dummies before the aggressors within each round (the
    #: vendor-C pattern ordering) instead of after (vendor A/B).
    dummies_first: bool = False
    #: Burn REFs before the vulnerable window so the experiment's REF
    #: indices avoid every victim's regular-refresh phase — making all
    #: survivals attributable to TRR.  Disable for experiments that need
    #: consecutive REF indices (e.g. the TRR-period scan).
    align_refs: bool = True

    def __post_init__(self) -> None:
        if self.rounds < 1:
            raise ConfigError("rounds must be >= 1")
        if self.refs_per_round < 0:
            raise ConfigError("refs_per_round must be >= 0")
        if self.dummy_row_count < 0 or self.dummy_hammers < 0:
            raise ConfigError("dummy configuration must be non-negative")


@dataclass(frozen=True)
class RowObservation:
    """Outcome for one victim row after an experiment."""

    bank: int
    logical_row: int
    physical_row: int
    flipped: bool
    #: True when one of the experiment's REFs falls into the row's
    #: calibrated regular-refresh window: survival is then inconclusive.
    regular_possible: bool
    #: Fraction of majority-vote rounds agreeing with this consensus
    #: (1.0 for single-run experiments).
    confidence: float = 1.0

    @property
    def trr_refreshed(self) -> bool:
        """Survival attributable only to a TRR-induced refresh."""
        return not self.flipped and not self.regular_possible

    @property
    def inconclusive(self) -> bool:
        return not self.flipped and self.regular_possible


@dataclass
class ExperimentResult:
    """All victim observations plus the REF indices the experiment used."""

    observations: list[RowObservation]
    ref_indices: list[int]
    dummy_rows: dict[int, list[int]] = field(default_factory=dict)
    #: Majority-vote rounds this result aggregates (1 = single run).
    votes: int = 1
    #: Individual per-round observations overruled by the majority.
    outliers: int = 0
    #: Indices (into the analyzer's group list) of groups whose flip
    #: behaviour was split across votes *and* failed re-validation.
    unstable_groups: tuple[int, ...] = ()

    def by_row(self) -> dict[tuple[int, int], RowObservation]:
        return {(obs.bank, obs.logical_row): obs
                for obs in self.observations}

    def trr_refreshed_physical(self, bank: int) -> set[int]:
        return {obs.physical_row for obs in self.observations
                if obs.bank == bank and obs.trr_refreshed}

    def flipped_physical(self, bank: int) -> set[int]:
        return {obs.physical_row for obs in self.observations
                if obs.bank == bank and obs.flipped}

    @property
    def any_inconclusive(self) -> bool:
        return any(obs.inconclusive for obs in self.observations)


class TrrAnalyzer:
    """Runs Fig. 7 experiments over a fixed set of RS-provided groups."""

    #: Minimum distance between a dummy row and any profiled/aggressor row
    #: (§5.2; keeps dummy hammering from flipping experiment rows).
    DUMMY_CLEARANCE = 100

    def __init__(self, host: SoftMCHost, groups: list[RowGroup],
                 schedule: RefreshSchedule | None = None,
                 mapping: RowMapping | None = None, seed: int = 0,
                 stats: AnalyzerStats | None = None,
                 obs: Observability | None = None,
                 use_payloads: bool | None = None) -> None:
        if not groups:
            raise ConfigError("TrrAnalyzer needs at least one row group")
        retention = {group.retention_ps for group in groups}
        if len(retention) != 1:
            raise ConfigError(
                "all groups must share one retention bucket; a single "
                "experiment waits one global retention time (footnote 4)")
        lo = min(group.retention_lo_ps for group in groups)
        self.retention_ps = groups[0].retention_ps
        if 2 * lo < self.retention_ps:
            raise ConfigError(
                "retention bucket too wide: rows may fail before T/2")
        self.groups = list(groups)
        self._host = host
        #: When None, survivals cannot be checked against the regular
        #: refresh schedule and `regular_possible` is reported False —
        #: use only for experiments whose REF indices are known to stay
        #: clear of the victims' refresh slots.
        self.schedule = schedule
        self._mapping = mapping or DirectMapping(host.rows_per_bank)
        self._obs = obs or getattr(host, "obs", None) or NULL_OBS
        #: Route the hammer-round loops through compiled payloads (same
        #: command stream, batch-interpreted; hammer-dominated rounds on
        #: TRR-free chips additionally fuse).  Defaults to the
        #: process-wide ``REPRO_PAYLOAD`` setting.
        self._use_payloads = (payloads_enabled() if use_payloads is None
                              else use_payloads)
        self._rng = np.random.default_rng(seed)
        #: Recovery-work counters; pass a shared instance to aggregate
        #: across the many analyzers one inference run creates.
        self.stats = stats if stats is not None else AnalyzerStats()
        #: (bank, logical) -> count of flipped-despite-covering-REF
        #: surprises (the refresh-schedule staleness signal).
        self.schedule_suspects: dict[tuple[int, int], int] = {}
        #: Verify every apparent TRR hit with a zero-REF decay probe
        #: before trusting it.  A row whose effective retention drifted
        #: past its bucket (temperature swing, stale profile) survives
        #: *every* experiment and would otherwise read as a TRR refresh
        #: at every stride; the probe catches it because a genuinely
        #: TRR-saved row still decays by T when nothing refreshes it.
        self.verify_hits = False

    # -- dummy rows (Requirement 2) -----------------------------------------

    def _protected_rows(self, config: ExperimentConfig) -> dict[int, set[int]]:
        """Rows (logical, per bank) dummies must keep clear of."""
        protected: dict[int, set[int]] = {}
        for group in self.groups:
            bank_rows = protected.setdefault(group.bank, set())
            bank_rows.update(group.logical_rows)
            bank_rows.update(group.gap_logical_rows(self._mapping))
        for aggressor in config.aggressors:
            protected.setdefault(aggressor.bank, set()).add(
                aggressor.logical_row)
        return protected

    def _pick_dummies(self, config: ExperimentConfig) -> dict[int, list[int]]:
        """Per-bank dummy rows, >= DUMMY_CLEARANCE away from the action."""
        if config.dummy_row_count == 0:
            return {}
        protected = self._protected_rows(config)
        banks = sorted({a.bank for a in config.aggressors}
                       or {g.bank for g in self.groups})
        return {
            bank: self._host.pick_rows_away_from(
                bank, protected.get(bank, ()), config.dummy_row_count,
                self.DUMMY_CLEARANCE, self._rng)
            for bank in banks
        }

    # -- TRR state reset (Requirement 4) --------------------------------------

    def reset_trr_state(self, config: ExperimentConfig | None = None,
                        rounds: int = 24, dummy_rows: int = 24,
                        dummy_hammers: int = 64,
                        refs_per_round: int = 16) -> None:
        """Flush TRR-internal state by hammering far-away dummies between
        refresh bursts (§5.2).

        The defaults issue 384 REFs with heavy dummy pressure — enough to
        cycle a 16-entry per-bank counter table twice at a 1/9 TRR-to-REF
        ratio, replace any sampled address, and drain any detection
        window.  (The paper hammers 128 dummies over ten full 64 ms
        refresh periods; this is the time-scaled equivalent and is
        validated against longer resets in the integration tests.)
        """
        protected = self._protected_rows(config or ExperimentConfig())
        banks = sorted(protected) or [self.groups[0].bank]
        dummies = {
            bank: self._host.pick_rows_away_from(
                bank, protected.get(bank, ()), dummy_rows,
                self.DUMMY_CLEARANCE, self._rng)
            for bank in banks
        }
        if self._use_payloads:
            body = SoftMCProgram()
            for bank, rows in dummies.items():
                body.hammer(bank, [(row, dummy_hammers) for row in rows],
                            HammerMode.CASCADED)
            body.refresh(refs_per_round)
            self._run_payload(SoftMCProgram().loop(rounds, body))
            return
        for _ in range(rounds):
            for bank, rows in dummies.items():
                self._host.hammer(
                    bank, [(row, dummy_hammers) for row in rows],
                    HammerMode.CASCADED)
            self._host.refresh(refs_per_round)

    def _run_payload(self, program: SoftMCProgram) -> None:
        """Compile and batch-execute a command-only program."""
        with self._obs.span("payload.compile",
                            instructions=len(program.instructions)):
            payload = compile_program(program.instructions,
                                      self._host.timing)
        self._host.execute_payload(payload)

    # -- the experiment (Fig. 7) ----------------------------------------------

    def run(self, config: ExperimentConfig) -> ExperimentResult:
        host = self._host
        dummies = self._pick_dummies(config)

        # Step 1: initialize victims and aggressors; optionally reset TRR.
        for group in self.groups:
            for logical in group.logical_rows:
                host.write_row(group.bank, logical, group.pattern)
        if config.init_aggressors:
            for aggressor in config.aggressors:
                host.write_row(aggressor.bank, aggressor.logical_row,
                               config.aggressor_pattern)
        if config.reset_state:
            self.reset_trr_state(config)
            # The reset's regular refreshes recharge the victims; re-init
            # to anchor every victim's decay clock at this instant.
            for group in self.groups:
                for logical in group.logical_rows:
                    host.write_row(group.bank, logical, group.pattern)
        if config.align_refs:
            self._align_refs_clear(config.rounds * config.refs_per_round)

        half = self.retention_ps // 2
        host.wait(half)

        # Step 2: hammer rounds, each ending with REF commands.
        ref_indices: list[int] = []
        per_bank_aggressors: dict[int, list[tuple[int, int]]] = {}
        for aggressor in config.aggressors:
            per_bank_aggressors.setdefault(aggressor.bank, []).append(
                (aggressor.logical_row, aggressor.count))
        if self._use_payloads:
            round_body = SoftMCProgram()
            emit_dummies = bool(dummies) and config.dummy_hammers > 0
            if config.dummies_first and emit_dummies:
                for bank, rows in dummies.items():
                    round_body.hammer(
                        bank, [(row, config.dummy_hammers) for row in rows],
                        HammerMode.CASCADED)
            for bank, rows in per_bank_aggressors.items():
                if any(count > 0 for _, count in rows):
                    round_body.hammer(bank, rows, config.hammer_mode)
            if not config.dummies_first and emit_dummies:
                for bank, rows in dummies.items():
                    round_body.hammer(
                        bank, [(row, config.dummy_hammers) for row in rows],
                        HammerMode.CASCADED)
            for _ in range(config.refs_per_round):
                round_body.refresh(1)
            # Each refresh(1) advances ref_count by exactly one, so the
            # REF schedule is known before the payload executes.
            ref_start = host.ref_count
            ref_indices = list(range(
                ref_start,
                ref_start + config.rounds * config.refs_per_round))
            self._run_payload(
                SoftMCProgram().loop(config.rounds, round_body))
        else:
            for _ in range(config.rounds):
                if config.dummies_first:
                    self._hammer_dummies(dummies, config)
                for bank, rows in per_bank_aggressors.items():
                    if any(count > 0 for _, count in rows):
                        host.hammer(bank, rows, config.hammer_mode)
                if not config.dummies_first:
                    self._hammer_dummies(dummies, config)
                for _ in range(config.refs_per_round):
                    ref_indices.append(host.ref_count)
                    host.refresh(1)

        # Step 3: wait out the remaining retention time and read back.
        host.wait(self.retention_ps - half)
        observations = []
        for group in self.groups:
            for logical, physical in group.row_pairs():
                flipped = bool(host.read_row_mismatches(group.bank, logical))
                regular = self._regular_possible(group.bank, logical,
                                                 ref_indices)
                if flipped and regular:
                    # The schedule says a REF should have covered this
                    # row, yet it decayed: either the phase window is
                    # stale or the rig lost the REF.  Either way the
                    # calibration deserves a second look.
                    key = (group.bank, logical)
                    self.schedule_suspects[key] = (
                        self.schedule_suspects.get(key, 0) + 1)
                    self.stats.schedule_violations += 1
                    self._obs.metrics.inc("analyzer.schedule_violations")
                observations.append(RowObservation(
                    bank=group.bank, logical_row=logical,
                    physical_row=physical, flipped=flipped,
                    regular_possible=regular))
        if self.verify_hits:
            observations = self._verify_hits(observations)
        self.stats.experiments += 1
        obs_bundle = self._obs
        obs_bundle.metrics.inc("analyzer.experiments")
        obs_bundle.metrics.observe("analyzer.refs_per_experiment",
                                   len(ref_indices))
        for observation in observations:
            if observation.trr_refreshed:
                obs_bundle.metrics.inc("analyzer.trr_hits")
                obs_bundle.event(
                    "trr-hit", ps=host.now_ps,
                    bank=observation.bank,
                    row=observation.logical_row,
                    physical=observation.physical_row,
                    ref_lo=ref_indices[0] if ref_indices else -1,
                    ref_hi=ref_indices[-1] if ref_indices else -1)
            elif observation.inconclusive:
                obs_bundle.metrics.inc("analyzer.inconclusive")
            if observation.flipped:
                obs_bundle.metrics.inc("analyzer.flipped_rows")
        return ExperimentResult(observations=observations,
                                ref_indices=ref_indices,
                                dummy_rows=dummies)

    def _verify_hits(self, observations: list[RowObservation]
                     ) -> list[RowObservation]:
        """Re-probe apparent TRR hits: the row must decay with zero REFs.

        All suspect rows are probed in one batch (one extra T wait per
        experiment at most).  A row that fails to decay is no longer in
        its retention bucket, so its survival is disavowed — reported as
        inconclusive rather than as a (phantom) TRR-induced refresh.
        """
        suspects = [obs for obs in observations if obs.trr_refreshed]
        if not suspects:
            return observations
        host = self._host
        patterns = {(group.bank, logical): group.pattern
                    for group in self.groups
                    for logical in group.logical_rows}
        for obs in suspects:
            host.write_row(obs.bank, obs.logical_row,
                           patterns[(obs.bank, obs.logical_row)])
        host.wait(self.retention_ps)
        verified = []
        disavowed: list[tuple[int, int]] = []
        for obs in observations:
            if obs.trr_refreshed and not host.read_row_mismatches(
                    obs.bank, obs.logical_row):
                self.stats.hits_disavowed += 1
                self._obs.metrics.inc("analyzer.hits_disavowed")
                disavowed.append((obs.bank, obs.logical_row))
                obs = dataclasses.replace(obs, regular_possible=True,
                                          confidence=0.0)
            verified.append(obs)
        if disavowed:
            self._obs.evidence.decide(
                "trr_hits", len(disavowed), outcome="rejected",
                stage="analyzer.verify_hits", confidence=0.0,
                evidence=[ev_value("disavowed-rows",
                                   [list(pair) for pair in disavowed])],
                detail={"suspects": len(suspects),
                        "note": "apparent TRR hits failed the zero-REF "
                                "decay probe"},
                host=host, profiler=self._obs.profiler)
        return verified

    # -- robust execution (majority vote + re-validation) ---------------------

    def run_robust(self, config: ExperimentConfig, votes: int = 3,
                   revalidate: bool = True) -> ExperimentResult:
        """Run the experiment *votes* times and majority-vote every row.

        Round-level outliers (one run disagreeing with the consensus on
        a row's flip or regular-refresh attribution) are rejected; each
        consensus observation carries the agreement fraction as its
        ``confidence``.  Groups whose flip votes are split are
        re-validated against their retention bucket and reported in
        ``unstable_groups`` when the re-validation fails — the caller's
        cue to replace them (``RowScout.replace_group``).

        Only ``reset_state`` experiments may be repeated: a stateful
        probe (``reset_state=False``) would measure a different TRR
        state on every vote.
        """
        if votes <= 1:
            return self.run(config)
        if not config.reset_state:
            raise ConfigError(
                "run_robust needs reset_state=True: a stateful probe "
                "cannot be repeated without changing what it measures")
        runs = [self.run(config) for _ in range(votes)]
        self.stats.vote_rounds += votes - 1
        self._obs.metrics.inc("analyzer.vote_rounds", votes - 1)
        consensus: list[RowObservation] = []
        outliers = 0
        split_rows: set[tuple[int, int]] = set()
        for index, base in enumerate(runs[0].observations):
            flips = [run.observations[index].flipped for run in runs]
            regulars = [run.observations[index].regular_possible
                        for run in runs]
            flipped = sum(flips) * 2 > votes
            regular = sum(regulars) * 2 > votes
            agree = (sum(1 for f in flips if f == flipped)
                     + sum(1 for r in regulars if r == regular))
            disagreeing_flips = sum(1 for f in flips if f != flipped)
            outliers += disagreeing_flips
            if disagreeing_flips:
                split_rows.add((base.bank, base.logical_row))
            consensus.append(RowObservation(
                bank=base.bank, logical_row=base.logical_row,
                physical_row=base.physical_row, flipped=flipped,
                regular_possible=regular,
                confidence=agree / (2 * votes)))
        self.stats.outliers_rejected += outliers
        self._obs.metrics.inc("analyzer.outliers_rejected", outliers)
        unstable: list[int] = []
        if revalidate and split_rows:
            for group_index, group in enumerate(self.groups):
                if not any((group.bank, logical) in split_rows
                           for logical in group.logical_rows):
                    continue
                if not self.revalidate_group(group):
                    unstable.append(group_index)
        if outliers or unstable:
            # Only anomalous vote rounds leave a provenance node; clean
            # consensus runs would flood the sidecar at one node per
            # experiment.
            self._obs.evidence.decide(
                "vote_consensus", votes, outcome="degraded",
                stage="analyzer.run_robust",
                confidence=1.0 - outliers / (2 * votes * len(consensus)),
                evidence=[
                    ev_value("split-rows",
                             [list(pair) for pair in sorted(split_rows)]),
                    ev_refs(runs[-1].ref_indices,
                            label="experiment-refs"),
                ],
                detail={"outliers": outliers,
                        "unstable_groups": list(unstable)},
                host=self._host, profiler=self._obs.profiler)
        return ExperimentResult(observations=consensus,
                                ref_indices=runs[-1].ref_indices,
                                dummy_rows=runs[-1].dummy_rows,
                                votes=votes, outliers=outliers,
                                unstable_groups=tuple(unstable))

    def revalidate_group(self, group: RowGroup, rounds: int = 2) -> bool:
        """Re-check that every profiled row still sits in its bucket.

        The same write/wait/read consistency round Row Scout validated
        with: fail by T, retain past T_lo.  A row whose retention
        wandered (VRT excursion, temperature shift, profile staleness)
        fails, telling the caller the group's observations can no longer
        be trusted.
        """
        host = self._host
        self.stats.groups_revalidated += 1
        self._obs.metrics.inc("analyzer.groups_revalidated")
        for _ in range(rounds):
            for logical in group.logical_rows:
                host.write_row(group.bank, logical, group.pattern)
            host.wait(self.retention_ps)
            for logical in group.logical_rows:
                if not host.read_row_mismatches(group.bank, logical):
                    self._reject_group(group, logical, "retained past T")
                    return False
            for logical in group.logical_rows:
                host.write_row(group.bank, logical, group.pattern)
            host.wait(group.retention_lo_ps)
            for logical in group.logical_rows:
                if host.read_row_mismatches(group.bank, logical):
                    self._reject_group(group, logical, "failed by T_lo")
                    return False
        return True

    def _reject_group(self, group: RowGroup, logical: int,
                      reason: str) -> None:
        """Provenance node for a failed group re-validation."""
        self._obs.evidence.decide(
            "group_stability", False, outcome="rejected",
            stage="analyzer.revalidate", confidence=0.0,
            evidence=[ev_rows(group.logical_rows,
                              label="group-rows"),
                      ev_value("failed-row",
                               {"bank": group.bank, "row": logical,
                                "reason": reason})],
            detail={"bank": group.bank,
                    "retention_ps": group.retention_ps},
            host=self._host, profiler=self._obs.profiler)

    def _hammer_dummies(self, dummies: dict[int, list[int]],
                        config: ExperimentConfig) -> None:
        if not dummies or config.dummy_hammers == 0:
            return
        for bank, rows in dummies.items():
            self._host.hammer(
                bank, [(row, config.dummy_hammers) for row in rows],
                HammerMode.CASCADED)

    def _align_refs_clear(self, planned_refs: int) -> None:
        """Advance the REF counter so the next *planned_refs* REF indices
        fall outside every victim's regular-refresh window.

        The burned REFs execute while the victims are freshly initialized
        (their decay clocks barely move), so this only re-times the
        experiment.  When the windows plus the planned burst cannot fit
        inside one refresh cycle, alignment is impossible and the result
        simply reports the affected rows as inconclusive.
        """
        if self.schedule is None or planned_refs == 0:
            return
        cycle = self.schedule.cycle_refs
        windows = []
        total_width = 0
        for group in self.groups:
            for logical in group.logical_rows:
                window = self.schedule.covering_window(group.bank, logical)
                if window is None:
                    continue
                start, width = window
                width += 2 * self.schedule.slack
                start -= self.schedule.slack
                windows.append((start % cycle, width))
                total_width += width
        if not windows or planned_refs + total_width >= cycle:
            return
        host = self._host
        for shift in range(cycle):
            burst_start = (host.ref_count + shift) % cycle
            if not any(self._intervals_overlap(burst_start, planned_refs,
                                               start, width, cycle)
                       for start, width in windows):
                if shift:
                    host.refresh(shift)
                return
        # No clear slot found (should be unreachable given the width
        # check); fall through without alignment.

    @staticmethod
    def _intervals_overlap(a_start: int, a_len: int, b_start: int,
                           b_len: int, cycle: int) -> bool:
        """Do [a, a+a_len) and [b, b+b_len) overlap modulo cycle?"""
        delta = (b_start - a_start) % cycle
        return delta < a_len or (cycle - delta) < b_len

    def _regular_possible(self, bank: int, logical: int,
                          ref_indices: list[int]) -> bool:
        if self.schedule is None:
            return False
        return any(self.schedule.may_cover(bank, logical, index)
                   for index in ref_indices)

    # -- hammer-safety pre-check (§5.3, second method) ------------------------

    def verify_hammer_count_harmless(self, config: ExperimentConfig) -> bool:
        """Check that the configured hammer counts alone (no REFs) do not
        flip the victims — required so observed flips measure *refresh
        absence*, not direct RowHammer damage (§6.1.1)."""
        host = self._host
        for group in self.groups:
            for logical in group.logical_rows:
                host.write_row(group.bank, logical, group.pattern)
        if config.init_aggressors:
            for aggressor in config.aggressors:
                host.write_row(aggressor.bank, aggressor.logical_row,
                               config.aggressor_pattern)
        for _ in range(config.rounds):
            for aggressor in config.aggressors:
                if aggressor.count:
                    host.hammer_single(aggressor.bank, aggressor.logical_row,
                                       aggressor.count)
        for group in self.groups:
            for logical in group.logical_rows:
                if host.read_row_mismatches(group.bank, logical):
                    return False
        return True
