"""Row Scout (RS): the retention-time profiler (§4).

RS finds row groups whose retention behaviour makes them usable as
TRR Analyzer victims:

* every profiled row fails **by** the bucket time T but **retains past**
  the bucket's lower edge T_lo (so a refresh at T/2 always saves it —
  footnote 4 requires T_lo >= T/2);
* rows within a group share the bucket and sit at the layout's relative
  *physical* positions (``R-R`` etc.), placed via the reverse-engineered
  row mapping;
* retention is validated over many write/wait/read rounds to reject
  Variable Retention Time rows (§4.1).

The scan loop follows Fig. 6: scan the row range at T, form candidate
groups from newly failing rows, escalate T when too few groups pass
validation.  Escalation is geometric (T *= growth) so the bucket
(T_prev, T] always satisfies T_prev >= T/2.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.mapping import DirectMapping, RowMapping
from ..dram.patterns import AllOnes, DataPattern
from ..errors import ConfigError, ProfilingError
from ..softmc import SoftMCHost
from ..units import ms
from .rowgroup import RowGroup, RowGroupLayout


@dataclass(frozen=True)
class ProfilingConfig:
    """What Row Scout should find (Fig. 3 "profiling configuration")."""

    bank: int
    layout: RowGroupLayout
    group_count: int
    row_range: tuple[int, int] | None = None  #: physical rows [start, end)
    pattern: DataPattern = field(default_factory=AllOnes)
    initial_t_ms: float = 100.0
    #: Geometric bucket growth; must stay <= 2 so T_lo >= T/2.
    growth: float = 1.5
    max_t_ms: float = 8000.0
    #: Write/wait/read rounds per candidate row (paper: 1000).
    validation_rounds: int = 40
    #: Minimum physical distance between two groups' spans, so one
    #: group's aggressors (and their TRR-refresh blast radius) cannot
    #: touch another group's profiled rows.
    group_spacing: int = 8

    def __post_init__(self) -> None:
        if self.group_count < 1:
            raise ConfigError("group_count must be >= 1")
        if not 1.0 < self.growth <= 2.0:
            raise ConfigError("growth must be in (1, 2] (footnote 4)")
        if self.initial_t_ms <= 0 or self.max_t_ms <= self.initial_t_ms:
            raise ConfigError("need 0 < initial_t_ms < max_t_ms")
        if self.validation_rounds < 1:
            raise ConfigError("validation_rounds must be >= 1")
        if self.group_spacing < 0:
            raise ConfigError("group_spacing must be >= 0")


class RowScout:
    """Finds retention-profiled row groups through the side channel only."""

    def __init__(self, host: SoftMCHost,
                 mapping: RowMapping | None = None) -> None:
        self._host = host
        #: Logical<->physical mapping discovered by §5.3 reverse
        #: engineering (identity if the module needs none).
        self._mapping = mapping or DirectMapping(host.rows_per_bank)

    # -- scan pass -----------------------------------------------------------

    def _scan_failing_rows(self, bank: int, physical_rows: list[int],
                           pattern: DataPattern, t_ps: int) -> set[int]:
        """One Fig. 6 step-1 pass: which physical rows fail within t_ps?"""
        host = self._host
        logical = [self._mapping.to_logical(p) for p in physical_rows]
        for row in logical:
            host.write_row(bank, row, pattern)
        host.wait(t_ps)
        failing = set()
        for physical, row in zip(physical_rows, logical):
            if host.read_row_mismatches(bank, row):
                failing.add(physical)
        return failing

    def _validate_row(self, bank: int, physical: int, pattern: DataPattern,
                      t_lo_ps: int, t_ps: int, rounds: int) -> bool:
        """Fig. 6 step-4: the row must fail at T and retain at T_lo, every
        round (rejects VRT rows)."""
        host = self._host
        logical = self._mapping.to_logical(physical)
        for _ in range(rounds):
            host.write_row(bank, logical, pattern)
            host.wait(t_ps)
            if not host.read_row_mismatches(bank, logical):
                return False
            host.write_row(bank, logical, pattern)
            host.wait(t_lo_ps)
            if host.read_row_mismatches(bank, logical):
                return False
        return True

    @staticmethod
    def _candidate_bases(layout: RowGroupLayout, bucket_rows: set[int],
                         range_lo: int, range_hi: int) -> list[int]:
        """Base rows where every layout 'R' lands on a bucket row."""
        bases = []
        for base in sorted(bucket_rows):
            if base + layout.span > range_hi or base < range_lo:
                continue
            if all(base + off in bucket_rows
                   for off in layout.profiled_offsets):
                bases.append(base)
        return bases

    # -- main loop (Fig. 6) ---------------------------------------------------

    def find_groups(self, config: ProfilingConfig) -> list[RowGroup]:
        """Run the Fig. 6 loop until ``group_count`` validated groups exist.

        All returned groups share one retention bucket (a TRR Analyzer
        experiment waits a single global time, so mixed buckets would
        break footnote 4's timing constraints).
        """
        return self.find_groups_joint([config])[0]

    def find_groups_joint(self, configs: list[ProfilingConfig]
                          ) -> list[list[RowGroup]]:
        """Satisfy several profiling configurations in one shared bucket.

        Needed by experiments that compare TRR behaviour across banks:
        the victim rows of all banks must share one retention time so a
        single TRR-A experiment can cover them.  All configs must agree
        on pattern and escalation parameters.
        """
        if not configs:
            raise ConfigError("need at least one profiling configuration")
        reference = configs[0]
        for config in configs[1:]:
            same = (config.pattern == reference.pattern
                    and config.initial_t_ms == reference.initial_t_ms
                    and config.growth == reference.growth
                    and config.max_t_ms == reference.max_t_ms)
            if not same:
                raise ConfigError(
                    "joint profiling requires identical pattern and "
                    "escalation parameters across configurations")

        host = self._host
        ranges = []
        for config in configs:
            range_lo, range_hi = config.row_range or (0, host.rows_per_bank)
            if not 0 <= range_lo < range_hi <= host.rows_per_bank:
                raise ConfigError(f"bad row range [{range_lo}, {range_hi})")
            ranges.append((range_lo, range_hi))

        t_lo_ps = 0
        t_ms_value = reference.initial_t_ms
        already_failing: list[set[int]] = [set() for _ in configs]
        first_pass = True
        while t_ms_value <= reference.max_t_ms:
            t_ps = ms(t_ms_value)
            failing = [
                self._scan_failing_rows(
                    config.bank, list(range(lo, hi)), config.pattern, t_ps)
                for config, (lo, hi) in zip(configs, ranges)
            ]
            if first_pass:
                # Rows failing at the *initial* T have unknown (possibly
                # tiny) retention; footnote 4 excludes them.
                already_failing = failing
                first_pass = False
            else:
                results = []
                for config, fails, previous, (lo, hi) in zip(
                        configs, failing, already_failing, ranges):
                    bucket = fails - previous
                    results.append(self._form_groups(
                        config, bucket, t_lo_ps, t_ps, lo, hi))
                if all(len(groups) >= config.group_count
                       for groups, config in zip(results, configs)):
                    return [groups[:config.group_count]
                            for groups, config in zip(results, configs)]
                already_failing = failing
            t_lo_ps = t_ps
            t_ms_value *= reference.growth
        raise ProfilingError(
            "could not satisfy all profiling configurations in one bucket "
            f"up to T={reference.max_t_ms} ms: "
            + ", ".join(f"bank {c.bank} needs {c.group_count} x "
                        f"'{c.layout.notation}'" for c in configs))

    def _form_groups(self, config: ProfilingConfig, bucket: set[int],
                     t_lo_ps: int, t_ps: int, range_lo: int,
                     range_hi: int) -> list[RowGroup]:
        groups: list[RowGroup] = []
        used: set[int] = set()
        for base in self._candidate_bases(config.layout, bucket,
                                          range_lo, range_hi):
            span_rows = range(base - config.group_spacing,
                              base + config.layout.span
                              + config.group_spacing)
            if any(row in used for row in span_rows):
                continue
            rows = [base + off for off in config.layout.profiled_offsets]
            if all(self._validate_row(config.bank, row, config.pattern,
                                      t_lo_ps, t_ps,
                                      config.validation_rounds)
                   for row in rows):
                groups.append(RowGroup(
                    bank=config.bank,
                    base_physical=base,
                    layout=config.layout,
                    logical_rows=tuple(self._mapping.to_logical(r)
                                       for r in rows),
                    retention_ps=t_ps,
                    retention_lo_ps=t_lo_ps,
                    pattern=config.pattern,
                ))
                used.update(span_rows)
                if len(groups) >= config.group_count:
                    break
        return groups
