"""Row Scout (RS): the retention-time profiler (§4).

RS finds row groups whose retention behaviour makes them usable as
TRR Analyzer victims:

* every profiled row fails **by** the bucket time T but **retains past**
  the bucket's lower edge T_lo (so a refresh at T/2 always saves it —
  footnote 4 requires T_lo >= T/2);
* rows within a group share the bucket and sit at the layout's relative
  *physical* positions (``R-R`` etc.), placed via the reverse-engineered
  row mapping;
* retention is validated over many write/wait/read rounds to reject
  Variable Retention Time rows (§4.1).

The scan loop follows Fig. 6: scan the row range at T, form candidate
groups from newly failing rows, escalate T when too few groups pass
validation.  Escalation is geometric (T *= growth) so the bucket
(T_prev, T] always satisfies T_prev >= T/2.

Hardening against a noisy substrate
-----------------------------------
On real rigs the profiler must survive transient readback noise, VRT
storms and flaky modules.  The hardened loop therefore supports:

* **retry-with-escalation** — an inconsistent validation round is
  re-probed ``round_retries`` times before it rejects the row.  Genuine
  VRT excursions persist across the re-probe (the VRT state is sticky),
  while one-shot read noise does not, so VRT rejection keeps the
  paper's strictness;
* **per-row flakiness scoring and quarantine** — rows that repeatedly
  need retries accumulate a flakiness score; past
  ``quarantine_after`` they enter a quarantine list and are never
  considered again (not even in later scans or replacements);
* **mid-run group replacement** — :meth:`RowScout.replace_group`
  substitutes a group whose behaviour shifted under the analyzer,
  re-scanning the same retention bucket;
* **whole-scan retries** — ``scan_attempts`` full Fig. 6 escalations
  run before giving up; :class:`~repro.errors.RetryExhaustedError`
  (a :class:`~repro.errors.ProfilingError`) is raised only after every
  retry budget is spent.

All recovery work is counted in :attr:`RowScout.stats`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Iterable

from ..dram.mapping import DirectMapping, RowMapping
from ..dram.patterns import AllOnes, DataPattern
from ..errors import ConfigError, RetryExhaustedError
from ..obs import NULL_OBS, Observability, ev_rows, ev_value
from ..program import compile_program, payloads_enabled
from ..softmc import SoftMCHost, SoftMCProgram
from ..units import ms
from .resilience import RowScoutStats
from .rowgroup import RowGroup, RowGroupLayout


@dataclass(frozen=True)
class ProfilingConfig:
    """What Row Scout should find (Fig. 3 "profiling configuration")."""

    bank: int
    layout: RowGroupLayout
    group_count: int
    row_range: tuple[int, int] | None = None  #: physical rows [start, end)
    pattern: DataPattern = field(default_factory=AllOnes)
    initial_t_ms: float = 100.0
    #: Geometric bucket growth; must stay <= 2 so T_lo >= T/2.
    growth: float = 1.5
    max_t_ms: float = 8000.0
    #: Write/wait/read rounds per candidate row (paper: 1000).
    validation_rounds: int = 40
    #: Minimum physical distance between two groups' spans, so one
    #: group's aggressors (and their TRR-refresh blast radius) cannot
    #: touch another group's profiled rows.
    group_spacing: int = 8
    #: Re-probes of an inconsistent validation round before it rejects
    #: the row (0 = paper-strict: first inconsistency rejects).
    round_retries: int = 0
    #: Retried rounds before a row is quarantined outright.
    quarantine_after: int = 3
    #: Full Fig. 6 escalations to attempt before giving up.
    scan_attempts: int = 1

    def __post_init__(self) -> None:
        if self.group_count < 1:
            raise ConfigError("group_count must be >= 1")
        if not 1.0 < self.growth <= 2.0:
            raise ConfigError("growth must be in (1, 2] (footnote 4)")
        if self.initial_t_ms <= 0 or self.max_t_ms <= self.initial_t_ms:
            raise ConfigError("need 0 < initial_t_ms < max_t_ms")
        if self.validation_rounds < 1:
            raise ConfigError("validation_rounds must be >= 1")
        if self.group_spacing < 0:
            raise ConfigError("group_spacing must be >= 0")
        if self.round_retries < 0:
            raise ConfigError("round_retries must be >= 0")
        if self.quarantine_after < 1:
            raise ConfigError("quarantine_after must be >= 1")
        if self.scan_attempts < 1:
            raise ConfigError("scan_attempts must be >= 1")


class RowScout:
    """Finds retention-profiled row groups through the side channel only."""

    def __init__(self, host: SoftMCHost,
                 mapping: RowMapping | None = None,
                 obs: Observability | None = None,
                 use_payloads: bool | None = None) -> None:
        self._host = host
        #: Logical<->physical mapping discovered by §5.3 reverse
        #: engineering (identity if the module needs none).
        self._mapping = mapping or DirectMapping(host.rows_per_bank)
        #: Observability bundle: explicit, inherited from the host, or
        #: the shared null bundle (all calls no-ops).
        self._obs = obs or getattr(host, "obs", None) or NULL_OBS
        #: Route scan/probe command streams through compiled payloads
        #: (same commands, batch-interpreted); defaults to the
        #: process-wide ``REPRO_PAYLOAD`` setting.
        self._use_payloads = (payloads_enabled() if use_payloads is None
                              else use_payloads)
        #: Compiled-payload memo: validation re-probes one row dozens of
        #: times with identical programs, so compilation amortizes away.
        self._payload_cache: dict[tuple, object] = {}
        #: Recovery-work counters (chaos harness reporting).
        self.stats = RowScoutStats()
        #: Physical rows banned from profiling, per bank.
        self.quarantine: dict[int, set[int]] = {}
        #: (bank, physical) -> retried-round count feeding the quarantine.
        self.flaky_scores: dict[tuple[int, int], int] = {}

    def _compiled(self, key: tuple, build) -> object:
        payload = self._payload_cache.get(key)
        if payload is None:
            if len(self._payload_cache) >= 64:
                self._payload_cache.clear()
            program = build()
            with self._obs.span("payload.compile",
                                instructions=len(program.instructions)):
                payload = compile_program(program.instructions,
                                          self._host.timing)
            self._payload_cache[key] = payload
        return payload

    # -- quarantine bookkeeping ---------------------------------------------

    def _is_quarantined(self, bank: int, physical_rows) -> bool:
        banned = self.quarantine.get(bank)
        if not banned:
            return False
        return any(row in banned for row in physical_rows)

    def quarantine_row(self, bank: int, physical: int) -> None:
        """Ban *physical* from all future profiling in *bank*."""
        banned = self.quarantine.setdefault(bank, set())
        if physical not in banned:
            banned.add(physical)
            self.stats.rows_quarantined += 1
            self._obs.metrics.inc("rowscout.rows_quarantined")
            self._obs.evidence.decide(
                "row_quarantine", physical, outcome="rejected",
                stage="rowscout.quarantine", confidence=0.0,
                evidence=[ev_value(
                    "flaky-score",
                    {"bank": bank, "physical": physical,
                     "retries": self.flaky_scores.get((bank, physical),
                                                      0)})],
                detail={"bank": bank},
                host=self._host, profiler=self._obs.profiler)

    def _note_flaky(self, bank: int, physical: int,
                    config: ProfilingConfig) -> None:
        key = (bank, physical)
        score = self.flaky_scores.get(key, 0) + 1
        self.flaky_scores[key] = score
        if score >= config.quarantine_after:
            self.quarantine_row(bank, physical)

    # -- scan pass -----------------------------------------------------------

    def _scan_failing_rows(self, bank: int, physical_rows: list[int],
                           pattern: DataPattern, t_ps: int) -> set[int]:
        """One Fig. 6 step-1 pass: which physical rows fail within t_ps?"""
        host = self._host
        self.stats.scan_passes += 1
        self._obs.metrics.inc("rowscout.scan_passes")
        logical = [self._mapping.to_logical(p) for p in physical_rows]
        if self._use_payloads:
            key = ("scan", bank, tuple(logical), pattern, t_ps)
            payload = self._compiled(key, lambda: self._scan_program(
                bank, logical, pattern, t_ps))
            result = host.execute_payload(payload)
            return {physical for physical, row in zip(physical_rows,
                                                      logical)
                    if result.mismatches[f"{bank}:{row}"]}
        for row in logical:
            host.write_row(bank, row, pattern)
        host.wait(t_ps)
        failing = set()
        for physical, row in zip(physical_rows, logical):
            if host.read_row_mismatches(bank, row):
                failing.add(physical)
        return failing

    @staticmethod
    def _scan_program(bank: int, logical: list[int], pattern: DataPattern,
                      t_ps: int) -> SoftMCProgram:
        program = SoftMCProgram()
        for row in logical:
            program.write(bank, row, pattern)
        program.wait(t_ps)
        for row in logical:
            program.check(bank, row)
        return program

    # -- validation (Fig. 6 step 4, hardened) --------------------------------

    def _probe_round(self, bank: int, logical: int, pattern: DataPattern,
                     t_lo_ps: int, t_ps: int) -> bool:
        """One consistency round: fail at T *and* retain at T_lo."""
        host = self._host
        if self._use_payloads:
            label = f"{bank}:{logical}"
            probe_hi = self._compiled(
                ("probe", bank, logical, pattern, t_ps),
                lambda: SoftMCProgram().write(bank, logical, pattern)
                .wait(t_ps).check(bank, logical))
            if not host.execute_payload(probe_hi).mismatches[label]:
                return False
            probe_lo = self._compiled(
                ("probe", bank, logical, pattern, t_lo_ps),
                lambda: SoftMCProgram().write(bank, logical, pattern)
                .wait(t_lo_ps).check(bank, logical))
            return not host.execute_payload(probe_lo).mismatches[label]
        host.write_row(bank, logical, pattern)
        host.wait(t_ps)
        if not host.read_row_mismatches(bank, logical):
            return False
        host.write_row(bank, logical, pattern)
        host.wait(t_lo_ps)
        if host.read_row_mismatches(bank, logical):
            return False
        return True

    def _validate_row(self, config: ProfilingConfig, bank: int,
                      physical: int, t_lo_ps: int, t_ps: int) -> bool:
        """The row must pass every consistency round (rejects VRT rows).

        An inconsistent round is re-probed up to ``config.round_retries``
        times: VRT state is sticky across observations so a genuine VRT
        excursion is corroborated, while transient read noise is not.
        """
        logical = self._mapping.to_logical(physical)
        stats = self.stats
        metrics = self._obs.metrics
        for _ in range(config.validation_rounds):
            stats.rounds_validated += 1
            metrics.inc("rowscout.rounds_validated")
            if self._probe_round(bank, logical, config.pattern,
                                 t_lo_ps, t_ps):
                continue
            for _ in range(config.round_retries):
                stats.round_retries += 1
                metrics.inc("rowscout.round_retries")
                self._note_flaky(bank, physical, config)
                if self._is_quarantined(bank, (physical,)):
                    stats.rows_rejected += 1
                    metrics.inc("rowscout.rows_rejected")
                    return False
                if self._probe_round(bank, logical, config.pattern,
                                     t_lo_ps, t_ps):
                    break
            else:
                stats.rows_rejected += 1
                metrics.inc("rowscout.rows_rejected")
                return False
        return True

    @staticmethod
    def _candidate_bases(layout: RowGroupLayout, bucket_rows: set[int],
                         range_lo: int, range_hi: int) -> list[int]:
        """Base rows where every layout 'R' lands on a bucket row."""
        bases = []
        for base in sorted(bucket_rows):
            if base + layout.span > range_hi or base < range_lo:
                continue
            if all(base + off in bucket_rows
                   for off in layout.profiled_offsets):
                bases.append(base)
        return bases

    # -- main loop (Fig. 6) ---------------------------------------------------

    def find_groups(self, config: ProfilingConfig) -> list[RowGroup]:
        """Run the Fig. 6 loop until ``group_count`` validated groups exist.

        All returned groups share one retention bucket (a TRR Analyzer
        experiment waits a single global time, so mixed buckets would
        break footnote 4's timing constraints).
        """
        return self.find_groups_joint([config])[0]

    def find_groups_joint(self, configs: list[ProfilingConfig]
                          ) -> list[list[RowGroup]]:
        """Satisfy several profiling configurations in one shared bucket.

        Needed by experiments that compare TRR behaviour across banks:
        the victim rows of all banks must share one retention time so a
        single TRR-A experiment can cover them.  All configs must agree
        on pattern and escalation parameters.

        Retries the whole escalation up to ``scan_attempts`` times (VRT
        states and transient noise differ between passes) and raises
        :class:`RetryExhaustedError` only once every attempt failed.
        """
        if not configs:
            raise ConfigError("need at least one profiling configuration")
        reference = configs[0]
        for config in configs[1:]:
            same = (config.pattern == reference.pattern
                    and config.initial_t_ms == reference.initial_t_ms
                    and config.growth == reference.growth
                    and config.max_t_ms == reference.max_t_ms)
            if not same:
                raise ConfigError(
                    "joint profiling requires identical pattern and "
                    "escalation parameters across configurations")

        host = self._host
        ranges = []
        for config in configs:
            range_lo, range_hi = config.row_range or (0, host.rows_per_bank)
            if not 0 <= range_lo < range_hi <= host.rows_per_bank:
                raise ConfigError(f"bad row range [{range_lo}, {range_hi})")
            ranges.append((range_lo, range_hi))

        with self._obs.span("rowscout.find_groups",
                            banks=len(configs),
                            groups=sum(c.group_count for c in configs)):
            for attempt in range(reference.scan_attempts):
                if attempt:
                    self.stats.scan_restarts += 1
                    self._obs.metrics.inc("rowscout.scan_restarts")
                    self._obs.evidence.decide(
                        "scan_attempt", attempt, outcome="degraded",
                        stage="rowscout.find_groups",
                        evidence=[ev_value(
                            "escalation-budget",
                            {"max_t_ms": reference.max_t_ms,
                             "attempts": reference.scan_attempts})],
                        detail={"banks": [c.bank for c in configs]},
                        host=self._host, profiler=self._obs.profiler)
                results = self._escalate_once(configs, ranges, reference)
                if results is not None:
                    return results
        raise RetryExhaustedError(
            "could not satisfy all profiling configurations in one bucket "
            f"up to T={reference.max_t_ms} ms "
            f"(after {reference.scan_attempts} scan attempt(s)): "
            + ", ".join(f"bank {c.bank} needs {c.group_count} x "
                        f"'{c.layout.notation}'" for c in configs))

    def _escalate_once(self, configs: list[ProfilingConfig],
                       ranges: list[tuple[int, int]],
                       reference: ProfilingConfig
                       ) -> list[list[RowGroup]] | None:
        """One full Fig. 6 T escalation; None when the budget runs out."""
        t_lo_ps = 0
        t_ms_value = reference.initial_t_ms
        already_failing: list[set[int]] = [set() for _ in configs]
        first_pass = True
        while t_ms_value <= reference.max_t_ms:
            t_ps = ms(t_ms_value)
            failing = [
                self._scan_failing_rows(
                    config.bank, list(range(lo, hi)), config.pattern, t_ps)
                for config, (lo, hi) in zip(configs, ranges)
            ]
            if first_pass:
                # Rows failing at the *initial* T have unknown (possibly
                # tiny) retention; footnote 4 excludes them.
                already_failing = failing
                first_pass = False
            else:
                results = []
                for config, fails, previous, (lo, hi) in zip(
                        configs, failing, already_failing, ranges):
                    bucket = fails - previous
                    results.append(self._form_groups(
                        config, bucket, t_lo_ps, t_ps, lo, hi))
                if all(len(groups) >= config.group_count
                       for groups, config in zip(results, configs)):
                    return [groups[:config.group_count]
                            for groups, config in zip(results, configs)]
                already_failing = failing
            t_lo_ps = t_ps
            t_ms_value *= reference.growth
        return None

    def _form_groups(self, config: ProfilingConfig, bucket: set[int],
                     t_lo_ps: int, t_ps: int, range_lo: int,
                     range_hi: int,
                     used: set[int] | None = None) -> list[RowGroup]:
        groups: list[RowGroup] = []
        used = set(used or ())
        for base in self._candidate_bases(config.layout, bucket,
                                          range_lo, range_hi):
            span_rows = range(base - config.group_spacing,
                              base + config.layout.span
                              + config.group_spacing)
            if any(row in used for row in span_rows):
                continue
            rows = [base + off for off in config.layout.profiled_offsets]
            if self._is_quarantined(config.bank, rows):
                continue
            if all(self._validate_row(config, config.bank, row,
                                      t_lo_ps, t_ps)
                   for row in rows):
                group = RowGroup(
                    bank=config.bank,
                    base_physical=base,
                    layout=config.layout,
                    logical_rows=tuple(self._mapping.to_logical(r)
                                       for r in rows),
                    retention_ps=t_ps,
                    retention_lo_ps=t_lo_ps,
                    pattern=config.pattern,
                )
                groups.append(group)
                self.stats.groups_formed += 1
                self._obs.metrics.inc("rowscout.groups_formed")
                self._obs.evidence.decide(
                    "row_group", group.layout.notation,
                    stage="rowscout.form_groups", confidence=1.0,
                    evidence=[ev_rows(rows, label="physical-rows"),
                              ev_value("retention-bucket",
                                       {"t_lo_ps": t_lo_ps,
                                        "t_ps": t_ps})],
                    detail={"bank": config.bank, "base": base,
                            "rounds": config.validation_rounds},
                    host=self._host, profiler=self._obs.profiler)
                used.update(span_rows)
                if len(groups) >= config.group_count:
                    break
        return groups

    # -- mid-run group replacement --------------------------------------------

    def replace_group(self, config: ProfilingConfig, bad_group: RowGroup,
                      keep: Iterable[RowGroup] = ()) -> RowGroup:
        """Find a substitute for a group whose behaviour shifted mid-run.

        The bad group's profiled rows are quarantined, its retention
        bucket is re-scanned (two passes: failing at T minus failing at
        T_lo reconstructs the bucket without the original escalation
        history), and a fresh group is validated clear of every group in
        *keep*.  Raises :class:`RetryExhaustedError` when the bucket has
        no replacement to offer.
        """
        for physical in bad_group.physical_rows:
            self.quarantine_row(bad_group.bank, physical)
        range_lo, range_hi = config.row_range or (0,
                                                  self._host.rows_per_bank)
        rows = list(range(range_lo, range_hi))
        t_ps = bad_group.retention_ps
        t_lo_ps = bad_group.retention_lo_ps
        failing_hi = self._scan_failing_rows(bad_group.bank, rows,
                                             config.pattern, t_ps)
        failing_lo = self._scan_failing_rows(bad_group.bank, rows,
                                             config.pattern, t_lo_ps)
        bucket = failing_hi - failing_lo
        used: set[int] = set()
        for group in (*keep, bad_group):
            used.update(range(group.base_physical - config.group_spacing,
                              group.base_physical + group.layout.span
                              + config.group_spacing))
        replacement = self._form_groups(
            dataclasses.replace(config, group_count=1), bucket,
            t_lo_ps, t_ps, range_lo, range_hi, used=used)
        if not replacement:
            raise RetryExhaustedError(
                f"no replacement group available in bank {bad_group.bank}'s "
                f"bucket ({t_lo_ps}, {t_ps}] ps")
        self.stats.groups_replaced += 1
        self._obs.metrics.inc("rowscout.groups_replaced")
        self._obs.evidence.decide(
            "group_replacement", replacement[0].base_physical,
            stage="rowscout.replace_group", confidence=1.0,
            evidence=[ev_rows(bad_group.physical_rows,
                              label="quarantined-rows"),
                      ev_rows(replacement[0].physical_rows,
                              label="replacement-rows")],
            detail={"bank": bad_group.bank,
                    "bucket_ps": [t_lo_ps, t_ps]},
            host=self._host, profiler=self._obs.profiler)
        return replacement[0]
