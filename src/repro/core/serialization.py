"""JSON persistence for U-TRR measurement artifacts.

Row Scout profiles, refresh schedules and inferred TRR profiles are
expensive to produce (minutes of rig time on hardware); real workflows
measure once per module and reuse.  These helpers round-trip the three
artifact types through plain JSON-compatible dictionaries.

Data patterns serialize by name for the built-in patterns (the only ones
profiling uses); schedules and profiles are pure data.
"""

from __future__ import annotations

import json

from ..dram.patterns import (AllOnes, AllZeros, ByteFill, Checkerboard,
                             DataPattern)
from ..errors import ConfigError
from .inference import InferredTrrProfile
from .mapping_re import CouplingTopology
from .refclassifier import RefreshSchedule
from .rowgroup import RowGroup, RowGroupLayout

_SIMPLE_PATTERNS = {"all-ones": AllOnes, "all-zeros": AllZeros}


def pattern_to_dict(pattern: DataPattern) -> dict:
    if isinstance(pattern, Checkerboard):
        return {"name": "checkerboard", "phase": pattern.phase}
    if isinstance(pattern, ByteFill):
        return {"name": "byte-fill", "value": pattern.value}
    if pattern.name in _SIMPLE_PATTERNS:
        return {"name": pattern.name}
    raise ConfigError(
        f"pattern {pattern!r} is not serializable (custom patterns carry "
        "raw data; persist those separately)")


def pattern_from_dict(payload: dict) -> DataPattern:
    name = payload.get("name")
    if name in _SIMPLE_PATTERNS:
        return _SIMPLE_PATTERNS[name]()
    if name == "checkerboard":
        return Checkerboard(payload["phase"])
    if name == "byte-fill":
        return ByteFill(payload["value"])
    raise ConfigError(f"unknown serialized pattern {name!r}")


def row_group_to_dict(group: RowGroup) -> dict:
    return {
        "bank": group.bank,
        "base_physical": group.base_physical,
        "layout": group.layout.notation,
        "logical_rows": list(group.logical_rows),
        "retention_ps": group.retention_ps,
        "retention_lo_ps": group.retention_lo_ps,
        "pattern": pattern_to_dict(group.pattern),
    }


def row_group_from_dict(payload: dict) -> RowGroup:
    return RowGroup(
        bank=payload["bank"],
        base_physical=payload["base_physical"],
        layout=RowGroupLayout.parse(payload["layout"]),
        logical_rows=tuple(payload["logical_rows"]),
        retention_ps=payload["retention_ps"],
        retention_lo_ps=payload["retention_lo_ps"],
        pattern=pattern_from_dict(payload["pattern"]),
    )


def schedule_to_dict(schedule: RefreshSchedule) -> dict:
    return {
        "cycle_refs": schedule.cycle_refs,
        "slack": schedule.slack,
        "phase_windows": [
            {"bank": bank, "row": row, "start": start, "width": width}
            for (bank, row), (start, width)
            in sorted(schedule.phase_windows.items())
        ],
    }


def schedule_from_dict(payload: dict) -> RefreshSchedule:
    schedule = RefreshSchedule(cycle_refs=payload["cycle_refs"],
                               slack=payload.get("slack", 2))
    for entry in payload["phase_windows"]:
        schedule.phase_windows[(entry["bank"], entry["row"])] = (
            entry["start"], entry["width"])
    return schedule


def profile_to_dict(profile: InferredTrrProfile) -> dict:
    return {
        "mapping_scheme": profile.mapping_scheme,
        "coupling": profile.coupling.value,
        "regular_refresh_cycle": profile.regular_refresh_cycle,
        "trr_ref_period": profile.trr_ref_period,
        "detection": profile.detection,
        "neighbor_distances_refreshed":
            list(profile.neighbor_distances_refreshed),
        "neighbors_refreshed": profile.neighbors_refreshed,
        "persists_without_activity": profile.persists_without_activity,
        "aggressor_capacity": profile.aggressor_capacity,
        "per_bank": profile.per_bank,
        "ref_independent": profile.ref_independent,
    }


def profile_from_dict(payload: dict) -> InferredTrrProfile:
    return InferredTrrProfile(
        mapping_scheme=payload["mapping_scheme"],
        coupling=CouplingTopology(payload["coupling"]),
        regular_refresh_cycle=payload["regular_refresh_cycle"],
        trr_ref_period=payload["trr_ref_period"],
        detection=payload["detection"],
        neighbor_distances_refreshed=tuple(
            payload["neighbor_distances_refreshed"]),
        neighbors_refreshed=payload["neighbors_refreshed"],
        persists_without_activity=payload["persists_without_activity"],
        aggressor_capacity=payload["aggressor_capacity"],
        per_bank=payload["per_bank"],
        ref_independent=payload.get("ref_independent", False),
    )


def save_measurement(path, groups: list[RowGroup],
                     schedule: RefreshSchedule,
                     profile: InferredTrrProfile | None = None) -> None:
    """Persist one module's measurement bundle as JSON."""
    payload = {
        "groups": [row_group_to_dict(group) for group in groups],
        "schedule": schedule_to_dict(schedule),
        "profile": None if profile is None else profile_to_dict(profile),
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)


def load_measurement(path) -> tuple[list[RowGroup], RefreshSchedule,
                                    InferredTrrProfile | None]:
    """Load a measurement bundle saved by :func:`save_measurement`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    groups = [row_group_from_dict(entry) for entry in payload["groups"]]
    schedule = schedule_from_dict(payload["schedule"])
    profile = (None if payload.get("profile") is None
               else profile_from_dict(payload["profile"]))
    return groups, schedule, profile
