"""Automated TRR reverse engineering (§6, end to end).

Given nothing but a SoftMC host, :class:`TrrInference` reproduces the
paper's experiment sequence and recovers the Table 1 observation columns:

1. **Row mapping & coupling** (§5.3) — hammer probes with refresh
   disabled.
2. **Regular refresh cycle** (Obs A8) — retention-side-channel probes of
   one profiled row (3758 vs ~8K REFs per pass).
3. **TRR-to-REF ratio** (Obs A1/B1/C1) — single-REF experiments over 16
   row groups: TRR-induced refreshes appear on a fixed REF stride.
4. **Refreshed neighbors** (Obs A2/B2/C3) — one experiment per victim
   distance (the paper's RRR-RRR layout split into two-row probes, which
   need far fewer same-retention rows).
5. **State persistence / deferral** (Obs A7/B5/C1) — hammer once, then
   watch REF-only experiments: counter tables and samplers keep
   protecting stale rows, vendor C's deferred window goes silent.
6. **Detection kind** (Obs A3/B3) — hammer A0 more but A1 last: a
   counter detects A0 (max count), a sampler detects A1 (recency).
7. **Aggressor capacity** (Obs A4/B4) — sweep the number of concurrently
   hammered groups until some group stops being protected.
8. **Per-bank state** (Obs A4/B4) — hammer aggressors in two banks and
   see whether the first bank's protection survives the second's.

Every step consumes only read-back data and the host's REF counter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..dram.commands import HammerMode
from ..dram.patterns import AllOnes, DataPattern
from ..errors import ExperimentError, ProfilingError, TransientFaultError
from ..obs import NULL_OBS, Observability, ev_error, ev_refs, ev_value
from ..softmc import SoftMCHost
from .mapping_re import CouplingTopology, MappingDiscovery, \
    discover_row_mapping
from .refclassifier import RefreshCalibrator, RefreshSchedule
from .resilience import PipelineStats
from .rowgroup import RowGroup, RowGroupLayout
from .rowscout import ProfilingConfig, RowScout
from .trranalyzer import (AggressorHammer, ExperimentConfig,
                          ExperimentResult, TrrAnalyzer)


@dataclass(frozen=True)
class InferenceConfig:
    """Effort knobs for a full reverse-engineering run."""

    bank: int = 0
    second_bank: int = 1
    pattern: DataPattern = field(default_factory=AllOnes)
    #: RS write/wait/read validation rounds.  VRT rows that slip through
    #: validation corrupt calibration, so this should stay high (the
    #: paper uses 1000).
    validation_rounds: int = 40
    initial_t_ms: float = 100.0
    max_t_ms: float = 8000.0
    hammer_count: int = 5000
    mapping_probe_count: int = 10
    mapping_hammer_count: int = 2_400_000
    #: Single-REF experiment budget for the TRR-to-REF stride scan (the
    #: scan stops early once enough hits are collected).
    period_scan_experiments: int = 140
    period_scan_groups: int = 16
    neighbor_distances: tuple[int, ...] = (1, 2, 3)
    neighbor_repeats: int = 3
    persistence_probes: int = 4
    kind_repeats: int = 5
    capacity_candidates: tuple[int, ...] = (4, 16, 17)
    capacity_repeats: int = 3
    max_trr_period: int = 24
    # -- hardening knobs (all defaults preserve the exact unhardened
    # -- behaviour: with these at their defaults every run is
    # -- bit-identical to the pre-hardening pipeline).
    #: Majority-vote repetitions per stateless experiment (1 = single
    #: run, no voting).
    experiment_votes: int = 1
    #: Row Scout re-probes of an inconsistent validation round.
    profiling_round_retries: int = 0
    #: Full Fig. 6 escalations before profiling gives up.
    profiling_scan_attempts: int = 1
    #: Recalibrate a row's refresh phase after this many
    #: flipped-despite-covering-REF surprises (0 = never recalibrate).
    recalibrate_after_violations: int = 0
    #: Degrade failed stages to defaults tagged with confidence 0.0
    #: instead of propagating the exception.
    partial_on_failure: bool = False


@dataclass
class InferredTrrProfile:
    """Everything a full run recovers (the Table 1 observation columns)."""

    mapping_scheme: str
    coupling: CouplingTopology
    regular_refresh_cycle: int
    trr_ref_period: int | None
    detection: str                      #: "counter" | "sampling" | "window"
    neighbor_distances_refreshed: tuple[int, ...]
    neighbors_refreshed: int
    persists_without_activity: bool
    aggressor_capacity: int | str | None
    per_bank: bool | None
    #: Victims get refreshed with ZERO REF commands issued: an ACT-coupled
    #: mitigation (PARA-like) rather than a REF-piggybacked TRR.
    ref_independent: bool = False
    details: dict = field(default_factory=dict)
    #: Stage name -> confidence in that stage's answer (1.0 = the stage
    #: completed normally; 0.0 = it failed and the value is a default).
    confidence: dict = field(default_factory=dict)
    #: True when at least one stage degraded to a default value.
    partial: bool = False

    def summary(self) -> str:
        """One Table 1-style line."""
        if self.ref_independent:
            line = (f"detection={self.detection} (ACT-coupled, "
                    f"REF-independent) "
                    f"refresh_cycle={self.regular_refresh_cycle} "
                    f"mapping={self.mapping_scheme} "
                    f"coupling={self.coupling.value}")
        else:
            ratio = (f"1/{self.trr_ref_period}" if self.trr_ref_period
                     else "none")
            capacity = self.aggressor_capacity
            line = (f"detection={self.detection} ratio={ratio} "
                    f"neighbors={self.neighbors_refreshed} "
                    f"capacity={capacity} per_bank={self.per_bank} "
                    f"refresh_cycle={self.regular_refresh_cycle} "
                    f"mapping={self.mapping_scheme} "
                    f"coupling={self.coupling.value}")
        return f"[partial] {line}" if self.partial else line


class TrrInference:
    """Drives the full §6 reverse-engineering sequence."""

    def __init__(self, host: SoftMCHost,
                 config: InferenceConfig | None = None,
                 obs: Observability | None = None) -> None:
        self._host = host
        self.config = config or InferenceConfig()
        self._obs = obs or getattr(host, "obs", None) or NULL_OBS
        self._mapping_discovery: MappingDiscovery | None = None
        self._scout: RowScout | None = None
        self._cycle: int | None = None
        self._calibrator: RefreshCalibrator | None = None
        #: (layout notation, count, banks) -> (groups per bank, schedule).
        self._acquired: dict[tuple, tuple[list[list[RowGroup]],
                                          RefreshSchedule]] = {}
        #: Aggregated recovery-work counters for this run (the chaos
        #: harness reports them; all zero on a quiet substrate).
        self.stats = PipelineStats()

    # -- stage 0: mapping (§5.3) -------------------------------------------

    @property
    def mapping_discovery(self) -> MappingDiscovery:
        if self._mapping_discovery is None:
            with self._obs.span("inference.mapping"):
                self._mapping_discovery = discover_row_mapping(
                    self._host, self.config.bank,
                    hammer_count=self.config.mapping_hammer_count,
                    probe_count=self.config.mapping_probe_count,
                    pattern=self.config.pattern, obs=self._obs)
        return self._mapping_discovery

    @property
    def scout(self) -> RowScout:
        if self._scout is None:
            self._scout = RowScout(self._host,
                                   self.mapping_discovery.mapping,
                                   obs=self._obs)
            # Aggregate the scout's recovery counters into this run's.
            self._scout.stats = self.stats.rowscout
        return self._scout

    # -- stage 1: acquire groups + calibrate their bucket ---------------------

    def _profiling_config(self, layout: str, count: int,
                          bank: int) -> ProfilingConfig:
        return ProfilingConfig(
            bank=bank, layout=RowGroupLayout.parse(layout),
            group_count=count, pattern=self.config.pattern,
            initial_t_ms=self.config.initial_t_ms,
            max_t_ms=self.config.max_t_ms,
            validation_rounds=self.config.validation_rounds,
            round_retries=self.config.profiling_round_retries,
            scan_attempts=self.config.profiling_scan_attempts)

    def acquire(self, layout: str, count: int,
                banks: tuple[int, ...] | None = None
                ) -> tuple[list[list[RowGroup]], RefreshSchedule]:
        """Find groups (per bank) and calibrate their refresh phases."""
        banks = banks or (self.config.bank,)
        key = (layout, count, banks)
        if key in self._acquired:
            return self._acquired[key]
        # Reuse a cached superset: its groups already share a bucket and
        # a schedule, and re-scanning risks placing new groups next to
        # rows that earlier experiments left inside the TRR state.
        for (c_layout, c_count, c_banks), value in self._acquired.items():
            if c_layout == layout and c_banks == banks and c_count >= count:
                per_bank = [groups[:count] for groups in value[0]]
                self._acquired[key] = (per_bank, value[1])
                return self._acquired[key]
        profiling_configs = [self._profiling_config(layout, count, bank)
                             for bank in banks]
        with self._obs.span("inference.acquire", layout=layout,
                            count=count):
            per_bank = self.scout.find_groups_joint(profiling_configs)
            # Earlier experiments may have left aggressors in the TRR
            # state whose neighbors overlap the freshly found groups
            # (Obs A7: table entries persist); flush before calibrating.
            self._flush_trr_state(per_bank)
            calibrator = RefreshCalibrator(self._host,
                                           self.config.pattern,
                                           obs=self._obs)
            # Kept for schedule repairs (recalibrate_after_violations):
            # the most recent calibrator already protects the freshest
            # row set.
            self._calibrator = calibrator
            retention = per_bank[0][0].retention_ps
            if self._cycle is None:
                self._cycle = self._measure_cycle(calibrator, per_bank,
                                                  retention)
            rows = [(group.bank, logical)
                    for groups in per_bank for group in groups
                    for logical in group.logical_rows]
            with self._obs.span("inference.calibrate", rows=len(rows)):
                schedule = calibrator.calibrate_rows(
                    rows, retention, self._cycle,
                    drop_uncovered=self.config.partial_on_failure)
            if self._hardened:
                per_bank = self._repair_uncalibrated(per_bank, schedule,
                                                     profiling_configs,
                                                     calibrator, retention)
        self._acquired[key] = (per_bank, schedule)
        return self._acquired[key]

    def _repair_uncalibrated(self, per_bank: list[list[RowGroup]],
                             schedule: RefreshSchedule,
                             profiling_configs: list[ProfilingConfig],
                             calibrator: RefreshCalibrator,
                             retention: int) -> list[list[RowGroup]]:
        """Replace groups whose rows could not be phase-calibrated.

        On a drifting substrate some rows wander out of their retention
        bucket by calibration time; their survivals would stay forever
        inconclusive.  Each affected group is swapped for a freshly
        scanned same-bucket replacement (``RowScout.replace_group``) and
        the replacement's phases are calibrated into the shared
        schedule.  Groups that cannot be replaced are kept — demoted to
        the back of the list so experiments needing few groups get the
        well-calibrated ones.
        """

        def uncalibrated(group: RowGroup) -> int:
            return sum(1 for logical in group.logical_rows
                       if (group.bank, logical)
                       not in schedule.phase_windows)

        repaired: list[list[RowGroup]] = []
        for groups, config in zip(per_bank, profiling_configs):
            groups = list(groups)
            for index, group in enumerate(groups):
                if not uncalibrated(group):
                    continue
                keep = [g for g in groups if g is not group]
                try:
                    replacement = self.scout.replace_group(config, group,
                                                           keep=keep)
                except ProfilingError:
                    continue
                new_rows = [(replacement.bank, logical)
                            for logical in replacement.logical_rows]
                patch = calibrator.calibrate_rows(
                    new_rows, retention, self._cycle, drop_uncovered=True)
                schedule.confidence.update(patch.confidence)
                if all(key in patch.phase_windows for key in new_rows):
                    schedule.phase_windows.update(patch.phase_windows)
                    groups[index] = replacement
            groups.sort(key=uncalibrated)
            repaired.append(groups)
        return repaired

    @property
    def _hardened(self) -> bool:
        """Is any resilience knob switched on?"""
        config = self.config
        return (config.experiment_votes > 1
                or config.profiling_round_retries > 0
                or config.profiling_scan_attempts > 1
                or config.recalibrate_after_violations > 0
                or config.partial_on_failure)

    def _measure_cycle(self, calibrator: RefreshCalibrator,
                       per_bank: list[list[RowGroup]],
                       retention: int) -> int:
        """Measure the regular-refresh cycle from one profiled row.

        The unhardened path uses the first group's first row, exactly as
        before.  The hardened path pre-checks that the row still decays
        (a drifted row survives everything and would measure cycle 1)
        and falls back to the other profiled rows when it does not.
        """
        first = per_bank[0][0]
        if not self._hardened:
            return calibrator.find_cycle(first.bank,
                                         first.logical_rows[0], retention)
        candidates = [(group.bank, logical)
                      for group in per_bank[0]
                      for logical in group.logical_rows]
        last_error: Exception | None = None
        for bank, row in candidates:
            try:
                return calibrator.find_cycle(bank, row, retention,
                                             check_decay=True)
            except TransientFaultError as exc:
                last_error = exc
        raise ExperimentError(
            "no profiled row usable for cycle measurement: "
            f"{last_error}")

    def _flush_trr_state(self, per_bank: list[list[RowGroup]]) -> None:
        """Dummy-hammer + REF bursts to evict every stale TRR entry."""
        groups = [group for groups in per_bank for group in groups]
        analyzer = TrrAnalyzer(self._host, groups, schedule=None,
                               mapping=self.mapping_discovery.mapping,
                               obs=self._obs)
        analyzer.reset_trr_state()

    @property
    def regular_refresh_cycle(self) -> int:
        if self._cycle is None:
            # The hardened path profiles a few spare groups up front: the
            # cycle measurement spans minutes of simulated time, and on a
            # drifting substrate some candidate rows will wander out of
            # their bucket mid-measurement.
            self.acquire("R-R", 4 if self._hardened else 1)
        return self._cycle

    # -- helpers --------------------------------------------------------------

    def _analyzer(self, groups: list[RowGroup],
                  schedule: RefreshSchedule) -> TrrAnalyzer:
        analyzer = TrrAnalyzer(self._host, groups, schedule,
                               self.mapping_discovery.mapping,
                               stats=self.stats.analyzer, obs=self._obs)
        analyzer.verify_hits = self._hardened
        return analyzer

    def _run(self, analyzer: TrrAnalyzer,
             config: ExperimentConfig) -> ExperimentResult:
        """Run one experiment with the configured hardening.

        Stateless (``reset_state``) experiments are majority-voted when
        ``experiment_votes`` > 1; stateful probes always run once (a
        repetition would measure a different TRR state).  Afterwards any
        row that accumulated ``recalibrate_after_violations``
        flipped-despite-covering-REF surprises gets its refresh phase
        re-measured in place — the drifted-schedule repair.
        """
        votes = self.config.experiment_votes
        if votes > 1 and config.reset_state:
            result = analyzer.run_robust(config, votes)
        else:
            result = analyzer.run(config)
        self._maybe_recalibrate(analyzer)
        return result

    def _maybe_recalibrate(self, analyzer: TrrAnalyzer) -> None:
        threshold = self.config.recalibrate_after_violations
        if (threshold <= 0 or self._calibrator is None
                or analyzer.schedule is None):
            return
        for (bank, row), count in list(analyzer.schedule_suspects.items()):
            if count < threshold:
                continue
            self._calibrator.recalibrate_row(
                analyzer.schedule, bank, row, analyzer.retention_ps)
            analyzer.schedule_suspects[(bank, row)] = 0
            self.stats.recalibrations += 1
            self._obs.metrics.inc("inference.recalibrations")

    def _center_aggressor(self, group: RowGroup,
                          count: int) -> AggressorHammer:
        """Hammer spec for the middle gap of *group*'s layout."""
        gaps = group.gap_physical_rows
        center = gaps[len(gaps) // 2]
        logical = self.mapping_discovery.mapping.to_logical(center)
        return AggressorHammer(bank=group.bank, logical_row=logical,
                               count=count)

    @staticmethod
    def _hit_groups(result: ExperimentResult,
                    groups: list[RowGroup]) -> set[int]:
        """Indices of groups with at least one TRR-attributed refresh."""
        by_row = result.by_row()
        hits = set()
        for index, group in enumerate(groups):
            for logical in group.logical_rows:
                if by_row[(group.bank, logical)].trr_refreshed:
                    hits.add(index)
                    break
        return hits

    # -- stage 1.5: REF-coupled or ACT-coupled mitigation? --------------------

    def test_ref_independence(self) -> tuple[bool, dict]:
        """Are victims protected even when NO REF command is ever issued?

        Every Table 1 TRR piggybacks on REF; a stateless ACT-coupled
        mitigation (PARA) refreshes during the hammering itself.  Hammer
        the probe aggressor hard enough that, unprotected, the victims
        must flip — with zero REFs, survival can only mean ACT-coupled
        refreshes.
        """
        config = self.config
        (groups,), schedule = self.acquire("R-R", 2)
        analyzer = self._analyzer(groups, schedule)
        aggressor = self._center_aggressor(groups[0], config.hammer_count)
        protected = 0
        trials = 3
        for _ in range(trials):
            result = self._run(analyzer, ExperimentConfig(
                aggressors=(aggressor,), refs_per_round=0,
                rounds=4, reset_state=True))
            if 0 in self._hit_groups(result, groups):
                protected += 1
        return protected == trials, {"protected": protected,
                                     "trials": trials}

    # -- stage 2: TRR-to-REF stride (Obs A1 / B1 / C1) ------------------------

    def find_trr_period(self) -> tuple[int | None, dict]:
        """Single-REF experiments over many groups: the REF indices with
        TRR-attributed survivals recur on the TRR-to-REF stride."""
        config = self.config
        (groups,), schedule = self.acquire("R-R", config.period_scan_groups)
        analyzer = self._analyzer(groups, schedule)
        aggressors = tuple(self._center_aggressor(g, config.hammer_count)
                           for g in groups)
        hits: list[int] = []
        for i in range(config.period_scan_experiments):
            result = analyzer.run(ExperimentConfig(
                aggressors=aggressors, hammer_mode=HammerMode.CASCADED,
                refs_per_round=1, reset_state=(i == 0), align_refs=False))
            if self._hit_groups(result, groups):
                hits.append(result.ref_indices[0])
            if len(hits) >= 5:
                break
        if len(hits) < 2:
            return None, {"hits": hits}
        # A hit can be masked (e.g. the detection landed on a row whose
        # neighbors are not profiled — an init write that slipped into a
        # detection window or sampler), leaving a gap of 2x the stride;
        # the gcd over all gaps recovers the stride as long as one
        # adjacent pair of hits survived.
        diffs = [b - a for a, b in zip(hits, hits[1:])]
        period = 0
        for diff in diffs:
            period = math.gcd(period, diff)
        if not 0 < period <= config.max_trr_period:
            return None, {"hits": hits, "diffs": diffs}
        return period, {"hits": hits, "diffs": diffs}

    # -- stage 3: refreshed neighbors (Obs A2 / B2 / C3) ----------------------

    def find_refreshed_neighbors(self, trr_period: int) -> tuple[
            tuple[int, ...], dict]:
        """Which victim distances does a TRR-induced refresh cover?

        One two-row experiment per distance: profiled rows at exactly
        +-d from a hammered aggressor.  (Equivalent to the paper's
        RRR-RRR layout, split so each probe only needs two rows with a
        common retention time.)
        """
        config = self.config
        refreshed: list[int] = []
        sides: dict[int, set[str]] = {}
        for distance in config.neighbor_distances:
            layout = "R" + "-" * (2 * distance - 1) + "R"
            (groups,), schedule = self.acquire(layout, 1)
            group = groups[0]
            analyzer = self._analyzer(groups, schedule)
            aggressor = self._center_aggressor(group, config.hammer_count)
            hit_sides: set[str] = set()
            for _ in range(config.neighbor_repeats):
                result = self._run(analyzer, ExperimentConfig(
                    aggressors=(aggressor,),
                    refs_per_round=2 * trr_period, reset_state=True))
                by_row = result.by_row()
                left, right = group.logical_rows
                if by_row[(group.bank, left)].trr_refreshed:
                    hit_sides.add("left")
                if by_row[(group.bank, right)].trr_refreshed:
                    hit_sides.add("right")
            if hit_sides:
                refreshed.append(distance)
                sides[distance] = hit_sides
        return tuple(refreshed), {"sides": sides}

    # -- stage 4: persistence / deferral (Obs A7 / B5 / C1) -------------------

    def test_state_persistence(self, trr_period: int) -> tuple[bool, dict]:
        """Does TRR keep protecting a row it detected once, without any
        further activations?

        Counter tables (TREFb walks stale entries, Obs A7) and samplers
        (Obs B5) answer yes; vendor C's deferred window clears its
        candidate after one TRR-induced refresh and goes silent.
        """
        config = self.config
        (groups,), schedule = self.acquire("R-R", 2)
        analyzer = self._analyzer(groups, schedule)
        aggressor = self._center_aggressor(groups[0], config.hammer_count)
        # Prime: one hammered experiment that must show a TRR refresh.
        # On a noisy substrate one priming attempt can be spoiled by a
        # dropped init write or a transient read; retry before giving up.
        refs = 2 * 16 * trr_period + 2
        prime_attempts = 3 if self._hardened else 1
        for _ in range(prime_attempts):
            primed = analyzer.run(ExperimentConfig(
                aggressors=(aggressor,), refs_per_round=refs,
                reset_state=True))
            if 0 in self._hit_groups(primed, groups):
                break
        else:
            raise ExperimentError(
                "persistence probe could not prime a TRR-induced refresh")
        # Watch: REF-only experiments, no hammering, no reset.
        watch_hits = 0
        for _ in range(config.persistence_probes):
            result = analyzer.run(ExperimentConfig(
                aggressors=(), refs_per_round=refs, reset_state=False))
            if 0 in self._hit_groups(result, groups):
                watch_hits += 1
        return watch_hits > 0, {"watch_hits": watch_hits,
                                "probes": config.persistence_probes}

    # -- stage 5: detection kind (Obs A3 / B3) --------------------------------

    def classify_detection(self, trr_period: int,
                           persists: bool) -> tuple[str, dict]:
        """Counter vs sampling vs window.

        Hammer A0 heavily *first*, A1 lightly *last* (§6.2.2's H0=5K /
        H1=3K experiment): a sampler protects only A1's victims
        (recency), while both a counter (max count) and a window (early
        bias) protect A0's.  Recency evidence therefore identifies a
        sampler on its own; the remaining counter-vs-window split falls
        to the persistence result.

        Recency takes precedence over a negative persistence result
        because the persistence watch probes can be poisoned on sampler
        chips: a probe's own row-initialization ACTs are themselves
        sampled (with probability ~acts/period per probe) and displace
        the primed sample for every later probe.
        """
        config = self.config
        (groups,), schedule = self.acquire("R-R", 2)
        analyzer = self._analyzer(groups, schedule)
        first = self._center_aggressor(groups[0], 5 * config.hammer_count)
        last = self._center_aggressor(groups[1], 3 * config.hammer_count)
        hits = {0: 0, 1: 0}
        for _ in range(config.kind_repeats):
            result = self._run(analyzer, ExperimentConfig(
                aggressors=(first, last), hammer_mode=HammerMode.CASCADED,
                refs_per_round=2 * trr_period, reset_state=True))
            for index in self._hit_groups(result, groups):
                hits[index] += 1
        detail = {"first_heavy_hits": hits[0], "last_light_hits": hits[1]}
        if hits[0] == 0 and hits[1] > 0:
            return "sampling", detail
        if hits[0] > 0:
            return ("counter" if persists else "window"), detail
        raise ExperimentError(
            f"detection classification saw no TRR refreshes: {detail}")

    # -- stage 6: aggressor capacity (Obs A4 / B4) ----------------------------

    def estimate_capacity(self, trr_period: int,
                          detection: str) -> tuple[int | str | None, dict]:
        """How many concurrent aggressors does the mechanism track?"""
        config = self.config
        if detection == "window":
            # The paper leaves vendor C's capacity "Unknown": the window
            # mechanism has no stable per-aggressor state to count.
            return None, {"reason": "deferred-window mechanism"}
        if detection == "sampling":
            # Obs B4: confirmed by the persistence+kind experiments — a
            # newly sampled row always evicts the previous one.
            return 1, {"reason": "single sample slot (recency eviction)"}
        detail = {}
        capacity: int | str | None = None
        for n in config.capacity_candidates:
            (groups,), schedule = self.acquire("R-R", n)
            analyzer = self._analyzer(groups, schedule)
            aggressors = tuple(
                self._center_aggressor(g, config.hammer_count)
                for g in groups)
            refs = 2 * trr_period * max(n, 17)
            protected: set[int] = set()
            for _ in range(config.capacity_repeats):
                result = self._run(analyzer, ExperimentConfig(
                    aggressors=aggressors,
                    hammer_mode=HammerMode.CASCADED,
                    refs_per_round=refs, reset_state=True))
                protected |= self._hit_groups(result, groups)
            detail[n] = sorted(protected)
            if len(protected) == n:
                capacity = n
            else:
                return capacity, detail
        return f">={capacity}", detail

    # -- extensions: deeper probes of §6 details ------------------------------

    def test_eviction_policy(self) -> tuple[str, dict]:
        """Obs A5, strengthened: min-counter vs FIFO eviction.

        The paper's experiment (one light aggressor hammered *first*,
        then 16 heavier ones) cannot tell evict-min from FIFO apart —
        the first-inserted row is also the minimum.  The discriminating
        probe inverts it: insert one HEAVY aggressor first, then 16
        light ones.  Under evict-min the heavy entry survives (the
        lights churn among themselves) and its victims get refreshed;
        under FIFO the 16 younger inserts push the heavy entry out.
        """
        config = self.config
        (groups,), schedule = self.acquire("R-R", 17)
        analyzer = self._analyzer(groups, schedule)
        heavy_first = (
            self._center_aggressor(groups[0], 8 * config.hammer_count),
            *(self._center_aggressor(g, 100) for g in groups[1:]))
        light_first = (
            self._center_aggressor(groups[0], 50),
            *(self._center_aggressor(g, 100) for g in groups[1:]))
        refs = 2 * 16 * 9 + 2  # enough TREFa/TREFb for any table order

        def heavy_group_hit(aggressors) -> bool:
            for _ in range(config.kind_repeats):
                result = self._run(analyzer, ExperimentConfig(
                    aggressors=aggressors,
                    hammer_mode=HammerMode.CASCADED,
                    refs_per_round=refs, reset_state=True))
                if 0 in self._hit_groups(result, groups):
                    return True
            return False

        survives_as_max = heavy_group_hit(heavy_first)
        # Sanity replication of the paper's probe: the light-and-first
        # row must never be protected under either policy.
        light_survives = heavy_group_hit(light_first)
        detail = {"heavy_first_protected": survives_as_max,
                  "light_first_protected": light_survives}
        if light_survives:
            return "inconclusive", detail
        return ("min-counter" if survives_as_max else "fifo"), detail

    def test_counter_reset(self, trr_period: int) -> tuple[bool, dict]:
        """Obs A6: does detection reset the detected counter?

        Insert one aggressor with a large count, then run REF-only
        experiments.  With reset-on-detect, the first max-detection
        (TREFa) zeroes the counter and only the periodic table walk
        (TREFb) ever returns to it — a hit every ~16 TRR-capable REFs.
        Without a reset its counter would stay the table maximum and
        *every other* capable REF (each TREFa) would hit.
        """
        config = self.config
        (groups,), schedule = self.acquire("R-R", 2)
        analyzer = self._analyzer(groups, schedule)
        aggressor = self._center_aggressor(groups[0],
                                           3 * config.hammer_count)
        primed = analyzer.run(ExperimentConfig(
            aggressors=(aggressor,), refs_per_round=2 * trr_period,
            reset_state=True))
        if 0 not in self._hit_groups(primed, groups):
            raise ExperimentError("counter-reset probe failed to prime")
        hits = 0
        probes = 12
        for _ in range(probes):
            result = analyzer.run(ExperimentConfig(
                aggressors=(), refs_per_round=trr_period,
                reset_state=False))
            if 0 in self._hit_groups(result, groups):
                hits += 1
        detail = {"ref_only_hits": hits, "probes": probes}
        # Reset: ~1 hit per 16 capable REFs (TREFb walk only).
        # No reset: ~every second capable REF (every TREFa) hits.
        return hits <= probes // 3, detail

    def measure_sample_period(self, trr_period: int,
                              max_period: int = 4096,
                              trials: int = 16) -> tuple[int, dict]:
        """Extension of Obs B3: estimate the sampler's ACT period.

        The paper bounds it ("~2K consecutive activations consistently
        cause detection") without measuring it.  Against an every-Nth-ACT
        sampler, hammering the probe aggressor k times gets its victims
        TRR-refreshed iff a sample point falls within those k ACTs:
        always when k >= period, with probability ~k/period below it.
        Each probe prepends a different-length far-dummy spacer so the
        phases the hammer lands on vary; the smallest k that hits on all
        *trials* probes estimates the period (upward-biased by at most
        ~period/trials, noted in the detail dict).
        """
        (groups,), schedule = self.acquire("R-R", 2)
        analyzer = self._analyzer(groups, schedule)
        probe = self._center_aggressor(groups[0], 0)

        def always_hits(k: int) -> bool:
            for trial in range(trials):
                # Low-discrepancy phase jitter spanning the whole
                # candidate range (the spacer shifts the sampler's phase
                # by its own activation count).
                spacer = 1 + (trial * 2654435761) % max_period
                result = analyzer.run(ExperimentConfig(
                    aggressors=(AggressorHammer(
                        bank=probe.bank, logical_row=probe.logical_row,
                        count=k),),
                    hammer_mode=HammerMode.CASCADED,
                    refs_per_round=trr_period,
                    reset_state=True,
                    dummy_row_count=1,
                    dummy_hammers=spacer,
                    dummies_first=True))
                if 0 not in self._hit_groups(result, groups):
                    return False
            return True

        if not always_hits(max_period):
            raise ExperimentError(
                f"no consistent detection within {max_period} ACTs — "
                "sampler with a longer period, or not a sampler?")
        low, high = 1, max_period
        while low < high:
            mid = (low + high) // 2
            if always_hits(mid):
                high = mid
            else:
                low = mid + 1
        return low, {"trials_per_probe": trials,
                     "relative_bias_bound": 1.0 / trials}

    def measure_detection_horizon(self, trr_period: int,
                                  max_horizon: int = 4096,
                                  trials: int = 6) -> tuple[int, dict]:
        """Extension of Obs C2: how long a dummy burst silences later rows.

        Burst b dummy activations right after a TRR-induced refresh,
        then hammer the probe aggressor heavily: the smallest burst
        after which the aggressor is never detected (over *trials*
        probabilistic trials) is the attacker-relevant horizon — the
        §7.1 vendor-C pattern must lead every window with at least this
        many dummy activations.  (A lower bound on the detection-window
        size; the early-position bias makes late-window detection rare
        well before the window's hard edge.)
        """
        (groups,), schedule = self.acquire("R-R", 2)
        analyzer = self._analyzer(groups, schedule)
        aggressor = self._center_aggressor(groups[0], 3000)

        def ever_hits(burst: int) -> bool:
            for _ in range(trials):
                result = analyzer.run(ExperimentConfig(
                    aggressors=(aggressor,),
                    hammer_mode=HammerMode.CASCADED,
                    refs_per_round=2 * trr_period,
                    reset_state=True,
                    dummy_row_count=4,
                    dummy_hammers=max(burst // 4, 1),
                    dummies_first=True))
                if 0 in self._hit_groups(result, groups):
                    return True
            return False

        if ever_hits(max_horizon):
            raise ExperimentError(
                f"aggressor still detected after a {max_horizon}-ACT "
                "dummy burst — no bounded detection window?")
        low, high = 1, max_horizon
        while low < high:
            mid = (low + high) // 2
            if ever_hits(mid):
                low = mid + 1
            else:
                high = mid
        return low, {"trials_per_probe": trials, "kind": "lower-bound"}

    # -- stage 7: per-bank state (Obs A4 / B4) --------------------------------

    def test_per_bank(self, trr_period: int) -> tuple[bool, dict]:
        """Hammer bank A then bank B: shared state forgets bank A."""
        config = self.config
        banks = (config.bank, config.second_bank)
        per_bank_groups, schedule = self.acquire("R-R", 1, banks)
        groups = [per_bank_groups[0][0], per_bank_groups[1][0]]
        analyzer = self._analyzer(groups, schedule)
        first = self._center_aggressor(groups[0], config.hammer_count)
        second = self._center_aggressor(groups[1], config.hammer_count)
        first_hits = 0
        second_hits = 0
        for _ in range(config.kind_repeats):
            result = self._run(analyzer, ExperimentConfig(
                aggressors=(first, second),
                hammer_mode=HammerMode.CASCADED,
                refs_per_round=4 * trr_period, reset_state=True))
            hits = self._hit_groups(result, groups)
            first_hits += 1 if 0 in hits else 0
            second_hits += 1 if 1 in hits else 0
        detail = {"first_bank_hits": first_hits,
                  "second_bank_hits": second_hits}
        if second_hits == 0:
            raise ExperimentError(
                f"per-bank probe saw no TRR activity at all: {detail}")
        return first_hits > 0, detail

    # -- the full run ---------------------------------------------------------

    @staticmethod
    def _stage_evidence(detail) -> list[dict]:
        """Evidence chain for one completed stage's detail payload.

        REF-index lists get the trace-resolvable ``ref-indices`` shape;
        everything else rides along as a labelled observation so no
        stage ever concludes with an empty chain.
        """
        chain: list[dict] = []
        if isinstance(detail, dict):
            hits = detail.get("hits")
            if isinstance(hits, (list, tuple)):
                chain.append(ev_refs(hits, label="trr-hit-refs"))
            rest = {key: value for key, value in detail.items()
                    if key != "hits"}
            if rest or not chain:
                chain.append(ev_value("observations", rest))
        else:
            chain.append(ev_value("observations", detail))
        return chain

    def _stage(self, name: str, func, default, confidence: dict):
        """Run one inference stage, degrading gracefully when configured.

        With ``partial_on_failure`` a stage that raises an experiment or
        profiling error contributes its *default* value tagged with
        confidence 0.0 instead of aborting the run; the caller marks the
        assembled profile ``partial``.  Without it the exception
        propagates unchanged.

        Either way the stage's verdict lands in the evidence ledger: an
        ``accepted`` node linking the observations that justified the
        value, or a ``degraded`` node citing the error that forced the
        default.
        """
        try:
            with self._obs.span("inference." + name):
                value, detail = func()
        except (ExperimentError, ProfilingError,
                TransientFaultError) as exc:
            if not self.config.partial_on_failure:
                raise
            self.stats.degraded_stages += 1
            self._obs.metrics.inc("inference.degraded_stages")
            self._obs.event("stage-degraded", ps=self._host.now_ps,
                            stage=name, error=type(exc).__name__)
            confidence[name] = 0.0
            detail = {"degraded": type(exc).__name__, "error": str(exc)}
            self._obs.evidence.decide(
                name, default, outcome="degraded",
                stage="inference." + name, confidence=0.0,
                evidence=[ev_error(exc)], detail=detail,
                host=self._host, profiler=self._obs.profiler)
            return default, detail
        confidence[name] = 1.0
        self._obs.evidence.decide(
            name, value, stage="inference." + name, confidence=1.0,
            evidence=self._stage_evidence(detail),
            host=self._host, profiler=self._obs.profiler)
        return value, detail

    def run(self) -> InferredTrrProfile:
        """Execute every stage and assemble the Table 1 observations.

        Mapping discovery and the refresh-cycle measurement are
        foundational — every later stage needs them — so they always
        propagate failures.  The observation stages degrade to tagged
        defaults when ``partial_on_failure`` is set.
        """
        with self._obs.span("inference.run", bank=self.config.bank):
            return self._run_stages()

    def _run_stages(self) -> InferredTrrProfile:
        discovery = self.mapping_discovery
        cycle = self.regular_refresh_cycle
        confidence: dict = {}
        ref_independent, ref_detail = self._stage(
            "ref_independence", self.test_ref_independence, False,
            confidence)
        if ref_independent:
            return InferredTrrProfile(
                mapping_scheme=discovery.scheme,
                coupling=discovery.coupling,
                regular_refresh_cycle=cycle,
                trr_ref_period=None, detection="act-coupled",
                neighbor_distances_refreshed=(),
                neighbors_refreshed=0,
                persists_without_activity=False,
                aggressor_capacity=None, per_bank=None,
                ref_independent=True,
                details={"ref_independence": ref_detail},
                confidence=confidence)
        period, period_detail = self._stage(
            "period", self.find_trr_period, None, confidence)
        if period is None:
            return InferredTrrProfile(
                mapping_scheme=discovery.scheme,
                coupling=discovery.coupling,
                regular_refresh_cycle=cycle,
                trr_ref_period=None, detection="none",
                neighbor_distances_refreshed=(),
                neighbors_refreshed=0,
                persists_without_activity=False,
                aggressor_capacity=None, per_bank=None,
                details={"period": period_detail},
                confidence=confidence,
                partial=self.stats.degraded_stages > 0)
        distances, neighbor_detail = self._stage(
            "neighbors", lambda: self.find_refreshed_neighbors(period),
            (), confidence)
        persists, persist_detail = self._stage(
            "persistence", lambda: self.test_state_persistence(period),
            False, confidence)
        detection, kind_detail = self._stage(
            "detection", lambda: self.classify_detection(period, persists),
            "unknown", confidence)
        if detection == "sampling" and not persists:
            # The watch probes' own init ACTs were sampled and displaced
            # the primed sample (see classify_detection); recency
            # evidence shows the sampler persists (Obs B5).
            persists = True
            persist_detail["note"] = ("corrected: watch probes poisoned "
                                      "by their own sampled init ACTs")
            self._obs.evidence.decide(
                "persistence", True, stage="inference.detection",
                confidence=1.0,
                evidence=[ev_value("recency", kind_detail)],
                detail={"note": persist_detail["note"]},
                host=self._host, profiler=self._obs.profiler)
        capacity, capacity_detail = self._stage(
            "capacity", lambda: self.estimate_capacity(period, detection),
            None, confidence)
        per_bank, bank_detail = self._stage(
            "per_bank", lambda: self.test_per_bank(period), None,
            confidence)
        if discovery.coupling is CouplingTopology.PAIRED:
            neighbors = 1 if distances else 0
        else:
            neighbors = 2 * len(distances)
        return InferredTrrProfile(
            mapping_scheme=discovery.scheme,
            coupling=discovery.coupling,
            regular_refresh_cycle=cycle,
            trr_ref_period=period,
            detection=detection,
            neighbor_distances_refreshed=distances,
            neighbors_refreshed=neighbors,
            persists_without_activity=persists,
            aggressor_capacity=capacity,
            per_bank=per_bank,
            details={"period": period_detail,
                     "neighbors": neighbor_detail,
                     "persistence": persist_detail,
                     "kind": kind_detail,
                     "capacity": capacity_detail,
                     "per_bank": bank_detail},
            confidence=confidence,
            partial=self.stats.degraded_stages > 0)
