"""Row-group layouts: the paper's ``R-R`` notation (§4.1).

A row group is a set of retention-profiled rows at fixed relative
*physical* positions.  The paper writes layouts as strings where ``R`` is
a profiled row and ``-`` is a one-row gap (typically where an aggressor
will be placed): ``R-R`` is two profiled rows two apart with a gap
between them; ``RRR-RRR`` surrounds one gap with three profiled rows on
each side.

Layout offsets are physical.  Row Scout works in logical addresses at the
host interface and uses the (reverse-engineered) mapping to place
layouts in physical space.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dram.mapping import RowMapping
from ..dram.patterns import DataPattern
from ..errors import ConfigError


@dataclass(frozen=True)
class RowGroupLayout:
    """Relative physical offsets of profiled rows and gaps."""

    notation: str
    profiled_offsets: tuple[int, ...]
    gap_offsets: tuple[int, ...]

    @classmethod
    def parse(cls, notation: str) -> "RowGroupLayout":
        """Parse an ``R``/``-`` layout string.

        >>> RowGroupLayout.parse("R-R").profiled_offsets
        (0, 2)
        >>> RowGroupLayout.parse("R-R").gap_offsets
        (1,)
        """
        if not notation:
            raise ConfigError("layout notation must not be empty")
        profiled = []
        gaps = []
        for offset, char in enumerate(notation):
            if char == "R":
                profiled.append(offset)
            elif char == "-":
                gaps.append(offset)
            else:
                raise ConfigError(
                    f"layout may only contain 'R' and '-', got {char!r}")
        if not profiled:
            raise ConfigError("layout needs at least one profiled row")
        if notation[0] != "R" or notation[-1] != "R":
            raise ConfigError("layout must start and end with 'R'")
        return cls(notation=notation, profiled_offsets=tuple(profiled),
                   gap_offsets=tuple(gaps))

    @property
    def span(self) -> int:
        """Total physical rows the layout occupies."""
        return len(self.notation)


@dataclass(frozen=True)
class RowGroup:
    """A placed row group: profiled rows with a common retention time.

    Offsets anchor at ``base_physical``; each profiled row is recorded as
    ``(logical, physical)`` so experiments can hammer by logical address
    while reasoning about physical adjacency.
    """

    bank: int
    base_physical: int
    layout: RowGroupLayout
    #: Parallel to layout.profiled_offsets.
    logical_rows: tuple[int, ...]
    #: The common (bucketed) retention time: every profiled row retains
    #: its data strictly longer than ``retention_lo_ps`` and fails by
    #: ``retention_ps``.
    retention_ps: int
    retention_lo_ps: int
    pattern: DataPattern

    def __post_init__(self) -> None:
        if len(self.logical_rows) != len(self.layout.profiled_offsets):
            raise ConfigError("logical rows do not match layout")
        if not 0 < self.retention_lo_ps < self.retention_ps:
            raise ConfigError("invalid retention bucket")

    @property
    def physical_rows(self) -> tuple[int, ...]:
        return tuple(self.base_physical + off
                     for off in self.layout.profiled_offsets)

    @property
    def gap_physical_rows(self) -> tuple[int, ...]:
        """Physical rows at the layout's gaps (aggressor placements)."""
        return tuple(self.base_physical + off
                     for off in self.layout.gap_offsets)

    def gap_logical_rows(self, mapping: RowMapping) -> tuple[int, ...]:
        """Logical addresses of the gap rows, via the discovered mapping."""
        return tuple(mapping.to_logical(p) for p in self.gap_physical_rows)

    def row_pairs(self) -> list[tuple[int, int]]:
        """``(logical, physical)`` for each profiled row."""
        return list(zip(self.logical_rows, self.physical_rows))


#: Layouts used throughout the paper's experiments.
R_GAP_R = RowGroupLayout.parse("R-R")
SINGLE_R = RowGroupLayout.parse("R")
R_GAP3_R = RowGroupLayout.parse("R---R")
