"""Regular-refresh schedule calibration (the TRR/regular discriminator).

TRR Analyzer attributes a surviving victim row to a TRR-induced refresh
*only* when no regular refresh can explain it (§3.2).  Regular refreshes
are periodic in the REF-command index: each row is covered by exactly one
REF per refresh cycle (``cycle_refs`` REFs long — nominally ~8K, but
3758 on vendor A chips, Obs A8).  Neither the cycle length nor a row's
phase is documented, so both are measured through the same retention
side channel:

* A **probe** writes the row, waits half its retention time, issues a
  burst of REFs, waits the other half, and reads back.  The row survives
  iff one of the burst's REFs covered it (any earlier/later refresh
  leaves a gap longer than the retention time).
* :meth:`RefreshCalibrator.find_cycle` locates one covering REF index
  exactly (coarse scan then single-REF probes), then the next one: the
  distance is the cycle length.
* :meth:`RefreshCalibrator.calibrate_rows` sweeps one cycle and records
  each profiled row's phase to within a small window.

All measured phases are expressed in the host's own REF counter
(:attr:`SoftMCHost.ref_count`), which is the only REF clock the
experimenter has.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.patterns import DataPattern
from ..errors import ExperimentError, TransientFaultError
from ..obs import NULL_OBS, Observability, ev_refs, ev_value, ev_window
from ..softmc import SoftMCHost


@dataclass
class RefreshSchedule:
    """Measured regular-refresh timing of a set of rows."""

    cycle_refs: int
    #: (bank, logical_row) -> (phase_start, window_width); the covering
    #: REF index satisfies ref_index = phase_start + d (mod cycle) with
    #: 0 <= d < window_width.
    phase_windows: dict[tuple[int, int], tuple[int, int]] = field(
        default_factory=dict)
    #: Extra slack applied on both sides when classifying (guards against
    #: measurement granularity).
    slack: int = 2
    #: (bank, logical_row) -> fraction of confirmation probes agreeing
    #: with the measured window (1.0 when no confirmation was requested).
    confidence: dict[tuple[int, int], float] = field(default_factory=dict)

    def confidence_for(self, bank: int, row: int) -> float:
        """Calibration confidence for one row (1.0 when unmeasured)."""
        return self.confidence.get((bank, row), 1.0)

    def may_cover(self, bank: int, row: int, ref_index: int) -> bool:
        """Could a regular refresh have covered *row* at *ref_index*?

        Unknown rows conservatively return True (cannot be ruled out).
        """
        window = self.phase_windows.get((bank, row))
        if window is None:
            return True
        start, width = window
        offset = (ref_index - (start - self.slack)) % self.cycle_refs
        return offset < width + 2 * self.slack

    def covering_window(self, bank: int, row: int) -> tuple[int, int] | None:
        return self.phase_windows.get((bank, row))


class RefreshCalibrator:
    """Measures the regular-refresh cycle and per-row phases.

    Every probe ends with a heavy burst on a far-away *diversion row*
    before its REFs: the TRR mechanism's detector (sampler, window,
    counter table) then points at the diversion row, so any TRR-induced
    refreshes during the probe land on the diversion row's neighbors and
    never on the calibrated rows — survival can only mean *regular*
    refresh.  (This is the paper's own dummy-row technique, Requirement
    2, applied to the methodology's calibration step itself.)
    """

    #: Minimum distance between the diversion row and calibrated rows.
    DIVERSION_CLEARANCE = 100
    #: Burst size: large enough to win any sampler/window w.h.p.
    DIVERSION_HAMMERS = 2048

    def __init__(self, host: SoftMCHost, pattern: DataPattern,
                 obs: Observability | None = None) -> None:
        self._host = host
        self._pattern = pattern
        self._obs = obs or getattr(host, "obs", None) or NULL_OBS
        self._diversion: dict[int, int] = {}
        self._protected: dict[int, set[int]] = {}

    def protect(self, bank: int, rows) -> None:
        """Register rows the diversion row must keep clear of."""
        self._protected.setdefault(bank, set()).update(rows)

    def _diversion_row(self, bank: int, near: int) -> int:
        protected = self._protected.setdefault(bank, set())
        protected.add(near)
        existing = self._diversion.get(bank)
        if (existing is not None
                and all(abs(existing - row) >= self.DIVERSION_CLEARANCE
                        for row in protected)):
            return existing
        row = self._host.pick_rows_away_from(
            bank, protected, 1, self.DIVERSION_CLEARANCE)[0]
        self._diversion[bank] = row
        return row

    def _divert(self, bank: int, near: int) -> None:
        self._host.hammer_single(bank, self._diversion_row(bank, near),
                                 self.DIVERSION_HAMMERS)

    # -- probing primitive ---------------------------------------------------

    def probe(self, bank: int, row: int, retention_ps: int,
              burst: int) -> bool:
        """Return True iff a REF within the next *burst* REFs covers *row*.

        The row must have a known retention time in ``(retention/2,
        retention]`` — exactly what Row Scout guarantees for its buckets.
        """
        host = self._host
        self._obs.metrics.inc("calibrator.probes")
        host.write_row(bank, row, self._pattern)
        self._divert(bank, row)
        host.wait(retention_ps // 2)
        if burst:
            host.refresh(burst)
        host.wait(retention_ps - retention_ps // 2)
        return not host.read_row_mismatches(bank, row)

    def _scan_for_coverage(self, bank: int, row: int, retention_ps: int,
                           step: int, max_refs: int) -> int:
        """Scan forward in *step*-REF probes; return the host REF index of
        the first chunk that covered the row (chunk start)."""
        host = self._host
        scanned = 0
        while scanned < max_refs:
            chunk_start = host.ref_count
            if self.probe(bank, row, retention_ps, step):
                return chunk_start
            scanned += step
        raise ExperimentError(
            f"row {row} (bank {bank}) never regularly refreshed within "
            f"{max_refs} REFs — wrong retention time or broken refresh?")

    def _find_exact_covering(self, bank: int, row: int, retention_ps: int,
                             coarse_start: int, coarse_step: int) -> int:
        """Pinpoint the covering REF inside a coarse chunk, one REF at a
        time, during the *next* pass over that chunk's phase."""
        host = self._host
        # The coarse probe consumed the chunk; the covering REF recurs one
        # cycle later, but the cycle is unknown here.  Instead, walk
        # forward probing single REFs: the next covering REF is the first
        # single-REF probe that survives.  Bound the walk generously.
        limit = host.ref_count + 4 * max(coarse_step, 1) + 2 ** 16
        while host.ref_count < limit:
            index = host.ref_count
            if self.probe(bank, row, retention_ps, 1):
                return index
        raise ExperimentError("single-REF scan failed to find coverage")

    # -- public calibration API --------------------------------------------

    def find_cycle(self, bank: int, row: int, retention_ps: int,
                   coarse_step: int = 64, max_cycle: int = 20_000,
                   check_decay: bool = False) -> int:
        """Measure the regular-refresh cycle length in REF commands.

        Finds two consecutive exact covering REF indices of one profiled
        row; their distance is the cycle.

        ``check_decay`` first verifies the row still decays with *no*
        REFs issued.  A row whose retention drifted past its bucket (VRT
        excursion, temperature drift, stale profile) survives every
        probe and would measure an absurd cycle of 1; the pre-check
        turns that into a :class:`~repro.errors.TransientFaultError` so
        a hardened caller can try another profiled row.
        """
        evidence = self._obs.evidence
        with self._obs.span("calibrator.find_cycle", bank=bank, row=row):
            if check_decay and self.probe(bank, row, retention_ps, 0):
                evidence.decide(
                    "refresh_cycle", None, outcome="rejected",
                    stage="calibrator.find_cycle",
                    evidence=[ev_value("decay-check",
                                       {"bank": bank, "row": row,
                                        "survived_without_refs": True})],
                    host=self._host, profiler=self._obs.profiler)
                raise TransientFaultError(
                    f"row {row} (bank {bank}) no longer decays within its "
                    "retention bucket — unusable for cycle measurement")
            coarse = self._scan_for_coverage(bank, row, retention_ps,
                                             coarse_step, 2 * max_cycle)
            del coarse  # only needed to get near the phase
            first = self._find_exact_covering(bank, row, retention_ps,
                                              coarse_start=0,
                                              coarse_step=coarse_step)
            second = self._find_exact_covering(bank, row, retention_ps,
                                               coarse_start=0,
                                               coarse_step=coarse_step)
            cycle = second - first
            covering = [ev_refs([first, second], label="covering-refs")]
            if cycle <= 0 or cycle > max_cycle:
                evidence.decide(
                    "refresh_cycle", cycle, outcome="rejected",
                    stage="calibrator.find_cycle", evidence=covering,
                    detail={"bank": bank, "row": row,
                            "max_cycle": max_cycle},
                    host=self._host, profiler=self._obs.profiler)
                raise ExperimentError(f"implausible refresh cycle {cycle}")
            if check_decay and cycle < coarse_step:
                # Two back-to-back "coverings" this close mean the row
                # went immortal mid-measurement, not that the cycle is
                # tiny.
                evidence.decide(
                    "refresh_cycle", cycle, outcome="rejected",
                    stage="calibrator.find_cycle", evidence=covering,
                    detail={"bank": bank, "row": row,
                            "coarse_step": coarse_step,
                            "drifted": True},
                    host=self._host, profiler=self._obs.profiler)
                raise TransientFaultError(
                    f"row {row} (bank {bank}) measured cycle {cycle} < "
                    f"{coarse_step}: retention drifted mid-measurement")
            evidence.decide(
                "refresh_cycle", cycle, stage="calibrator.find_cycle",
                confidence=1.0, evidence=covering,
                detail={"bank": bank, "row": row},
                host=self._host, profiler=self._obs.profiler)
            return cycle

    def calibrate_rows(self, rows: list[tuple[int, int]], retention_ps: int,
                       cycle: int, window: int = 8,
                       confirm_probes: int = 0,
                       drop_uncovered: bool = False) -> RefreshSchedule:
        """Measure each row's phase to within *window* REFs.

        All rows must share the retention bucket *retention_ps* (Row
        Scout groups guarantee this).  One coarse pass assigns every row
        a cycle/32 chunk; a second pass narrows each to *window*.

        ``confirm_probes`` re-probes each measured window that many extra
        times (one refresh cycle apart) and records the agreement
        fraction in :attr:`RefreshSchedule.confidence` — a noisy rig
        shows up as a sub-1.0 confidence rather than a silently wrong
        window.

        ``drop_uncovered`` degrades gracefully when a row is never seen
        covered (its retention drifted out of the bucket on a noisy
        substrate): the row is left out of the schedule with confidence
        0.0 — :meth:`RefreshSchedule.may_cover` then conservatively
        reports it as always coverable, so its survivals are counted
        inconclusive rather than misattributed to TRR.  Without the flag
        an uncovered row raises :class:`~repro.errors.ExperimentError`.
        """
        host = self._host
        for bank, row in rows:
            self.protect(bank, [row])
        if drop_uncovered:
            # Immortal rows (retention drifted past the bucket) survive
            # every probe and would be assigned an arbitrary first-chunk
            # window; weed them out with one REF-free decay check so they
            # are *dropped* (conservative) instead of miscalibrated.
            immortal = [(bank, row) for bank, row in rows
                        if self.probe(bank, row, retention_ps, 0)]
            rows = [key for key in rows if key not in immortal]
            if immortal:
                self._obs.evidence.decide(
                    "refresh_phases", None, outcome="rejected",
                    stage="calibrator.calibrate",
                    evidence=[ev_value("immortal-rows", immortal)],
                    detail={"reason": "survived a REF-free decay check"},
                    host=self._host, profiler=self._obs.profiler)
        else:
            immortal = []
        coarse_step = max(cycle // 32, window)
        # Pass 1: probe all rows simultaneously, chunk by chunk.
        coarse_phase: dict[tuple[int, int], int] = {}
        probed = 0
        while len(coarse_phase) < len(rows) and probed < 2 * cycle:
            chunk_start = host.ref_count
            for bank, row in rows:
                if (bank, row) not in coarse_phase:
                    host.write_row(bank, row, self._pattern)
            for bank in {bank for bank, _ in rows}:
                self._divert(bank, max(row for b, row in rows if b == bank))
            host.wait(retention_ps // 2)
            host.refresh(coarse_step)
            host.wait(retention_ps - retention_ps // 2)
            for bank, row in rows:
                if (bank, row) in coarse_phase:
                    continue
                if not host.read_row_mismatches(bank, row):
                    coarse_phase[(bank, row)] = chunk_start % cycle
            probed += coarse_step
        missing = [key for key in rows if tuple(key) not in coarse_phase]
        schedule = RefreshSchedule(cycle_refs=cycle)
        for bank, row in immortal:
            schedule.confidence[(bank, row)] = 0.0
        if missing:
            self._obs.evidence.decide(
                "refresh_phases", None, outcome="rejected",
                stage="calibrator.calibrate",
                evidence=[ev_value("uncovered-rows", missing)],
                detail={"reason": "never covered within 2 cycles",
                        "dropped": drop_uncovered},
                host=self._host, profiler=self._obs.profiler)
            if not drop_uncovered:
                raise ExperimentError(
                    f"rows never covered by regular refresh: {missing}")
            for bank, row in missing:
                schedule.confidence[(bank, row)] = 0.0
        # Pass 2: narrow each row's chunk to `window` REFs, sweeping the
        # cycle once in phase order.
        ordered = sorted((key for key in rows if tuple(key) in coarse_phase),
                         key=lambda key: (
                             (coarse_phase[tuple(key)] - host.ref_count)
                             % cycle))
        for bank, row in ordered:
            target = coarse_phase[(bank, row)]
            # Position just before the row's coarse chunk (with margin).
            margin = window
            distance = (target - margin - host.ref_count) % cycle
            host.refresh(distance)
            found = None
            for _ in range((coarse_step + 2 * margin) // window + 1):
                chunk_start = host.ref_count
                if self.probe(bank, row, retention_ps, window):
                    found = chunk_start % cycle
                    break
            if found is None:
                self._obs.evidence.decide(
                    "refresh_phases", None, outcome="rejected",
                    stage="calibrator.calibrate",
                    evidence=[ev_value("refinement-lost",
                                       {"bank": bank, "row": row,
                                        "coarse_phase": target})],
                    detail={"dropped": drop_uncovered},
                    host=self._host, profiler=self._obs.profiler)
                if drop_uncovered:
                    schedule.confidence[(bank, row)] = 0.0
                    continue
                raise ExperimentError(
                    f"row {row} lost its coarse phase during refinement")
            schedule.phase_windows[(bank, row)] = (found, window)
        if confirm_probes > 0:
            for bank, row in ordered:
                self._confirm(schedule, bank, row, retention_ps,
                              confirm_probes)
        windows = {f"{bank}:{row}": list(entry) for (bank, row), entry
                   in sorted(schedule.phase_windows.items())}
        self._obs.evidence.decide(
            "refresh_phases", len(schedule.phase_windows),
            stage="calibrator.calibrate",
            confidence=(min(schedule.confidence.values())
                        if schedule.confidence else 1.0),
            evidence=[ev_value("phase-windows", windows),
                      ev_value("cycle-refs", cycle)],
            host=self._host, profiler=self._obs.profiler)
        return schedule

    def _confirm(self, schedule: RefreshSchedule, bank: int, row: int,
                 retention_ps: int, probes: int) -> None:
        """Re-probe a measured window *probes* times; record agreement."""
        host = self._host
        cycle = schedule.cycle_refs
        start, width = schedule.phase_windows[(bank, row)]
        agreed = 0
        for _ in range(probes):
            distance = (start - host.ref_count) % cycle
            host.refresh(distance)
            if self.probe(bank, row, retention_ps, width):
                agreed += 1
        schedule.confidence[(bank, row)] = agreed / probes

    def recalibrate_row(self, schedule: RefreshSchedule, bank: int,
                        row: int, retention_ps: int,
                        window: int | None = None) -> tuple[int, int]:
        """Re-measure one row's phase window in place.

        The drifted-schedule repair: when TRR Analyzer flags a row as a
        schedule suspect (it decayed although a supposedly covering REF
        was issued), the inference driver calls this to sweep one refresh
        cycle in *window*-sized probes and overwrite the stale entry.
        Returns the new ``(phase_start, width)`` window.
        """
        host = self._host
        cycle = schedule.cycle_refs
        if window is None:
            old = schedule.phase_windows.get((bank, row))
            window = old[1] if old is not None else 8
        self.protect(bank, [row])
        probed = 0
        while probed < 2 * cycle:
            chunk_start = host.ref_count
            if self.probe(bank, row, retention_ps, window):
                entry = (chunk_start % cycle, window)
                schedule.phase_windows[(bank, row)] = entry
                schedule.confidence[(bank, row)] = 1.0
                self._obs.evidence.decide(
                    "refresh_phase", list(entry),
                    stage="calibrator.recalibrate", confidence=1.0,
                    evidence=[ev_window(chunk_start,
                                        chunk_start + window,
                                        label="covering-ref-window")],
                    detail={"bank": bank, "row": row},
                    host=self._host, profiler=self._obs.profiler)
                return entry
            probed += window
        self._obs.evidence.decide(
            "refresh_phase", None, outcome="rejected",
            stage="calibrator.recalibrate",
            evidence=[ev_value("uncovered",
                               {"bank": bank, "row": row,
                                "probed_refs": probed})],
            host=self._host, profiler=self._obs.profiler)
        raise ExperimentError(
            f"row {row} (bank {bank}) found no covering REF during "
            f"recalibration — broken refresh or wrong retention bucket?")
