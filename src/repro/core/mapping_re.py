"""Reverse-engineering the logical-to-physical row mapping (§5.3).

Before Row Scout runs, U-TRR must know which logical rows are physically
adjacent: TRR refreshes *physical* neighbors, and the custom attack
patterns place aggressors physically.  The paper's method: disable
refresh, hammer a row a large number of times, and see which logical rows
collect RowHammer bit flips — those are the physical neighbors.

This module probes a sample of rows that way, then fits the observed
adjacency against the known decoder scramble families
(:func:`repro.dram.mapping.available_schemes`).  It also classifies the
*coupling topology*: standard (victims on both sides) versus the
pair-isolated organization of vendor C's C0-8 modules, where only odd
aggressors disturb anything, and only their even pair row (Obs C3).

Limitation (documented in DESIGN.md): candidate victims are read from a
window of logical rows around each probe, so only *local* scrambles are
recoverable — which covers every decoder layout reported for these
modules.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..dram.mapping import RowMapping, available_schemes, make_mapping
from ..dram.patterns import AllOnes, DataPattern
from ..errors import MappingError
from ..obs import NULL_OBS, ev_error, ev_probe
from ..softmc import SoftMCHost


class CouplingTopology(enum.Enum):
    """How hammering disturbs neighbors."""

    STANDARD = "standard"      #: victims on both physical sides
    PAIRED = "paired"          #: odd aggressor disturbs its even pair only


@dataclass(frozen=True)
class ProbeEvidence:
    """One adjacency probe's outcome."""

    #: Logical rows that collected RowHammer flips.
    flipped: tuple[int, ...]
    #: Candidate rows that were testable (not already failing by
    #: retention over the probe's duration).
    testable: tuple[int, ...]


@dataclass(frozen=True)
class MappingDiscovery:
    """Result of the §5.3 reverse-engineering step."""

    scheme: str
    mapping: RowMapping
    coupling: CouplingTopology
    #: Raw evidence: probe logical row -> what flipped / was testable.
    evidence: dict[int, ProbeEvidence]


def _probe_adjacency(host: SoftMCHost, bank: int, probe_row: int,
                     hammer_count: int, window: int,
                     pattern: DataPattern) -> ProbeEvidence:
    """Hammer *probe_row* with refresh disabled; return the logical rows
    in +-window that collected bit flips.

    Hammering millions of times takes ~100 ms of bus time with refresh
    disabled, long enough for weak candidate rows to fail by *retention*.
    A control pass that idles for the same duration filters those out, so
    only genuine RowHammer victims count as adjacency evidence.
    """
    low = max(0, probe_row - window)
    high = min(host.rows_per_bank, probe_row + window + 1)
    candidates = [row for row in range(low, high) if row != probe_row]
    duration_ps = host.timing.hammer_duration_ps(hammer_count)

    for row in candidates:
        host.write_row(bank, row, pattern)
    host.wait(duration_ps)
    baseline = {row for row in candidates
                if host.read_row_mismatches(bank, row)}
    testable = tuple(row for row in candidates if row not in baseline)

    for row in testable:
        host.write_row(bank, row, pattern)
    host.hammer_single(bank, probe_row, hammer_count)
    flipped = tuple(row for row in testable
                    if host.read_row_mismatches(bank, row))
    return ProbeEvidence(flipped=flipped, testable=testable)


def discover_row_mapping(host: SoftMCHost, bank: int = 0,
                         hammer_count: int = 2_400_000,
                         probe_count: int = 12, window: int = 4,
                         pattern: DataPattern | None = None,
                         obs=None) -> MappingDiscovery:
    """Recover the row-address mapping and coupling topology.

    *hammer_count* must comfortably exceed the module's RowHammer
    threshold for single-sided cascaded hammering (the paper uses 300K
    activations for its adjacency verification; the default covers even
    the strongest Table 1 modules after cascaded-run attenuation).
    """
    pattern = pattern or AllOnes()
    obs = obs or getattr(host, "obs", None) or NULL_OBS
    num_rows = host.rows_per_bank
    # Spread probes over the bank, away from the edges so windows fit.
    # The per-probe jitter walks all low-address-bit residues: a scramble
    # family can only be told apart from identity at rows where it
    # actually rewires adjacency.
    step = max((num_rows - 2 * window) // (probe_count + 1), 1)
    probe_rows = []
    for i in range(probe_count):
        row = window + step * (i + 1) + (i % 8)
        if window <= row < num_rows - window:
            probe_rows.append(row)
    evidence = {row: _probe_adjacency(host, bank, row, hammer_count,
                                      window, pattern)
                for row in probe_rows}

    probes = [ev_probe(row, probe.flipped, probe.testable)
              for row, probe in sorted(evidence.items())]
    try:
        coupling = _classify_coupling(evidence)
        scheme = _fit_scheme(evidence, coupling, num_rows)
    except MappingError as err:
        obs.evidence.decide(
            "mapping_scheme", None, outcome="rejected",
            stage="inference.mapping",
            evidence=[*probes, ev_error(err)],
            host=host, profiler=obs.profiler)
        raise
    obs.evidence.decide(
        "coupling", coupling.value, stage="inference.mapping",
        confidence=1.0, evidence=probes,
        host=host, profiler=obs.profiler)
    obs.evidence.decide(
        "mapping_scheme", scheme, stage="inference.mapping",
        confidence=1.0, evidence=probes,
        detail={"probe_rows": list(probe_rows)},
        host=host, profiler=obs.profiler)
    return MappingDiscovery(scheme=scheme,
                            mapping=make_mapping(scheme, num_rows),
                            coupling=coupling, evidence=evidence)


def _classify_coupling(evidence: dict[int, ProbeEvidence]
                       ) -> CouplingTopology:
    informative = {row: e for row, e in evidence.items() if e.flipped}
    if not informative:
        raise MappingError(
            "no probe produced bit flips; hammer_count too low for this "
            "module's RowHammer threshold?")
    # Pair isolation: flips come only from odd-addressed aggressors and
    # hit exactly one row (the even pair row), while even aggressors with
    # testable neighbors stay silent.  Pair-isolated modules ship direct
    # mappings; the fit below re-validates whichever hypothesis we pick.
    single_hit = all(len(e.flipped) == 1 for e in informative.values())
    if single_hit:
        silent = [row for row, e in evidence.items()
                  if not e.flipped and len(e.testable) >= 2]
        if silent:
            return CouplingTopology.PAIRED
    return CouplingTopology.STANDARD


def _fit_scheme(evidence: dict[int, ProbeEvidence],
                coupling: CouplingTopology, num_rows: int) -> str:
    """Find the scramble family consistent with every probe's flips.

    Prefers ``direct`` on ties: under pair-isolated coupling every
    scramble that preserves address bit 0 predicts the same observable
    adjacency, so the simplest consistent hypothesis wins (the ambiguity
    is benign — only pair relationships matter on such modules).
    """
    ordered = ["direct"] + [s for s in available_schemes() if s != "direct"]
    for scheme in ordered:
        try:
            mapping = make_mapping(scheme, num_rows)
        except Exception:  # scheme impossible for this row count
            continue
        if _consistent(mapping, evidence, coupling):
            return scheme
    raise MappingError(
        "observed adjacency matches no known decoder scramble; evidence: "
        f"{evidence}")


def _consistent(mapping: RowMapping, evidence: dict[int, ProbeEvidence],
                coupling: CouplingTopology) -> bool:
    for probe, probe_evidence in evidence.items():
        physical = mapping.to_physical(probe)
        testable = set(probe_evidence.testable)
        observed = set(probe_evidence.flipped)
        if coupling is CouplingTopology.PAIRED:
            expected = {mapping.to_logical(physical ^ 1)} \
                if physical % 2 == 1 else set()
            if observed != expected & testable:
                return False
            continue
        expected = set()
        for neighbor in (physical - 1, physical + 1):
            if 0 <= neighbor < mapping.num_rows:
                expected.add(mapping.to_logical(neighbor))
        # Every *testable* distance-1 victim must flip; extra flips are
        # possible at extreme hammer counts but must map to +-2.
        if not (expected & testable) <= observed:
            return False
        extras = observed - expected
        allowed = {mapping.to_logical(p)
                   for p in (physical - 2, physical + 2)
                   if 0 <= p < mapping.num_rows}
        if not extras <= allowed:
            return False
    return True
