"""U-TRR core: Row Scout, TRR Analyzer, and automated reverse engineering.

This package is the paper's contribution.  Everything here interacts with
the device under test exclusively through the SoftMC host interface —
read-back data and the host's own clock/REF counter are the only
observables.
"""

from .inference import InferenceConfig, InferredTrrProfile, TrrInference
from .mapping_re import (CouplingTopology, MappingDiscovery,
                         discover_row_mapping)
from .refclassifier import RefreshCalibrator, RefreshSchedule
from .resilience import AnalyzerStats, PipelineStats, RowScoutStats
from .rowgroup import RowGroup, RowGroupLayout
from .rowscout import ProfilingConfig, RowScout
from .serialization import load_measurement, save_measurement
from .trranalyzer import (AggressorHammer, ExperimentConfig,
                          ExperimentResult, RowObservation, TrrAnalyzer)

__all__ = [
    "AggressorHammer",
    "AnalyzerStats",
    "CouplingTopology",
    "ExperimentConfig",
    "ExperimentResult",
    "InferenceConfig",
    "InferredTrrProfile",
    "MappingDiscovery",
    "PipelineStats",
    "ProfilingConfig",
    "RefreshCalibrator",
    "RefreshSchedule",
    "RowGroup",
    "RowGroupLayout",
    "RowObservation",
    "RowScout",
    "RowScoutStats",
    "TrrAnalyzer",
    "TrrInference",
    "load_measurement",
    "save_measurement",
    "discover_row_mapping",
]
