"""repro.parallel — deterministic process-pool execution engine.

Shards independent work units (one module × scale × seed each) across a
process pool with ordered result merging, per-unit seed derivation,
worker crash→retry, quarantine for units that keep failing, and
per-unit run manifests, so parallel artifacts diff byte-for-byte
against sequential ones.  See :mod:`repro.parallel.engine`.
"""

from .engine import (ENGINE_SEEDS, ParallelRun, UnitOutcome, WorkUnit,
                     default_workers, parallel_map, run_units,
                     unit_observability, unit_seed)

__all__ = [
    "ENGINE_SEEDS",
    "ParallelRun",
    "UnitOutcome",
    "WorkUnit",
    "default_workers",
    "parallel_map",
    "run_units",
    "unit_observability",
    "unit_seed",
]
