"""Deterministic process-pool execution engine.

The paper's headline artifacts aggregate full-bank sweeps over 45
modules; TRRespass-style studies multiply that by pattern candidates.
Each module evaluation is independent — the simulator derives every
random property from a :class:`~repro.rng.SeedSequenceFactory` keyed by
the module serial — so the work shards perfectly across processes.
What does NOT come for free is *reproducibility discipline*:

* **Determinism** — results are merged in submission order, every unit
  carries a seed derived from its stable ``unit_id`` (never from worker
  identity, scheduling order, or wall clock), and a run with ``workers=1``
  executes the task functions inline on the exact code path a sequential
  caller would use.  Artifacts must diff byte-for-byte against a
  sequential run.
* **Crash containment** — a worker that dies (OOM killer, segfault in a
  native extension) breaks the whole :class:`ProcessPoolExecutor`; the
  engine rebuilds the pool and retries the lost units up to
  ``max_attempts``.  Units that keep failing are either raised (eval
  harnesses: fail loudly) or *quarantined* (chaos harnesses: record the
  failure and keep going), mirroring the Row Scout quarantine semantics
  of :mod:`repro.faults` — misbehaving work is isolated, named in the
  report, and never silently dropped.
* **Auditability** — every unit gets a :func:`repro.obs.build_manifest`
  manifest (``include_time=False``, no worker identity) so per-unit
  artifacts from a parallel run diff clean against a sequential run.
* **Complete metrics** — each work unit records into an *ambient*
  per-unit :class:`~repro.obs.MetricsRegistry` (reachable inside the
  unit via :func:`unit_observability`); pool workers ship their
  registry back with the result and the engine folds every unit's
  counters and histograms into the caller's registry **in submission
  order**, so ``metrics.json`` from a ``--workers N`` run equals the
  sequential one.  With ``workers=1`` the ambient registry *is* the
  caller's registry — no copy, the exact sequential path.
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import ConfigError
from ..obs import NULL_OBS, MetricsRegistry, Observability, build_manifest
from ..rng import SeedSequenceFactory

#: Root of every engine-derived seed; unit seeds depend only on the
#: unit_id, so they are stable across worker counts and runs.
ENGINE_SEEDS = SeedSequenceFactory("repro.parallel")


def unit_seed(unit_id: str) -> int:
    """Stable 64-bit seed for a work unit (independent of scheduling)."""
    return ENGINE_SEEDS.seed(unit_id)


#: The ambient per-unit metrics registry: bound while a work unit's
#: function executes (to the caller's registry inline, to a fresh
#: shipped-home registry in a pool worker), None outside any unit.
_unit_metrics: MetricsRegistry | None = None


def unit_observability() -> Observability:
    """The executing work unit's ambient observability bundle.

    Unit functions call this (directly or via an ``obs=None`` fallback)
    to reach the registry the engine folds into the caller's metrics.
    Outside a unit — or when the caller runs without metrics — this is
    :data:`~repro.obs.NULL_OBS`, so instrumented code never branches.
    """
    if _unit_metrics is None:
        return NULL_OBS
    return Observability(recorder=NULL_OBS.recorder,
                         metrics=_unit_metrics,
                         spans=NULL_OBS.spans)


def default_workers() -> int:
    """Default worker count: one per CPU (the CLI default)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class WorkUnit:
    """One shard of work: a picklable call plus its reproduction recipe.

    ``fn`` must be an importable top-level function (process pools pickle
    it by reference).  ``meta`` is merged verbatim into the unit's
    manifest — put the module id, scale name, and fault profile there.
    """

    unit_id: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @property
    def seed(self) -> int:
        return unit_seed(self.unit_id)

    def manifest(self) -> dict:
        """Per-unit run manifest — identical for any worker count."""
        return build_manifest(include_time=False, unit=self.unit_id,
                              unit_seed=self.seed, **self.meta)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


@dataclass
class UnitOutcome:
    """The result (or recorded failure) of one work unit."""

    unit_id: str
    value: Any = None
    attempts: int = 1
    quarantined: bool = False
    error: str | None = None
    manifest: dict = field(default_factory=dict)
    #: Metrics the unit recorded (``as_dict`` form; pool runs only —
    #: inline units write straight into the caller's registry).
    metrics: dict | None = None

    @property
    def ok(self) -> bool:
        return not self.quarantined


@dataclass
class ParallelRun:
    """All unit outcomes of one :func:`run_units` call, in input order."""

    outcomes: list[UnitOutcome]
    workers: int

    @property
    def values(self) -> list[Any]:
        """Unit results in input order (quarantined units excluded)."""
        return [outcome.value for outcome in self.outcomes if outcome.ok]

    @property
    def quarantined(self) -> list[UnitOutcome]:
        return [outcome for outcome in self.outcomes if outcome.quarantined]

    @property
    def retries(self) -> int:
        """Extra attempts spent recovering crashed/failed units."""
        return sum(outcome.attempts - 1 for outcome in self.outcomes)

    def manifests(self) -> list[dict]:
        """Per-unit manifests, input order — worker-count independent."""
        return [outcome.manifest for outcome in self.outcomes]


@dataclass
class _UnitEnvelope:
    """Pool-worker return wrapper: the unit's value plus its metrics.

    Only used when the unit actually recorded metrics, so units that
    never touch observability pickle exactly what they always did.
    """

    value: Any
    metrics: dict


def _call_unit(unit: WorkUnit) -> Any:
    """Top-level trampoline the pool pickles instead of the unit fn.

    Runs in the worker process: binds a fresh ambient registry for the
    unit's duration and ships it home with the result when non-empty.
    """
    global _unit_metrics
    registry = MetricsRegistry()
    _unit_metrics = registry
    try:
        value = unit.run()
    finally:
        _unit_metrics = None
    dump = registry.as_dict()
    if any(dump.values()):
        return _UnitEnvelope(value=value, metrics=dump)
    return value


def run_units(units: Sequence[WorkUnit], workers: int = 1, *,
              max_attempts: int = 2, quarantine: bool = False,
              log=None, metrics=None) -> ParallelRun:
    """Execute *units*, return outcomes in input order.

    ``workers=1`` runs every unit inline in this process — the exact
    sequential code path, no pool, no pickling, no retry wrapping — so a
    single-worker run is byte-for-byte today's behaviour.  With more
    workers, units are sharded over a process pool; a unit whose worker
    crashes or whose function raises is retried up to *max_attempts*
    times and then either re-raised (default) or quarantined.

    *log*, when given, is a :class:`repro.obs.StructuredLog`; the engine
    emits ``unit-done`` / ``unit-retry`` / ``unit-quarantined`` events.

    *metrics*, when given, is a :class:`repro.obs.MetricsRegistry` that
    receives every unit's recorded metrics: bound as the ambient unit
    registry inline, folded in submission order from pool workers — the
    final registry is identical for any worker count.
    """
    if workers < 1:
        raise ConfigError("workers must be >= 1")
    if max_attempts < 1:
        raise ConfigError("max_attempts must be >= 1")
    unit_ids = [unit.unit_id for unit in units]
    if len(set(unit_ids)) != len(unit_ids):
        raise ConfigError("work unit ids must be unique")
    if metrics is not None and not metrics.enabled:
        metrics = None
    if workers == 1:
        return _run_inline(units, log=log, metrics=metrics)
    run = _run_pool(units, workers, max_attempts=max_attempts,
                    quarantine=quarantine, log=log)
    if metrics is not None:
        for outcome in run.outcomes:
            if outcome.metrics:
                metrics.merge(outcome.metrics)
    return run


def _run_inline(units: Sequence[WorkUnit], log=None,
                metrics=None) -> ParallelRun:
    global _unit_metrics
    outcomes = []
    for unit in units:
        _unit_metrics = metrics
        try:
            value = unit.run()
        finally:
            _unit_metrics = None
        if log is not None:
            log.info("unit-done", unit=unit.unit_id, attempts=1)
        outcomes.append(UnitOutcome(unit_id=unit.unit_id, value=value,
                                    manifest=unit.manifest()))
    return ParallelRun(outcomes=outcomes, workers=1)


def _run_pool(units: Sequence[WorkUnit], workers: int, *,
              max_attempts: int, quarantine: bool, log=None) -> ParallelRun:
    slots: dict[str, UnitOutcome] = {}
    attempts = {unit.unit_id: 0 for unit in units}
    pending = list(units)
    pool_size = min(workers, max(len(units), 1))
    while pending:
        pending, failed = _drain_pool(pending, pool_size, attempts, slots,
                                      max_attempts, log)
        for unit, error in failed:
            if not quarantine:
                raise error
            if log is not None:
                log.info("unit-quarantined", unit=unit.unit_id,
                         attempts=attempts[unit.unit_id],
                         error=type(error).__name__)
            slots[unit.unit_id] = UnitOutcome(
                unit_id=unit.unit_id, attempts=attempts[unit.unit_id],
                quarantined=True, error=f"{type(error).__name__}: {error}",
                manifest=unit.manifest())
    outcomes = [slots[unit.unit_id] for unit in units]
    return ParallelRun(outcomes=outcomes, workers=workers)


def _drain_pool(pending: list[WorkUnit], pool_size: int,
                attempts: dict[str, int], slots: dict[str, UnitOutcome],
                max_attempts: int, log):
    """One pool lifetime: run *pending* until done or the pool breaks.

    Returns ``(retryable, failed)`` — units to resubmit on a fresh pool,
    and ``(unit, error)`` pairs that exhausted their attempts.
    """
    retryable: list[WorkUnit] = []
    failed: list[tuple[WorkUnit, BaseException]] = []
    broken = False
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        futures = {}
        for unit in pending:
            attempts[unit.unit_id] += 1
            futures[pool.submit(_call_unit, unit)] = unit
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
            lost: list[tuple[WorkUnit, BaseException]] = []
            for future in done:
                unit = futures[future]
                try:
                    value = future.result()
                except BrokenProcessPool as error:
                    # The pool is gone; this unit was lost with it, not
                    # necessarily at fault.  Units that already finished
                    # keep their results — only in-flight work re-runs.
                    broken = True
                    lost.append((unit, error))
                except BaseException as error:  # noqa: BLE001 — recorded
                    _retry_or_fail(unit, error, attempts, max_attempts,
                                   retryable, failed, log)
                else:
                    if log is not None:
                        log.info("unit-done", unit=unit.unit_id,
                                 attempts=attempts[unit.unit_id])
                    unit_metrics = None
                    if isinstance(value, _UnitEnvelope):
                        unit_metrics = value.metrics
                        value = value.value
                    slots[unit.unit_id] = UnitOutcome(
                        unit_id=unit.unit_id, value=value,
                        attempts=attempts[unit.unit_id],
                        manifest=unit.manifest(),
                        metrics=unit_metrics)
            if broken:
                # Every unit still in flight died with the pool; re-run
                # them all on a fresh pool (bounded by max_attempts).
                pool_error = (lost[0][1] if lost
                              else BrokenProcessPool("worker crashed"))
                for unit, error in lost:
                    _retry_or_fail(unit, error, attempts, max_attempts,
                                   retryable, failed, log)
                for future in not_done:
                    _retry_or_fail(futures[future], pool_error, attempts,
                                   max_attempts, retryable, failed, log)
                not_done = set()
        if broken:
            # Suppress the executor's shutdown error on exit.
            pool.shutdown(wait=False, cancel_futures=True)
    return retryable, failed


def _retry_or_fail(unit: WorkUnit, error: BaseException,
                   attempts: dict[str, int], max_attempts: int,
                   retryable: list[WorkUnit],
                   failed: list[tuple[WorkUnit, BaseException]],
                   log) -> None:
    if attempts[unit.unit_id] < max_attempts:
        if log is not None:
            log.info("unit-retry", unit=unit.unit_id,
                     attempts=attempts[unit.unit_id],
                     error=type(error).__name__)
        retryable.append(unit)
    else:
        failed.append((unit, error))


def parallel_map(fn: Callable[..., Any], calls: Sequence[tuple],
                 unit_ids: Sequence[str], workers: int = 1, *,
                 meta: Sequence[dict] | None = None,
                 max_attempts: int = 2, quarantine: bool = False,
                 log=None, metrics=None) -> ParallelRun:
    """Map *fn* over positional-argument tuples as one unit per call."""
    if len(calls) != len(unit_ids):
        raise ConfigError("calls and unit_ids must have equal length")
    metas = list(meta) if meta is not None else [{} for _ in calls]
    if len(metas) != len(calls):
        raise ConfigError("meta and calls must have equal length")
    units = [WorkUnit(unit_id=uid, fn=fn, args=tuple(args), meta=m)
             for uid, args, m in zip(unit_ids, calls, metas)]
    return run_units(units, workers, max_attempts=max_attempts,
                     quarantine=quarantine, log=log, metrics=metrics)
