"""Deterministic process-pool execution engine.

The paper's headline artifacts aggregate full-bank sweeps over 45
modules; TRRespass-style studies multiply that by pattern candidates.
Each module evaluation is independent — the simulator derives every
random property from a :class:`~repro.rng.SeedSequenceFactory` keyed by
the module serial — so the work shards perfectly across processes.
What does NOT come for free is *reproducibility discipline*:

* **Determinism** — results are merged in submission order, every unit
  carries a seed derived from its stable ``unit_id`` (never from worker
  identity, scheduling order, or wall clock), and a run with ``workers=1``
  executes the task functions inline on the exact code path a sequential
  caller would use.  Artifacts must diff byte-for-byte against a
  sequential run.
* **Crash containment** — a worker that dies (OOM killer, segfault in a
  native extension) breaks the whole :class:`ProcessPoolExecutor`; the
  engine rebuilds the pool and retries the lost units up to
  ``max_attempts``.  Units that keep failing are either raised (eval
  harnesses: fail loudly) or *quarantined* (chaos harnesses: record the
  failure and keep going), mirroring the Row Scout quarantine semantics
  of :mod:`repro.faults` — misbehaving work is isolated, named in the
  report, and never silently dropped.
* **Auditability** — every unit gets a :func:`repro.obs.build_manifest`
  manifest (``include_time=False``, no worker identity) so per-unit
  artifacts from a parallel run diff clean against a sequential run.
* **Complete metrics** — each work unit records into an *ambient*
  per-unit :class:`~repro.obs.Observability` (reachable inside the
  unit via :func:`unit_observability`); pool workers ship their
  registry back with the result and the engine folds every unit's
  counters and histograms into the caller's registry **in submission
  order**, so ``metrics.json`` from a ``--workers N`` run equals the
  sequential one.  With ``workers=1`` (and no telemetry) the ambient
  registry *is* the caller's registry — no copy, the exact sequential
  path.
* **Live telemetry stays off the artifact path** — a
  :class:`~repro.obs.TelemetryConfig` makes every unit publish
  ``unit-start`` / ``heartbeat`` / ``unit-done`` events (wall-clock,
  PID, counter snapshots, the open span, the unit's span timeline)
  into a spool directory; nothing telemetry-derived ever reaches a
  manifest, the metrics fold, or a rendered artifact, so enabling it
  cannot perturb byte-identity.  ``stall_deadline_s`` arms a
  coordinator-side :class:`~repro.obs.Watchdog` that flags units whose
  command counters stop advancing.
* **Per-unit profiling folds like metrics** — a caller-supplied
  :class:`~repro.obs.CommandProfiler` makes each unit profile its host
  command bus; dumps ship home in the result envelope and fold in
  submission order.
* **Results are cacheable** — a caller-supplied
  :class:`~repro.cache.ResultCache` makes the engine consult a
  content-addressed store before dispatching each unit and publish the
  result envelope (value + metrics + spans + wall) as each unit
  completes, buying unit-level resume after a crash, in-flight dedup
  of identical units, and warm re-runs whose stdout / folded metrics /
  history rows are byte-identical to cold ones (hits replay their
  stored per-unit metrics through the same submission-order fold).
"""

from __future__ import annotations

import copy
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Sequence

from ..errors import ConfigError
from ..obs import (NULL_OBS, CommandProfiler, MetricsRegistry,
                   Observability, SpanTracker, build_manifest)
from ..obs.live import (COMMAND_COUNTERS, Heartbeat, Watchdog,
                        read_spool, unit_start_fields)
from ..rng import SeedSequenceFactory

#: Root of every engine-derived seed; unit seeds depend only on the
#: unit_id, so they are stable across worker counts and runs.
ENGINE_SEEDS = SeedSequenceFactory("repro.parallel")


def unit_seed(unit_id: str) -> int:
    """Stable 64-bit seed for a work unit (independent of scheduling)."""
    return ENGINE_SEEDS.seed(unit_id)


#: The ambient per-unit observability bundle: bound while a work unit's
#: function executes (wrapping the caller's registry inline, a fresh
#: shipped-home registry in a pool worker), None outside any unit.
_unit_obs: Observability | None = None


def unit_observability() -> Observability:
    """The executing work unit's ambient observability bundle.

    Unit functions call this (directly or via an ``obs=None`` fallback)
    to reach the registry — and, when the run profiles, the span
    tracker and command profiler — the engine folds into the caller's
    instruments.  Outside a unit — or when the caller runs without
    metrics — this is :data:`~repro.obs.NULL_OBS`, so instrumented
    code never branches.
    """
    if _unit_obs is None:
        return NULL_OBS
    return _unit_obs


def _ambient(metrics=None, spans=None, profiler=None,
             evidence=None) -> Observability | None:
    """An ambient bundle around whichever instruments a unit has."""
    if (metrics is None and spans is None and profiler is None
            and evidence is None):
        return None
    return Observability(
        recorder=NULL_OBS.recorder,
        metrics=metrics if metrics is not None else NULL_OBS.metrics,
        spans=spans if spans is not None else NULL_OBS.spans,
        profiler=profiler if profiler is not None else NULL_OBS.profiler,
        evidence=evidence)


def default_workers() -> int:
    """Default worker count: one per CPU (the CLI default)."""
    return os.cpu_count() or 1


@dataclass(frozen=True)
class WorkUnit:
    """One shard of work: a picklable call plus its reproduction recipe.

    ``fn`` must be an importable top-level function (process pools pickle
    it by reference).  ``meta`` is merged verbatim into the unit's
    manifest — put the module id, scale name, and fault profile there.
    """

    unit_id: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    @property
    def seed(self) -> int:
        return unit_seed(self.unit_id)

    def manifest(self) -> dict:
        """Per-unit run manifest — identical for any worker count."""
        return build_manifest(include_time=False, unit=self.unit_id,
                              unit_seed=self.seed, **self.meta)

    def run(self) -> Any:
        return self.fn(*self.args, **self.kwargs)


@dataclass
class UnitOutcome:
    """The result (or recorded failure) of one work unit."""

    unit_id: str
    value: Any = None
    attempts: int = 1
    quarantined: bool = False
    error: str | None = None
    manifest: dict = field(default_factory=dict)
    #: Metrics the unit recorded (``as_dict`` form; pool runs only —
    #: inline units write straight into the caller's registry).
    metrics: dict | None = None
    #: Measured wall-clock seconds of the winning attempt.  Side
    #: channel: never part of the manifest or any rendered artifact.
    wall_s: float | None = None
    #: Per-opcode command-bus profile (``CommandProfiler.as_dict``
    #: form; only populated when the run profiles).
    profile: dict | None = None
    #: Span timeline the unit recorded (``SpanTracker.as_timeline``
    #: form; only populated on cache-captured or cached runs).
    spans: list | None = None
    #: Evidence nodes the unit's provenance ledger recorded (dumped
    #: dict form; only populated when the run carries a ledger).
    evidence: list | None = None
    #: True when this outcome was served from the result cache
    #: (``attempts == 0``: the unit never executed this run).
    cached: bool = False
    #: True when this outcome was fanned out from an identical unit
    #: earlier in the same run (in-flight dedup).
    coalesced: bool = False

    @property
    def ok(self) -> bool:
        return not self.quarantined


@dataclass
class ParallelRun:
    """All unit outcomes of one :func:`run_units` call, in input order."""

    outcomes: list[UnitOutcome]
    workers: int
    #: Units the telemetry watchdog flagged as stalled mid-run
    #: (:class:`~repro.obs.StalledUnit`); empty without a deadline.
    stalled: list = field(default_factory=list)

    @property
    def values(self) -> list[Any]:
        """Unit results in input order (quarantined units excluded)."""
        return [outcome.value for outcome in self.outcomes if outcome.ok]

    @property
    def quarantined(self) -> list[UnitOutcome]:
        return [outcome for outcome in self.outcomes if outcome.quarantined]

    @property
    def retries(self) -> int:
        """Extra attempts spent recovering crashed/failed units."""
        # max(…, 0): cached/coalesced outcomes carry attempts == 0.
        return sum(max(outcome.attempts - 1, 0)
                   for outcome in self.outcomes)

    @property
    def cache_hits(self) -> int:
        """Units served from the result cache without executing."""
        return sum(1 for outcome in self.outcomes if outcome.cached)

    @property
    def deduped(self) -> int:
        """Units coalesced onto an identical in-flight unit."""
        return sum(1 for outcome in self.outcomes if outcome.coalesced)

    def manifests(self) -> list[dict]:
        """Per-unit manifests, input order — worker-count independent."""
        return [outcome.manifest for outcome in self.outcomes]

    def unit_walls(self) -> dict[str, float]:
        """Measured per-unit wall-clock seconds (side channel)."""
        return {outcome.unit_id: outcome.wall_s
                for outcome in self.outcomes
                if outcome.wall_s is not None}

    def stragglers(self, count: int = 3) -> list[UnitOutcome]:
        """The *count* slowest units, slowest first."""
        timed = [outcome for outcome in self.outcomes
                 if outcome.wall_s is not None]
        timed.sort(key=lambda outcome: -outcome.wall_s)
        return timed[:count]


@dataclass
class _UnitEnvelope:
    """Pool-worker return wrapper: the unit's value plus side-channel
    observability (metrics dump, measured wall, per-opcode profile)."""

    value: Any
    metrics: dict | None = None
    wall_s: float | None = None
    profile: dict | None = None
    #: Span timeline (capture mode only — cache publishing needs it).
    spans: list | None = None
    #: Dumped evidence nodes (ledger-carrying runs only).
    evidence: list | None = None


def _publish(sink, kind: str, **fields) -> None:
    """Publish one telemetry event; the spool must never kill work."""
    if sink is None:
        return
    try:
        sink.publish(kind, **fields)
    except OSError:
        pass


def _unit_done_fields(registry, spans, origin_ts, profiler, wall_s,
                      error, evidence=None) -> dict:
    """The ``unit-done`` event payload (progress + distributed spans)."""
    fields: dict = {
        "wall_s": round(wall_s, 6),
        "commands": sum(registry.counter(name)
                        for name in COMMAND_COUNTERS),
    }
    dump = registry.as_dict()
    if any(dump.values()):
        fields["metrics"] = dump
    if spans is not None and spans.spans:
        fields["spans"] = spans.as_timeline()
        fields["origin_ts"] = round(origin_ts, 6)
    if profiler is not None and profiler.commands:
        fields["profile"] = profiler.as_dict()
    if evidence is not None and evidence.nodes:
        from ..obs.evidence import nodes_summary
        fields["evidence"] = nodes_summary(evidence.nodes)
    if error is not None:
        fields["error"] = f"{type(error).__name__}: {error}"
    return fields


def _call_unit(unit: WorkUnit, telemetry=None, profile: bool = False,
               capture: bool = False, evidence: bool = False) -> Any:
    """Top-level trampoline the pool pickles instead of the unit fn.

    Runs in the worker process: binds a fresh ambient bundle for the
    unit's duration and ships the registry (plus measured wall and any
    profile) home in a :class:`_UnitEnvelope`.  With *telemetry*, the
    worker additionally publishes ``unit-start`` / ``heartbeat`` /
    ``unit-done`` events into the spool — side channel only.  With
    *capture* (cache-backed runs), the span timeline ships home too so
    the published cache envelope is complete.  With *evidence*, the
    unit records provenance into a fresh ledger whose dumped nodes
    ship home for the caller's submission-order fold.
    """
    global _unit_obs
    live = telemetry is not None
    registry = MetricsRegistry()
    spans = SpanTracker() if (live or profile or capture) else None
    origin_ts = time.time() if spans is not None else None
    profiler = CommandProfiler(spans=spans) if profile else None
    ledger = None
    if evidence:
        from ..obs.evidence import EvidenceLedger
        ledger = EvidenceLedger()
    sink = telemetry.sink(unit.unit_id) if live else None
    heartbeat = None
    if sink is not None:
        _publish(sink, "unit-start", **unit_start_fields())
        if telemetry.heartbeats:
            heartbeat = Heartbeat(sink, metrics=registry, spans=spans,
                                  interval_s=telemetry.interval_s).start()
    _unit_obs = _ambient(metrics=registry, spans=spans, profiler=profiler,
                         evidence=ledger)
    start = perf_counter()
    error: BaseException | None = None
    try:
        value = unit.run()
    except BaseException as err:
        error = err
        raise
    finally:
        _unit_obs = None
        wall_s = perf_counter() - start
        if heartbeat is not None:
            heartbeat.stop()
        if sink is not None:
            _publish(sink, "unit-done",
                     **_unit_done_fields(registry, spans, origin_ts,
                                         profiler, wall_s, error,
                                         evidence=ledger))
    dump = registry.as_dict()
    return _UnitEnvelope(
        value=value,
        metrics=dump if any(dump.values()) else None,
        wall_s=round(wall_s, 6),
        profile=(profiler.as_dict()
                 if profiler is not None and profiler.commands else None),
        spans=(spans.as_timeline()
               if capture and spans is not None and spans.spans
               else None),
        evidence=(ledger.dump()
                  if ledger is not None and ledger.nodes else None))


def run_units(units: Sequence[WorkUnit], workers: int = 1, *,
              max_attempts: int = 2, quarantine: bool = False,
              log=None, metrics=None, telemetry=None,
              profiler=None, cache=None, evidence=None) -> ParallelRun:
    """Execute *units*, return outcomes in input order.

    ``workers=1`` runs every unit inline in this process — the exact
    sequential code path, no pool, no pickling, no retry wrapping — so a
    single-worker run is byte-for-byte today's behaviour.  With more
    workers, units are sharded over a process pool; a unit whose worker
    crashes or whose function raises is retried up to *max_attempts*
    times and then either re-raised (default) or quarantined.

    *log*, when given, is a :class:`repro.obs.StructuredLog`; the engine
    emits ``unit-done`` / ``unit-retry`` / ``unit-quarantined`` events.

    *metrics*, when given, is a :class:`repro.obs.MetricsRegistry` that
    receives every unit's recorded metrics: bound as the ambient unit
    registry inline, folded in submission order from pool workers — the
    final registry is identical for any worker count.

    *telemetry*, when given, is a :class:`repro.obs.TelemetryConfig`:
    the run publishes ``run-start`` / ``run-done`` plus per-unit
    progress events into its spool directory, strictly off the
    artifact path.  A ``stall_deadline_s`` arms a coordinator-side
    watchdog; flagged units land in :attr:`ParallelRun.stalled`.

    *profiler*, when given, is a :class:`repro.obs.CommandProfiler`
    that receives every unit's per-opcode command-bus attribution,
    folded in submission order exactly like metrics.

    *cache*, when given, is a :class:`repro.cache.ResultCache`: each
    unit is content-addressed by its recipe and looked up before
    dispatch.  Hits skip execution and replay their stored value,
    metrics, and spans at the unit's submission-order position, so the
    run's outputs stay byte-identical to an uncached run; misses
    execute normally and publish their envelope as they complete
    (so a killed sweep resumes unit-by-unit); identical units within
    one call execute once and fan out.  With ``cache.verify``, one hit
    per run is re-executed and diffed against its stored envelope
    (:class:`repro.errors.CacheError` on divergence).

    *evidence*, when given, is a
    :class:`repro.obs.evidence.EvidenceLedger` that receives every
    unit's provenance nodes, folded in submission order (each node
    stamped with its unit id at fold time) exactly like metrics — the
    merged ledger is identical for any worker count, and cache hits
    replay their stored nodes.
    """
    if workers < 1:
        raise ConfigError("workers must be >= 1")
    if max_attempts < 1:
        raise ConfigError("max_attempts must be >= 1")
    unit_ids = [unit.unit_id for unit in units]
    if len(set(unit_ids)) != len(unit_ids):
        raise ConfigError("work unit ids must be unique")
    if metrics is not None and not metrics.enabled:
        metrics = None
    if profiler is not None and not profiler.enabled:
        profiler = None
    if evidence is not None and not evidence.enabled:
        evidence = None
    coordinator = telemetry.sink(None) if telemetry is not None else None
    if coordinator is not None:
        _publish(coordinator, "run-start", units_total=len(units),
                 workers=workers)
    if cache is not None:
        run = _run_cached(units, workers, max_attempts=max_attempts,
                          quarantine=quarantine, log=log,
                          metrics=metrics, telemetry=telemetry,
                          profiler=profiler, cache=cache,
                          coordinator=coordinator, evidence=evidence)
    elif workers == 1:
        run = _run_inline(units, log=log, metrics=metrics,
                          telemetry=telemetry, profiler=profiler,
                          evidence=evidence)
    else:
        run = _run_pool(units, workers, max_attempts=max_attempts,
                        quarantine=quarantine, log=log,
                        telemetry=telemetry,
                        profile=profiler is not None,
                        coordinator=coordinator,
                        evidence=evidence is not None)
        for outcome in run.outcomes:
            if metrics is not None and outcome.metrics:
                metrics.merge(outcome.metrics)
            if profiler is not None and outcome.profile:
                profiler.merge(outcome.profile)
            if evidence is not None and outcome.evidence:
                evidence.merge(outcome.evidence, unit=outcome.unit_id)
    if coordinator is not None:
        done_fields: dict = {
            "units_done": sum(1 for o in run.outcomes if o.ok),
            "quarantined": len(run.quarantined),
            "retries": run.retries,
        }
        if cache is not None:
            done_fields["cache"] = cache.summary()
        _publish(coordinator, "run-done", **done_fields)
    return run


def _run_inline(units: Sequence[WorkUnit], log=None, metrics=None,
                telemetry=None, profiler=None, capture: bool = False,
                profile: bool = False, on_result=None, evidence=None,
                evidence_capture: bool = False) -> ParallelRun:
    global _unit_obs
    live = telemetry is not None
    outcomes = []
    for unit in units:
        # Without telemetry the unit records straight into the caller's
        # registry (the exact sequential path); with it — or in capture
        # mode, where the cache needs each unit's own dump — a fresh
        # per-unit registry feeds heartbeats and the unit-done snapshot
        # and is folded into the caller's afterwards — the same
        # submission-order fold the pool performs, so the final
        # registry is byte-identical either way.
        unit_metrics = (MetricsRegistry() if (live or capture)
                        else metrics)
        spans = (SpanTracker()
                 if (live or capture or profiler is not None or profile)
                 else None)
        origin_ts = time.time() if spans is not None else None
        unit_prof = (CommandProfiler(spans=spans)
                     if (profiler is not None or profile) else None)
        # Evidence always records into a per-unit ledger (never the
        # caller's directly): nodes are stamped with their unit id at
        # fold time, which is what keeps a sequential run's merged
        # ledger byte-identical to a pool run's.
        unit_ev = None
        if evidence is not None or evidence_capture:
            from ..obs.evidence import EvidenceLedger
            unit_ev = EvidenceLedger()
        sink = telemetry.sink(unit.unit_id) if live else None
        heartbeat = None
        if sink is not None:
            _publish(sink, "unit-start", **unit_start_fields())
            if telemetry.heartbeats:
                heartbeat = Heartbeat(sink, metrics=unit_metrics,
                                      spans=spans,
                                      interval_s=telemetry.interval_s
                                      ).start()
        _unit_obs = _ambient(metrics=unit_metrics, spans=spans,
                             profiler=unit_prof, evidence=unit_ev)
        start = perf_counter()
        error: BaseException | None = None
        try:
            value = unit.run()
        except BaseException as err:
            error = err
            raise
        finally:
            _unit_obs = None
            wall_s = perf_counter() - start
            if heartbeat is not None:
                heartbeat.stop()
            if sink is not None:
                _publish(sink, "unit-done",
                         **_unit_done_fields(unit_metrics, spans,
                                             origin_ts, unit_prof,
                                             wall_s, error,
                                             evidence=unit_ev))
        if live and metrics is not None:
            metrics.merge(unit_metrics.as_dict())
        if profiler is not None and unit_prof is not None:
            profiler.merge(unit_prof)
        if evidence is not None and unit_ev is not None and unit_ev.nodes:
            evidence.merge(unit_ev.nodes, unit=unit.unit_id)
        if log is not None:
            log.info("unit-done", unit=unit.unit_id, attempts=1)
        outcome = UnitOutcome(unit_id=unit.unit_id, value=value,
                              manifest=unit.manifest(),
                              wall_s=round(wall_s, 6))
        if unit_ev is not None and unit_ev.nodes:
            outcome.evidence = unit_ev.dump()
        if capture:
            dump = unit_metrics.as_dict()
            outcome.metrics = dump if any(dump.values()) else None
            if spans is not None and spans.spans:
                outcome.spans = spans.as_timeline()
            if unit_prof is not None and unit_prof.commands:
                outcome.profile = unit_prof.as_dict()
        if on_result is not None:
            on_result(unit, outcome)
        outcomes.append(outcome)
    return ParallelRun(outcomes=outcomes, workers=1)


def _run_cached(units: Sequence[WorkUnit], workers: int, *,
                max_attempts: int, quarantine: bool, log=None,
                metrics=None, telemetry=None, profiler=None,
                cache=None, coordinator=None,
                evidence=None) -> ParallelRun:
    """Cache-backed execution: plan, execute misses, replay hits.

    Three-way partition in submission order — **hits** (stored envelope
    found: skip execution), **followers** (a unit with the identical
    execution recipe — same callable, arguments, and code revision;
    only its id/meta differ — appeared earlier this run: fan its
    outcome out), and **leaders** (everything else, plus uncachable
    units: execute).  Leaders run through the
    normal inline/pool machinery in *capture* mode so each unit's own
    metrics dump comes back, and publish their envelope as they finish
    (a killed sweep therefore resumes unit-by-unit).  The caller's
    metrics/profiler fold then walks ALL units in submission order —
    hits replay their stored dumps at their original position — which
    is what keeps a warm run's folded registry byte-identical to a
    cold one.
    """
    by_id = {unit.unit_id: unit for unit in units}
    keymap: dict[str, str] = {}
    matmap: dict[str, dict] = {}
    first_by_recipe: dict[str, str] = {}
    hit_envelopes: dict[str, Any] = {}
    followers: dict[str, str] = {}
    to_run: list[WorkUnit] = []
    for unit in units:
        keyed = cache.keyed(unit)
        if keyed is None:
            # Uncachable recipe: always execute, never publish.
            to_run.append(unit)
            continue
        key, material = keyed
        keymap[unit.unit_id] = key
        matmap[unit.unit_id] = material
        # Dedup keys on the execution recipe (unit id / seed / meta
        # dropped — the callable never sees them), because run_units
        # already rejects duplicate unit ids: identical work under two
        # ids is the only duplicate shape that can reach this loop.
        recipe = cache.recipe_key(material)
        if recipe in first_by_recipe:
            followers[unit.unit_id] = first_by_recipe[recipe]
            cache.note_dedup()
            continue
        first_by_recipe[recipe] = unit.unit_id
        envelope = cache.lookup(key)
        if envelope is not None:
            hit_envelopes[unit.unit_id] = envelope
        else:
            to_run.append(unit)

    def publish_outcome(unit: WorkUnit, outcome: UnitOutcome) -> None:
        key = keymap.get(unit.unit_id)
        if key is None or not outcome.ok:
            return
        cache.publish_unit(key, matmap[unit.unit_id], unit.unit_id,
                           value=outcome.value,
                           metrics=outcome.metrics,
                           spans=outcome.spans,
                           wall_s=outcome.wall_s,
                           profile=outcome.profile,
                           evidence=outcome.evidence)

    if not to_run:
        # 100% warm (or empty): no pool is ever spawned.
        sub = ParallelRun(outcomes=[], workers=workers)
    elif workers == 1:
        sub = _run_inline(to_run, log=log, telemetry=telemetry,
                          capture=True, profile=profiler is not None,
                          on_result=publish_outcome,
                          evidence_capture=evidence is not None)
    else:
        sub = _run_pool(to_run, workers, max_attempts=max_attempts,
                        quarantine=quarantine, log=log,
                        telemetry=telemetry,
                        profile=profiler is not None,
                        coordinator=coordinator, capture=True,
                        on_result=publish_outcome,
                        evidence=evidence is not None)
    executed = {outcome.unit_id: outcome for outcome in sub.outcomes}

    outcomes: list[UnitOutcome] = []
    done: dict[str, UnitOutcome] = {}
    for unit in units:
        uid = unit.unit_id
        if uid in executed:
            outcome = executed[uid]
        elif uid in hit_envelopes:
            envelope = hit_envelopes[uid]
            outcome = UnitOutcome(
                unit_id=uid, value=envelope.value, attempts=0,
                manifest=unit.manifest(), metrics=envelope.metrics,
                spans=envelope.spans, wall_s=envelope.wall_s,
                profile=envelope.profile,
                evidence=getattr(envelope, "evidence", None),
                cached=True)
            _replay_unit_events(telemetry, outcome)
            if log is not None:
                log.info("unit-cached", unit=uid,
                         key=keymap[uid][:12])
        else:
            # Follower: fan out the first identical unit's outcome
            # (deep-copied so callers mutating one result cannot
            # alias the other, matching independent execution).
            leader = done[followers[uid]]
            outcome = UnitOutcome(
                unit_id=uid, value=copy.deepcopy(leader.value),
                attempts=0, quarantined=leader.quarantined,
                error=leader.error, manifest=unit.manifest(),
                metrics=leader.metrics, spans=leader.spans,
                wall_s=leader.wall_s, profile=leader.profile,
                evidence=leader.evidence,
                cached=leader.cached, coalesced=True)
            # A follower's store key differs from its leader's (the
            # unit id is part of it), so publish its envelope too —
            # the next warm run then hits under either id.
            if outcome.ok:
                cache.publish_unit(keymap[uid], matmap[uid], uid,
                                   value=outcome.value,
                                   metrics=outcome.metrics,
                                   spans=outcome.spans,
                                   wall_s=outcome.wall_s,
                                   profile=outcome.profile,
                                   evidence=outcome.evidence)
            _replay_unit_events(telemetry, outcome)
            if log is not None:
                log.info("unit-coalesced", unit=uid,
                         leader=followers[uid])
        done[uid] = outcome
        outcomes.append(outcome)
        # The one fold: every unit, submission order, hits included.
        if metrics is not None and outcome.metrics:
            metrics.merge(outcome.metrics)
        if profiler is not None and outcome.profile:
            profiler.merge(outcome.profile)
        if evidence is not None and outcome.evidence:
            evidence.merge(outcome.evidence, unit=outcome.unit_id)
    if getattr(cache, "verify", False) and hit_envelopes:
        _verify_sampled_hit(cache, hit_envelopes, by_id, keymap, log)
    return ParallelRun(outcomes=outcomes, workers=workers,
                       stalled=sub.stalled)


def _replay_unit_events(telemetry, outcome: UnitOutcome) -> None:
    """Publish start/done telemetry for a unit that never executed, so
    live progress and the distributed timeline count cached and
    coalesced units as completed (flagged ``cached``/``coalesced``)."""
    if telemetry is None:
        return
    sink = telemetry.sink(outcome.unit_id)
    _publish(sink, "unit-start", **unit_start_fields())
    counters = (outcome.metrics or {}).get("counters", {})
    fields: dict = {
        "wall_s": round(outcome.wall_s or 0.0, 6),
        "commands": sum(counters.get(name, 0)
                        for name in COMMAND_COUNTERS),
        "cached": True,
    }
    if outcome.coalesced:
        fields["coalesced"] = True
    if outcome.metrics:
        fields["metrics"] = outcome.metrics
    if outcome.spans:
        fields["spans"] = outcome.spans
        fields["origin_ts"] = round(time.time(), 6)
    if outcome.evidence:
        from ..obs.evidence import nodes_summary
        fields["evidence"] = nodes_summary(outcome.evidence)
    _publish(sink, "unit-done", **fields)


def _verify_sampled_hit(cache, hit_envelopes: dict, by_id: dict,
                        keymap: dict, log) -> None:
    """Re-execute one deterministically sampled hit and diff it against
    the stored envelope (``--cache-verify``).

    The sample is the hit with the smallest key, so two verify runs of
    the same sweep check the same unit.  The re-execution runs through
    the worker trampoline with a detached ambient registry — nothing it
    records can reach the caller's fold.
    """
    uid = min(hit_envelopes, key=lambda unit_id: keymap[unit_id])
    fresh = _call_unit(by_id[uid], None, False, True)
    cache.check_hit(hit_envelopes[uid], fresh.value, fresh.metrics)
    if log is not None:
        log.info("cache-verify", unit=uid, key=keymap[uid][:12])


def _run_pool(units: Sequence[WorkUnit], workers: int, *,
              max_attempts: int, quarantine: bool, log=None,
              telemetry=None, profile: bool = False,
              coordinator=None, capture: bool = False,
              on_result=None, evidence: bool = False) -> ParallelRun:
    slots: dict[str, UnitOutcome] = {}
    attempts = {unit.unit_id: 0 for unit in units}
    pending = list(units)
    pool_size = min(workers, max(len(units), 1))
    stalled: list = []
    while pending:
        pending, failed = _drain_pool(pending, pool_size, attempts, slots,
                                      max_attempts, log,
                                      telemetry=telemetry,
                                      profile=profile,
                                      coordinator=coordinator,
                                      stalled=stalled,
                                      capture=capture,
                                      on_result=on_result,
                                      evidence=evidence)
        for unit, error in failed:
            if not quarantine:
                raise error
            if log is not None:
                log.info("unit-quarantined", unit=unit.unit_id,
                         attempts=attempts[unit.unit_id],
                         error=type(error).__name__)
            slots[unit.unit_id] = UnitOutcome(
                unit_id=unit.unit_id, attempts=attempts[unit.unit_id],
                quarantined=True, error=f"{type(error).__name__}: {error}",
                manifest=unit.manifest())
    outcomes = [slots[unit.unit_id] for unit in units]
    return ParallelRun(outcomes=outcomes, workers=workers,
                       stalled=stalled)


def _scan_stalls(watchdog, telemetry, reported: set, stalled: list,
                 log, coordinator) -> None:
    """One watchdog pass over the spool; new stalls are reported once."""
    try:
        events = read_spool(telemetry.spool)
    except OSError:
        return
    for stall in watchdog.scan(events):
        if stall.unit_id in reported:
            continue
        reported.add(stall.unit_id)
        stalled.append(stall)
        if log is not None:
            log.warning("unit-stalled", unit=stall.unit_id,
                        age_s=round(stall.age_s, 1),
                        span=stall.span or "-")
        _publish(coordinator, "unit-stalled", stalled_unit=stall.unit_id,
                 age_s=stall.age_s, span=stall.span,
                 last_kind=stall.last_kind)


def _drain_pool(pending: list[WorkUnit], pool_size: int,
                attempts: dict[str, int], slots: dict[str, UnitOutcome],
                max_attempts: int, log, telemetry=None,
                profile: bool = False, coordinator=None,
                stalled: list | None = None, capture: bool = False,
                on_result=None, evidence: bool = False):
    """One pool lifetime: run *pending* until done or the pool breaks.

    Returns ``(retryable, failed)`` — units to resubmit on a fresh pool,
    and ``(unit, error)`` pairs that exhausted their attempts.
    """
    retryable: list[WorkUnit] = []
    failed: list[tuple[WorkUnit, BaseException]] = []
    broken = False
    watchdog = None
    wait_timeout = None
    reported: set[str] = set()
    if telemetry is not None and telemetry.stall_deadline_s:
        watchdog = Watchdog(telemetry.stall_deadline_s)
        # Poll at half the deadline so a stall is flagged at most one
        # scan late; the wait() below otherwise blocks indefinitely.
        wait_timeout = max(telemetry.stall_deadline_s / 2, 0.05)
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        futures = {}
        for unit in pending:
            attempts[unit.unit_id] += 1
            futures[pool.submit(_call_unit, unit, telemetry,
                                profile, capture, evidence)] = unit
        not_done = set(futures)
        while not_done:
            done, not_done = wait(not_done, timeout=wait_timeout,
                                  return_when=FIRST_COMPLETED)
            if not done and watchdog is not None:
                _scan_stalls(watchdog, telemetry, reported, stalled,
                             log, coordinator)
                continue
            lost: list[tuple[WorkUnit, BaseException]] = []
            for future in done:
                unit = futures[future]
                try:
                    value = future.result()
                except BrokenProcessPool as error:
                    # The pool is gone; this unit was lost with it, not
                    # necessarily at fault.  Units that already finished
                    # keep their results — only in-flight work re-runs.
                    broken = True
                    lost.append((unit, error))
                except BaseException as error:  # noqa: BLE001 — recorded
                    _retry_or_fail(unit, error, attempts, max_attempts,
                                   retryable, failed, log)
                else:
                    if log is not None:
                        log.info("unit-done", unit=unit.unit_id,
                                 attempts=attempts[unit.unit_id])
                    unit_metrics = None
                    unit_wall = None
                    unit_profile = None
                    unit_spans = None
                    unit_evidence = None
                    if isinstance(value, _UnitEnvelope):
                        unit_metrics = value.metrics
                        unit_wall = value.wall_s
                        unit_profile = value.profile
                        unit_spans = value.spans
                        unit_evidence = value.evidence
                        value = value.value
                    outcome = UnitOutcome(
                        unit_id=unit.unit_id, value=value,
                        attempts=attempts[unit.unit_id],
                        manifest=unit.manifest(),
                        metrics=unit_metrics,
                        wall_s=unit_wall,
                        profile=unit_profile,
                        spans=unit_spans,
                        evidence=unit_evidence)
                    slots[unit.unit_id] = outcome
                    if on_result is not None:
                        on_result(unit, outcome)
            if broken:
                # Every unit still in flight died with the pool; re-run
                # them all on a fresh pool (bounded by max_attempts).
                pool_error = (lost[0][1] if lost
                              else BrokenProcessPool("worker crashed"))
                for unit, error in lost:
                    _retry_or_fail(unit, error, attempts, max_attempts,
                                   retryable, failed, log)
                for future in not_done:
                    _retry_or_fail(futures[future], pool_error, attempts,
                                   max_attempts, retryable, failed, log)
                not_done = set()
        if broken:
            # Suppress the executor's shutdown error on exit.
            pool.shutdown(wait=False, cancel_futures=True)
    return retryable, failed


def _retry_or_fail(unit: WorkUnit, error: BaseException,
                   attempts: dict[str, int], max_attempts: int,
                   retryable: list[WorkUnit],
                   failed: list[tuple[WorkUnit, BaseException]],
                   log) -> None:
    if attempts[unit.unit_id] < max_attempts:
        if log is not None:
            log.info("unit-retry", unit=unit.unit_id,
                     attempts=attempts[unit.unit_id],
                     error=type(error).__name__)
        retryable.append(unit)
    else:
        failed.append((unit, error))


def parallel_map(fn: Callable[..., Any], calls: Sequence[tuple],
                 unit_ids: Sequence[str], workers: int = 1, *,
                 meta: Sequence[dict] | None = None,
                 max_attempts: int = 2, quarantine: bool = False,
                 log=None, metrics=None, telemetry=None,
                 profiler=None, evidence=None) -> ParallelRun:
    """Map *fn* over positional-argument tuples as one unit per call."""
    if len(calls) != len(unit_ids):
        raise ConfigError("calls and unit_ids must have equal length")
    metas = list(meta) if meta is not None else [{} for _ in calls]
    if len(metas) != len(calls):
        raise ConfigError("meta and calls must have equal length")
    units = [WorkUnit(unit_id=uid, fn=fn, args=tuple(args), meta=m)
             for uid, args, m in zip(unit_ids, calls, metas)]
    return run_units(units, workers, max_attempts=max_attempts,
                     quarantine=quarantine, log=log, metrics=metrics,
                     telemetry=telemetry, profiler=profiler,
                     evidence=evidence)
