"""Content-addressed result cache for evaluation work units.

The ROADMAP's evaluation-as-a-service item starts here: PR 2's run
manifests prove a unit's result is a pure function of its recipe (seed
+ git revision + chip recipe + scale + fault profile + entry-point
code), so that recipe can *be* the storage key.  :mod:`repro.parallel`
consults this store before dispatching each :class:`WorkUnit` and
publishes the result envelope on completion, which buys three things:

* **unit-level resume** — a killed sweep re-run with the same arguments
  skips every unit that already completed;
* **in-flight dedup** — identical units submitted twice in one run
  execute once, with the envelope fanned out in submission order;
* **byte-identity** — a warm run's stdout, folded metrics, and history
  rows equal the cold run's, because hits replay the stored per-unit
  metrics/spans through the same submission-order merge.

``python -m repro.cache`` provides ``stats`` / ``prune`` / ``verify``
maintenance; the eval CLI's ``--cache DIR`` / ``--resume`` /
``--cache-verify`` flags are the front door (see docs/PERFORMANCE.md).
"""

from .envelope import CacheEnvelope, decode, encode
from .keys import (Uncachable, callable_fingerprint, material_digest,
                   recipe_digest, unit_key, unit_key_material)
from .store import ResultCache, value_digest

__all__ = [
    "CacheEnvelope",
    "ResultCache",
    "Uncachable",
    "callable_fingerprint",
    "decode",
    "encode",
    "material_digest",
    "recipe_digest",
    "unit_key",
    "unit_key_material",
    "value_digest",
]
