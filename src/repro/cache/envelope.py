"""Envelope codec: the on-disk form of one cached unit result.

An envelope is everything :mod:`repro.parallel` needs to make a cache
hit indistinguishable from a fresh execution: the unit's return value,
its per-unit metrics dump and span timeline (replayed through the same
submission-order fold a pool worker's envelope goes through), the
measured wall-clock, and an optional command-bus profile.  It also
stores the full key *material* so ``python -m repro.cache stats`` can
explain every object without re-deriving anything.

Wire format: a 5-byte magic (``RPRC`` + version), a 4-byte big-endian
CRC-32 of the body, then the pickled body (protocol 4 — readable by
every Python this repo supports).  The CRC catches torn writes and
bit rot cheaply; a corrupt or truncated envelope decodes to a
:class:`repro.errors.CacheError`, which the store treats as a miss.
"""

from __future__ import annotations

import pickle
import zlib
from dataclasses import dataclass, field, fields

from ..errors import CacheError

#: 4-byte magic + 1-byte format version.
MAGIC = b"RPRC\x01"


@dataclass
class CacheEnvelope:
    """One cached unit outcome plus its provenance."""

    key: str
    unit_id: str
    value: object = None
    #: ``MetricsRegistry.as_dict()`` dump of what the unit recorded
    #: (None when the unit recorded nothing).
    metrics: dict | None = None
    #: ``SpanTracker.as_timeline()`` rows (telemetry side channel).
    spans: list | None = None
    wall_s: float | None = None
    #: ``CommandProfiler.as_dict()`` per-opcode attribution.
    profile: dict | None = None
    #: Dumped evidence nodes the unit's provenance ledger recorded
    #: (None pre-evidence envelopes decode with the default).
    evidence: list | None = None
    #: The key material (:func:`repro.cache.keys.unit_key_material`) —
    #: stored for stats/debugging, never re-hashed on the read path.
    material: dict = field(default_factory=dict)
    #: SHA-256 of ``pickle(value)`` at publish time; ``verify`` mode
    #: compares digests instead of objects (arrays, nested results).
    value_digest: str | None = None


def encode(envelope: CacheEnvelope) -> bytes:
    """Serialize *envelope* to the framed wire format."""
    # Shallow field dict, NOT dataclasses.asdict — asdict recurses and
    # would flatten a dataclass-typed unit value into a plain dict.
    body = pickle.dumps({f.name: getattr(envelope, f.name)
                         for f in fields(envelope)}, protocol=4)
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return MAGIC + crc.to_bytes(4, "big") + body


def decode(blob: bytes) -> CacheEnvelope:
    """Parse one framed envelope; raise :class:`CacheError` if invalid."""
    if len(blob) < len(MAGIC) + 4:
        raise CacheError("envelope truncated")
    if blob[:len(MAGIC)] != MAGIC:
        raise CacheError(
            f"bad envelope magic {blob[:len(MAGIC)]!r}")
    stored_crc = int.from_bytes(blob[len(MAGIC):len(MAGIC) + 4], "big")
    body = blob[len(MAGIC) + 4:]
    if (zlib.crc32(body) & 0xFFFFFFFF) != stored_crc:
        raise CacheError("envelope CRC mismatch (corrupt or torn write)")
    try:
        fields = pickle.loads(body)
        return CacheEnvelope(**fields)
    except Exception as error:
        raise CacheError(f"envelope unpickle failed: {error}") from error
