"""Cache keys: the content address of one work unit's result.

A result is safe to reuse exactly when every input that could change it
is part of the key.  For this repo's work units that closure is small
and enumerable, because PR 2's manifests already made results
reproducible from a recipe:

- the **unit id** and its derived **seed** (every RNG stream a unit
  uses is keyed off the unit id, never off scheduling),
- the **code revision** (``git describe --always --dirty --tags``) and
  the **Python version** (pickles and bytecode are version-scoped),
- a **fingerprint of the unit's entry-point callable** (module,
  qualname, bytecode, consts) so editing the function invalidates its
  results even inside one dirty working tree,
- the canonicalized **arguments, keyword arguments, and meta** of the
  unit — module id, :class:`~repro.eval.scale.EvalScale` operating
  point (the chip recipe selector), fault profile, positions, seeds.

Deliberately **not** part of the key: worker count, telemetry/profiler
configuration, log destinations — anything the determinism tests prove
cannot change a result.  Units whose arguments cannot be canonicalized
(open handles, lambdas with captured state, foreign objects) raise
:class:`Uncachable` and simply execute uncached; caching is an
optimization, never a correctness gate.
"""

from __future__ import annotations

import enum
import hashlib
import json
import platform
import types
from dataclasses import fields, is_dataclass

from ..obs.manifest import git_describe

#: Bump when key material changes meaning (old entries become misses).
KEY_SCHEMA = 1


class Uncachable(Exception):
    """A work unit whose inputs cannot be canonicalized into a key."""


def canonical(obj):
    """A JSON-stable canonical form of *obj*, or raise :class:`Uncachable`.

    Handles the value shapes work-unit arguments actually take:
    primitives, tuples/lists, dicts with string-able keys, (frozen)
    dataclasses such as ``EvalScale`` and ``InferenceConfig``, enums,
    numpy scalars/arrays, and nested combinations thereof.  Callables
    canonicalize to their code fingerprint.
    """
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr round-trips floats exactly; JSON may not.
        return ["__float__", repr(obj)]
    if isinstance(obj, bytes):
        return ["__bytes__", obj.hex()]
    if isinstance(obj, enum.Enum):
        return ["__enum__", type(obj).__qualname__, canonical(obj.value)]
    if is_dataclass(obj) and not isinstance(obj, type):
        body = {field.name: canonical(getattr(obj, field.name))
                for field in fields(obj)}
        return {"__dataclass__": type(obj).__qualname__, **body}
    if isinstance(obj, (tuple, list)):
        return [canonical(item) for item in obj]
    if isinstance(obj, (set, frozenset)):
        items = [canonical(item) for item in obj]
        try:
            return ["__set__", sorted(items, key=repr)]
        except TypeError as error:  # pragma: no cover — repr sorts
            raise Uncachable(f"unsortable set: {error}") from error
    if isinstance(obj, dict):
        out = {}
        for key in sorted(obj, key=str):
            if not isinstance(key, (str, int)):
                raise Uncachable(f"non-scalar dict key {key!r}")
            out[str(key)] = canonical(obj[key])
        return out
    # numpy scalars and (small) arrays, without importing numpy here.
    item = getattr(obj, "item", None)
    tolist = getattr(obj, "tolist", None)
    if tolist is not None and hasattr(obj, "dtype"):
        return ["__ndarray__", str(obj.dtype), tolist()]
    if item is not None and hasattr(obj, "dtype"):
        return ["__npscalar__", str(obj.dtype), canonical(item())]
    if callable(obj):
        return ["__callable__", callable_fingerprint(obj)]
    raise Uncachable(f"cannot canonicalize {type(obj).__qualname__}")


def callable_fingerprint(fn) -> str:
    """A stable fingerprint of a callable's identity *and* implementation.

    Hashes the module-qualified name plus the code object's bytecode,
    constants, and referenced names, so editing the entry point — even
    in a dirty tree where ``git describe`` cannot tell two states apart
    — changes the fingerprint and invalidates its cached results.
    Nested code objects (inner ``def``/``lambda`` constants) are walked
    structurally: their ``repr`` embeds a memory address, which would
    make the fingerprint differ between processes running identical
    code.  Builtins and callables without a code object hash by name
    only.
    """
    parts = [getattr(fn, "__module__", "?") or "?",
             getattr(fn, "__qualname__", None) or repr(fn)]
    code = getattr(fn, "__code__", None)
    if code is not None:
        _code_parts(code, parts)
    digest = hashlib.sha256("\x00".join(parts).encode("utf-8"))
    return digest.hexdigest()[:16]


def _code_parts(code, parts: list) -> None:
    parts.append(code.co_code.hex())
    parts.append(repr(code.co_names))
    for const in code.co_consts:
        if isinstance(const, types.CodeType):
            parts.append(const.co_name)
            _code_parts(const, parts)
        else:
            parts.append(repr(const))


def unit_key_material(unit, git: str | None = None) -> dict:
    """The full key recipe of one work unit, as a JSON-compatible dict.

    *unit* is a :class:`repro.parallel.WorkUnit` (duck-typed: anything
    with ``unit_id`` / ``seed`` / ``fn`` / ``args`` / ``kwargs`` /
    ``meta``).  Raises :class:`Uncachable` when an argument cannot be
    canonicalized.
    """
    return {
        "schema": KEY_SCHEMA,
        "unit": unit.unit_id,
        "seed": unit.seed,
        "git": git if git is not None else git_describe(),
        "python": platform.python_version(),
        "fn": callable_fingerprint(unit.fn),
        "args": canonical(tuple(unit.args)),
        "kwargs": canonical(dict(unit.kwargs)),
        "meta": canonical(dict(unit.meta)),
    }


def material_digest(material: dict) -> str:
    """The content address: SHA-256 over the canonical JSON material."""
    encoded = json.dumps(material, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def recipe_digest(material: dict) -> str:
    """The execution-identity digest behind in-flight dedup.

    Drops the fields that *name* a unit rather than change what it
    computes — the unit id, its derived seed, and the manifest meta;
    the callable never sees any of them at execution time.  Two units
    with equal recipe digests therefore compute the same value, so a
    run executes the first and fans its envelope out to the rest.
    The *store* key (:func:`material_digest` over the full material)
    keeps the unit id, so each alias still gets its own stored
    envelope for later warm runs.
    """
    recipe = {name: value for name, value in material.items()
              if name not in ("unit", "seed", "meta")}
    return material_digest(recipe)


def unit_key(unit, git: str | None = None) -> str:
    """Content-address one work unit (raises :class:`Uncachable`)."""
    return material_digest(unit_key_material(unit, git=git))
