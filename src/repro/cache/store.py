"""Content-addressed result store for work-unit envelopes.

Layout (git-style fan-out so directories stay small at thousands of
units):

    <root>/objects/<key[:2]>/<key>.rpc

Writes are atomic — encode to ``<name>.tmp-<pid>``, then
``os.replace`` — so a killed sweep can never leave a half-written
object where a later run would trust it; a torn write either vanishes
(tmp file) or fails the CRC and reads as a miss.  Reads touch the
object's mtime so :meth:`ResultCache.prune` can evict
least-recently-used first.

The store is deliberately dumb about concurrency: two processes
publishing the same key race benignly (same bytes, last replace wins),
and the in-flight dedup in :mod:`repro.parallel` already collapses
same-key units within a run.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import time
from pathlib import Path

from ..errors import CacheError
from ..obs.manifest import git_describe
from .envelope import CacheEnvelope, decode, encode
from .keys import (Uncachable, material_digest, recipe_digest,
                   unit_key_material)

#: Suffix of stored objects (RePro Cache).
OBJECT_SUFFIX = ".rpc"


def value_digest(value) -> str | None:
    """SHA-256 of the pickled value, or None when it cannot pickle."""
    try:
        blob = pickle.dumps(value, protocol=4)
    except Exception:
        return None
    return hashlib.sha256(blob).hexdigest()


class ResultCache:
    """A content-addressed store plus this run's hit/miss accounting.

    The counters (``hits`` / ``misses`` / ``dedups`` / ``stores`` /
    ``errors``) are deliberately **not** recorded into any
    :class:`~repro.obs.MetricsRegistry`: folded metrics are part of the
    byte-identity contract (a cold run would log misses where a warm
    run logs hits, so the histories would diverge).  They surface
    through the telemetry side channel, the structured log, and the
    history row's ``extra`` field instead — none of which are gated.

    *verify* arms sampled-hit verification in the engine: one hit per
    run is re-executed and its envelope diffed against the store.
    """

    def __init__(self, root, *, verify: bool = False):
        self.root = Path(root)
        self.verify = verify
        self.hits = 0
        self.misses = 0
        self.dedups = 0
        self.stores = 0
        self.errors = 0
        # One subprocess per store instance, not one per unit: every
        # unit in a run shares the same checkout by construction.
        self._git = git_describe()
        (self.root / "objects").mkdir(parents=True, exist_ok=True)

    # -- keying --------------------------------------------------------

    def key_material(self, unit) -> dict | None:
        """Key material for *unit*, or None when it is uncachable."""
        try:
            return unit_key_material(unit, git=self._git)
        except Uncachable:
            return None

    def key(self, unit) -> str | None:
        """Content address for *unit*, or None when it is uncachable."""
        keyed = self.keyed(unit)
        return keyed[0] if keyed is not None else None

    def keyed(self, unit) -> tuple[str, dict] | None:
        """``(key, material)`` for *unit*, or None when uncachable."""
        material = self.key_material(unit)
        if material is None:
            return None
        return material_digest(material), material

    def recipe_key(self, material: dict) -> str:
        """Execution-identity digest for in-flight dedup (drops the
        unit id / seed / meta — see :func:`recipe_digest`)."""
        return recipe_digest(material)

    # -- object IO -----------------------------------------------------

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / (key + OBJECT_SUFFIX)

    def lookup(self, key: str) -> CacheEnvelope | None:
        """Fetch a stored envelope; corrupt objects read as misses."""
        path = self._path(key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.misses += 1
            return None
        try:
            envelope = decode(blob)
        except CacheError:
            # Corrupt object: drop it so the re-executed result can
            # take its place, and treat this lookup as a miss.
            self.errors += 1
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        try:
            os.utime(path)  # LRU clock for prune()
        except OSError:
            pass
        return envelope

    def publish(self, envelope: CacheEnvelope) -> None:
        """Atomically store *envelope* under its key."""
        path = self._path(envelope.key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp-{os.getpid()}")
        try:
            tmp.write_bytes(encode(envelope))
            os.replace(tmp, path)
        except OSError:
            self.errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass
            return
        self.stores += 1

    def publish_unit(self, key: str, material: dict, unit_id: str, *,
                     value, metrics: dict | None = None,
                     spans: list | None = None,
                     wall_s: float | None = None,
                     profile: dict | None = None,
                     evidence: list | None = None) -> None:
        """Wrap one completed unit's result into an envelope and store
        it.  This is the engine-facing entry point: the engine stays
        duck-typed against the cache object and never constructs a
        :class:`CacheEnvelope` itself."""
        self.publish(CacheEnvelope(
            key=key, unit_id=unit_id, value=value, metrics=metrics,
            spans=spans, wall_s=wall_s, profile=profile,
            evidence=evidence,
            material=material, value_digest=value_digest(value)))

    def check_hit(self, envelope: CacheEnvelope, value,
                  metrics: dict | None) -> None:
        """Compare a re-executed result against a stored envelope.

        Raises :class:`CacheError` when they diverge — that means the
        cache key is missing an input and every hit is suspect, so the
        run must abort rather than silently serve stale results.
        """
        diverged = []
        if envelope.metrics != metrics:
            diverged.append("metrics")
        fresh_digest = value_digest(value)
        if (envelope.value_digest is not None
                and fresh_digest is not None
                and fresh_digest != envelope.value_digest):
            diverged.append("value")
        if diverged:
            raise CacheError(
                f"cache verify failed for {envelope.unit_id} "
                f"(key {envelope.key[:12]}): re-executed "
                f"{' and '.join(diverged)} diverge from the stored "
                f"envelope — the cache key is missing an input; "
                f"prune {self.root} and re-run")

    # -- run accounting ------------------------------------------------

    def note_dedup(self, count: int = 1) -> None:
        self.dedups += count

    def summary(self) -> dict:
        """This run's cache accounting (history ``extra`` payload)."""
        consulted = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "dedups": self.dedups,
            "stores": self.stores,
            "errors": self.errors,
            "hit_ratio": (round(self.hits / consulted, 4)
                          if consulted else 0.0),
        }

    # -- maintenance (CLI) ---------------------------------------------

    def _objects(self):
        objects_dir = self.root / "objects"
        if not objects_dir.is_dir():
            return
        for shard in sorted(objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.iterdir()):
                if path.suffix == OBJECT_SUFFIX:
                    yield path

    def stats(self) -> dict:
        """Store-wide statistics for ``python -m repro.cache stats``."""
        count = 0
        total_bytes = 0
        units: dict[str, int] = {}
        oldest = newest = None
        for path in self._objects():
            try:
                stat = path.stat()
                envelope = decode(path.read_bytes())
            except (OSError, CacheError):
                continue
            count += 1
            total_bytes += stat.st_size
            prefix = envelope.unit_id.split("/", 1)[0]
            units[prefix] = units.get(prefix, 0) + 1
            oldest = (stat.st_mtime if oldest is None
                      else min(oldest, stat.st_mtime))
            newest = (stat.st_mtime if newest is None
                      else max(newest, stat.st_mtime))
        return {
            "root": str(self.root),
            "objects": count,
            "bytes": total_bytes,
            "units_by_kind": dict(sorted(units.items())),
            "age_span_s": (round(newest - oldest, 1)
                           if count and oldest is not None else 0.0),
        }

    def prune(self, *, max_bytes: int | None = None,
              max_age_s: float | None = None,
              drop_all: bool = False) -> dict:
        """Evict objects: corrupt always, then by age, then LRU to fit.

        Returns ``{"removed": n, "kept": n, "bytes": remaining}``.
        """
        entries = []  # (mtime, size, path)
        removed = 0
        now = time.time()
        for path in self._objects():
            try:
                stat = path.stat()
            except OSError:
                continue
            try:
                decode(path.read_bytes())
            except (OSError, CacheError):
                path.unlink(missing_ok=True)
                removed += 1
                continue
            if drop_all or (max_age_s is not None
                            and now - stat.st_mtime > max_age_s):
                path.unlink(missing_ok=True)
                removed += 1
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        remaining = sum(size for _, size, _ in entries)
        if max_bytes is not None and remaining > max_bytes:
            entries.sort()  # oldest (least recently used) first
            while entries and remaining > max_bytes:
                _, size, path = entries.pop(0)
                path.unlink(missing_ok=True)
                remaining -= size
                removed += 1
        return {"removed": removed, "kept": len(entries),
                "bytes": remaining}

    def verify_store(self) -> dict:
        """Decode every object and re-check its value digest.

        Returns ``{"checked": n, "corrupt": [keys], "stale": [keys]}``
        where *corrupt* failed framing/CRC/unpickle and *stale* have a
        value that no longer matches its recorded digest.
        """
        checked = 0
        corrupt: list[str] = []
        stale: list[str] = []
        for path in self._objects():
            key = path.stem
            try:
                envelope = decode(path.read_bytes())
            except (OSError, CacheError):
                corrupt.append(key)
                continue
            checked += 1
            if envelope.key != key:
                corrupt.append(key)
                continue
            if envelope.value_digest is not None:
                digest = value_digest(envelope.value)
                if digest is not None and digest != envelope.value_digest:
                    stale.append(key)
        return {"checked": checked, "corrupt": corrupt, "stale": stale}
