"""Cache maintenance CLI: ``python -m repro.cache <cmd> <dir>``.

Subcommands:

``stats``
    Object count, total bytes, per-harness breakdown, age span.
``prune``
    Evict corrupt objects always; ``--max-age-days`` evicts by age,
    ``--max-bytes`` evicts least-recently-used down to the budget,
    ``--all`` empties the store.
``verify``
    Decode every object (framing + CRC + unpickle) and re-check each
    value against its stored digest; exits 1 when anything is corrupt
    or stale, 0 on a clean store.

All subcommands print one JSON object on stdout so CI can archive the
output as an artifact.
"""

from __future__ import annotations

import argparse
import json
import sys

from .store import ResultCache


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cache",
        description="Inspect and maintain a repro result cache.")
    sub = parser.add_subparsers(dest="command", required=True)

    stats = sub.add_parser("stats", help="summarize the store")
    stats.add_argument("cache", help="cache directory")

    prune = sub.add_parser("prune", help="evict cache objects")
    prune.add_argument("cache", help="cache directory")
    prune.add_argument("--max-bytes", type=int, default=None,
                       help="evict LRU objects down to this many bytes")
    prune.add_argument("--max-age-days", type=float, default=None,
                       help="evict objects unused for this many days")
    prune.add_argument("--all", action="store_true",
                       help="empty the store")

    verify = sub.add_parser(
        "verify", help="integrity-check every stored envelope")
    verify.add_argument("cache", help="cache directory")

    args = parser.parse_args(argv)
    cache = ResultCache(args.cache)

    if args.command == "stats":
        print(json.dumps(cache.stats(), indent=2, sort_keys=True))
        return 0
    if args.command == "prune":
        max_age_s = (args.max_age_days * 86400.0
                     if args.max_age_days is not None else None)
        report = cache.prune(max_bytes=args.max_bytes,
                             max_age_s=max_age_s, drop_all=args.all)
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    report = cache.verify_store()
    print(json.dumps(report, indent=2, sort_keys=True))
    return 1 if report["corrupt"] or report["stale"] else 0


if __name__ == "__main__":
    sys.exit(main())
