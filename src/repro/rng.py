"""Deterministic random-stream derivation.

The simulator must generate *stable* per-row properties (weak cells,
retention times, RowHammer thresholds) without storing them for every row
of every bank: a 64K-row bank would otherwise need tens of megabytes of
state before a single experiment runs.  Instead, every row's properties
are drawn from a PCG64 stream whose seed is derived from a hierarchical
key such as ``("module", serial, "bank", 3, "row", 4711, "retention")``.

Key derivation uses BLAKE2b (stable across processes and Python versions,
unlike the built-in ``hash``), so a module with a given serial number
behaves identically in every run, every test, and every benchmark.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

KeyPart = int | str | bytes | float


def derive_seed(*parts: KeyPart) -> int:
    """Derive a stable 64-bit seed from a hierarchical key.

    >>> derive_seed("mod", 7, "row", 42) == derive_seed("mod", 7, "row", 42)
    True
    >>> derive_seed("a", 1) != derive_seed("a", 2)
    True
    """
    h = hashlib.blake2b(digest_size=8)
    for part in parts:
        if isinstance(part, bytes):
            raw = b"b" + part
        elif isinstance(part, str):
            raw = b"s" + part.encode("utf-8")
        elif isinstance(part, bool):  # before int: bool subclasses int
            raw = b"o" + (b"1" if part else b"0")
        elif isinstance(part, int):
            raw = b"i" + str(part).encode("ascii")
        elif isinstance(part, float):
            raw = b"f" + repr(part).encode("ascii")
        else:
            raise TypeError(f"unsupported key part type: {type(part)!r}")
        h.update(len(raw).to_bytes(4, "little"))
        h.update(raw)
    return int.from_bytes(h.digest(), "little")


def stream(*parts: KeyPart) -> np.random.Generator:
    """Return a fresh PCG64 generator for the hierarchical key *parts*."""
    return np.random.Generator(np.random.PCG64(derive_seed(*parts)))


class SeedSequenceFactory:
    """Convenience factory that prefixes every derived stream with a root key.

    A :class:`~repro.dram.chip.DramChip` owns one factory keyed by the
    module serial; all device randomness (cell maps, sampling TRR, etc.)
    flows through it so that two chips with the same serial are bit-exact
    replicas and two chips with different serials are independent.
    """

    def __init__(self, *root: KeyPart) -> None:
        self._root: tuple[KeyPart, ...] = tuple(root)

    @property
    def root(self) -> tuple[KeyPart, ...]:
        return self._root

    def seed(self, *parts: KeyPart) -> int:
        return derive_seed(*self._root, *parts)

    def stream(self, *parts: KeyPart) -> np.random.Generator:
        return stream(*self._root, *parts)

    def child(self, *parts: KeyPart) -> "SeedSequenceFactory":
        """Return a factory rooted one level deeper."""
        return SeedSequenceFactory(*self._root, *parts)


def choice_without(rng: np.random.Generator, low: int, high: int,
                   exclude: Iterable[int], size: int) -> list[int]:
    """Sample *size* distinct integers from ``[low, high)`` avoiding *exclude*.

    Used e.g. to pick dummy rows far from profiled rows.  Raises
    ``ValueError`` if the candidate space is too small.
    """
    excluded = set(exclude)
    available = (high - low) - len([x for x in excluded if low <= x < high])
    if available < size:
        raise ValueError(
            f"cannot sample {size} rows from [{low}, {high}) "
            f"with {len(excluded)} exclusions")
    picked: list[int] = []
    seen = set(excluded)
    while len(picked) < size:
        candidate = int(rng.integers(low, high))
        if candidate in seen:
            continue
        seen.add(candidate)
        picked.append(candidate)
    return picked
