"""The 45 DDR4 modules of Table 1.

Every module row of the paper's Table 1 is encoded here: organization,
date code, implanted HC_first (interpolated across each group's reported
range), TRR version, and the paper-reported result columns used only for
the EXPERIMENTS.md comparison.

A handful of modules are given non-identity row mappings so the §5.3
mapping reverse-engineering stage has real work to do; the paper does not
report per-module decoder layouts, so this is an implant choice
(documented in DESIGN.md).
"""

from __future__ import annotations

from ..errors import ConfigError
from .spec import ModuleSpec, PaperResults, TrrVersion


def _interpolate(low: int, high: int, index: int, count: int) -> int:
    """Spread *count* values evenly across [low, high]."""
    if count == 1:
        return low
    return low + (high - low) * index // (count - 1)


def _group(prefix: str, first: int, last: int, *, date: str, density: int,
           ranks: int, banks: int, pins: int, hc_range: tuple[int, int],
           version: TrrVersion, vulnerable: tuple[float, float],
           flips: tuple[float, float], cycle: int = 8192,
           paired: bool = False, mapping: str = "direct"
           ) -> list[ModuleSpec]:
    vendor = prefix
    count = last - first + 1
    specs = []
    for i in range(count):
        specs.append(ModuleSpec(
            module_id=f"{prefix}{first + i}",
            vendor=vendor,
            date_code=date,
            density_gbit=density,
            ranks=ranks,
            num_banks=banks,
            pins=pins,
            hc_first=_interpolate(hc_range[0], hc_range[1], i, count),
            trr_version=version,
            refresh_cycle_refs=cycle,
            mapping_scheme=mapping,
            paired_rows=paired,
            paper=PaperResults(
                hc_first_range=hc_range,
                vulnerable_rows_pct_range=vulnerable,
                max_flips_per_row_per_hammer_range=flips),
        ))
    return specs


def _build_registry() -> dict[str, ModuleSpec]:
    specs: list[ModuleSpec] = []
    # ---- Vendor A (counter-based TRR, 3758-REF refresh pass: Obs A8) ----
    specs += _group("A", 0, 0, date="19-50", density=8, ranks=1, banks=16,
                    pins=8, hc_range=(16_000, 16_000),
                    version=TrrVersion.A_TRR1, cycle=3758,
                    vulnerable=(73.3, 73.3), flips=(1.16, 1.16))
    specs += _group("A", 1, 5, date="19-36", density=8, ranks=1, banks=8,
                    pins=16, hc_range=(13_000, 15_000),
                    version=TrrVersion.A_TRR1, cycle=3758,
                    mapping="bit_swap_0_1",
                    vulnerable=(99.2, 99.4), flips=(2.32, 4.73))
    specs += _group("A", 6, 7, date="19-45", density=8, ranks=1, banks=8,
                    pins=16, hc_range=(13_000, 15_000),
                    version=TrrVersion.A_TRR1, cycle=3758,
                    vulnerable=(99.3, 99.4), flips=(2.12, 3.86))
    specs += _group("A", 8, 9, date="20-07", density=8, ranks=1, banks=16,
                    pins=8, hc_range=(12_000, 14_000),
                    version=TrrVersion.A_TRR1, cycle=3758,
                    vulnerable=(74.6, 75.0), flips=(1.96, 2.96))
    specs += _group("A", 10, 12, date="19-51", density=8, ranks=1, banks=16,
                    pins=8, hc_range=(12_000, 13_000),
                    version=TrrVersion.A_TRR1, cycle=3758,
                    vulnerable=(74.6, 75.0), flips=(1.48, 2.86))
    specs += _group("A", 13, 14, date="20-31", density=8, ranks=1, banks=8,
                    pins=16, hc_range=(11_000, 14_000),
                    version=TrrVersion.A_TRR2, cycle=3758,
                    vulnerable=(94.3, 98.6), flips=(1.53, 2.78))
    # ---- Vendor B (sampling-based TRR) ----
    specs += _group("B", 0, 0, date="18-22", density=4, ranks=1, banks=16,
                    pins=8, hc_range=(44_000, 44_000),
                    version=TrrVersion.B_TRR1,
                    vulnerable=(99.9, 99.9), flips=(2.13, 2.13))
    specs += _group("B", 1, 4, date="20-17", density=4, ranks=1, banks=16,
                    pins=8, hc_range=(159_000, 192_000),
                    version=TrrVersion.B_TRR1,
                    vulnerable=(23.3, 51.2), flips=(0.06, 0.11))
    specs += _group("B", 5, 6, date="16-48", density=4, ranks=1, banks=16,
                    pins=8, hc_range=(44_000, 50_000),
                    version=TrrVersion.B_TRR1,
                    vulnerable=(99.9, 99.9), flips=(1.85, 2.03))
    specs += _group("B", 7, 7, date="19-06", density=8, ranks=2, banks=16,
                    pins=8, hc_range=(20_000, 20_000),
                    version=TrrVersion.B_TRR1,
                    vulnerable=(99.9, 99.9), flips=(31.14, 31.14))
    specs += _group("B", 8, 8, date="18-03", density=4, ranks=1, banks=16,
                    pins=8, hc_range=(43_000, 43_000),
                    version=TrrVersion.B_TRR1,
                    vulnerable=(99.9, 99.9), flips=(2.57, 2.57))
    specs += _group("B", 9, 12, date="19-48", density=8, ranks=1, banks=16,
                    pins=8, hc_range=(42_000, 65_000),
                    version=TrrVersion.B_TRR2, mapping="xor_1_0",
                    vulnerable=(36.3, 38.9), flips=(16.83, 24.26))
    specs += _group("B", 13, 14, date="20-08", density=4, ranks=1, banks=16,
                    pins=8, hc_range=(11_000, 14_000),
                    version=TrrVersion.B_TRR3,
                    vulnerable=(99.9, 99.9), flips=(16.20, 18.12))
    # ---- Vendor C (window-based TRR; C0-8 pair-isolated rows) ----
    specs += _group("C", 0, 3, date="16-48", density=4, ranks=1, banks=16,
                    pins=8, hc_range=(137_000, 194_000),
                    version=TrrVersion.C_TRR1, paired=True,
                    vulnerable=(1.0, 23.2), flips=(0.05, 0.15))
    specs += _group("C", 4, 6, date="17-12", density=8, ranks=1, banks=16,
                    pins=8, hc_range=(130_000, 150_000),
                    version=TrrVersion.C_TRR1, paired=True,
                    vulnerable=(7.8, 12.0), flips=(0.06, 0.08))
    specs += _group("C", 7, 8, date="20-31", density=8, ranks=1, banks=8,
                    pins=16, hc_range=(40_000, 44_000),
                    version=TrrVersion.C_TRR1, paired=True,
                    vulnerable=(39.8, 41.8), flips=(9.66, 14.56))
    specs += _group("C", 9, 11, date="20-31", density=8, ranks=1, banks=8,
                    pins=16, hc_range=(42_000, 53_000),
                    version=TrrVersion.C_TRR2,
                    vulnerable=(99.7, 99.7), flips=(9.30, 32.04))
    specs += _group("C", 12, 14, date="20-46", density=16, ranks=1, banks=8,
                    pins=16, hc_range=(6_000, 7_000),
                    version=TrrVersion.C_TRR3,
                    vulnerable=(99.9, 99.9), flips=(4.91, 12.64))
    registry = {spec.module_id: spec for spec in specs}
    if len(registry) != len(specs):
        raise AssertionError("duplicate module ids in registry")
    return registry


_REGISTRY = _build_registry()


def all_modules() -> list[ModuleSpec]:
    """All 45 Table 1 modules, in A0..C14 order."""
    return list(_REGISTRY.values())


def get_module(module_id: str) -> ModuleSpec:
    """Look up one module by id (e.g. ``"A5"``)."""
    try:
        return _REGISTRY[module_id]
    except KeyError:
        raise ConfigError(
            f"unknown module {module_id!r}; known: {sorted(_REGISTRY)}"
        ) from None


def modules_by_vendor(vendor: str) -> list[ModuleSpec]:
    """All modules of one vendor ("A", "B" or "C")."""
    found = [spec for spec in _REGISTRY.values() if spec.vendor == vendor]
    if not found:
        raise ConfigError(f"unknown vendor {vendor!r}")
    return found


def modules_by_version(version: TrrVersion) -> list[ModuleSpec]:
    """All modules implementing one TRR version."""
    return [spec for spec in _REGISTRY.values()
            if spec.trr_version is version]


#: The representative modules the paper uses for Figure 8 (footnote 15).
FIGURE8_MODULES = ("A5", "B8", "C7")
