"""Module specifications: one per DDR4 module of Table 1.

A :class:`ModuleSpec` carries two kinds of information:

* **Organization and implant parameters** — what the simulator needs to
  build a chip that behaves like the module (banks, rows, HC_first, TRR
  version and its parameters, refresh cycle, row mapping).
* **Paper-reported results** — the Table 1 measurement columns
  (HC_first range, % vulnerable rows, max bit flips per row per hammer),
  kept for the EXPERIMENTS.md paper-vs-measured comparison.  These never
  influence the simulation.

``build_module`` turns a spec into a ready :class:`DramChip` with its TRR
mechanism attached; ``sim_rows_per_bank`` scales bank sizes down for
tractable sweeps while preserving every behaviour U-TRR probes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..dram import (DeviceConfig, DisturbanceConfig, DramChip,
                    RetentionConfig)
from ..errors import ConfigError
from ..rng import derive_seed
from ..trr import (CounterBasedTrr, NoTrr, SamplingBasedTrr, TrrMechanism,
                   WindowBasedTrr)


class TrrVersion(enum.Enum):
    """TRR implementations observed across the 45 modules (Table 1)."""

    A_TRR1 = "A_TRR1"
    A_TRR2 = "A_TRR2"
    B_TRR1 = "B_TRR1"
    B_TRR2 = "B_TRR2"
    B_TRR3 = "B_TRR3"
    C_TRR1 = "C_TRR1"
    C_TRR2 = "C_TRR2"
    C_TRR3 = "C_TRR3"
    NONE = "NONE"

    @property
    def vendor(self) -> str:
        return self.value[0] if self.value != "NONE" else "-"


@dataclass(frozen=True)
class PaperResults:
    """Table 1 measurement columns, as the paper reports them."""

    hc_first_range: tuple[int, int]
    vulnerable_rows_pct_range: tuple[float, float]
    max_flips_per_row_per_hammer_range: tuple[float, float]


@dataclass(frozen=True)
class ModuleSpec:
    """Full description of one DDR4 module under test."""

    module_id: str               #: e.g. "A5", "B13"
    vendor: str                  #: "A" | "B" | "C"
    date_code: str               #: manufacturing date, "yy-ww"
    density_gbit: int
    ranks: int
    num_banks: int
    pins: int                    #: data pins per chip (x8 / x16)
    hc_first: int                #: implanted double-sided HC_first
    trr_version: TrrVersion
    #: REFs per full regular-refresh pass (Obs A8: vendor A uses 3758).
    refresh_cycle_refs: int = 8192
    mapping_scheme: str = "direct"
    paired_rows: bool = False    #: vendor C modules C0-8
    paper: PaperResults | None = None

    def __post_init__(self) -> None:
        if self.vendor not in ("A", "B", "C", "-"):
            raise ConfigError(f"unknown vendor {self.vendor!r}")
        if self.hc_first <= 0:
            raise ConfigError("hc_first must be positive")
        if self.num_banks not in (8, 16):
            raise ConfigError("DDR4 chips have 8 or 16 banks")

    @property
    def nominal_rows_per_bank(self) -> int:
        """Row count of the real module's banks (§7.3: 32K vs 64K)."""
        per_density = {4: 2**19, 8: 2**20, 16: 2**21}  # rows per chip
        return per_density[self.density_gbit] // self.num_banks // 2

    def trr_parameters(self) -> dict:
        """Implant parameters of this module's TRR version."""
        version = self.trr_version
        table = {
            TrrVersion.A_TRR1: dict(kind="counter", trr_ref_period=9,
                                    table_size=16, neighbor_radius=2),
            TrrVersion.A_TRR2: dict(kind="counter", trr_ref_period=9,
                                    table_size=16, neighbor_radius=1),
            TrrVersion.B_TRR1: dict(kind="sampling", trr_ref_period=4,
                                    per_bank=False, sample_period=500),
            TrrVersion.B_TRR2: dict(kind="sampling", trr_ref_period=9,
                                    per_bank=False, sample_period=1500),
            TrrVersion.B_TRR3: dict(kind="sampling", trr_ref_period=2,
                                    per_bank=True, neighbor_radius=2,
                                    sample_period=500),
            TrrVersion.C_TRR1: dict(kind="window", trr_ref_period=17,
                                    window_acts=2000),
            TrrVersion.C_TRR2: dict(kind="window", trr_ref_period=9,
                                    window_acts=2000),
            TrrVersion.C_TRR3: dict(kind="window", trr_ref_period=8,
                                    window_acts=1000),
            TrrVersion.NONE: dict(kind="none"),
        }
        return table[version]

    def make_trr(self) -> TrrMechanism:
        """Instantiate this module's TRR mechanism."""
        params = dict(self.trr_parameters())
        kind = params.pop("kind")
        seed = derive_seed("module-trr", self.module_id)
        if kind == "counter":
            return CounterBasedTrr(**params)
        if kind == "sampling":
            return SamplingBasedTrr(seed=seed, **params)
        if kind == "window":
            return WindowBasedTrr(seed=seed, **params)
        return NoTrr()

    def device_config(self, rows_per_bank: int | None = None,
                      row_bits: int = 8192,
                      weak_cells_per_row_mean: float = 0.12,
                      vrt_fraction: float = 0.12) -> DeviceConfig:
        """Build the simulator configuration for this module.

        *rows_per_bank* defaults to the real module's bank size; pass a
        smaller value (power of two if the mapping scheme needs one) for
        tractable sweeps.
        """
        rows = rows_per_bank or self.nominal_rows_per_bank
        cycle = min(self.refresh_cycle_refs, rows)
        return DeviceConfig(
            name=f"module-{self.module_id}",
            serial=derive_seed("module-serial", self.module_id),
            num_banks=self.num_banks,
            rows_per_bank=rows,
            row_bits=row_bits,
            mapping_scheme=self.mapping_scheme,
            retention=RetentionConfig(
                weak_cells_per_row_mean=weak_cells_per_row_mean,
                vrt_fraction=vrt_fraction),
            disturbance=DisturbanceConfig(
                hc_first=self.hc_first,
                paired_coupling=self.paired_rows),
            refresh_cycle_refs=cycle,
        )


def build_module(spec: ModuleSpec, rows_per_bank: int | None = None,
                 row_bits: int = 8192, **config_overrides) -> DramChip:
    """Construct the simulated chip for *spec*, TRR attached and hidden."""
    config = spec.device_config(rows_per_bank=rows_per_bank,
                                row_bits=row_bits, **config_overrides)
    return DramChip(config, spec.make_trr())
