"""Module registry: the 45 DDR4 modules of Table 1 as buildable specs."""

from .registry import (FIGURE8_MODULES, all_modules, get_module,
                       modules_by_vendor, modules_by_version)
from .spec import ModuleSpec, PaperResults, TrrVersion, build_module

__all__ = [
    "FIGURE8_MODULES",
    "ModuleSpec",
    "PaperResults",
    "TrrVersion",
    "all_modules",
    "build_module",
    "get_module",
    "modules_by_vendor",
    "modules_by_version",
]
