"""Exception hierarchy for the U-TRR reproduction library.

Every error raised by :mod:`repro` derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing configuration mistakes from protocol violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """An invalid configuration value was supplied by the caller."""


class TimingViolationError(ReproError):
    """A DDR command sequence violated a DRAM timing constraint."""


class ProtocolError(ReproError):
    """A DDR command was issued in an illegal bank/row state.

    For example: activating a bank that already has an open row, or
    reading from a bank with no open row.
    """


class ProfilingError(ReproError):
    """Row Scout could not satisfy the requested profiling configuration."""


class TransientFaultError(ReproError):
    """A recoverable fault (noise, dropped command, VRT excursion) was
    detected mid-operation.

    Raised by hardened pipeline stages when an observation is too noisy
    to use but retrying is expected to succeed.  Callers that cannot
    retry should treat it as the hard failure of their enclosing stage.
    """


class RetryExhaustedError(ProfilingError):
    """A retry/escalation loop ran out of budget without a clean result.

    Subclasses :class:`ProfilingError` so legacy callers that catch the
    hard profiling failure keep working; new callers can distinguish
    "never possible" from "possible but the substrate was too noisy".
    """


class CacheError(ReproError):
    """A cached result envelope is corrupt, stale, or diverges from a
    re-executed reference.

    Raised by the envelope codec on framing/CRC failures (the store
    treats those as misses) and by sampled-hit verification when a
    cached envelope no longer matches what the unit computes — the one
    case that must abort the run, because it means the cache key is
    missing an input.
    """


class ExperimentError(ReproError):
    """A TRR Analyzer experiment was configured or executed incorrectly."""


class MappingError(ReproError):
    """A logical/physical row address translation failed."""


class DecodingError(ReproError):
    """An ECC codeword could not be decoded (uncorrectable error)."""


class AttackConfigError(ConfigError):
    """A RowHammer access pattern was configured inconsistently."""
