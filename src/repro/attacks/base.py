"""Access-pattern interface and attack context.

An :class:`AccessPattern` describes what the attacker does within one
TRR-period *window* (``trr_period`` REF intervals): which rows get
hammered, in what order, with what dummy-row diversion.  The executor
repeats windows and measures the victim damage.

Patterns address rows physically (that is where adjacency lives) and
translate to logical addresses through the mapping recovered by §5.3
reverse engineering.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from ..dram.mapping import RowMapping
from ..errors import AttackConfigError
from .session import AttackSession


@dataclass(frozen=True)
class AttackContext:
    """Everything a pattern needs to aim at one victim row."""

    bank: int
    victim_physical: int
    mapping: RowMapping
    trr_period: int
    #: Same-bank dummy rows (physical), far from the victim.
    dummy_rows: tuple[int, ...] = ()
    #: One dummy row per bank (physical) for multi-bank diversion.
    dummy_banks: dict[int, int] = field(default_factory=dict)
    #: Pair-isolated coupling (vendor C modules C0-8): only the victim's
    #: odd-addressed upper neighbor disturbs it, so all hammering budget
    #: goes there (Obs C3, 7.3).
    paired: bool = False

    def __post_init__(self) -> None:
        if self.trr_period < 1:
            raise AttackConfigError("trr_period must be >= 1")
        if not 0 <= self.victim_physical < self.mapping.num_rows:
            raise AttackConfigError("victim row out of range")

    def logical(self, physical: int) -> int:
        return self.mapping.to_logical(physical)

    def aggressor_pair(self) -> tuple[int, int]:
        """Physical double-sided aggressors around the victim."""
        victim = self.victim_physical
        low = victim - 1 if victim > 0 else victim + 2
        high = victim + 1 if victim + 1 < self.mapping.num_rows \
            else victim - 2
        return low, high

    def aggressors(self) -> tuple[int, ...]:
        """Physical aggressors hammered for this victim.

        Always the double-sided pair: on pair-isolated chips an *even*
        victim's pair (v-1, v+1) is exactly the two odd-addressed
        aggressors of 7.3 — only v+1 couples to v, but alternating
        between the two keeps every activation at full disturbance
        strength (no cascaded-run attenuation).
        """
        if self.paired and self.victim_physical % 2:
            raise AttackConfigError(
                f"victim {self.victim_physical} is odd; pair-isolated "
                "chips only expose even victims (their aggressors are "
                "odd-addressed)")
        return self.aggressor_pair()

    def dummy_logical_rows(self) -> tuple[int, ...]:
        return tuple(self.logical(row) for row in self.dummy_rows)


def default_context(bank: int, victim_physical: int, mapping: RowMapping,
                    trr_period: int, num_banks: int,
                    dummy_count: int = 16,
                    paired: bool = False) -> AttackContext:
    """Build a context with deterministic dummy rows far from the victim.

    Dummies sit >= 1000 rows away (modulo bank size), spaced so their own
    blast radii never overlap the victim or each other.
    """
    num_rows = mapping.num_rows
    dummies = []
    base = (victim_physical + num_rows // 2) % num_rows
    for i in range(dummy_count):
        row = (base + 8 * i) % num_rows
        dummies.append(row)
    dummy_banks = {b: (victim_physical + num_rows // 3) % num_rows
                   for b in range(min(4, num_banks))}
    return AttackContext(bank=bank, victim_physical=victim_physical,
                         mapping=mapping, trr_period=trr_period,
                         dummy_rows=tuple(dummies),
                         dummy_banks=dummy_banks, paired=paired)


class AccessPattern(ABC):
    """One attacker strategy, executed window by window."""

    name: str = "pattern"

    @abstractmethod
    def aggressor_physical(self, context: AttackContext) -> tuple[int, ...]:
        """Rows whose data the executor should initialize as aggressors."""

    @abstractmethod
    def run_window(self, session: AttackSession,
                   context: AttackContext) -> None:
        """Execute one TRR-period window (must end REF-aligned)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name}>"
