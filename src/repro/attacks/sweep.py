"""Sweeps: HC_first measurement, hammer-count sweeps, bank vulnerability.

These drive the paper's quantitative results:

* :func:`measure_hc_first` — Table 1's HC_first column (minimum
  double-sided activations per aggressor for the first bit flip, refresh
  disabled).
* :func:`choose_pattern` — §7.1 attack synthesis from an inferred TRR
  profile: the attacker only uses what U-TRR recovered.
* :func:`run_hammer_sweep` — Figure 8 (flips-per-row distribution vs
  hammers per aggressor per REF).
* :func:`run_vulnerability_sweep` — Figures 9 and 10 (fraction of
  vulnerable rows; per-row flip positions for the ECC analysis).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.inference import InferredTrrProfile
from ..core.mapping_re import CouplingTopology
from ..dram import HammerMode
from ..dram.mapping import RowMapping
from ..dram.patterns import AllOnes, DataPattern
from ..errors import AttackConfigError
from ..softmc import SoftMCHost
from .base import AccessPattern, default_context
from .executor import AttackExecutor
from .vendor_a import VendorAPattern
from .vendor_b import VendorBPattern
from .vendor_c import VendorCPattern


def measure_hc_first(host: SoftMCHost, mapping: RowMapping, bank: int = 0,
                     sample_rows: tuple[int, ...] | None = None,
                     hi: int = 400_000,
                     pattern: DataPattern | None = None,
                     paired: bool = False) -> int:
    """Minimum double-sided hammers per aggressor for the first bit flip.

    Refresh stays disabled throughout (the paper's HC_first protocol), so
    TRR never gets a REF to act on.  Binary-searches each sampled victim
    row and returns the bank minimum.
    """
    pattern = pattern or AllOnes()
    num_rows = host.rows_per_bank
    if sample_rows is None:
        step = max(num_rows // 24, 1)
        sample_rows = tuple(row for row in range(step, num_rows - 2, step))
    if paired:
        sample_rows = tuple(row if row % 2 == 0 else row - 1
                            for row in sample_rows)

    def flips(victim: int, hammers: int) -> bool:
        host.write_row(bank, mapping.to_logical(victim), pattern)
        low, high = victim - 1, victim + 1
        host.hammer(bank, [(mapping.to_logical(low), hammers),
                           (mapping.to_logical(high), hammers)],
                    HammerMode.INTERLEAVED)
        return bool(host.read_row_mismatches(bank,
                                             mapping.to_logical(victim)))

    best = hi
    for victim in sample_rows:
        if not flips(victim, hi):
            continue
        lo, cur_hi = 1, hi
        while lo < cur_hi:
            mid = (lo + cur_hi) // 2
            if flips(victim, mid):
                cur_hi = mid
            else:
                lo = mid + 1
        best = min(best, lo)
    return best


def choose_pattern(profile: InferredTrrProfile,
                   aggressor_hammers: int | None = None) -> AccessPattern:
    """§7.1 attack synthesis: pick the custom pattern that defeats the
    reverse-engineered mechanism, using only inferred facts."""
    if profile.detection == "counter":
        if aggressor_hammers is None:
            return VendorAPattern()
        return VendorAPattern(aggressor_hammers=aggressor_hammers)
    if profile.detection == "sampling":
        return VendorBPattern(aggressor_hammers=aggressor_hammers or 80,
                              same_bank_dummy=bool(profile.per_bank))
    if profile.detection == "window":
        return VendorCPattern()
    raise AttackConfigError(
        f"no custom pattern for detection kind {profile.detection!r}")


def victim_positions(num_rows: int, count: int,
                     coupling: CouplingTopology, margin: int = 8
                     ) -> list[int]:
    """Evenly spread victim rows; even-addressed on pair-isolated chips
    (only their upper aggressor is odd and therefore disturbs them)."""
    step = max((num_rows - 2 * margin) // count, 1)
    rows = []
    for i in range(count):
        row = margin + i * step
        if row >= num_rows - margin:
            break
        if coupling is CouplingTopology.PAIRED and row % 2:
            row -= 1
        rows.append(row)
    return sorted(set(rows))


@dataclass
class HammerSweepResult:
    """Figure 8 raw data: hammers/aggressor/REF -> flips per victim row."""

    flips_by_hammers: dict[int, list[int]] = field(default_factory=dict)

    def quartiles(self, hammers: int) -> tuple[float, float, float]:
        values = sorted(self.flips_by_hammers[hammers])
        if not values:
            return (0.0, 0.0, 0.0)

        def pick(q: float) -> float:
            index = q * (len(values) - 1)
            low = int(index)
            high = min(low + 1, len(values) - 1)
            return values[low] + (values[high] - values[low]) * (index - low)

        return pick(0.25), pick(0.5), pick(0.75)


def run_hammer_sweep(host: SoftMCHost, mapping: RowMapping,
                     pattern_factory, hammer_counts, positions,
                     trr_period: int, windows: int, bank: int = 0,
                     dummy_count: int = 16, paired: bool = False,
                     host_factory=None) -> HammerSweepResult:
    """Figure 8: sweep hammers-per-aggressor, measure flips per row.

    *host_factory* (when given) builds a fresh chip per attack run —
    the power-cycle-between-tests hygiene of real rig experiments, which
    keeps one run's TRR-internal leftovers from biasing the next.
    """
    result = HammerSweepResult()
    executor = AttackExecutor(host, mapping)
    for hammers in hammer_counts:
        pattern = pattern_factory(hammers)
        flips = []
        for victim in positions:
            if host_factory is not None:
                host, mapping = host_factory()
                executor = AttackExecutor(host, mapping)
            context = default_context(bank, victim, mapping, trr_period,
                                      host.num_banks, dummy_count,
                                      paired=paired)
            run = executor.run(pattern, context, windows)
            flips.append(run.flips_at(victim))
        result.flips_by_hammers[hammers] = flips
    return result


@dataclass
class VulnerabilityResult:
    """Figure 9/10 raw data for one module."""

    positions: list[int]
    flips_by_row: dict[int, list[int]]  #: physical row -> flip positions
    windows: int

    @property
    def vulnerable_fraction(self) -> float:
        if not self.positions:
            return 0.0
        hit = sum(1 for row in self.positions
                  if self.flips_by_row.get(row))
        return hit / len(self.positions)

    @property
    def total_flips(self) -> int:
        return sum(len(f) for f in self.flips_by_row.values())

    def max_flips_per_row(self) -> int:
        return max((len(f) for f in self.flips_by_row.values()), default=0)


def run_vulnerability_sweep(host: SoftMCHost, mapping: RowMapping,
                            pattern: AccessPattern, positions,
                            trr_period: int, windows: int, bank: int = 0,
                            dummy_count: int = 16, paired: bool = False,
                            host_factory=None) -> VulnerabilityResult:
    """Figures 9/10: attack every sampled victim position, record flips.

    *host_factory* (when given) builds a fresh chip per position — the
    power-cycle-between-tests hygiene of real rig experiments.
    """
    executor = AttackExecutor(host, mapping)
    flips_by_row: dict[int, list[int]] = {}
    for victim in positions:
        if host_factory is not None:
            host, mapping = host_factory()
            executor = AttackExecutor(host, mapping)
        context = default_context(bank, victim, mapping, trr_period,
                                  host.num_banks, dummy_count,
                                  paired=paired)
        run = executor.run(pattern, context, windows)
        flips_by_row[victim] = run.victim_flips[victim]
    return VulnerabilityResult(positions=list(positions),
                               flips_by_row=flips_by_row, windows=windows)
