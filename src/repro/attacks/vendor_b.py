"""Custom pattern against vendor B's sampling-based TRR (§7.1).

Strategy recovered via U-TRR: a single sampled row, shared across banks
(B_TRR1/B_TRR2), fed by a deterministic every-Nth-ACT sampler, and never
cleared by a TRR-induced refresh (Obs B3-B5).  Hammer the aggressors
immediately after a TRR-capable REF, then spend the rest of the window
activating dummy rows — in up to four banks in parallel, the most the
tFAW timing allows (footnote 12) — so the *last* sample before the next
TRR-capable REF always lands on a dummy.  A dummy phase at least one
sample period long makes the diversion deterministic.

For B_TRR3, whose sampler is per-bank, the dummy must live in the
aggressor's own bank (footnote 13).
"""

from __future__ import annotations

from ..dram import HammerMode
from ..errors import AttackConfigError
from .base import AccessPattern, AttackContext
from .session import AttackSession


class VendorBPattern(AccessPattern):
    """Aggressors first, then a long multi-bank dummy phase per window."""

    name = "vendor-b-custom"

    def __init__(self, aggressor_hammers: int = 80,
                 same_bank_dummy: bool = False) -> None:
        if aggressor_hammers < 1:
            raise AttackConfigError("aggressor_hammers must be >= 1")
        self.aggressor_hammers = aggressor_hammers
        #: B_TRR3 samples per bank: divert within the aggressor's bank.
        self.same_bank_dummy = same_bank_dummy

    def aggressor_physical(self, context: AttackContext) -> tuple[int, ...]:
        return context.aggressors()

    def run_window(self, session: AttackSession,
                   context: AttackContext) -> None:
        rows = context.aggressors()
        per_row = 2 * self.aggressor_hammers // len(rows)
        aggressors = [(context.logical(row), per_row) for row in rows]
        session.hammer(context.bank, aggressors, HammerMode.INTERLEAVED)
        if self.same_bank_dummy:
            self._divert_same_bank(session, context)
        else:
            self._divert_multibank(session, context)
        session.fill_window()

    def _divert_same_bank(self, session: AttackSession,
                          context: AttackContext) -> None:
        if not context.dummy_rows:
            raise AttackConfigError("context provides no same-bank dummies")
        dummy = context.logical(context.dummy_rows[0])
        timing = session._host.timing
        trc = timing.trc_ps
        refs_left = context.trr_period - session.refs_into_window()
        window_ps = ((refs_left - 1) * (timing.trefi_ps - timing.trfc_ps)
                     + session.remaining_ps)
        acts = window_ps // trc
        if acts > 0:
            # Auto-splits across intervals, issuing the REFs in between.
            session.hammer(context.bank, [(dummy, acts)],
                           HammerMode.CASCADED)

    def _divert_multibank(self, session: AttackSession,
                          context: AttackContext) -> None:
        if not context.dummy_banks:
            raise AttackConfigError("context provides no per-bank dummies")
        rows = {bank: context.logical(row)
                for bank, row in context.dummy_banks.items()}
        timing = session._host.timing
        act_cost = max(timing.tfaw_ps // 4, timing.trc_ps // len(rows))
        # Dummy ACT budget left in this window.
        refs_left = context.trr_period - session.refs_into_window()
        window_ps = (refs_left - 1) * (timing.trefi_ps - timing.trfc_ps) \
            + session.remaining_ps
        per_bank = window_ps // act_cost // len(rows)
        if per_bank > 0:
            session.hammer_multibank(rows, per_bank)


class PhaseLockedSamplerPattern(AccessPattern):
    """Phase-locked diversion for short TRR windows (B_TRR3).

    B_TRR3's 2-REF TRR window leaves no room for a dummy phase longer
    than the sample period, so the window-structured diversion of
    :class:`VendorBPattern` cannot work there.  But the sampler is a
    *deterministic* every-Nth-ACT counter and the attacker issues every
    activation in the bank: reserving the activations at positions
    ``offset (mod sample_period)`` (plus a guard band) for a dummy row
    pins every sample to the dummy — forever — while the aggressors
    hammer at nearly full rate in between.

    The attacker does not know the sampler's phase; ``offset`` is found
    by trial (:func:`calibrate_phase_offset` sweeps offsets on a canary
    victim until the attack bites).  The sample period itself is
    measurable with U-TRR burst-length experiments (§6.2.2 bounds it from
    above at ~2K activations; finer probing pins it down).
    """

    name = "vendor-b-phase-locked"

    def __init__(self, sample_period: int, offset: int = 0,
                 guard: int = 1) -> None:
        if sample_period < 4:
            raise AttackConfigError("sample_period must be >= 4")
        if guard < 0 or 2 * guard + 2 >= sample_period:
            raise AttackConfigError("guard band swallows the whole period")
        self.sample_period = sample_period
        self.offset = offset % sample_period
        self.guard = guard

    def aggressor_physical(self, context: AttackContext) -> tuple[int, ...]:
        return context.aggressors()

    def _band_delta(self, position: int) -> int:
        """0 while inside the reserved band, else acts until it starts."""
        delta = (self.offset - position) % self.sample_period
        if delta > self.sample_period - (2 * self.guard + 1):
            return 0  # inside the trailing part of the band
        return delta

    def run_window(self, session: AttackSession,
                   context: AttackContext) -> None:
        if not context.dummy_rows:
            raise AttackConfigError("context provides no dummy rows")
        dummy = context.logical(context.dummy_rows[0])
        rows = [context.logical(row) for row in context.aggressors()]
        timing = session._host.timing
        interval_acts = (timing.trefi_ps - timing.trfc_ps) // timing.trc_ps
        budget = context.trr_period * interval_acts
        host = session._host
        base = session.acts_issued
        toggle = 0
        while session.acts_issued - base < budget:
            position = host.acts_per_bank.get(context.bank, 0)
            delta = self._band_delta(position)
            if delta == 0:
                session.hammer(context.bank, [(dummy, 1)],
                               HammerMode.CASCADED)
                continue
            run = min(delta, budget - (session.acts_issued - base))
            if run >= len(rows):
                shares = [run // len(rows)] * len(rows)
                shares[0] += run - sum(shares)
                ordered = rows[toggle:] + rows[:toggle]
                session.hammer(context.bank, list(zip(ordered, shares)),
                               HammerMode.INTERLEAVED)
                toggle = (toggle + 1) % len(rows)
            else:
                session.hammer(context.bank, [(rows[toggle], run)],
                               HammerMode.CASCADED)
        session.fill_window()


def calibrate_phase_offset(executor, context_factory, trr_period: int,
                           sample_period: int, windows: int,
                           canary_victims, guard: int = 1) -> int:
    """Find a working phase offset by trial on canary victim rows.

    Honest trial-and-error (no chip internals): returns the first offset
    whose phase-locked attack flips one of the canaries.
    """
    step = 2 * guard + 1
    for offset in range(0, sample_period, step):
        pattern = PhaseLockedSamplerPattern(sample_period, offset, guard)
        for victim in canary_victims:
            context = context_factory(victim)
            result = executor.run(pattern, context, windows)
            if result.flips_at(context.victim_physical):
                return offset
    raise AttackConfigError(
        "no phase offset produced bit flips on the canary victims; "
        "wrong sample_period estimate?")
