"""RowHammer access patterns: classic baselines and §7.1 custom attacks."""

from .base import AccessPattern, AttackContext, default_context
from .capture import CaptureUnsupported, capture_window
from .classic import DoubleSidedPattern, ManySidedPattern, SingleSidedPattern
from .executor import AttackExecutor, AttackResult
from .session import AttackSession
from .sweep import (HammerSweepResult, VulnerabilityResult, choose_pattern,
                    measure_hc_first, run_hammer_sweep,
                    run_vulnerability_sweep, victim_positions)
from .vendor_a import VendorAPattern
from .vendor_b import (PhaseLockedSamplerPattern, VendorBPattern,
                       calibrate_phase_offset)
from .vendor_c import VendorCPattern

__all__ = [
    "AccessPattern",
    "AttackContext",
    "AttackExecutor",
    "AttackResult",
    "AttackSession",
    "CaptureUnsupported",
    "capture_window",
    "DoubleSidedPattern",
    "HammerSweepResult",
    "ManySidedPattern",
    "SingleSidedPattern",
    "VendorAPattern",
    "PhaseLockedSamplerPattern",
    "VendorBPattern",
    "calibrate_phase_offset",
    "VendorCPattern",
    "VulnerabilityResult",
    "choose_pattern",
    "default_context",
    "measure_hc_first",
    "run_hammer_sweep",
    "run_vulnerability_sweep",
    "victim_positions",
]
