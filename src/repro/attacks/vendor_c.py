"""Custom pattern against vendor C's window-based TRR (§7.1).

Strategy recovered via U-TRR: aggressor candidates come only from the
first ~2K activations (per bank) after a TRR-induced refresh, with
earlier activations favored (Obs C2).  So, immediately after a
TRR-capable REF, burn a large burst of dummy activations — they fill the
detection window and own the candidate slot — and only then hammer the
aggressors until the next TRR-capable REF.  The aggressor activations
fall entirely outside the detection window and are never selected.

On the pair-isolated modules (C0-8) only odd-addressed aggressors
disturb their (even) pair row, so the double-sided pair around an odd
victim is even-addressed and useless; the pattern aims at even victims
whose aggressors are odd (§7.3's "bit flips only when hammering two
aggressor rows that have odd-numbered addresses").
"""

from __future__ import annotations

from ..dram import HammerMode
from ..errors import AttackConfigError
from .base import AccessPattern, AttackContext
from .session import AttackSession


class VendorCPattern(AccessPattern):
    """Dummy burst right after the TRR-capable REF, then aggressors.

    The dummy burst consumes everything the window's activation budget
    allows beyond the configured aggressor hammers: the detection
    window's early-position weight then belongs almost entirely to the
    dummies, and the late aggressor activations are (for the longer TRR
    periods, entirely) outside the detection window.
    """

    name = "vendor-c-custom"

    def __init__(self, aggressor_hammers: int | None = None,
                 dummy_fraction: float = 0.8,
                 dummy_count: int = 4) -> None:
        if aggressor_hammers is not None and aggressor_hammers < 1:
            raise AttackConfigError("aggressor_hammers must be >= 1")
        if not 0 < dummy_fraction < 1:
            raise AttackConfigError("dummy_fraction must be in (0, 1)")
        if dummy_count < 1:
            raise AttackConfigError("dummy_count must be >= 1")
        #: Hammers per aggressor per TRR-period window (issued last).
        #: None = adaptive: the dummy burst takes ``dummy_fraction`` of
        #: the window's activation budget, aggressors split the rest.
        self.aggressor_hammers = aggressor_hammers
        self.dummy_fraction = dummy_fraction
        self.dummy_count = dummy_count

    def aggressor_physical(self, context: AttackContext) -> tuple[int, ...]:
        return context.aggressors()

    def run_window(self, session: AttackSession,
                   context: AttackContext) -> None:
        if not context.dummy_rows:
            raise AttackConfigError("context provides no dummy rows")
        timing = session._host.timing
        interval_acts = (timing.trefi_ps - timing.trfc_ps) // timing.trc_ps
        window_acts = context.trr_period * interval_acts
        if self.aggressor_hammers is None:
            per_aggressor = int(window_acts * (1 - self.dummy_fraction)) // 2
        else:
            per_aggressor = self.aggressor_hammers
        burst = window_acts - 2 * per_aggressor
        if burst < 1:
            raise AttackConfigError(
                f"aggressor hammers {per_aggressor} leave no budget for "
                f"the dummy burst in a {window_acts}-act window")
        dummies = context.dummy_logical_rows()[:self.dummy_count]
        share = burst // len(dummies)
        if share > 0:
            session.hammer(context.bank, [(row, share) for row in dummies],
                           HammerMode.CASCADED)

        rows = context.aggressors()
        per_row = 2 * per_aggressor // len(rows)
        session.hammer(context.bank,
                       [(context.logical(row), per_row) for row in rows],
                       HammerMode.INTERLEAVED)
        session.fill_window()
