"""Attack executor: run a pattern for many windows, measure the damage.

Mirrors §7.2's setup: the SoftMC program executes a custom access
pattern for a fixed stretch of REF intervals while REF commands keep
flowing at the default rate; afterwards the victim rows are read back
and their bit flips counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.mapping import RowMapping
from ..dram.patterns import AllOnes, DataPattern, inverted
from ..errors import AttackConfigError
from ..obs import NULL_OBS, Observability
from ..softmc import SoftMCHost
from .base import AccessPattern, AttackContext
from .session import AttackSession


@dataclass
class AttackResult:
    """Outcome of one pattern execution."""

    pattern: str
    windows: int
    refs_issued: int
    acts_issued: int
    #: physical victim row -> flipped bit positions.
    victim_flips: dict[int, list[int]] = field(default_factory=dict)

    @property
    def total_flips(self) -> int:
        return sum(len(flips) for flips in self.victim_flips.values())

    def flips_at(self, physical_row: int) -> int:
        return len(self.victim_flips.get(physical_row, []))


class AttackExecutor:
    """Runs access patterns against a module through the host interface."""

    def __init__(self, host: SoftMCHost, mapping: RowMapping,
                 victim_pattern: DataPattern | None = None,
                 obs: Observability | None = None) -> None:
        self._host = host
        self._mapping = mapping
        self._victim_pattern = victim_pattern or AllOnes()
        self._obs = obs or getattr(host, "obs", None) or NULL_OBS

    def run(self, pattern: AccessPattern, context: AttackContext,
            windows: int,
            extra_victims: tuple[int, ...] = ()) -> AttackResult:
        """Execute *windows* TRR-period windows of *pattern*.

        Victim rows (the context victim plus *extra_victims*, physical)
        are initialized with the victim data pattern; aggressor rows with
        its complement (RowHammer flips are data-dependent, §5.2).
        """
        if windows < 1:
            raise AttackConfigError("windows must be >= 1")
        host = self._host
        victims = (context.victim_physical, *extra_victims)
        aggressor_data = inverted(self._victim_pattern, host.row_bits)
        for row in pattern.aggressor_physical(context):
            host.write_row(context.bank, context.mapping.to_logical(row),
                           aggressor_data)
        for row in victims:
            host.write_row(context.bank, context.mapping.to_logical(row),
                           self._victim_pattern)

        session = AttackSession(host, context.trr_period)
        with self._obs.span("attack.run", pattern=pattern.name,
                            windows=windows):
            session.align_to_period()
            for _ in range(windows):
                pattern.run_window(session, context)

        flips = {
            row: host.read_row_mismatches(context.bank,
                                          context.mapping.to_logical(row))
            for row in victims
        }
        result = AttackResult(pattern=pattern.name, windows=windows,
                              refs_issued=session.refs_issued,
                              acts_issued=session.acts_issued,
                              victim_flips=flips)
        metrics = self._obs.metrics
        metrics.inc("attack.runs")
        metrics.inc("attack.refs_issued", result.refs_issued)
        metrics.inc("attack.acts_issued", result.acts_issued)
        metrics.observe("attack.flips_per_run", result.total_flips)
        return result
