"""Attack executor: run a pattern for many windows, measure the damage.

Mirrors §7.2's setup: the SoftMC program executes a custom access
pattern for a fixed stretch of REF intervals while REF commands keep
flowing at the default rate; afterwards the victim rows are read back
and their bit flips counted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..dram.mapping import RowMapping
from ..dram.patterns import AllOnes, DataPattern, inverted
from ..errors import AttackConfigError
from ..obs import NULL_OBS, Observability
from ..program import compile_program, payloads_enabled
from ..softmc import SoftMCHost
from .base import AccessPattern, AttackContext
from .capture import CaptureUnsupported, capture_window
from .session import AttackSession


@dataclass
class AttackResult:
    """Outcome of one pattern execution."""

    pattern: str
    windows: int
    refs_issued: int
    acts_issued: int
    #: physical victim row -> flipped bit positions.
    victim_flips: dict[int, list[int]] = field(default_factory=dict)

    @property
    def total_flips(self) -> int:
        return sum(len(flips) for flips in self.victim_flips.values())

    def flips_at(self, physical_row: int) -> int:
        return len(self.victim_flips.get(physical_row, []))


class AttackExecutor:
    """Runs access patterns against a module through the host interface."""

    def __init__(self, host: SoftMCHost, mapping: RowMapping,
                 victim_pattern: DataPattern | None = None,
                 obs: Observability | None = None,
                 use_payloads: bool | None = None) -> None:
        self._host = host
        self._mapping = mapping
        self._victim_pattern = victim_pattern or AllOnes()
        self._obs = obs or getattr(host, "obs", None) or NULL_OBS
        #: Capture each pattern window into a compiled payload and
        #: replay it in one batch (byte-identical command stream);
        #: defaults to the process-wide ``REPRO_PAYLOAD`` setting.
        self._use_payloads = (payloads_enabled() if use_payloads is None
                              else use_payloads)

    def run(self, pattern: AccessPattern, context: AttackContext,
            windows: int,
            extra_victims: tuple[int, ...] = ()) -> AttackResult:
        """Execute *windows* TRR-period windows of *pattern*.

        Victim rows (the context victim plus *extra_victims*, physical)
        are initialized with the victim data pattern; aggressor rows with
        its complement (RowHammer flips are data-dependent, §5.2).
        """
        if windows < 1:
            raise AttackConfigError("windows must be >= 1")
        host = self._host
        victims = (context.victim_physical, *extra_victims)
        aggressor_data = inverted(self._victim_pattern, host.row_bits)
        for row in pattern.aggressor_physical(context):
            host.write_row(context.bank, context.mapping.to_logical(row),
                           aggressor_data)
        for row in victims:
            host.write_row(context.bank, context.mapping.to_logical(row),
                           self._victim_pattern)

        session = AttackSession(host, context.trr_period)
        with self._obs.span("attack.run", pattern=pattern.name,
                            windows=windows):
            session.align_to_period()
            live = not self._use_payloads
            for _ in range(windows):
                if not live:
                    try:
                        self._replay_window(pattern, session, context)
                        continue
                    except CaptureUnsupported:
                        # Capture has no side effects on the real host,
                        # so the same window can run live instead.
                        live = True
                pattern.run_window(session, context)

        flips = {
            row: host.read_row_mismatches(context.bank,
                                          context.mapping.to_logical(row))
            for row in victims
        }
        result = AttackResult(pattern=pattern.name, windows=windows,
                              refs_issued=session.refs_issued,
                              acts_issued=session.acts_issued,
                              victim_flips=flips)
        metrics = self._obs.metrics
        metrics.inc("attack.runs")
        metrics.inc("attack.refs_issued", result.refs_issued)
        metrics.inc("attack.acts_issued", result.acts_issued)
        metrics.observe("attack.flips_per_run", result.total_flips)
        return result

    def _replay_window(self, pattern: AccessPattern, session: AttackSession,
                       context: AttackContext) -> None:
        """Capture one window's command stream, replay it compiled."""
        program, vsession = capture_window(pattern, session, context)
        with self._obs.span("payload.compile",
                            instructions=len(program.instructions)):
            payload = compile_program(program.instructions,
                                      self._host.timing)
        self._host.execute_payload(payload)
        session.adopt(vsession)
