"""Window capture: record a pattern's commands, replay them compiled.

Custom access patterns (§7) decide what to issue from *host-visible
bookkeeping only* — the timing parameters, the REF ledger, and the
per-bank ACT counters.  That makes a window's command stream computable
without touching the chip: run the pattern against a
:class:`_VirtualHost` that mirrors those counters and records every
command into a :class:`~repro.softmc.SoftMCProgram`, then compile the
program and execute it on the real host in one batch.

The replayed stream is the exact stream the live pattern would have
issued, so traces, ledger and chip state are byte-identical.  A pattern
that needs something the mirror cannot provide (row data, the chip
clock) raises :class:`CaptureUnsupported`; the executor then falls back
to live per-command execution for that pattern.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from ..dram import DataPattern, HammerMode
from ..softmc import SoftMCHost, SoftMCProgram
from .session import AttackSession


class CaptureUnsupported(Exception):
    """The pattern consulted state the capture mirror cannot provide."""


class _VirtualHost:
    """Command recorder quacking like :class:`SoftMCHost`.

    Mirrors the bookkeeping attack patterns read (``timing``,
    ``ref_count``, ``acts_per_bank``, geometry) and appends every
    issued command to :attr:`program` instead of touching the chip.
    Data reads and the chip clock raise :class:`CaptureUnsupported` —
    they would require actually executing the commands.
    """

    def __init__(self, host: SoftMCHost) -> None:
        self.timing = host.timing
        self.num_banks = host.num_banks
        self.rows_per_bank = host.rows_per_bank
        self.row_bits = host.row_bits
        self.ref_count = host.ref_count
        self.acts_per_bank = dict(host.acts_per_bank)
        self.program = SoftMCProgram()

    def hammers_per_ref_interval(self) -> int:
        return self.timing.hammers_per_ref_interval()

    def _count_acts(self, bank: int, count: int) -> None:
        self.acts_per_bank[bank] = self.acts_per_bank.get(bank, 0) + count

    # -- recorded commands ----------------------------------------------------

    def hammer(self, bank: int, pattern: Iterable[tuple[int, int]],
               mode: HammerMode = HammerMode.INTERLEAVED) -> None:
        entries = tuple((row, count) for row, count in pattern)
        self._count_acts(bank, sum(count for _, count in entries))
        self.program.hammer(bank, entries, mode)

    def hammer_single(self, bank: int, row: int, count: int) -> None:
        self._count_acts(bank, count)
        self.program.hammer(bank, ((row, count),), HammerMode.CASCADED)

    def hammer_multi(self, per_bank: Mapping[int, Iterable[tuple[int, int]]],
                     mode: HammerMode = HammerMode.CASCADED) -> None:
        entries = {bank: tuple((row, count) for row, count in rows)
                   for bank, rows in per_bank.items()}
        for bank, rows in entries.items():
            self._count_acts(bank, sum(count for _, count in rows))
        self.program.hammer_multi(entries, mode)

    def refresh(self, count: int = 1, at_nominal_rate: bool = False) -> None:
        self.ref_count += count
        self.program.refresh(count, at_nominal_rate)

    def wait(self, duration_ps: int) -> None:
        self.program.wait(duration_ps)

    # -- unsupported: needs the real chip -------------------------------------

    def _unsupported(self, what: str) -> None:
        raise CaptureUnsupported(
            f"pattern consulted {what}; window is not capturable")

    @property
    def now_ps(self) -> int:
        self._unsupported("the chip clock")
        raise AssertionError  # pragma: no cover

    def write_row(self, bank: int, row: int, pattern: DataPattern) -> None:
        self._unsupported("row writes")

    def read_row(self, bank: int, row: int):
        self._unsupported("row data")

    def read_row_mismatches(self, bank: int, row: int):
        self._unsupported("row data")


def capture_window(pattern, session: AttackSession,
                   context) -> tuple[SoftMCProgram, AttackSession]:
    """Run one window of *pattern* against a virtual session.

    Returns the recorded program and the virtual session whose budget
    counters reflect the window's end state (seeded from *session* so
    absolute counter reads inside the pattern match the live run).
    Raises :class:`CaptureUnsupported` without side effects on the real
    host if the pattern is not capturable.
    """
    vhost = _VirtualHost(session._host)
    vsession = AttackSession(vhost, session.trr_period)
    vsession.adopt(session)
    pattern.run_window(vsession, context)
    return vhost.program, vsession
