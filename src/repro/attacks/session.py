"""Attack session: REF-synchronized hammering under the real ACT budget.

A RowHammer attacker on a live system must keep the memory controller's
REF cadence (one REF per tREFI) while squeezing activations into the
intervals between them — at most 149 single-bank activations per
interval (footnote 10), fewer when spreading ACTs over multiple banks
under tFAW (footnote 12).  :class:`AttackSession` models exactly that:
hammer requests are split into interval-sized chunks, a REF is issued
whenever the interval's time budget is exhausted, and patterns can close
intervals or whole TRR-period windows explicitly.

The paper's custom patterns rely on synchronizing with (TRR-capable)
REF commands; on real systems this is possible from user space (SMASH
[19]).  Here the attacker drives the SoftMC host, so
:meth:`align_to_period` simply issues REFs until the next REF index is a
multiple of the (U-TRR-discovered) TRR period.
"""

from __future__ import annotations

from ..dram import HammerMode
from ..errors import AttackConfigError
from ..softmc import SoftMCHost


class AttackSession:
    """Budget-accounted, REF-paced access to one module."""

    def __init__(self, host: SoftMCHost, trr_period: int) -> None:
        if trr_period < 1:
            raise AttackConfigError("trr_period must be >= 1")
        self._host = host
        self.trr_period = trr_period
        timing = host.timing
        #: Hammering time available between two REFs.
        self._interval_budget_ps = timing.trefi_ps - timing.trfc_ps
        self._used_ps = 0
        self.refs_issued = 0
        self.acts_issued = 0

    def adopt(self, other: "AttackSession") -> None:
        """Take over *other*'s budget counters.

        Used by the capture/replay executor: the virtual session is
        seeded from the live one before a window is captured, and the
        live session adopts the virtual end state once the recorded
        window has been replayed on the real host.
        """
        self.refs_issued = other.refs_issued
        self.acts_issued = other.acts_issued
        self._used_ps = other._used_ps

    # -- REF pacing -----------------------------------------------------------

    @property
    def remaining_ps(self) -> int:
        return self._interval_budget_ps - self._used_ps

    def ref(self, count: int = 1) -> None:
        """Issue REF(s), closing the current hammer interval."""
        self._host.refresh(count)
        self.refs_issued += count
        self._used_ps = 0

    def refs_into_window(self) -> int:
        """REFs issued so far within the current TRR-period window."""
        return self._host.ref_count % self.trr_period

    def fill_window(self) -> None:
        """Issue REFs until the next TRR-capable REF boundary."""
        gap = (-self._host.ref_count) % self.trr_period
        if gap:
            self.ref(gap)

    def align_to_period(self) -> None:
        """Synchronize: make the next REF index a TRR-period multiple."""
        self.fill_window()

    # -- hammering ------------------------------------------------------------

    def hammer(self, bank: int, pairs, mode: HammerMode = HammerMode.
               INTERLEAVED) -> None:
        """Hammer one bank, auto-splitting across REF intervals."""
        queue = [[row, count] for row, count in pairs if count > 0]
        trc = self._host.timing.trc_ps
        while queue:
            fit = self.remaining_ps // trc
            if fit == 0:
                self.ref()
                continue
            chunk = self._take(queue, fit, mode)
            self._host.hammer(bank, chunk, mode)
            acts = sum(count for _, count in chunk)
            self.acts_issued += acts
            self._used_ps += acts * trc

    def hammer_multibank(self, rows_by_bank: dict[int, int],
                         count_per_bank: int) -> None:
        """Hammer one dummy row in each of up to four banks in parallel.

        Cross-bank activation rate is tFAW-limited: four ACTs per tFAW
        window, regardless of bank count (footnote 12).
        """
        if not rows_by_bank:
            return
        if len(rows_by_bank) > 4:
            raise AttackConfigError("tFAW limits parallel hammering to 4 "
                                    "banks")
        timing = self._host.timing
        act_cost_ps = max(timing.tfaw_ps // 4,
                          timing.trc_ps // len(rows_by_bank))
        remaining = {bank: count_per_bank for bank in rows_by_bank}
        while any(remaining.values()):
            fit_total = self.remaining_ps // act_cost_ps
            if fit_total < len(rows_by_bank):
                self.ref()
                continue
            share = max(fit_total // len(rows_by_bank), 1)
            batch = {}
            for bank, row in rows_by_bank.items():
                count = min(share, remaining[bank])
                if count:
                    batch[bank] = [(row, count)]
                    remaining[bank] -= count
            if not batch:
                break
            self._host.hammer_multi(batch)
            acts = sum(pairs[0][1] for pairs in batch.values())
            self.acts_issued += acts
            self._used_ps += acts * act_cost_ps

    @staticmethod
    def _take(queue: list[list[int]], fit: int,
              mode: HammerMode) -> list[tuple[int, int]]:
        """Remove up to *fit* activations from the queue, preserving the
        requested ordering semantics."""
        if mode is HammerMode.CASCADED:
            chunk = []
            while queue and fit > 0:
                row, count = queue[0]
                take = min(count, fit)
                chunk.append((row, take))
                fit -= take
                if take == count:
                    queue.pop(0)
                else:
                    queue[0][1] = count - take
            return chunk
        # Interleaved: spread the chunk round-robin over all rows still
        # pending, keeping per-row shares within one activation of each
        # other (exact round-robin across chunk boundaries is preserved
        # to within the chunk granularity).
        total_pending = sum(count for _, count in queue)
        take_total = min(fit, total_pending)
        chunk = []
        remaining = take_total
        for index, (row, count) in enumerate(queue):
            rows_left = len(queue) - index
            share = min(count, -(-remaining // rows_left))
            chunk.append((row, share))
            remaining -= share
        for entry, (_, taken) in zip(list(queue), chunk):
            entry[1] -= taken
        queue[:] = [entry for entry in queue if entry[1] > 0]
        return [(row, count) for row, count in chunk if count > 0]
