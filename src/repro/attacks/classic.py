"""Classic access patterns: the baselines TRR defeats (§2.3, §8).

Single- and double-sided RowHammer are the canonical pre-TRR attacks;
many-sided hammering is TRRespass's table-overflow strategy.  The paper
reports (footnote 18) that the classic patterns produce **zero** bit
flips on all 45 TRR-protected modules — the ablation benches reproduce
exactly that, with the same patterns flipping bits freely on a chip
without TRR.
"""

from __future__ import annotations

from ..dram import HammerMode
from ..errors import AttackConfigError
from .base import AccessPattern, AttackContext
from .session import AttackSession


class SingleSidedPattern(AccessPattern):
    """Hammer one aggressor adjacent to the victim, flat out."""

    name = "single-sided"

    def aggressor_physical(self, context: AttackContext) -> tuple[int, ...]:
        return (context.aggressor_pair()[0],)

    def run_window(self, session: AttackSession,
                   context: AttackContext) -> None:
        aggressor = context.logical(self.aggressor_physical(context)[0])
        budget = session.remaining_ps // session._host.timing.trc_ps
        for _ in range(context.trr_period):
            session.hammer(context.bank, [(aggressor, budget)],
                           HammerMode.CASCADED)
            session.ref()


class DoubleSidedPattern(AccessPattern):
    """Alternate between the two aggressors sandwiching the victim."""

    name = "double-sided"

    def aggressor_physical(self, context: AttackContext) -> tuple[int, ...]:
        return context.aggressor_pair()

    def run_window(self, session: AttackSession,
                   context: AttackContext) -> None:
        low, high = self.aggressor_physical(context)
        pair = [(context.logical(low), 0), (context.logical(high), 0)]
        per_interval = (session.remaining_ps
                        // session._host.timing.trc_ps) // 2
        for _ in range(context.trr_period):
            session.hammer(context.bank,
                           [(row, per_interval) for row, _ in pair],
                           HammerMode.INTERLEAVED)
            session.ref()


class ManySidedPattern(AccessPattern):
    """TRRespass-style N-sided hammering (N aggressors, victims between).

    Aggressors at the victim's two sides plus further pairs spaced two
    apart, all hammered round-robin — the pattern that overflows small
    TRR tables but fails against the Table 1 mechanisms at these counts.
    """

    name = "many-sided"

    def __init__(self, sides: int = 9) -> None:
        if sides < 3:
            raise AttackConfigError("many-sided needs at least 3 aggressors")
        self.sides = sides
        self.name = f"{sides}-sided"

    def aggressor_physical(self, context: AttackContext) -> tuple[int, ...]:
        low, high = context.aggressor_pair()
        rows = [low, high]
        offset = 2
        while len(rows) < self.sides:
            candidate = high + offset
            if candidate < context.mapping.num_rows:
                rows.append(candidate)
            else:
                rows.append(max(low - offset, 0))
            offset += 2
        return tuple(rows[:self.sides])

    def run_window(self, session: AttackSession,
                   context: AttackContext) -> None:
        aggressors = [context.logical(row)
                      for row in self.aggressor_physical(context)]
        per_interval = (session.remaining_ps
                        // session._host.timing.trc_ps) // len(aggressors)
        per_interval = max(per_interval, 1)
        for _ in range(context.trr_period):
            session.hammer(context.bank,
                           [(row, per_interval) for row in aggressors],
                           HammerMode.INTERLEAVED)
            session.ref()
