"""Custom pattern against vendor A's counter-based TRR (§7.1).

Strategy recovered via U-TRR: the per-bank table tracks 16 rows (Obs
A4), inserts evict the entry with the smallest counter (Obs A5), every
9th REF is TRR-capable (Obs A1), and detection resets the detected
counter (Obs A6).  The pattern therefore hammers the two double-sided
aggressors a bounded number of times per 9-REF window — early in the
window — and spends everything else hammering 16 dummy rows so that by
the TRR-capable REF **every dummy's counter exceeds the aggressors'**:
the dummies' re-insertions evict the aggressor entries, and both TREFa
(max counter) and TREFb (table walk) land on dummies, refreshing far-away
rows instead of the victim.

The hammer-count trade-off of Figure 8 follows directly: past the point
where the per-window aggressor count exceeds what the leftover budget
gives each of the 16 dummies, the aggressors hold the table's minimum no
longer, stick in the table, and TREFa hits them — flips collapse.  Too
few hammers and the victim never accumulates enough disturbance.  (The
paper's absolute optimum, 24-26 hammers per REF interval, reflects its
chips' exact table dynamics; against this implementation the knee sits
at the budget split ``interval_budget * period / (2 + dummy_count)`` —
same mechanism, same shape, different constant.  See EXPERIMENTS.md.)
"""

from __future__ import annotations

from ..dram import HammerMode
from ..errors import AttackConfigError
from .base import AccessPattern, AttackContext
from .session import AttackSession


class VendorAPattern(AccessPattern):
    """Per-window: aggressors early, then out-count them with 16 dummies."""

    name = "vendor-a-custom"

    def __init__(self, aggressor_hammers: int = 72,
                 dummy_count: int = 16) -> None:
        if aggressor_hammers < 1:
            raise AttackConfigError("aggressor_hammers must be >= 1")
        if dummy_count < 1:
            raise AttackConfigError("dummy_count must be >= 1")
        #: Hammers per aggressor per TRR-period window.
        self.aggressor_hammers = aggressor_hammers
        self.dummy_count = dummy_count

    def aggressor_physical(self, context: AttackContext) -> tuple[int, ...]:
        return context.aggressors()

    def run_window(self, session: AttackSession,
                   context: AttackContext) -> None:
        if len(context.dummy_rows) < self.dummy_count:
            raise AttackConfigError(
                f"context provides {len(context.dummy_rows)} dummy rows, "
                f"pattern needs {self.dummy_count}")
        rows = context.aggressors()
        per_row = 2 * self.aggressor_hammers // len(rows)
        session.hammer(context.bank,
                       [(context.logical(row), per_row) for row in rows],
                       HammerMode.INTERLEAVED)
        dummies = context.dummy_logical_rows()[:self.dummy_count]
        timing = session._host.timing
        refs_left = context.trr_period - session.refs_into_window()
        window_ps = ((refs_left - 1) * (timing.trefi_ps - timing.trfc_ps)
                     + session.remaining_ps)
        per_dummy = window_ps // timing.trc_ps // self.dummy_count
        if per_dummy > 0:
            session.hammer(context.bank,
                           [(row, per_dummy) for row in dummies],
                           HammerMode.CASCADED)
        session.fill_window()
