"""First-divergence trace diffing: ``python -m repro.obs.diff a b``.

Two identically-seeded runs must produce byte-identical command streams;
when they do not, the interesting question is never "how many records
differ" (after the streams fork, *everything* differs) but **where they
fork**: the first record index at which the two command streams stop
agreeing, the virtual-ps clock of each side at that point, and which
fields of the command changed.  :func:`diff_traces` localizes that
point, then summarizes the downstream drift so the magnitude of the
fork is visible at a glance:

- REF-interval histogram delta (did activation pressure per REF window
  shift?),
- per-bank ACT deltas (did the hammering move banks?),
- TRR-hit set delta (which hits exist only on one side?), and
- ledger summary deltas (final REF/ACT counts).

Header records are ignored by default — the manifest carries wall-clock
and git metadata that legitimately differs between runs of the same
experiment — and EVT records are compared like commands (a fault firing
on one side only *is* a divergence worth localizing).

CLI exits 0 when the traces are identical (modulo headers), 1 when they
diverge, and 2 on structural errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass

from ..errors import ConfigError
from .recorder import read_trace
from .report import TraceReport, summarize


def _hit_key(record: dict) -> tuple:
    """Identity of a trr-hit event (everything but the record framing)."""
    return tuple(sorted((key, value) for key, value in record.items()
                        if key not in ("t", "kind")))


@dataclass
class FirstDivergence:
    """Where two command streams fork."""

    #: Command-record index (header/summary excluded) of the fork.
    index: int
    #: The forking record on each side (None past the shorter trace).
    record_a: dict | None
    record_b: dict | None
    #: Virtual-ps clock of each side at the fork.
    ps_a: int | None
    ps_b: int | None
    #: Field names whose values differ (or ("<missing>",) on length skew).
    fields: tuple[str, ...]

    def describe(self) -> str:
        if self.record_a is None:
            return (f"record #{self.index}: trace A ends here, trace B "
                    f"continues with {_label(self.record_b)}")
        if self.record_b is None:
            return (f"record #{self.index}: trace B ends here, trace A "
                    f"continues with {_label(self.record_a)}")
        return (f"record #{self.index}: {_label(self.record_a)} vs "
                f"{_label(self.record_b)} — fields "
                f"{', '.join(self.fields)} differ "
                f"(clock A={self.ps_a} ps, B={self.ps_b} ps)")


def _label(record: dict | None) -> str:
    if record is None:
        return "<end of trace>"
    op = record.get("t", record.get("type", "?"))
    if op == "EVT":
        return f"EVT[{record.get('kind')}]"
    return str(op)


@dataclass
class TraceDiff:
    """Outcome of :func:`diff_traces`."""

    path_a: str
    path_b: str
    divergence: FirstDivergence | None
    #: Command records compared (min of the two streams' lengths).
    compared: int
    report_a: TraceReport
    report_b: TraceReport

    @property
    def identical(self) -> bool:
        return self.divergence is None

    # -- downstream drift ---------------------------------------------------

    def ref_histogram_delta(self) -> dict[str, dict]:
        """Per-bucket REF-window histogram counts on each side."""
        a = self.report_a.acts_between_refs
        b = self.report_b.acts_between_refs
        buckets = sorted(set(a.buckets) | set(b.buckets),
                         key=lambda bound: float(bound))
        return {str(bound): {"a": a.buckets.get(bound, 0),
                             "b": b.buckets.get(bound, 0)}
                for bound in buckets}

    def per_bank_act_delta(self) -> dict[int, int]:
        """``bank -> acts_b - acts_a`` for banks where they differ."""
        banks = set(self.report_a.per_bank_acts)
        banks |= set(self.report_b.per_bank_acts)
        delta = {}
        for bank in sorted(banks):
            diff = (self.report_b.per_bank_acts.get(bank, 0)
                    - self.report_a.per_bank_acts.get(bank, 0))
            if diff:
                delta[bank] = diff
        return delta

    def trr_hit_delta(self) -> dict[str, list[dict]]:
        """TRR hits present on only one side."""
        keys_a = {_hit_key(hit) for hit in self.report_a.trr_hits}
        keys_b = {_hit_key(hit) for hit in self.report_b.trr_hits}
        return {
            "a_only": [hit for hit in self.report_a.trr_hits
                       if _hit_key(hit) not in keys_b],
            "b_only": [hit for hit in self.report_b.trr_hits
                       if _hit_key(hit) not in keys_a],
        }

    def by_type_delta(self) -> dict[str, dict]:
        """Record counts by command type on each side (where different)."""
        counts_a = self.report_a.replay["by_type"]
        counts_b = self.report_b.replay["by_type"]
        delta = {}
        for op in sorted(set(counts_a) | set(counts_b)):
            a, b = counts_a.get(op, 0), counts_b.get(op, 0)
            if a != b:
                delta[op] = {"a": a, "b": b}
        return delta

    def ledger_delta(self) -> dict:
        """Final replayed-ledger counts on each side."""
        a, b = self.report_a.replay, self.report_b.replay
        return {
            "ref_count": {"a": a["ref_count"], "b": b["ref_count"]},
            "total_acts": {"a": sum(a["acts_per_bank"].values()),
                           "b": sum(b["acts_per_bank"].values())},
            "events": {"a": a["events"], "b": b["events"]},
        }


def _body(records: list[dict]) -> list[dict]:
    """Command + EVT records (header and summary framing stripped)."""
    return [record for record in records if record.get("type") is None]


def find_divergence(records_a: list[dict], records_b: list[dict]
                    ) -> FirstDivergence | None:
    """First index at which two command streams disagree, or None."""
    body_a, body_b = _body(records_a), _body(records_b)
    for index in range(min(len(body_a), len(body_b))):
        a, b = body_a[index], body_b[index]
        if a == b:
            continue
        fields = tuple(sorted(
            key for key in set(a) | set(b) if a.get(key) != b.get(key)))
        return FirstDivergence(index=index, record_a=a, record_b=b,
                               ps_a=a.get("ps"), ps_b=b.get("ps"),
                               fields=fields)
    if len(body_a) != len(body_b):
        index = min(len(body_a), len(body_b))
        a = body_a[index] if index < len(body_a) else None
        b = body_b[index] if index < len(body_b) else None
        return FirstDivergence(
            index=index, record_a=a, record_b=b,
            ps_a=None if a is None else a.get("ps"),
            ps_b=None if b is None else b.get("ps"),
            fields=("<missing>",))
    return None


def diff_traces(path_a, path_b) -> TraceDiff:
    """Align two traces and localize their first divergence."""
    records_a = list(read_trace(path_a))
    records_b = list(read_trace(path_b))
    for path, records in ((path_a, records_a), (path_b, records_b)):
        if not records or records[0].get("type") != "header":
            raise ConfigError(f"{path}: not a trace (no header record)")
    divergence = find_divergence(records_a, records_b)
    return TraceDiff(path_a=str(path_a), path_b=str(path_b),
                     divergence=divergence,
                     compared=min(len(_body(records_a)),
                                  len(_body(records_b))),
                     report_a=summarize(records_a),
                     report_b=summarize(records_b))


def render_diff(diff: TraceDiff) -> str:
    """Plain-text rendering of a :func:`diff_traces` result."""
    lines = ["Trace diff", "==========", "",
             f"A: {diff.path_a}", f"B: {diff.path_b}", ""]
    if diff.identical:
        lines.append(f"identical: all {diff.compared} command records "
                     "match (headers ignored)")
        return "\n".join(lines)

    lines.append("First divergence")
    lines.append("----------------")
    lines.append(f"  {diff.divergence.describe()}")
    lines.append("")

    lines.append("Downstream drift")
    lines.append("----------------")
    by_type = diff.by_type_delta()
    if by_type:
        lines.append("  record counts by type:")
        for op, sides in by_type.items():
            lines.append(f"    {op:<5} A={sides['a']:>8}  "
                         f"B={sides['b']:>8}")
    bank_delta = diff.per_bank_act_delta()
    if bank_delta:
        lines.append("  per-bank ACT delta (B - A):")
        for bank, delta in bank_delta.items():
            lines.append(f"    bank {bank:>3} {delta:+d}")
    histogram = diff.ref_histogram_delta()
    shifted = {bound: sides for bound, sides in histogram.items()
               if sides["a"] != sides["b"]}
    if shifted:
        lines.append("  REF-window ACT histogram (shifted buckets):")
        for bound, sides in shifted.items():
            lines.append(f"    <= {bound:>8} A={sides['a']:>6}  "
                         f"B={sides['b']:>6}")
    hits = diff.trr_hit_delta()
    if hits["a_only"] or hits["b_only"]:
        lines.append(f"  TRR hits only in A: {len(hits['a_only'])}, "
                     f"only in B: {len(hits['b_only'])}")
    ledger = diff.ledger_delta()
    lines.append(f"  final ledger: REFs A={ledger['ref_count']['a']} "
                 f"B={ledger['ref_count']['b']}, total ACTs "
                 f"A={ledger['total_acts']['a']} "
                 f"B={ledger['total_acts']['b']}")
    return "\n".join(lines)


def _json_payload(diff: TraceDiff) -> dict:
    divergence = None
    if diff.divergence is not None:
        divergence = {
            "index": diff.divergence.index,
            "record_a": diff.divergence.record_a,
            "record_b": diff.divergence.record_b,
            "ps_a": diff.divergence.ps_a,
            "ps_b": diff.divergence.ps_b,
            "fields": list(diff.divergence.fields),
        }
    return {
        "a": diff.path_a,
        "b": diff.path_b,
        "identical": diff.identical,
        "compared": diff.compared,
        "divergence": divergence,
        "by_type_delta": diff.by_type_delta(),
        "per_bank_act_delta": {str(bank): delta for bank, delta
                               in diff.per_bank_act_delta().items()},
        "ref_histogram_delta": diff.ref_histogram_delta(),
        "trr_hit_delta": diff.trr_hit_delta(),
        "ledger_delta": diff.ledger_delta(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.diff",
        description="Localize the first divergence between two command "
                    "traces and summarize the downstream drift.")
    parser.add_argument("trace_a", help="baseline trace .jsonl")
    parser.add_argument("trace_b", help="candidate trace .jsonl")
    parser.add_argument("--json", action="store_true",
                        help="emit the diff as JSON instead of text")
    args = parser.parse_args(argv)
    try:
        diff = diff_traces(args.trace_a, args.trace_b)
    except ConfigError as error:
        print(f"diff error: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(_json_payload(diff), indent=2))
    else:
        print(render_diff(diff))
    return 0 if diff.identical else 1


if __name__ == "__main__":
    sys.exit(main())
