"""Command-bus profiling: where does a sweep's wall time actually go?

The span layer answers "which pipeline *stage* is slow"; this module
answers the layer below: which DDR **opcode** (ACT / RD / WR / REF /
WAIT) the :class:`~repro.softmc.SoftMCHost` hot path spends its wall
time executing, attributed per stage via the currently-open span.

Two instruments:

- :class:`CommandProfiler` — exact per-opcode wall-time accounting.
  The host brackets every command with two ``perf_counter`` reads when
  a profiler is attached; with :class:`NullProfiler` (the default) the
  hot path pays one identity check, inside the <5% disabled-overhead
  budget.  Because every host-side operation is bracketed, the opcode
  rows sum to the host's total command-bus wall time by construction —
  the attribution table's coverage column shows what fraction of an
  enclosing wall-clock that explains.
- :class:`CollapsedStackSampler` — a sampling profiler emitting
  collapsed-stack lines (``frame;frame;frame count``, the flamegraph
  input format) from a background thread, for the Python-side cost the
  opcode accounting cannot see (pattern construction, scheduling,
  result merging).

Profiles fold across process-pool workers exactly like metrics do
(:meth:`CommandProfiler.merge`, submission order), and
:meth:`CommandProfiler.as_span_clocks` renders a profile in run-history
span shape so stage-level regressions gate like wall-clock does
(``python -m repro.obs.history --gate``).
"""

from __future__ import annotations

import sys
import threading

#: Canonical opcode order for reports (matches the trace record types).
OPCODES = ("ACT", "RD", "WR", "REF", "WAIT")


class CommandProfiler:
    """Per-opcode (and per-stage) wall-time attribution.

    *spans*, when given, is a :class:`~repro.obs.SpanTracker`; each
    sample is attributed to the innermost open span at the time the
    command retired, giving a (stage × opcode) breakdown for free.
    """

    enabled = True

    def __init__(self, spans=None) -> None:
        self._spans = spans if (spans is not None
                                and getattr(spans, "enabled", False)) \
            else None
        #: opcode -> total seconds.
        self.seconds: dict[str, float] = {}
        #: opcode -> command count.
        self.counts: dict[str, int] = {}
        #: stage name -> opcode -> seconds.
        self.stages: dict[str, dict[str, float]] = {}

    def add(self, opcode: str, seconds: float) -> None:
        """Account one retired command (called from the host hot path)."""
        self.seconds[opcode] = self.seconds.get(opcode, 0.0) + seconds
        self.counts[opcode] = self.counts.get(opcode, 0) + 1
        if self._spans is not None:
            stage = self._spans.current_name()
            if stage is not None:
                per_op = self.stages.setdefault(stage, {})
                per_op[opcode] = per_op.get(opcode, 0.0) + seconds

    def add_bulk(self, opcode: str, count: int, seconds: float) -> None:
        """Account *count* commands retired by one batched bracket.

        The fused-payload path executes a whole run of identical ACT
        commands inside a single ``perf_counter`` bracket; the profile
        must still report N commands (so ``us/cmd`` and the per-opcode
        counts match the per-command path), not one wide bracket.
        """
        self.seconds[opcode] = self.seconds.get(opcode, 0.0) + seconds
        self.counts[opcode] = self.counts.get(opcode, 0) + count
        if self._spans is not None:
            stage = self._spans.current_name()
            if stage is not None:
                per_op = self.stages.setdefault(stage, {})
                per_op[opcode] = per_op.get(opcode, 0.0) + seconds

    @property
    def total_s(self) -> float:
        return sum(self.seconds.values())

    @property
    def commands(self) -> int:
        return sum(self.counts.values())

    def merge(self, other) -> None:
        """Fold another profiler (or its ``as_dict`` dump) into self."""
        if isinstance(other, dict):
            dump = other
        else:
            if not getattr(other, "enabled", False):
                return
            dump = other.as_dict()
        for opcode, seconds in dump.get("seconds", {}).items():
            self.seconds[opcode] = (self.seconds.get(opcode, 0.0)
                                    + seconds)
        for opcode, count in dump.get("counts", {}).items():
            self.counts[opcode] = self.counts.get(opcode, 0) + count
        for stage, per_op in dump.get("stages", {}).items():
            mine = self.stages.setdefault(stage, {})
            for opcode, seconds in per_op.items():
                mine[opcode] = mine.get(opcode, 0.0) + seconds

    def as_dict(self) -> dict:
        return {
            "seconds": {op: round(s, 6) for op, s
                        in sorted(self.seconds.items())},
            "counts": dict(sorted(self.counts.items())),
            "stages": {stage: {op: round(s, 6) for op, s
                               in sorted(per_op.items())}
                       for stage, per_op
                       in sorted(self.stages.items())},
            "total_s": round(self.total_s, 6),
            "commands": self.commands,
        }

    def as_span_clocks(self, prefix: str = "opcode:") -> dict:
        """Profile in run-history span shape (name -> seconds).

        Recorded into a :class:`~repro.obs.RunHistory` row, these
        entries are gated by the same slowdown-only rule as stage
        spans — a per-opcode regression fails CI like a wall-clock one.
        """
        return {f"{prefix}{opcode}": round(seconds, 6)
                for opcode, seconds in sorted(self.seconds.items())}

    def render(self, wall_s: float | None = None) -> str:
        """The attribution table: one row per opcode, sums at the foot.

        With *wall_s* (an externally measured enclosing wall-clock) the
        footer reports coverage — the fraction of that wall the opcode
        rows explain.
        """
        if not self.seconds:
            return "  (no commands profiled)"
        total = self.total_s
        lines = [f"  {'opcode':<6} {'commands':>10} {'seconds':>10} "
                 f"{'us/cmd':>8} {'share':>7}"]
        ordered = [op for op in OPCODES if op in self.seconds]
        ordered += [op for op in sorted(self.seconds)
                    if op not in OPCODES]
        for opcode in ordered:
            seconds = self.seconds[opcode]
            count = self.counts.get(opcode, 0)
            per = seconds / count * 1e6 if count else 0.0
            share = seconds / total if total else 0.0
            lines.append(f"  {opcode:<6} {count:>10} {seconds:>10.4f} "
                         f"{per:>8.1f} {share:>6.1%}")
        lines.append(f"  {'total':<6} {self.commands:>10} "
                     f"{total:>10.4f}")
        if wall_s is not None and wall_s > 0:
            lines.append(f"  coverage: {total / wall_s:.1%} of "
                         f"{wall_s:.3f}s measured wall")
        return "\n".join(lines)

    def render_stages(self) -> str:
        """Per-stage opcode breakdown (one line per stage x opcode)."""
        if not self.stages:
            return "  (no stage attribution)"
        lines = []
        for stage, per_op in sorted(
                self.stages.items(),
                key=lambda kv: -sum(kv[1].values())):
            total = sum(per_op.values())
            ops = " ".join(f"{op}={seconds:.3f}s" for op, seconds
                           in sorted(per_op.items(),
                                     key=lambda kv: -kv[1]))
            lines.append(f"  {stage:<32} {total:>8.3f}s  {ops}")
        return "\n".join(lines)


class NullProfiler:
    """The disabled profiler: the hot path sees one identity check."""

    enabled = False
    seconds: dict[str, float] = {}
    counts: dict[str, int] = {}
    stages: dict[str, dict[str, float]] = {}
    total_s = 0.0
    commands = 0

    def add(self, opcode: str, seconds: float) -> None:
        pass

    def add_bulk(self, opcode: str, count: int, seconds: float) -> None:
        pass

    def merge(self, other) -> None:
        pass

    def as_dict(self) -> dict:
        return {"seconds": {}, "counts": {}, "stages": {},
                "total_s": 0.0, "commands": 0}

    def as_span_clocks(self, prefix: str = "opcode:") -> dict:
        return {}

    def render(self, wall_s: float | None = None) -> str:
        return "  (profiling disabled)"

    def render_stages(self) -> str:
        return "  (profiling disabled)"


class CollapsedStackSampler:
    """Sampling profiler emitting flamegraph collapsed-stack lines.

    Samples the *target* thread's Python stack from a daemon thread at
    a fixed interval; each distinct root-to-leaf stack accumulates a
    sample count.  ``render()`` emits the standard
    ``frame;frame;frame count`` lines that flamegraph.pl / speedscope /
    inferno consume directly.
    """

    def __init__(self, interval_s: float = 0.005,
                 target_thread_id: int | None = None) -> None:
        self.interval_s = interval_s
        self._target = target_thread_id
        self.samples: dict[str, int] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "CollapsedStackSampler":
        if self._target is None:
            self._target = threading.get_ident()
        self._stop.clear()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-stack-sampler")
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            frame = sys._current_frames().get(self._target)
            if frame is None:
                continue
            stack = []
            while frame is not None:
                code = frame.f_code
                module = code.co_filename.rsplit("/", 1)[-1]
                stack.append(f"{module}:{code.co_name}")
                frame = frame.f_back
            key = ";".join(reversed(stack))
            self.samples[key] = self.samples.get(key, 0) + 1

    def stop(self) -> "CollapsedStackSampler":
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
        return self

    def __enter__(self) -> "CollapsedStackSampler":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def render(self) -> str:
        """Collapsed-stack lines, heaviest stacks first."""
        return "\n".join(
            f"{stack} {count}" for stack, count
            in sorted(self.samples.items(),
                      key=lambda kv: (-kv[1], kv[0])))

    def write(self, path) -> None:
        from pathlib import Path
        text = self.render()
        Path(path).write_text(text + ("\n" if text else ""),
                              encoding="utf-8")


def profile_report(profiler: CommandProfiler,
                   wall_s: float | None = None) -> dict:
    """JSON-ready attribution report for benchmarks and artifacts."""
    report = profiler.as_dict()
    if wall_s is not None:
        report["wall_s"] = round(wall_s, 6)
        if wall_s > 0:
            report["coverage"] = round(profiler.total_s / wall_s, 4)
    return report
