"""Trace replay: re-execute a recorded command stream and verify it.

A schema-v2 trace (see :mod:`repro.obs.recorder`) is an *executable*
artifact: its header manifest names the module, the chip build recipe
and the fault-injector seed, WR records carry the written pattern, and
RD records carry a digest of the data that came back.  :func:`replay_trace`
rebuilds that module from scratch, issues every recorded command through
a real :class:`~repro.softmc.SoftMCHost`, and verifies

- the host's virtual clock at each command matches the recorded ``ps``,
- the REF index at each burst matches the recorded ``idx``,
- every read's digest matches the recorded CRC, and
- the final host ledger matches the trace summary,

turning a trace into a machine-checkable proof of the run it recorded.
The first failed check is the *first divergence* — the exact command at
which a re-execution stopped being the run.

v1 traces (no digests, no pattern specs) cannot be re-executed; they
fall back to the pure counting cross-check (:func:`replay_ledger`).

CLI: ``python -m repro.obs.replay trace.jsonl`` — exits 0 on a verified
replay, 1 on the first divergence or a ledger mismatch, 2 on a trace
that carries no replayable recipe, and 3 on a truncated trace (no
summary record).
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass, field

from ..errors import ConfigError
from .recorder import (data_digest, mismatch_digest, read_trace,
                       replay_ledger)

#: Eval-scale names the replayer can rebuild hosts for (``scale`` in the
#: manifest); anything else needs an explicit ``chip`` recipe.
_EVAL_SCALES = ("standard", "quick")


@dataclass
class Divergence:
    """One point where re-execution stopped matching the record."""

    index: int
    check: str  # "ps" | "ref-idx" | "rd-digest" | "structure"
    record: dict
    expected: object
    actual: object

    def describe(self) -> str:
        what = self.record.get("t", self.record.get("type", "?"))
        return (f"record #{self.index} ({what} ps={self.record.get('ps')}):"
                f" {self.check} mismatch — trace has {self.expected!r}, "
                f"replay produced {self.actual!r}")


@dataclass
class ReplayResult:
    """Outcome of one :func:`replay_trace` call."""

    path: str
    version: int
    #: True when commands were actually re-issued (v2); False for the
    #: v1 counting-only fallback.
    executed: bool
    commands: int = 0
    reads_verified: int = 0
    divergences: list[Divergence] = field(default_factory=list)
    ledger_ok: bool = False
    #: No summary record — the trace was cut off before finalize().
    truncated: bool = False
    ledger: dict = field(default_factory=dict)
    summary: dict | None = None

    @property
    def ok(self) -> bool:
        return (not self.divergences and not self.truncated
                and self.ledger_ok)


def host_from_manifest(meta: dict):
    """Rebuild the recorded run's host from a trace-header manifest.

    Understands two recipes: an explicit ``chip`` kwargs dict (stamped
    by ``python -m repro.obs``) passed to
    :func:`repro.vendors.build_module`, or an eval ``scale`` name whose
    operating point rebuilds the host.  A ``fault_profile`` other than
    ``"none"`` additionally reattaches a :class:`~repro.faults.
    FaultInjector` seeded with the manifest's ``fault_seed``, so every
    fault decision replays identically.
    """
    from ..faults import FaultInjector
    from ..softmc import SoftMCHost
    from ..vendors import build_module, get_module

    module_id = meta.get("module")
    if not module_id:
        raise ConfigError("trace manifest names no module; cannot rebuild "
                          "the device under test")
    spec = get_module(module_id)
    if "chip" in meta:
        chip = build_module(spec, **meta["chip"])
    elif meta.get("scale") in _EVAL_SCALES:
        from ..eval.scale import get_scale
        return get_scale(meta["scale"]).build_host(spec)
    else:
        raise ConfigError(
            f"trace manifest has no chip recipe (scale="
            f"{meta.get('scale')!r}); cannot rebuild module {module_id}")
    faults = None
    profile = meta.get("fault_profile")
    if profile and profile != "none":
        if "fault_seed" not in meta:
            raise ConfigError(f"fault profile {profile!r} recorded without "
                              "a fault_seed; cannot replay faults")
        faults = FaultInjector(profile, seed=meta["fault_seed"])
    return SoftMCHost(chip, faults=faults)


def _check(result: ReplayResult, index: int, check: str, record: dict,
           expected, actual, stop_after: int) -> bool:
    """Record a failed check; True when replay should stop."""
    if expected == actual:
        return False
    result.divergences.append(Divergence(
        index=index, check=check, record=record,
        expected=expected, actual=actual))
    return len(result.divergences) >= stop_after


def _collect_multi(records, start: int, first: dict) -> list[dict]:
    """The ``hammer_multi`` group beginning at *start* (``mg`` stamped)."""
    group = [first]
    size = first["mg"]
    for offset in range(1, size):
        record = records[start + offset]
        if record.get("t") != "ACT" or record.get("mg") != size:
            raise ConfigError(
                f"record #{start + offset}: broken hammer_multi group "
                f"(expected {size} consecutive ACT records)")
        group.append(record)
    return group


def replay_trace(path, *, host=None, max_divergences: int = 1
                 ) -> ReplayResult:
    """Re-execute the trace at *path*; stop after *max_divergences*.

    *host* overrides the manifest-derived module (tests use this to
    replay against a deliberately different device).
    """
    from ..dram import HammerMode, pattern_from_spec

    records = list(read_trace(path))
    if not records or records[0].get("type") != "header":
        raise ConfigError(f"{path}: not a trace (no header record)")
    header = records[0]
    version = header.get("version", 0)
    meta = header.get("meta") or {}

    if version < 2:
        # v1: no digests or pattern specs — counting cross-check only.
        replay = replay_ledger(records)
        summary = replay["summary"]
        result = ReplayResult(path=str(path), version=version,
                              executed=False, commands=replay["events"],
                              summary=summary,
                              truncated=summary is None)
        result.ledger = {"ref_count": replay["ref_count"],
                         "acts_per_bank": replay["acts_per_bank"]}
        result.ledger_ok = (
            summary is not None
            and summary.get("ref_count") == replay["ref_count"]
            and summary.get("acts_per_bank") == replay["acts_per_bank"])
        return result

    if host is None:
        host = host_from_manifest(meta)
    result = ReplayResult(path=str(path), version=version, executed=True)
    summary = None
    index = 0
    stop = max(max_divergences, 1)
    while index < len(records):
        record = records[index]
        kind = record.get("type")
        if kind == "header":
            index += 1
            continue
        if kind == "summary":
            summary = record
            index += 1
            continue
        op = record["t"]
        if op == "EVT":  # pipeline-level, not a command
            index += 1
            continue
        result.commands += 1
        if _check(result, index, "ps", record, record["ps"], host.now_ps,
                  stop):
            break
        if op == "WR":
            if "pat" not in record:
                raise ConfigError(f"record #{index}: v2 WR record has no "
                                  "pattern spec; trace is not executable")
            host.write_row(record["bk"], record["row"],
                           pattern_from_spec(record["pat"]))
        elif op == "RD":
            if record.get("mm"):
                actual = mismatch_digest(
                    host.read_row_mismatches(record["bk"], record["row"]))
            else:
                actual = data_digest(host.read_row(record["bk"],
                                                   record["row"]))
            if "crc" in record:
                result.reads_verified += 1
                if _check(result, index, "rd-digest", record,
                          record["crc"], actual, stop):
                    break
        elif op == "ACT":
            if "mg" in record:
                group = _collect_multi(records, index, record)
                host.hammer_multi(
                    {r["bk"]: [tuple(entry) for entry in r["rows"]]
                     for r in group},
                    HammerMode(group[0]["mode"]))
                result.commands += len(group) - 1
                index += len(group) - 1
            else:
                host.hammer(record["bk"],
                            [tuple(entry) for entry in record["rows"]],
                            HammerMode(record["mode"]))
        elif op == "REF":
            if _check(result, index, "ref-idx", record, record["idx"],
                      host.ref_count, stop):
                break
            host.refresh(record["n"],
                         at_nominal_rate=bool(record.get("nominal")))
        elif op == "WAIT":
            host.wait(record["dur"])
        else:
            raise ConfigError(f"record #{index}: unknown command {op!r}")
        index += 1

    result.ledger = host.ledger()
    if summary is None and not result.divergences:
        # Only scan for a summary we did not reach if we broke early.
        summary = next((r for r in records if r.get("type") == "summary"),
                       None)
    result.summary = summary
    result.truncated = summary is None
    result.ledger_ok = (
        summary is not None
        and summary.get("ref_count") == result.ledger["ref_count"]
        and summary.get("acts_per_bank") == result.ledger["acts_per_bank"])
    return result


def render_replay(result: ReplayResult) -> str:
    """Plain-text rendering of a :func:`replay_trace` outcome."""
    lines = ["Trace replay", "============", "",
             f"trace          : {result.path}",
             f"schema version : {result.version}",
             f"mode           : "
             + ("re-executed against a fresh module" if result.executed
                else "ledger counting only (v1 trace)"),
             f"commands       : {result.commands}",
             f"reads verified : {result.reads_verified}"]
    for divergence in result.divergences:
        lines.append(f"DIVERGENCE     : {divergence.describe()}")
    if result.truncated:
        lines.append("LEDGER         : trace truncated: no summary record")
    elif result.ledger_ok:
        lines.append("ledger         : OK — replayed host ledger matches "
                     "the trace summary exactly")
    else:
        recorded = {k: v for k, v in (result.summary or {}).items()
                    if k != "type"}
        lines.append(f"LEDGER         : MISMATCH — replayed "
                     f"{result.ledger}, trace summary recorded "
                     f"{recorded}")
    lines.append("")
    lines.append("result         : "
                 + ("OK — the trace is an executable proof of the run"
                    if result.ok else "FAIL"))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.replay",
        description="Re-execute a recorded command trace against a "
                    "freshly built module and verify clocks, read "
                    "digests, and the final ledger.")
    parser.add_argument("trace", help="path to a trace .jsonl file")
    parser.add_argument("--all", action="store_true",
                        help="keep replaying past the first divergence "
                             "(collect up to 25)")
    args = parser.parse_args(argv)
    try:
        result = replay_trace(args.trace,
                              max_divergences=25 if args.all else 1)
    except ConfigError as error:
        print(f"replay error: {error}", file=sys.stderr)
        return 2
    print(render_replay(result))
    if result.divergences:
        return 1
    if result.truncated:
        print("trace truncated: no summary record", file=sys.stderr)
        return 3
    return 0 if result.ledger_ok else 1


if __name__ == "__main__":
    sys.exit(main())
