"""``python -m repro.obs.evidence`` entry point.

A separate ``__main__`` shim (rather than running the package module
itself) keeps runpy from double-importing :mod:`repro.obs.evidence`,
which the core inference modules already import at package load.
"""

import sys

from . import main

sys.exit(main())
