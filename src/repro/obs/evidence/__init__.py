"""Inference provenance: evidence ledger + commands-to-discovery.

U-TRR's output is a handful of inferred TRR parameters per module
(sampler period, table capacity, REF-to-TRR ratio, HC_first, the
classifier label).  This module records *why* the pipeline believes
each of them — and what each conclusion cost in DRAM commands — as an
append-only ledger of **decision nodes**:

``{"kind": "decision", "seq": 3, "module": "A5", "unit": "eval/A5",
"stage": "inference.period", "parameter": "period", "value": 16,
"outcome": "accepted", "confidence": 1.0,
"commands": {"acts": 120384, "refs": 9216, "total": 129600},
"commands_to_discovery": 41200,
"evidence": [{"kind": "ref-indices", "count": 9, "refs": [..]}],
"detail": {...}}``

* ``outcome`` is one of :data:`OUTCOMES` — a hypothesis was accepted,
  rejected, or degraded (accepted as a fallback after faults).
* ``commands`` is the cumulative command stamp at decision time, taken
  from the host's own ACT/REF ledger (and, when a
  :class:`~repro.obs.CommandProfiler` is attached, its per-opcode
  counts) — never from wall time, so stamps are deterministic for a
  seed and identical across worker counts.
* ``commands_to_discovery`` is the waterfall delta: commands issued
  since the previous decision on the same ledger.  Summed per
  parameter it attributes the whole run's command budget to the
  conclusions it paid for (the metric the ROADMAP's adaptive-planner
  item optimizes).
* ``evidence`` is the chain of concrete observations backing the
  decision — REF indices, REF windows, probed rows, read digests —
  built with the ``ev_*`` helpers so the schema stays uniform and
  bounded (:data:`MAX_ITEMS` caps inline lists).

Ledgers ride the same side channels as metrics: per-unit ledgers fold
into the caller's in submission order (``--workers N`` byte-identical
to sequential), cache hits replay their stored nodes, and runs persist
the merged ledger as an ``evidence.jsonl`` sidecar next to the trace.

``python -m repro.obs.evidence sidecar.jsonl`` renders the per-module
report (parameter -> evidence chain -> command budget); ``--json``
emits the structured form; the exit code is nonzero when any
conclusion carries an empty evidence chain.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Sidecar schema version (header row ``{"kind": "evidence-header"}``).
EVIDENCE_SCHEMA = 1

#: Decision outcomes.
OUTCOMES = ("accepted", "rejected", "degraded")

#: Cap on inline list payloads so sidecars stay bounded.
MAX_ITEMS = 64


def _jsonify(value, _depth: int = 0):
    """Best-effort conversion to a JSON- and pickle-safe value."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):  # numpy scalar
        try:
            return _jsonify(value.item(), _depth)
        except Exception:
            return repr(value)[:120]
    if _depth >= 6:
        return repr(value)[:120]
    if isinstance(value, dict):
        return {str(key): _jsonify(item, _depth + 1)
                for key, item in list(value.items())[:MAX_ITEMS]}
    if isinstance(value, (list, tuple, set, frozenset)):
        seq = list(value)
        if isinstance(value, (set, frozenset)):
            try:
                seq = sorted(seq)
            except TypeError:
                pass
        out = [_jsonify(item, _depth + 1) for item in seq[:MAX_ITEMS]]
        if len(seq) > MAX_ITEMS:
            out.append(f"... +{len(seq) - MAX_ITEMS} more")
        return out
    return repr(value)[:120]


def command_stamp(host=None, profiler=None) -> dict:
    """Cumulative command counts at this instant (deterministic).

    *host* is anything exposing ``ref_count`` / ``acts_per_bank`` (the
    SoftMC host's own ledger); *profiler*, when enabled, contributes
    per-opcode counts.  Wall time never enters a stamp.
    """
    acts = refs = 0
    if host is not None:
        refs = int(getattr(host, "ref_count", 0) or 0)
        per_bank = getattr(host, "acts_per_bank", None) or {}
        acts = int(sum(per_bank.values()))
    stamp = {"acts": acts, "refs": refs, "total": acts + refs}
    if profiler is not None and getattr(profiler, "enabled", False):
        counts = getattr(profiler, "counts", None) or {}
        opcodes = {op: int(n) for op, n in sorted(counts.items()) if n}
        if opcodes:
            stamp["opcodes"] = opcodes
    return stamp


# -- observation constructors (uniform evidence-chain schema) ----------

def ev_refs(indices, label: str = "ref-indices") -> dict:
    """REF indices at which an effect was observed (trace-resolvable)."""
    seq = [int(index) for index in indices]
    node = {"kind": label, "count": len(seq), "refs": seq[:MAX_ITEMS]}
    if len(seq) > MAX_ITEMS:
        node["truncated"] = True
    return node


def ev_window(lo, hi, label: str = "ref-window") -> dict:
    """A half-open REF-index window covering an observation."""
    return {"kind": label, "lo": int(lo), "hi": int(hi)}


def ev_rows(rows, label: str = "rows") -> dict:
    """Row addresses supporting a decision."""
    seq = [int(row) for row in rows]
    node = {"kind": label, "count": len(seq), "rows": seq[:MAX_ITEMS]}
    if len(seq) > MAX_ITEMS:
        node["truncated"] = True
    return node


def ev_probe(row, flipped, testable) -> dict:
    """One mapping-RE hammer probe: which neighbours flipped."""
    return {"kind": "probe", "row": int(row),
            "flipped": [int(r) for r in flipped][:MAX_ITEMS],
            "testable": [int(r) for r in testable][:MAX_ITEMS]}


def ev_value(label: str, value) -> dict:
    """A generic labelled observation (counts, digests, fractions)."""
    return {"kind": label, "value": _jsonify(value)}


def ev_error(err) -> dict:
    """The error that forced a rejection or degradation."""
    return {"kind": "error", "error": type(err).__name__,
            "detail": str(err)[:200]}


class EvidenceLedger:
    """Append-only ledger of decision nodes for one run (or one unit).

    Per-unit ledgers are created by the parallel engine and folded into
    the caller's ledger in submission order via :meth:`merge`; the
    merged ledger is what persists as the sidecar.  Recording sites
    call :meth:`decide` once per accepted/rejected hypothesis — cold
    paths only, so the enabled ledger stays off the command hot path
    entirely.
    """

    enabled = True

    def __init__(self, module: str | None = None):
        self.module = module
        self.nodes: list[dict] = []
        # Cumulative command total at the previous decision: the
        # waterfall baseline for commands_to_discovery.
        self._last_total = 0

    def decide(self, parameter: str, value=None, *,
               outcome: str = "accepted", stage: str | None = None,
               confidence: float | None = None, evidence=(),
               detail: dict | None = None, host=None, profiler=None,
               module: str | None = None) -> dict:
        """Record one decision node and return it."""
        if outcome not in OUTCOMES:
            raise ValueError(f"outcome must be one of {OUTCOMES}, "
                             f"got {outcome!r}")
        stamp = command_stamp(host=host, profiler=profiler)
        node: dict = {
            "kind": "decision",
            "seq": len(self.nodes),
            "parameter": str(parameter),
            "value": _jsonify(value),
            "outcome": outcome,
        }
        mod = module if module is not None else self.module
        if mod is not None:
            node["module"] = mod
        if stage is not None:
            node["stage"] = stage
        if confidence is not None:
            node["confidence"] = round(float(confidence), 6)
        node["commands"] = stamp
        node["commands_to_discovery"] = max(
            stamp["total"] - self._last_total, 0)
        self._last_total = max(self._last_total, stamp["total"])
        node["evidence"] = [_jsonify(item) for item in evidence if item]
        if detail:
            node["detail"] = _jsonify(detail)
        self.nodes.append(node)
        return node

    def merge(self, other, unit: str | None = None) -> None:
        """Fold another ledger's nodes (or dumped node dicts) in order.

        *unit* stamps the originating work-unit id onto nodes that do
        not carry one yet — the engine passes the submission-order unit
        id, so a ``--workers N`` fold is byte-identical to sequential.
        """
        nodes = other.nodes if isinstance(other, EvidenceLedger) else other
        if not nodes:
            return
        for node in nodes:
            row = dict(node)
            if unit is not None and "unit" not in row:
                row["unit"] = unit
            row["seq"] = len(self.nodes)
            self.nodes.append(row)

    def dump(self) -> list[dict]:
        """Plain-dict node list (envelope / sidecar payload)."""
        return [dict(node) for node in self.nodes]

    def emit_metrics(self, metrics) -> None:
        """Fold this ledger into a :class:`MetricsRegistry`.

        Emits ``evidence.*`` counters plus one
        ``inference.commands_to_discovery.<parameter>`` counter per
        parameter (summed over that parameter's decisions, retries
        included) — the counters the history gate and the Prometheus
        export surface.
        """
        for node in self.nodes:
            metrics.inc("evidence.decisions")
            metrics.inc("evidence." + node.get("outcome", "accepted"))
            if not node.get("evidence"):
                metrics.inc("evidence.empty_chains")
            cost = int(node.get("commands_to_discovery", 0) or 0)
            if cost:
                metrics.inc("inference.commands_to_discovery."
                            + node["parameter"], cost)

    def summary(self) -> dict:
        return nodes_summary(self.nodes)


def nodes_summary(nodes) -> dict:
    """Aggregate node dicts into the compact per-parameter summary used
    by telemetry ``unit-done`` events and the ``/evidence`` endpoint."""
    out: dict = {"decisions": 0, "accepted": 0, "rejected": 0,
                 "degraded": 0, "empty_chains": 0, "commands": 0,
                 "parameters": {}}
    for node in nodes:
        out["decisions"] += 1
        outcome = node.get("outcome", "accepted")
        if outcome in OUTCOMES:
            out[outcome] += 1
        if not node.get("evidence"):
            out["empty_chains"] += 1
        cost = int(node.get("commands_to_discovery", 0) or 0)
        out["commands"] += cost
        stats = out["parameters"].setdefault(
            node.get("parameter", "?"),
            {"decisions": 0, "accepted": 0, "commands": 0, "evidence": 0})
        stats["decisions"] += 1
        if outcome == "accepted":
            stats["accepted"] += 1
        stats["commands"] += cost
        stats["evidence"] += len(node.get("evidence") or ())
    out["parameters"] = dict(sorted(out["parameters"].items()))
    return out


# -- sidecar IO --------------------------------------------------------

def write_jsonl(path, nodes, meta: dict | None = None) -> Path:
    """Persist *nodes* as the ``evidence.jsonl`` sidecar.

    Line 1 is the header (schema + optional run meta); every following
    line is one decision node.  Keys are sorted so identical ledgers
    serialize byte-identically (the CI workers-vs-sequential check
    diffs these files directly).
    """
    path = Path(path)
    if isinstance(nodes, EvidenceLedger):
        nodes = nodes.dump()
    header: dict = {"kind": "evidence-header", "schema": EVIDENCE_SCHEMA,
                    "decisions": len(nodes)}
    if meta:
        header.update(_jsonify(meta))
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, sort_keys=True) + "\n")
        for node in nodes:
            fh.write(json.dumps(node, sort_keys=True) + "\n")
    return path


def read_jsonl(path) -> tuple[dict, list[dict]]:
    """Read a sidecar back as ``(header, nodes)``."""
    header: dict = {}
    nodes: list[dict] = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("kind") == "evidence-header":
                header = row
            else:
                nodes.append(row)
    return header, nodes


# -- report ------------------------------------------------------------

def node_module(node: dict) -> str:
    """The module a node belongs to (explicit tag, else unit id)."""
    module = node.get("module")
    if module:
        return str(module)
    unit = node.get("unit")
    if unit:
        parts = str(unit).split("/")
        return parts[1] if len(parts) > 1 else parts[0]
    return "-"


def _render_observation(obs: dict) -> str:
    kind = obs.get("kind", "?")
    fields = ", ".join(f"{key}={_compact(value)}"
                       for key, value in sorted(obs.items())
                       if key != "kind")
    return f"{kind}({fields})" if fields else kind


def _compact(value, limit: int = 48) -> str:
    text = json.dumps(value, sort_keys=True, default=repr)
    return text if len(text) <= limit else text[:limit - 3] + "..."


def render_report(nodes, *, chains: bool = True) -> str:
    """Markdown report: per-module parameter table + evidence chains."""
    by_module: dict[str, list[dict]] = {}
    for node in nodes:
        by_module.setdefault(node_module(node), []).append(node)
    total = nodes_summary(nodes)
    lines = [f"# Evidence report — {len(by_module)} module(s), "
             f"{total['decisions']} decision(s), "
             f"{total['commands']} command(s) attributed", ""]
    for module in sorted(by_module):
        rows = by_module[module]
        summary = nodes_summary(rows)
        lines.append(f"## {module}")
        lines.append("")
        lines.append("| parameter | value | outcome | confidence "
                     "| commands_to_discovery | evidence |")
        lines.append("|---|---|---|---|---|---|")
        for node in rows:
            confidence = node.get("confidence")
            lines.append(
                "| {p} | {v} | {o} | {c} | {n} | {e} |".format(
                    p=node.get("parameter", "?"),
                    v=_compact(node.get("value")),
                    o=node.get("outcome", "accepted"),
                    c="-" if confidence is None else confidence,
                    n=node.get("commands_to_discovery", 0),
                    e=len(node.get("evidence") or ())))
        lines.append("")
        lines.append(f"Command budget: {summary['commands']} commands "
                     f"over {summary['decisions']} decisions "
                     f"({summary['accepted']} accepted, "
                     f"{summary['rejected']} rejected, "
                     f"{summary['degraded']} degraded).")
        if chains:
            lines.append("")
            lines.append("Evidence chains:")
            for node in rows:
                chain = node.get("evidence") or ()
                rendered = ("; ".join(_render_observation(obs)
                                      for obs in chain)
                            if chain else "(EMPTY)")
                lines.append(f"- {node.get('parameter', '?')} "
                             f"[{node.get('outcome', 'accepted')}] "
                             f"<- {rendered}")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _max_ref_index(nodes) -> int | None:
    """Largest REF index referenced by any evidence observation."""
    top: int | None = None
    for node in nodes:
        for obs in node.get("evidence") or ():
            candidates: list[int] = []
            refs = obs.get("refs")
            if isinstance(refs, list):
                candidates.extend(int(r) for r in refs
                                  if isinstance(r, int))
            for key in ("lo", "hi"):
                bound = obs.get(key)
                if isinstance(bound, int) and "window" in str(
                        obs.get("kind", "")):
                    candidates.append(bound)
            if candidates:
                peak = max(candidates)
                top = peak if top is None else max(top, peak)
    return top


def check_trace(nodes, trace_path) -> tuple[bool, str]:
    """Verify REF-index evidence resolves inside *trace_path*.

    Uses the trace's closing ledger summary (``ref_count``): every REF
    index cited as evidence must have been issued by the traced run.
    """
    from ..recorder import read_trace, replay_ledger
    records = read_trace(trace_path)
    ledger = replay_ledger(records)
    ref_count = int(ledger.get("ref_count", 0))
    peak = _max_ref_index(nodes)
    if peak is None:
        return True, "no REF-index evidence to resolve"
    if peak < ref_count:
        return True, (f"max cited REF index {peak} < traced "
                      f"ref_count {ref_count}")
    return False, (f"REF index {peak} cited as evidence but the trace "
                   f"only issued {ref_count} REFs")


#: Package-level aliases (``repro.obs.write_evidence`` etc. — the bare
#: ``*_jsonl`` names are too generic to export from the package).
write_evidence = write_jsonl
read_evidence = read_jsonl
render_evidence_report = render_report


def _collect_paths(raw_paths) -> list[Path]:
    paths: list[Path] = []
    for raw in raw_paths:
        path = Path(raw)
        if path.is_dir():
            paths.extend(sorted(path.glob("**/evidence*.jsonl")))
        else:
            paths.append(path)
    return paths


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.evidence",
        description="Render inference-provenance sidecars: parameter "
                    "-> evidence chain -> command budget.")
    parser.add_argument("paths", nargs="+",
                        help="evidence.jsonl sidecars (or directories "
                             "to search)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the structured report instead of "
                             "markdown")
    parser.add_argument("--no-chains", action="store_true",
                        help="omit per-decision evidence chains")
    parser.add_argument("--trace", default=None,
                        help="trace.jsonl to resolve REF-index "
                             "evidence against")
    args = parser.parse_args(argv)

    paths = _collect_paths(args.paths)
    if not paths:
        print("no evidence sidecars found", file=sys.stderr)
        return 2
    runs = []
    nodes: list[dict] = []
    for path in paths:
        try:
            header, rows = read_jsonl(path)
        except (OSError, json.JSONDecodeError) as err:
            print(f"cannot read {path}: {err}", file=sys.stderr)
            return 2
        runs.append({"path": str(path), "header": header,
                     "summary": nodes_summary(rows), "nodes": rows})
        nodes.extend(rows)

    empty = sum(1 for node in nodes if not node.get("evidence"))
    resolved = None
    if args.trace is not None:
        try:
            ok, message = check_trace(nodes, args.trace)
        except (OSError, json.JSONDecodeError) as err:
            print(f"cannot read trace {args.trace}: {err}",
                  file=sys.stderr)
            return 2
        resolved = {"ok": ok, "message": message}

    if args.as_json:
        report = {"schema": EVIDENCE_SCHEMA, "runs": runs,
                  "summary": nodes_summary(nodes),
                  "empty_chains": empty}
        if resolved is not None:
            report["trace"] = resolved
        print(json.dumps(report, sort_keys=True, indent=2))
    else:
        sys.stdout.write(render_report(nodes,
                                       chains=not args.no_chains))
        if resolved is not None:
            print(f"\ntrace resolution: "
                  f"{'ok' if resolved['ok'] else 'FAILED'} — "
                  f"{resolved['message']}")
    if empty:
        print(f"ERROR: {empty} decision(s) carry an empty evidence "
              f"chain", file=sys.stderr)
        return 1
    if resolved is not None and not resolved["ok"]:
        print(f"ERROR: {resolved['message']}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
