"""Structured logging for the CLIs (key=value lines, zero dependencies).

The eval entry points used to sprinkle ad-hoc ``print()`` calls for
progress and timing; those lines were unparseable and polluted stdout
(where the rendered artifacts live).  :class:`StructuredLog` replaces
them: every message is one ``event=... key=value ...`` line on *stderr*,
trivially grep-able, and suppressible as a whole (``--quiet``) without
touching the artifact bytes on stdout.
"""

from __future__ import annotations

import sys
import time
from typing import IO


def _format_value(value) -> str:
    if isinstance(value, float):
        text = f"{value:.3f}".rstrip("0").rstrip(".")
    else:
        text = str(value)
    if " " in text or "=" in text or '"' in text:
        return '"' + text.replace('"', '\\"') + '"'
    return text


class StructuredLog:
    """Line-oriented key=value logger.

    ``enabled=False`` silences everything — the ``--quiet`` contract is
    that stdout stays byte-stable and stderr stays empty.

    ``elapsed=True`` (opt-in; off by default so byte-stable stderr
    expectations keep holding) stamps every line with a monotonic
    ``elapsed_ms=`` field counted from the logger's construction — the
    eval CLIs enable it so long sweeps show per-event latency in place.
    """

    def __init__(self, stream: IO[str] | None = None,
                 enabled: bool = True, elapsed: bool = False,
                 clock=time.monotonic) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self.elapsed = elapsed
        self._clock = clock
        self._origin = clock()

    def _emit(self, level: str, event: str, fields: dict) -> None:
        if not self.enabled:
            return
        parts = [f"event={_format_value(event)}", f"level={level}"]
        if self.elapsed:
            elapsed_ms = int((self._clock() - self._origin) * 1000)
            parts.append(f"elapsed_ms={elapsed_ms}")
        parts.extend(f"{key}={_format_value(value)}"
                     for key, value in fields.items())
        self._stream.write(" ".join(parts) + "\n")

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warning(self, event: str, **fields) -> None:
        self._emit("warning", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)
