"""Live telemetry: the side channel a running sweep reports into.

Everything in :mod:`repro.obs` so far is post-hoc — traces, metrics,
and history rows exist only after a run finishes.  This module is the
*live* layer: workers publish periodic snapshots (units done, counter
totals, the currently open span, commands issued) into a **spool
directory** of JSONL files, strictly off the artifact path, so a
coordinator — or ``python -m repro.obs.serve`` — can report progress,
ETA, and stalls while the sweep is still executing.

Design rules:

- **Determinism is untouched.**  Telemetry carries wall-clock
  timestamps and worker PIDs, which is exactly why it lives in its own
  spool and never in the trace, the metrics fold, or any rendered
  artifact.  ``--workers N`` stays byte-identical to sequential with
  telemetry enabled (``tests/eval/test_parallel_determinism.py``).
- **Crash-tolerant transport.**  Each work unit appends to its own
  file (open-append-close per event), so a worker dying mid-line can
  corrupt at most its own tail; :func:`read_spool` skips unparseable
  lines instead of failing the whole scrape.
- **Trace-context propagation.**  Every event is stamped with the
  coordinator's ``run_id`` and its own ``unit`` id
  (:class:`TraceContext`), so the per-unit span timelines shipped in
  ``unit-done`` events reassemble into one *distributed* timeline
  (:func:`assemble_timeline`) covering the whole worker pool.
- **Liveness is observable.**  :class:`Watchdog` flags units whose
  command counters stopped advancing within a deadline — a worker that
  is *alive but wedged* still heartbeats, so staleness is judged on
  progress, not on process liveness alone.
"""

from __future__ import annotations

import json
import os
import threading
import time
import zlib
from dataclasses import dataclass
from pathlib import Path

#: Counter names summed into each heartbeat's ``commands`` figure (the
#: host command-bus pressure a live dashboard wants first).
COMMAND_COUNTERS = ("host.acts", "host.refs")


@dataclass(frozen=True)
class TraceContext:
    """Parent stamps propagated from the coordinator into every event.

    ``run_id`` names the coordinating run; ``unit_id`` the work unit a
    worker is executing (None for coordinator-side events).  Stamped
    verbatim on every published event, the pair is what lets per-unit
    timelines from many processes assemble into one.
    """

    run_id: str
    unit_id: str | None = None

    def stamp(self, event: dict) -> dict:
        event["run"] = self.run_id
        if self.unit_id is not None:
            event["unit"] = self.unit_id
        return event


def spool_filename(unit_id: str | None) -> str:
    """Stable, collision-free spool file name for one unit."""
    if unit_id is None:
        return "_coordinator.jsonl"
    safe = "".join(ch if ch.isalnum() or ch in "._-" else "__"
                   for ch in unit_id)
    tag = zlib.crc32(unit_id.encode("utf-8")) & 0xFFFFFFFF
    return f"{safe}-{tag:08x}.jsonl"


class TelemetrySink:
    """One unit's (or the coordinator's) end of the telemetry bus.

    ``publish`` appends one JSON line per event; ``heartbeat`` is the
    rate-limited periodic variant.  A sink is cheap to construct and
    holds no open file handle, so it survives fork/pickle boundaries
    trivially (the engine rebuilds one inside each worker).
    """

    enabled = True

    def __init__(self, spool, context: TraceContext,
                 min_interval_s: float = 0.25) -> None:
        self.spool = Path(spool)
        self.context = context
        self.min_interval_s = min_interval_s
        self.path = self.spool / spool_filename(context.unit_id)
        self._seq = 0
        self._last_heartbeat = 0.0

    def publish(self, kind: str, **fields) -> dict:
        """Append one event; returns the event as written."""
        event: dict = {"kind": kind, "ts": round(time.time(), 6),
                       "seq": self._seq}
        self.context.stamp(event)
        event.update(fields)
        self._seq += 1
        self.spool.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(event, separators=(",", ":"))
                         + "\n")
        return event

    def heartbeat(self, metrics=None, spans=None, **fields) -> bool:
        """Publish a rate-limited ``heartbeat`` snapshot.

        Carries the ambient registry's command totals and the innermost
        open span, the two facts a dashboard needs to answer "is this
        unit moving, and in which stage?".  Returns False when the
        rate limit suppressed the event.
        """
        now = time.monotonic()
        if now - self._last_heartbeat < self.min_interval_s:
            return False
        self._last_heartbeat = now
        if metrics is not None and getattr(metrics, "enabled", False):
            fields.setdefault("commands", sum(
                metrics.counter(name) for name in COMMAND_COUNTERS))
            fields.setdefault("counters", dict(
                metrics.as_dict()["counters"]))
        if spans is not None and getattr(spans, "enabled", False):
            current = spans.current_name()
            if current is not None:
                fields.setdefault("span", current)
        self.publish("heartbeat", **fields)
        return True


class NullTelemetrySink:
    """Disabled sink: publishing costs one attribute check."""

    enabled = False

    def publish(self, kind: str, **fields) -> dict:
        return {}

    def heartbeat(self, metrics=None, spans=None, **fields) -> bool:
        return False


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable recipe for the telemetry side channel of one run.

    The engine ships this into every pool worker; each worker derives
    its own :class:`TelemetrySink` from it.  ``interval_s`` paces the
    background heartbeat; ``stall_deadline_s`` (when set) arms the
    coordinator-side :class:`Watchdog`.
    """

    spool: str
    run_id: str = "run"
    interval_s: float = 1.0
    stall_deadline_s: float | None = None
    heartbeats: bool = True

    def sink(self, unit_id: str | None = None) -> TelemetrySink:
        context = TraceContext(run_id=self.run_id, unit_id=unit_id)
        return TelemetrySink(self.spool, context,
                             min_interval_s=self.interval_s / 2)


class Heartbeat:
    """Background thread publishing periodic unit snapshots.

    Reads the ambient metrics registry and span tracker from *outside*
    the unit's thread — dict reads are atomic under the GIL — so the
    hot path pays nothing for liveness reporting.
    """

    def __init__(self, sink: TelemetrySink, metrics=None, spans=None,
                 interval_s: float = 1.0) -> None:
        self._sink = sink
        self._metrics = metrics
        self._spans = spans
        self._interval_s = max(interval_s, 0.05)
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def start(self) -> "Heartbeat":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-telemetry")
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.wait(self._interval_s):
            try:
                self._sink.heartbeat(self._metrics, self._spans)
            except OSError:  # spool unwritable: liveness must not kill
                return       # the unit it reports on

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)


# -- coordinator side: reading the spool ---------------------------------


def read_spool(spool) -> list[dict]:
    """All events in a spool directory, oldest first.

    Corrupt lines (a worker died mid-write) and foreign files are
    skipped: a live endpoint must serve whatever is readable *now*.
    """
    spool = Path(spool)
    if not spool.is_dir():
        return []
    events: list[dict] = []
    for path in sorted(spool.glob("*.jsonl")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            continue
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(event, dict):
                events.append(event)
    events.sort(key=lambda e: (e.get("ts", 0.0), e.get("seq", 0)))
    return events


def _by_unit(events: list[dict]) -> dict[str, list[dict]]:
    units: dict[str, list[dict]] = {}
    for event in events:
        unit = event.get("unit")
        if unit is not None:
            units.setdefault(unit, []).append(event)
    return units


def progress(events: list[dict], now: float | None = None) -> dict:
    """One live progress summary from a spool's events.

    Reports unit states (running / done / failed), an ETA extrapolated
    from completed unit wall-clocks at the observed concurrency, total
    commands issued so far, and each running unit's current span.
    """
    if now is None:
        now = time.time()
    run_id = None
    units_total = None
    workers = None
    for event in events:
        if event.get("kind") == "run-start":
            run_id = event.get("run", run_id)
            units_total = event.get("units_total", units_total)
            workers = event.get("workers", workers)
    units = _by_unit(events)
    done: dict[str, float] = {}
    failed: list[str] = []
    cached: list[str] = []
    running: dict[str, dict] = {}
    commands = 0
    for unit_id, unit_events in units.items():
        last = unit_events[-1]
        done_event = next((e for e in unit_events
                           if e.get("kind") == "unit-done"), None)
        if done_event is not None:
            done[unit_id] = done_event.get("wall_s", 0.0)
            commands += done_event.get("commands", 0)
            if done_event.get("error"):
                failed.append(unit_id)
            if done_event.get("cached"):
                cached.append(unit_id)
            continue
        heartbeats = [e for e in unit_events
                      if e.get("kind") == "heartbeat"]
        newest = heartbeats[-1] if heartbeats else last
        commands += newest.get("commands", 0)
        running[unit_id] = {
            "age_s": round(now - unit_events[0].get("ts", now), 3),
            "span": newest.get("span"),
            "commands": newest.get("commands", 0),
        }
    total = units_total if units_total is not None else len(units)
    remaining = max(total - len(done), 0)
    eta_s = None
    if done and remaining:
        mean_wall = sum(done.values()) / len(done)
        concurrency = max(len(running), 1)
        if workers:
            concurrency = max(concurrency, min(workers, remaining))
        eta_s = round(mean_wall * remaining / concurrency, 3)
    return {
        "run": run_id,
        "units_total": total,
        "units_done": len(done),
        "units_failed": sorted(failed),
        # Units served from the result cache (their unit-done events
        # are replayed, flagged ``cached``); the live hit ratio is
        # units_cached / units_done.
        "units_cached": len(cached),
        "units_running": dict(sorted(running.items())),
        "unit_walls": {unit: round(wall, 6)
                       for unit, wall in sorted(done.items())},
        "commands": commands,
        "eta_s": eta_s,
    }


def aggregate_metrics(events: list[dict]):
    """Fold the spool's newest per-unit registry dumps into one.

    Finished units contribute their final ``unit-done`` metrics;
    still-running units contribute their last heartbeat's counters —
    so a mid-sweep ``/metrics`` scrape reflects work in flight.
    """
    from .metrics import MetricsRegistry
    registry = MetricsRegistry()
    for unit_events in _by_unit(events).values():
        newest: dict | None = None
        for event in unit_events:
            if event.get("kind") == "unit-done" \
                    and event.get("metrics"):
                newest = event["metrics"]
        if newest is None:
            heartbeats = [e for e in unit_events
                          if e.get("kind") == "heartbeat"
                          and e.get("counters")]
            if heartbeats:
                newest = {"counters": heartbeats[-1]["counters"]}
        if newest:
            registry.merge(newest)
    return registry


def aggregate_evidence(events: list[dict]) -> dict:
    """Fold per-unit ``unit-done`` evidence summaries into one.

    Each summary is the :func:`repro.obs.evidence.nodes_summary` shape
    (decisions / outcome counts / commands-to-discovery, plus a
    per-parameter breakdown); units without decision nodes carry no
    ``evidence`` field and contribute nothing.
    """
    total: dict = {"decisions": 0, "accepted": 0, "rejected": 0,
                   "degraded": 0, "empty_chains": 0, "commands": 0,
                   "units": 0, "parameters": {}}
    for unit_id, unit_events in sorted(_by_unit(events).items()):
        summary = None
        for event in unit_events:
            if event.get("kind") == "unit-done" and event.get("evidence"):
                summary = event["evidence"]
        if not summary:
            continue
        total["units"] += 1
        for key in ("decisions", "accepted", "rejected", "degraded",
                    "empty_chains", "commands"):
            total[key] += summary.get(key, 0)
        for parameter, stats in (summary.get("parameters") or {}).items():
            folded = total["parameters"].setdefault(
                parameter, {"decisions": 0, "accepted": 0,
                            "commands": 0, "evidence": 0})
            for key in folded:
                folded[key] += stats.get(key, 0)
    total["parameters"] = dict(sorted(total["parameters"].items()))
    return total


def assemble_timeline(events: list[dict]) -> list[dict]:
    """Merge per-unit span timelines into one distributed timeline.

    Each ``unit-done`` event carries the unit's :class:`SpanTracker`
    timeline plus the wall-clock instant its tracker was created
    (``origin_ts``).  Spans are re-based onto one shared origin (the
    earliest tracker origin across units) so the merged timeline shows
    the true overlap structure of the worker pool.
    """
    stamped: list[dict] = []
    origins: list[float] = []
    for event in events:
        if event.get("kind") != "unit-done" or not event.get("spans"):
            continue
        origins.append(event.get("origin_ts", 0.0))
    if not origins:
        return []
    epoch = min(origins)
    for event in events:
        if event.get("kind") != "unit-done" or not event.get("spans"):
            continue
        offset = event.get("origin_ts", 0.0) - epoch
        for span in event["spans"]:
            entry = dict(span)
            entry["run"] = event.get("run")
            entry["unit"] = event.get("unit")
            entry["start_s"] = round(span.get("start_s", 0.0) + offset,
                                     6)
            if span.get("end_s") is not None:
                entry["end_s"] = round(span["end_s"] + offset, 6)
            stamped.append(entry)
    stamped.sort(key=lambda e: (e["start_s"], e.get("unit") or ""))
    return stamped


@dataclass
class StalledUnit:
    """One unit the watchdog flagged: alive (maybe), but not moving."""

    unit_id: str
    age_s: float
    last_kind: str
    span: str | None = None

    def describe(self) -> str:
        where = f" in span {self.span!r}" if self.span else ""
        return (f"{self.unit_id}: no progress for {self.age_s:.1f}s "
                f"(last event {self.last_kind}{where})")


class Watchdog:
    """Stall detector over spool events.

    A unit is *stalled* when it started, has not finished, and its
    command counter has not advanced within ``deadline_s``.  Judged on
    progress rather than heartbeat arrival: a wedged worker whose
    heartbeat thread still runs is exactly the case a deadline on raw
    liveness would miss.
    """

    def __init__(self, deadline_s: float) -> None:
        self.deadline_s = deadline_s

    def scan(self, events: list[dict],
             now: float | None = None) -> list[StalledUnit]:
        if now is None:
            now = time.time()
        stalled: list[StalledUnit] = []
        for unit_id, unit_events in sorted(_by_unit(events).items()):
            if any(e.get("kind") == "unit-done" for e in unit_events):
                continue
            progress_ts = unit_events[0].get("ts", now)
            commands = None
            span = None
            last_kind = unit_events[0].get("kind", "?")
            for event in unit_events:
                span = event.get("span", span)
                last_kind = event.get("kind", last_kind)
                issued = event.get("commands")
                if issued is not None and issued != commands:
                    commands = issued
                    progress_ts = event.get("ts", progress_ts)
                elif issued is None:
                    progress_ts = event.get("ts", progress_ts)
            age = now - progress_ts
            if age > self.deadline_s:
                stalled.append(StalledUnit(unit_id=unit_id,
                                           age_s=round(age, 3),
                                           last_kind=last_kind,
                                           span=span))
        return stalled


def render_progress(summary: dict) -> str:
    """Compact text rendering of a :func:`progress` summary."""
    lines = [f"run {summary.get('run') or '?'}: "
             f"{summary['units_done']}/{summary['units_total']} units "
             f"done, {len(summary['units_running'])} running, "
             f"{summary['commands']} commands issued"]
    if summary.get("units_cached"):
        lines[0] += f", {summary['units_cached']} from cache"
    if summary.get("eta_s") is not None:
        lines[0] += f", eta {summary['eta_s']:.1f}s"
    for unit, state in summary["units_running"].items():
        span = f" span={state['span']}" if state.get("span") else ""
        lines.append(f"  running {unit}: {state['age_s']:.1f}s"
                     f"{span} commands={state['commands']}")
    for unit in summary.get("units_failed", []):
        lines.append(f"  FAILED {unit}")
    return "\n".join(lines)


def pool_breakdown(events: list[dict],
                   pool_wall_s: float | None = None) -> dict:
    """Straggler and overhead breakdown from one run's spool events.

    With *pool_wall_s* (the coordinator-measured wall-clock of the
    whole parallel run) the breakdown attributes the gap between the
    pool wall and its critical path: ``overhead_s`` is time the pool
    spent outside any unit (spawn, pickling, merge) plus imbalance.
    """
    walls = {unit: wall for unit, wall
             in progress(events)["unit_walls"].items()}
    if not walls:
        return {"unit_walls": {}, "stragglers": []}
    ordered = sorted(walls.items(), key=lambda kv: -kv[1])
    breakdown = {
        "unit_walls": {unit: round(wall, 6)
                       for unit, wall in sorted(walls.items())},
        "stragglers": [{"unit": unit, "wall_s": round(wall, 6)}
                       for unit, wall in ordered[:3]],
        "sum_unit_s": round(sum(walls.values()), 6),
        "max_unit_s": round(ordered[0][1], 6),
    }
    if pool_wall_s is not None:
        breakdown["pool_wall_s"] = round(pool_wall_s, 6)
        breakdown["overhead_s"] = round(
            max(pool_wall_s - ordered[0][1], 0.0), 6)
    return breakdown


# -- engine-facing helpers (used by repro.parallel) ----------------------


def unit_start_fields() -> dict:
    """Worker-identity fields stamped on ``unit-start`` events."""
    return {"pid": os.getpid()}
