"""Span-based stage profiling for the U-TRR pipeline.

A *span* brackets one pipeline stage in wall-clock time; spans nest
(scan -> calibrate -> analyze -> infer), and the tracker exports the
whole run as a flat timeline — each entry carrying its name, depth,
parent, and start/end relative to the tracker's creation — suitable for
JSON export or the indented text rendering.

Wall time is deliberately kept *out* of the command trace (which must be
deterministic); spans are the one place wall-clock profiling lives.

:class:`NullSpans` is the disabled path: ``span()`` returns a shared
no-op context manager so instrumented code needs no branches.
"""

from __future__ import annotations

import time
from contextlib import contextmanager


class SpanTracker:
    """Records nested stage spans as a timeline."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._origin = clock()
        #: Flat list of span dicts, in start order.
        self.spans: list[dict] = []
        self._stack: list[int] = []

    @contextmanager
    def span(self, name: str, **attrs):
        """Bracket one stage; nests under any currently-open span."""
        index = len(self.spans)
        record: dict = {
            "name": name,
            "depth": len(self._stack),
            "parent": self._stack[-1] if self._stack else None,
            "start_s": round(self._clock() - self._origin, 6),
            "end_s": None,
        }
        if attrs:
            record["attrs"] = attrs
        self.spans.append(record)
        self._stack.append(index)
        try:
            yield record
        finally:
            record["end_s"] = round(self._clock() - self._origin, 6)
            self._stack.pop()

    def current_name(self) -> str | None:
        """Name of the innermost open span (None outside any span).

        The live-telemetry heartbeat and the command-bus profiler read
        this to attribute "now" to a pipeline stage.
        """
        if not self._stack:
            return None
        return self.spans[self._stack[-1]]["name"]

    def as_timeline(self) -> list[dict]:
        """The spans with computed durations (open spans report None)."""
        timeline = []
        for record in self.spans:
            entry = dict(record)
            if entry["end_s"] is not None:
                entry["duration_s"] = round(
                    entry["end_s"] - entry["start_s"], 6)
            else:
                entry["duration_s"] = None
            timeline.append(entry)
        return timeline

    def render(self) -> str:
        """Indented text timeline (one line per span)."""
        if not self.spans:
            return "  (no spans)"
        lines = []
        for entry in self.as_timeline():
            duration = ("..." if entry["duration_s"] is None
                        else f"{entry['duration_s']:.3f}s")
            indent = "  " * (entry["depth"] + 1)
            attrs = entry.get("attrs")
            suffix = (" " + " ".join(f"{k}={v}" for k, v in attrs.items())
                      if attrs else "")
            lines.append(f"{indent}{entry['name']} {duration}{suffix}")
        return "\n".join(lines)


class _NullContext:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        pass


_NULL_CONTEXT = _NullContext()


class NullSpans:
    """The disabled tracker: spans cost one no-op context manager."""

    enabled = False
    spans: list[dict] = []

    def span(self, name: str, **attrs):
        return _NULL_CONTEXT

    def current_name(self) -> str | None:
        return None

    def as_timeline(self) -> list[dict]:
        return []

    def render(self) -> str:
        return "  (spans disabled)"
