"""Zero-dependency metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` is the pipeline's quantitative memory — how
many hammers landed per REF window, how many validation rounds were
retried, how many faults fired — kept as plain named numbers so any run
can be summarized, exported to JSON, and diffed against another run.

Histograms bucket observations by powers of two (the same shape DRAM
quantities naturally take: hammer counts, REF bursts, retry tallies),
keeping memory constant regardless of how many values stream in.

:class:`NullMetrics` is the disabled path: every method is a no-op and
``enabled`` is False so hot paths can skip the call entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def bucket_bound(value: float) -> int:
    """Power-of-two upper bound bucketing a non-negative observation.

    >>> [bucket_bound(v) for v in (0, 1, 2, 3, 9, 1024)]
    [0, 1, 2, 4, 16, 1024]
    """
    v = int(value)
    if v <= 0:
        return 0
    return 1 << (v - 1).bit_length()


@dataclass
class Histogram:
    """Bounded-memory distribution summary (power-of-two buckets)."""

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None
    #: Power-of-two upper bound -> observation count.
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        bound = bucket_bound(value)
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram | dict") -> None:
        """Fold *other* (a Histogram or its ``as_dict`` form) into self.

        Merging is exact for count/min/max/buckets; ``total`` is a float
        sum, so mean is exact whenever the observed values are (as all
        current pipeline observations are integers).
        """
        if isinstance(other, dict):
            counts = {int(bound): count
                      for bound, count in other.get("buckets", {}).items()}
            other = Histogram(count=other.get("count", 0),
                              total=other.get("total", 0.0),
                              min=other.get("min"), max=other.get("max"),
                              buckets=counts)
        if not other.count:
            return
        self.count += other.count
        self.total += other.total
        if self.min is None or (other.min is not None
                                and other.min < self.min):
            self.min = other.min
        if self.max is None or (other.max is not None
                                and other.max > self.max):
            self.max = other.max
        for bound, count in other.buckets.items():
            self.buckets[bound] = self.buckets.get(bound, 0) + count

    def as_dict(self) -> dict:
        return {"count": self.count, "total": self.total,
                "min": self.min, "max": self.max,
                "mean": round(self.mean, 3),
                "buckets": {str(k): v
                            for k, v in sorted(self.buckets.items())}}


class MetricsRegistry:
    """Named counters, gauges, and histograms for one run."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- writers -------------------------------------------------------------

    def inc(self, name: str, value: int = 1) -> None:
        self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram()
        histogram.observe(value)

    # -- readers -------------------------------------------------------------

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        return {name: value for name, value in sorted(self._counters.items())
                if name.startswith(prefix)}

    # -- merging -------------------------------------------------------------

    def merge(self, other) -> None:
        """Fold another registry (or an ``as_dict`` dump) into this one.

        Counters and histogram counts add; gauges take the other side's
        value (last writer wins, matching ``set_gauge`` semantics).  The
        parallel engine uses this to fold each work unit's metrics into
        the parent registry, so a ``--workers N`` run exports the same
        totals as a sequential one.
        """
        if isinstance(other, dict):
            data = other
        else:
            if not getattr(other, "enabled", False):
                return
            data = other.as_dict()
        for name, value in data.get("counters", {}).items():
            self.inc(name, value)
        for name, value in data.get("gauges", {}).items():
            self.set_gauge(name, value)
        for name, dump in data.get("histograms", {}).items():
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.merge(dump)

    # -- export --------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {name: histogram.as_dict()
                           for name, histogram
                           in sorted(self._histograms.items())},
        }

    def render(self) -> str:
        """Human-readable dump, one metric per line."""
        lines = []
        for name, value in sorted(self._counters.items()):
            lines.append(f"  {name} = {value}")
        for name, value in sorted(self._gauges.items()):
            lines.append(f"  {name} = {value}")
        for name, histogram in sorted(self._histograms.items()):
            lines.append(
                f"  {name} : count={histogram.count} "
                f"mean={histogram.mean:.1f} min={histogram.min} "
                f"max={histogram.max}")
        return "\n".join(lines) if lines else "  (no metrics)"


class NullMetrics:
    """The disabled registry: all writers are strict no-ops."""

    enabled = False

    def inc(self, name: str, value: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def gauge(self, name: str) -> float | None:
        return None

    def histogram(self, name: str) -> Histogram | None:
        return None

    def counters_with_prefix(self, prefix: str) -> dict[str, int]:
        return {}

    def merge(self, other) -> None:
        pass

    def as_dict(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def render(self) -> str:
        return "  (metrics disabled)"
