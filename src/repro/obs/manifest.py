"""Run manifests: every artifact carries its own reproduction recipe.

A manifest records everything needed to regenerate a figure, table, or
chaos artifact from scratch — seed, module, fault profile, evaluation
scale, the code revision (``git describe``), and the toolchain — as one
plain JSON-compatible dict.  Stamping it into eval artifacts makes any
result auditable from its own metadata, and (with ``include_time=False``)
byte-diffable across PRs.
"""

from __future__ import annotations

import platform
import subprocess
from datetime import datetime, timezone
from functools import lru_cache

import numpy

#: Bump when manifest keys change meaning.
MANIFEST_SCHEMA = 1


@lru_cache(maxsize=None)
def git_describe(cwd=None) -> str:
    """``git describe --always --dirty`` or ``"unknown"`` outside a repo.

    Memoized per process (keyed by *cwd*): the checkout cannot change
    mid-run, and every per-unit manifest calls this — at
    thousands-of-units scale one ``git`` fork per unit is measurable
    overhead.  Call ``git_describe.cache_clear()`` if a test mutates
    the repository under a cwd it already described.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, timeout=10, cwd=cwd)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def build_manifest(*, seed=None, module=None, fault_profile=None,
                   scale=None, include_time: bool = True,
                   **extra) -> dict:
    """Assemble a run manifest.

    Keyword-only core fields are included when not None; *extra* fields
    are merged verbatim (JSON-compatible values only).  With
    ``include_time=False`` the manifest is fully deterministic for a
    given checkout, which is what chaos artifacts use so two runs of the
    same PR diff clean.
    """
    manifest: dict = {
        "schema": MANIFEST_SCHEMA,
        "generator": "repro.obs",
        "git": git_describe(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
    }
    if include_time:
        manifest["created_utc"] = datetime.now(timezone.utc).isoformat(
            timespec="seconds")
    if seed is not None:
        manifest["seed"] = seed
    if module is not None:
        manifest["module"] = module
    if fault_profile is not None:
        manifest["fault_profile"] = fault_profile
    if scale is not None:
        manifest["scale"] = scale
    manifest.update(extra)
    return manifest
