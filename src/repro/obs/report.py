"""Trace summarizer CLI: ``python -m repro.obs.report trace.jsonl``.

Renders a command-level trace into the experimenter's view of the run:

- record totals by command type,
- the REF-interval timeline (activations landing between successive REF
  bursts, summarized as a power-of-two histogram),
- per-bank ACT totals (the activation pressure map),
- the TRR-hit event log (pipeline-level ``trr-hit`` events) and injected
  fault totals,
- a **ledger cross-check**: the trace is replayed command by command and
  the reconstructed ACT/REF counts must exactly match the host's own
  ledger stamped in the trace summary.  A mismatch means the trace is
  not a faithful record of the run and the CLI exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, field

from .metrics import Histogram
from .recorder import read_trace, replay_ledger


@dataclass
class TraceReport:
    """Everything the renderer needs, computed in one pass."""

    replay: dict
    #: (ref_index, ps, acts_since_previous_ref_burst) per REF record.
    ref_timeline: list[tuple[int, int, int]] = field(default_factory=list)
    acts_between_refs: Histogram = field(default_factory=Histogram)
    per_bank_acts: dict[int, int] = field(default_factory=dict)
    trr_hits: list[dict] = field(default_factory=list)
    fault_counts: dict[str, int] = field(default_factory=dict)
    other_events: dict[str, int] = field(default_factory=dict)

    @property
    def ledger_ok(self) -> bool:
        return self.ledger_status == "ok"

    @property
    def ledger_status(self) -> str:
        """``"ok"``, ``"mismatch"``, or ``"truncated"``.

        ``"truncated"`` means the trace ends without a summary record —
        the run died (or the recorder was never finalized) before the
        host ledger could be stamped, which is a different failure from
        a ledger that is present but wrong.
        """
        summary = self.replay["summary"]
        if summary is None:
            return "truncated"
        if (summary.get("ref_count") == self.replay["ref_count"]
                and summary.get("acts_per_bank")
                == self.replay["acts_per_bank"]):
            return "ok"
        return "mismatch"


def summarize(records) -> TraceReport:
    """One-pass summary of an iterable of trace records."""
    records = list(records)
    report = TraceReport(replay=replay_ledger(records))
    window_acts = 0
    for record in records:
        if record.get("type") is not None:
            continue
        op = record["t"]
        if op in ("WR", "RD"):
            bank = record["bk"]
            report.per_bank_acts[bank] = (
                report.per_bank_acts.get(bank, 0) + 1)
            window_acts += 1
        elif op == "ACT":
            bank = record["bk"]
            report.per_bank_acts[bank] = (
                report.per_bank_acts.get(bank, 0) + record["n"])
            window_acts += record["n"]
        elif op == "REF":
            report.ref_timeline.append(
                (record["idx"], record["ps"], window_acts))
            report.acts_between_refs.observe(window_acts)
            window_acts = 0
        elif op == "EVT":
            kind = record["kind"]
            if kind == "trr-hit":
                report.trr_hits.append(record)
            elif kind.startswith("fault:"):
                name = kind[len("fault:"):]
                report.fault_counts[name] = (
                    report.fault_counts.get(name, 0) + 1)
            else:
                report.other_events[kind] = (
                    report.other_events.get(kind, 0) + 1)
    return report


def _render_bar(value: int, peak: int, width: int = 36) -> str:
    if peak <= 0 or value <= 0:
        return ""
    return "#" * max(1, round(width * value / peak))


def render_report(report: TraceReport, max_hits: int = 40) -> str:
    """Plain-text rendering of a :func:`summarize` result."""
    replay = report.replay
    lines = ["Trace report", "============", ""]
    header = replay["header"] or {}
    meta = header.get("meta") or {}
    lines.append(f"schema version : {header.get('version', '?')}")
    for key in ("module", "fault_profile", "seed", "scale", "git"):
        if key in meta:
            lines.append(f"{key:<15}: {meta[key]}")
    lines.append("")

    lines.append("Record totals")
    lines.append("-------------")
    for op, count in sorted(replay["by_type"].items()):
        lines.append(f"  {op:<5} {count:>10}")
    lines.append(f"  total {replay['events']:>10}")
    lines.append("")

    lines.append("REF-interval timeline (ACTs between REF bursts)")
    lines.append("-----------------------------------------------")
    histogram = report.acts_between_refs
    if histogram.count:
        lines.append(f"  REF bursts: {histogram.count}  "
                     f"mean ACTs/interval: {histogram.mean:.1f}  "
                     f"max: {histogram.max}")
        peak = max(histogram.buckets.values())
        for bound, count in sorted(histogram.buckets.items()):
            lines.append(f"  <= {bound!s:>8} | {count:>8} "
                         f"{_render_bar(count, peak)}")
        first = report.ref_timeline[0]
        last = report.ref_timeline[-1]
        lines.append(f"  first REF: idx={first[0]} ps={first[1]}  "
                     f"last REF: idx={last[0]} ps={last[1]}")
    else:
        lines.append("  (no REF records)")
    lines.append("")

    lines.append("Per-bank ACT totals")
    lines.append("-------------------")
    if report.per_bank_acts:
        peak = max(report.per_bank_acts.values())
        for bank, count in sorted(report.per_bank_acts.items()):
            lines.append(f"  bank {bank:>3} | {count:>12} "
                         f"{_render_bar(count, peak)}")
    else:
        lines.append("  (no activations)")
    lines.append("")

    lines.append("TRR-hit event log")
    lines.append("-----------------")
    if report.trr_hits:
        for hit in report.trr_hits[:max_hits]:
            where = " ".join(f"{key}={hit[key]}" for key in sorted(hit)
                             if key not in ("t", "kind"))
            lines.append(f"  trr-hit {where}")
        if len(report.trr_hits) > max_hits:
            lines.append(f"  ... {len(report.trr_hits) - max_hits} more "
                         f"({len(report.trr_hits)} total)")
    else:
        lines.append("  (no TRR hits recorded)")
    lines.append("")

    if report.fault_counts:
        lines.append("Injected faults")
        lines.append("---------------")
        for name, count in sorted(report.fault_counts.items()):
            lines.append(f"  {name:<16} {count:>8}")
        lines.append("")

    lines.append("Ledger cross-check")
    lines.append("------------------")
    summary = replay["summary"]
    if summary is None:
        lines.append("  FAIL: trace truncated: no summary record (host "
                     "ledger missing — was the recorder finalized?)")
    else:
        lines.append(f"  replayed REFs : {replay['ref_count']}  "
                     f"(ledger {summary.get('ref_count')})")
        replayed_acts = sum(replay["acts_per_bank"].values())
        ledger_acts = sum(summary.get("acts_per_bank", {}).values())
        lines.append(f"  replayed ACTs : {replayed_acts}  "
                     f"(ledger {ledger_acts})")
        lines.append("  result        : "
                     + ("OK — trace replays to the host ledger exactly"
                        if report.ledger_ok else
                        "MISMATCH — trace does not replay to the ledger"))
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Summarize a repro.obs command trace and cross-check "
                    "it against the host ledger.")
    parser.add_argument("trace", help="path to a trace .jsonl file")
    parser.add_argument("--json", action="store_true",
                        help="emit the summary as JSON instead of text")
    parser.add_argument("--max-hits", type=int, default=40,
                        help="TRR-hit log lines to show (default 40)")
    args = parser.parse_args(argv)

    report = summarize(read_trace(args.trace))
    if args.json:
        payload = {
            "replay": report.replay,
            "acts_between_refs": report.acts_between_refs.as_dict(),
            "per_bank_acts": {str(bank): count for bank, count
                              in sorted(report.per_bank_acts.items())},
            "trr_hits": report.trr_hits,
            "fault_counts": report.fault_counts,
            "ledger_ok": report.ledger_ok,
            "ledger_status": report.ledger_status,
        }
        print(json.dumps(payload, indent=2))
    else:
        print(render_report(report, max_hits=args.max_hits))
    status = report.ledger_status
    if status == "truncated":
        # Distinct exit code: a cut-off trace (crashed run, recorder
        # never finalized) is not the same failure as a wrong ledger.
        print("trace truncated: no summary record", file=sys.stderr)
        return 3
    return 0 if status == "ok" else 1


if __name__ == "__main__":
    sys.exit(main())
