"""Cross-run regression sentinel: an append-only run-history store.

Traces, metrics, and spans each describe *one* run; regressions live
*between* runs.  :class:`RunHistory` is a stdlib-only append-only JSONL
store the harnesses record into — one row per completed run carrying
the run manifest, the flattened metrics registry, and per-stage span
wall-clocks — so any two runs of the same experiment, days apart, can
be compared with plain tools.

:func:`gate` is the sentinel: given the rows of one run *kind* it
compares the newest row against a rolling baseline of the previous runs
and flags

- counters whose relative delta exceeds a tolerance (drift in either
  direction is suspect: fewer retries can mean a fixed bug or a stage
  silently skipped), and
- span wall-clocks beyond the baseline by more than a slack factor
  (slower only — faster is not a regression).

A run with no baseline passes vacuously, so the gate is safe to enable
from the first CI run.

CLI: ``python -m repro.obs.history store.jsonl [--gate]`` — reports
trends, or gates the newest run of each kind; ``--gate`` exits 0 when
clean (including no-baseline), 1 on a flagged regression, 2 on an empty
or unreadable store.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass
from pathlib import Path

from ..errors import ConfigError

#: Bump when the row shape changes (rows are self-describing).
HISTORY_SCHEMA = 1


def flatten_metrics(metrics) -> dict[str, float]:
    """One flat ``name -> number`` map from a metrics dump.

    *metrics* is a :class:`~repro.obs.MetricsRegistry` or its
    ``as_dict`` form.  Counters and gauges keep their names; histograms
    flatten to ``<name>.count`` / ``<name>.mean`` / ``<name>.max`` —
    the three facets a cross-run comparison can act on.
    """
    if hasattr(metrics, "as_dict"):
        metrics = metrics.as_dict()
    flat: dict[str, float] = {}
    flat.update(metrics.get("counters", {}))
    flat.update(metrics.get("gauges", {}))
    for name, dump in metrics.get("histograms", {}).items():
        flat[f"{name}.count"] = dump.get("count", 0)
        flat[f"{name}.mean"] = dump.get("mean", 0.0)
        if dump.get("max") is not None:
            flat[f"{name}.max"] = dump["max"]
    return flat


def span_wallclocks(timeline) -> dict[str, float]:
    """Per-name wall-clock seconds from a span timeline.

    *timeline* is ``SpanTracker.as_timeline()`` (or the tracker itself).
    Durations of same-named spans sum, so a stage entered once per
    module contributes its total.
    """
    if hasattr(timeline, "as_timeline"):
        timeline = timeline.as_timeline()
    clocks: dict[str, float] = {}
    for entry in timeline:
        duration = entry.get("duration_s")
        if duration is None:
            continue
        name = entry["name"]
        clocks[name] = round(clocks.get(name, 0.0) + duration, 6)
    return clocks


class RunHistory:
    """Append-only JSONL store of completed runs."""

    def __init__(self, path) -> None:
        self.path = Path(path)

    def record(self, kind: str, *, manifest: dict | None = None,
               metrics=None, spans=None, wall_s: float | None = None,
               profile=None, extra: dict | None = None) -> dict:
        """Append one run row; returns the row as written.

        *profile*, when given, is a
        :class:`~repro.obs.CommandProfiler` (or a plain
        ``{name: seconds}`` dict): per-opcode wall-time attribution
        recorded alongside the spans and gated by the same
        slowdown-only rule, so a stage-level command-bus regression
        fails the gate like a wall-clock one.
        """
        row: dict = {"schema": HISTORY_SCHEMA, "kind": kind}
        if manifest:
            row["manifest"] = manifest
        if metrics is not None:
            row["metrics"] = flatten_metrics(metrics)
        if spans is not None:
            row["spans"] = span_wallclocks(spans)
        if profile is not None:
            if hasattr(profile, "as_span_clocks"):
                profile = profile.as_span_clocks(prefix="")
            if profile:
                row["profile"] = {name: round(seconds, 6)
                                  for name, seconds
                                  in sorted(profile.items())}
        if wall_s is not None:
            row["wall_s"] = round(wall_s, 6)
        if extra:
            row["extra"] = extra
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(row, separators=(",", ":"),
                                    sort_keys=False) + "\n")
        return row

    def rows(self, kind: str | None = None) -> list[dict]:
        """All rows (append order), optionally filtered by *kind*."""
        if not self.path.exists():
            return []
        rows = []
        with open(self.path, encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    row = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ConfigError(
                        f"{self.path}:{number}: corrupt history row "
                        f"({error})") from error
                if kind is None or row.get("kind") == kind:
                    rows.append(row)
        return rows

    def kinds(self) -> list[str]:
        """Distinct run kinds, in first-seen order."""
        seen: dict[str, None] = {}
        for row in self.rows():
            seen.setdefault(row.get("kind", "?"), None)
        return list(seen)


@dataclass
class Regression:
    """One flagged cross-run drift."""

    kind: str
    metric: str  # metric name, or "span:<name>"
    baseline: float
    value: float

    @property
    def delta(self) -> float:
        return self.value - self.baseline

    def describe(self) -> str:
        relative = (self.delta / self.baseline if self.baseline
                    else float("inf"))
        return (f"[{self.kind}] {self.metric}: {self.value:g} vs "
                f"baseline {self.baseline:g} ({relative:+.0%})")


def _baseline_mean(rows: list[dict], key: str, name: str,
                   window: int) -> float | None:
    values = [row.get(key, {}).get(name) for row in rows[-window:]]
    values = [value for value in values if value is not None]
    if not values:
        return None
    return sum(values) / len(values)


#: Metric-name prefixes gated slowdown-only: these count the commands
#: the inference pipeline spent to reach a conclusion, so *more* is a
#: cost regression but *fewer* is an improvement (a cheaper experiment
#: schedule), not a silently skipped stage.
EFFORT_METRIC_PREFIXES = ("inference.commands_to_discovery",)


def _effort_metric(name: str) -> bool:
    return name.startswith(EFFORT_METRIC_PREFIXES)


def gate(rows: list[dict], *, tolerance: float = 0.25,
         span_tolerance: float = 0.5, baseline: int = 5
         ) -> list[Regression]:
    """Flag the newest of *rows* (one kind) against a rolling baseline.

    *tolerance* bounds the relative delta of each counter/gauge metric
    (either direction — except :data:`EFFORT_METRIC_PREFIXES` names,
    which flag increases only).  *span_tolerance* bounds span
    wall-clocks (slower only — timing jitter makes "too fast"
    meaningless).  *baseline* is the rolling-window size.  Fewer than
    two rows → no baseline → no flags.
    """
    if len(rows) < 2:
        return []
    newest, previous = rows[-1], rows[:-1]
    kind = newest.get("kind", "?")
    flags: list[Regression] = []
    for name, value in (newest.get("metrics") or {}).items():
        base = _baseline_mean(previous, "metrics", name, baseline)
        if base is None:
            continue
        if _effort_metric(name):
            if value > abs(base) * (1.0 + tolerance) and value > base:
                flags.append(Regression(kind, name, base, value))
            continue
        if base == 0:
            if value != 0:
                flags.append(Regression(kind, name, base, value))
            continue
        if abs(value - base) / abs(base) > tolerance:
            flags.append(Regression(kind, name, base, value))
    for name, value in (newest.get("spans") or {}).items():
        base = _baseline_mean(previous, "spans", name, baseline)
        if base is None or base <= 0:
            continue
        if value > base * (1.0 + span_tolerance):
            flags.append(Regression(kind, f"span:{name}", base, value))
    # Per-opcode profiles gate exactly like spans: wall time, slower
    # only — a command-bus regression is a perf regression.
    for name, value in (newest.get("profile") or {}).items():
        base = _baseline_mean(previous, "profile", name, baseline)
        if base is None or base <= 0:
            continue
        if value > base * (1.0 + span_tolerance):
            flags.append(Regression(kind, f"profile:{name}", base,
                                    value))
    wall = newest.get("wall_s")
    if wall is not None:
        values = [row.get("wall_s") for row in previous[-baseline:]]
        values = [value for value in values if value is not None]
        if values:
            base = sum(values) / len(values)
            if base > 0 and wall > base * (1.0 + span_tolerance):
                flags.append(Regression(kind, "wall_s", base, wall))
    return flags


def render_trend(rows: list[dict], metric: str | None = None) -> str:
    """Per-kind trend lines (newest last)."""
    if not rows:
        return "(empty history)"
    lines = []
    kinds: dict[str, list[dict]] = {}
    for row in rows:
        kinds.setdefault(row.get("kind", "?"), []).append(row)
    for kind, kind_rows in kinds.items():
        lines.append(f"{kind} ({len(kind_rows)} runs)")
        if metric:
            for number, row in enumerate(kind_rows, start=1):
                value = (row.get("metrics") or {}).get(metric)
                if value is None:
                    value = (row.get("spans") or {}).get(metric)
                if value is None:
                    value = (row.get("profile") or {}).get(metric)
                lines.append(f"  run {number:>3}: {metric} = {value}")
            continue
        newest = kind_rows[-1]
        for name, value in sorted((newest.get("spans") or {}).items()):
            lines.append(f"  span {name:<28} {value:>10.3f}s")
        for name, value in sorted(
                (newest.get("profile") or {}).items()):
            lines.append(f"  prof {name:<28} {value:>10.3f}s")
        if "wall_s" in newest:
            lines.append(f"  wall {'total':<28} "
                         f"{newest['wall_s']:>10.3f}s")
        metrics = newest.get("metrics") or {}
        lines.append(f"  metrics recorded: {len(metrics)}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.history",
        description="Report trends from a run-history store, or gate the "
                    "newest run of each kind against its rolling "
                    "baseline.")
    parser.add_argument("store", help="path to a run-history .jsonl file")
    parser.add_argument("--kind", default=None,
                        help="restrict to one run kind")
    parser.add_argument("--metric", default=None,
                        help="trend one metric (or span name) per run")
    parser.add_argument("--gate", action="store_true",
                        help="flag regressions in the newest run of each "
                             "kind; exit 1 when any are found")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative counter-delta tolerance "
                             "(default 0.25)")
    parser.add_argument("--span-tolerance", type=float, default=0.5,
                        help="span wall-clock slowdown slack "
                             "(default 0.5)")
    parser.add_argument("--baseline", type=int, default=5,
                        help="rolling-baseline window (default 5)")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON instead of text")
    args = parser.parse_args(argv)

    store = RunHistory(args.store)
    try:
        rows = store.rows(kind=args.kind)
    except ConfigError as error:
        print(f"history error: {error}", file=sys.stderr)
        return 2
    if not rows:
        print("history store is empty", file=sys.stderr)
        return 2

    if not args.gate:
        if args.json:
            print(json.dumps(rows, indent=2))
        else:
            print(render_trend(rows, metric=args.metric))
        return 0

    kinds: dict[str, list[dict]] = {}
    for row in rows:
        kinds.setdefault(row.get("kind", "?"), []).append(row)
    flags: list[Regression] = []
    for kind_rows in kinds.values():
        flags.extend(gate(kind_rows, tolerance=args.tolerance,
                          span_tolerance=args.span_tolerance,
                          baseline=args.baseline))
    if args.json:
        print(json.dumps([{
            "kind": flag.kind, "metric": flag.metric,
            "baseline": flag.baseline, "value": flag.value,
        } for flag in flags], indent=2))
    else:
        for kind, kind_rows in kinds.items():
            baseline_size = min(len(kind_rows) - 1, args.baseline)
            print(f"{kind}: {len(kind_rows)} runs, baseline of "
                  f"{max(baseline_size, 0)}")
        if flags:
            print()
            for flag in flags:
                print(f"REGRESSION: {flag.describe()}")
        else:
            print("gate: clean — no cross-run regressions flagged")
    return 1 if flags else 0


if __name__ == "__main__":
    sys.exit(main())
