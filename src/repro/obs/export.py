"""Metric exporters: Prometheus text format and merged event streams.

A :class:`~repro.obs.MetricsRegistry` is the pipeline's quantitative
memory; this module renders one in the two formats the outside world
speaks:

- :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4), served by ``python -m repro.obs.serve`` at
  ``/metrics`` and scrapeable mid-sweep.
- :func:`parse_prometheus` — the exact inverse, used by the round-trip
  tests and by anything that wants to fold a scrape back into
  ``as_dict`` shape.

Metric names in this repo are dotted (``host.acts``); Prometheus names
cannot contain dots, so every registry entry is exported as one of
three family metrics (``<ns>_counter``, ``<ns>_gauge``,
``<ns>_histogram``) with the original dotted name carried in a
``name`` label.  That keeps the mapping lossless: counters, gauges,
and full histograms (count, sum, min, max, power-of-two buckets)
round-trip exactly.
"""

from __future__ import annotations

import re

#: Content type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_SAMPLE = re.compile(
    r'^(?P<metric>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>\S+)$')
_LABEL = re.compile(r'(\w+)="((?:[^"\\]|\\.)*)"')


def _escape(value: str) -> str:
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _unescape(value: str) -> str:
    return (value.replace("\\n", "\n").replace('\\"', '"')
            .replace("\\\\", "\\"))


def _number(value: float) -> str:
    """Shortest exact text for a sample value (ints stay integral)."""
    if isinstance(value, bool):  # pragma: no cover — defensive
        return str(int(value))
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def render_prometheus(metrics, namespace: str = "repro") -> str:
    """Render a registry (or its ``as_dict`` dump) as Prometheus text.

    Histograms emit cumulative ``_bucket{le=...}`` samples (the repo's
    power-of-two bounds, plus ``+Inf``), ``_sum`` and ``_count``, and
    ``_min`` / ``_max`` gauges so the full :class:`Histogram` state
    survives a scrape.
    """
    if hasattr(metrics, "as_dict"):
        metrics = metrics.as_dict()
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    lines: list[str] = []

    def label(name: str) -> str:
        return '{name="' + _escape(name) + '"}'

    if counters:
        lines.append(f"# HELP {namespace}_counter Monotonic event "
                     "counters from one MetricsRegistry.")
        lines.append(f"# TYPE {namespace}_counter counter")
        for name, value in sorted(counters.items()):
            lines.append(f"{namespace}_counter{label(name)} "
                         f"{_number(value)}")
    if gauges:
        lines.append(f"# HELP {namespace}_gauge Last-written gauge "
                     "values from one MetricsRegistry.")
        lines.append(f"# TYPE {namespace}_gauge gauge")
        for name, value in sorted(gauges.items()):
            lines.append(f"{namespace}_gauge{label(name)} "
                         f"{_number(value)}")
    if histograms:
        lines.append(f"# HELP {namespace}_histogram Power-of-two "
                     "bucketed distributions from one MetricsRegistry.")
        lines.append(f"# TYPE {namespace}_histogram histogram")
        for name, dump in sorted(histograms.items()):
            escaped = _escape(name)
            cumulative = 0
            for bound, count in sorted(
                    (int(b), c) for b, c in dump.get("buckets",
                                                     {}).items()):
                cumulative += count
                lines.append(
                    f'{namespace}_histogram_bucket{{name="{escaped}",'
                    f'le="{bound}"}} {cumulative}')
            lines.append(
                f'{namespace}_histogram_bucket{{name="{escaped}",'
                f'le="+Inf"}} {dump.get("count", 0)}')
            lines.append(f"{namespace}_histogram_sum{label(name)} "
                         f"{_number(dump.get('total', 0.0))}")
            lines.append(f"{namespace}_histogram_count{label(name)} "
                         f"{_number(dump.get('count', 0))}")
            if dump.get("min") is not None:
                lines.append(f"{namespace}_histogram_min{label(name)} "
                             f"{_number(dump['min'])}")
            if dump.get("max") is not None:
                lines.append(f"{namespace}_histogram_max{label(name)} "
                             f"{_number(dump['max'])}")
    return "\n".join(lines) + ("\n" if lines else "")


def _parse_number(text: str) -> float | int:
    value = float(text)
    if value.is_integer() and "e" not in text.lower() \
            and "." not in text:
        return int(text)
    return value


def parse_prometheus(text: str, namespace: str = "repro") -> dict:
    """Parse :func:`render_prometheus` output back into ``as_dict``
    shape (counters / gauges / histograms with non-cumulative
    power-of-two buckets)."""
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}

    def histogram(name: str) -> dict:
        return histograms.setdefault(
            name, {"count": 0, "total": 0.0, "min": None, "max": None,
                   "buckets": {}})

    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE.match(line)
        if match is None:
            raise ValueError(f"unparseable Prometheus sample: {line!r}")
        metric = match.group("metric")
        labels = {key: _unescape(value) for key, value
                  in _LABEL.findall(match.group("labels") or "")}
        name = labels.get("name", "")
        value = _parse_number(match.group("value"))
        if metric == f"{namespace}_counter":
            counters[name] = int(value)
        elif metric == f"{namespace}_gauge":
            gauges[name] = value
        elif metric == f"{namespace}_histogram_bucket":
            if labels.get("le") != "+Inf":
                histogram(name)["buckets"][labels["le"]] = int(value)
        elif metric == f"{namespace}_histogram_sum":
            histogram(name)["total"] = value
        elif metric == f"{namespace}_histogram_count":
            histogram(name)["count"] = int(value)
        elif metric == f"{namespace}_histogram_min":
            histogram(name)["min"] = value
        elif metric == f"{namespace}_histogram_max":
            histogram(name)["max"] = value
        else:
            raise ValueError(f"unknown metric family: {metric!r}")
    for dump in histograms.values():
        cumulative = sorted((int(bound), count) for bound, count
                            in dump["buckets"].items())
        previous = 0
        buckets: dict[str, int] = {}
        for bound, count in cumulative:
            if count - previous:
                buckets[str(bound)] = count - previous
            previous = count
        dump["buckets"] = buckets
        count = dump["count"]
        dump["mean"] = round(dump["total"] / count, 3) if count else 0.0
    return {"counters": counters, "gauges": gauges,
            "histograms": histograms}
