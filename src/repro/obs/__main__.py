"""Traced end-to-end inference: ``python -m repro.obs --module B0``.

Builds one registry module, runs the full reverse-engineering pipeline
with every observability layer enabled, and writes the run's artifacts
into ``--out``:

- ``trace.jsonl``    — the command-level trace (with ledger summary),
- ``metrics.json``   — the metrics registry dump,
- ``spans.json``     — the stage-span timeline,
- ``manifest.json``  — the run manifest,
- ``evidence.jsonl`` — the inference-provenance sidecar (decision
  nodes + commands-to-discovery).

It then replays the trace, cross-checks it against the host ledger, and
prints the trace report; a mismatch (or an unrecovered profile) exits
non-zero.  CI runs this as the observability smoke job.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from . import build_manifest, traced
from .history import RunHistory
from .report import render_report, summarize
from .recorder import read_trace


def smoke_inference_config(**overrides):
    """Reduced-effort inference settings for the traced smoke run."""
    from ..core import InferenceConfig
    defaults = dict(
        validation_rounds=4,
        period_scan_experiments=120,
        neighbor_distances=(1, 2),
        neighbor_repeats=2,
        persistence_probes=2,
        kind_repeats=3,
        capacity_candidates=(16, 17),
        capacity_repeats=2,
    )
    defaults.update(overrides)
    return InferenceConfig(**defaults)


def run_traced_inference(module_id: str, out_dir, seed: int = 0,
                         fault_profile: str | None = None,
                         config=None) -> dict:
    """One fully traced inference run; returns a result dict."""
    from ..core import TrrInference
    from ..faults import FaultInjector
    from ..rng import derive_seed
    from ..softmc import SoftMCHost
    from ..vendors import build_module, get_module

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    spec = get_module(module_id)
    # The chip recipe and derived fault seed go into the manifest so a
    # recorded trace is self-describing: ``repro.obs.replay`` rebuilds
    # the exact same module (and injector) from the header alone.
    chip_kwargs = dict(rows_per_bank=8192, row_bits=1024,
                       weak_cells_per_row_mean=2.0, vrt_fraction=0.0)
    fault_seed = derive_seed("obs-smoke", seed, module_id)
    manifest = build_manifest(
        seed=seed, module=module_id,
        fault_profile=fault_profile or "none",
        scale="smoke", chip=dict(chip_kwargs), fault_seed=fault_seed)
    obs = traced(out / "trace.jsonl", manifest=manifest, evidence=True)

    chip = build_module(spec, **chip_kwargs)
    faults = None
    if fault_profile:
        faults = FaultInjector(fault_profile, seed=fault_seed)
    host = SoftMCHost(chip, faults=faults, obs=obs)
    inference = TrrInference(host, config or smoke_inference_config())
    profile = inference.run()
    obs.finalize(host)

    # Evidence metrics fold in before the registry dump so the sidecar
    # and metrics.json agree on the commands-to-discovery totals.
    obs.evidence.emit_metrics(obs.metrics)
    from .evidence import write_evidence
    write_evidence(out / "evidence.jsonl", obs.evidence,
                   meta={"module": module_id, "seed": seed})
    (out / "metrics.json").write_text(
        json.dumps(obs.metrics.as_dict(), indent=2), encoding="utf-8")
    (out / "spans.json").write_text(
        json.dumps(obs.spans.as_timeline(), indent=2), encoding="utf-8")
    (out / "manifest.json").write_text(
        json.dumps(manifest, indent=2), encoding="utf-8")

    report = summarize(read_trace(out / "trace.jsonl"))
    return {"spec": spec, "profile": profile, "report": report,
            "obs": obs, "host": host, "out": out}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Run one fully traced inference end-to-end and write "
                    "trace/metrics/spans/manifest artifacts.")
    parser.add_argument("--module", default="B0",
                        help="registry module id (default B0)")
    parser.add_argument("--out", default="obs-artifacts",
                        help="artifact output directory")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--faults", default=None,
                        help="optional fault profile for a chaos-traced run")
    parser.add_argument("--history", default=None, metavar="PATH",
                        help="append this run (manifest, metrics, span "
                             "wall-clocks) to a run-history store")
    args = parser.parse_args(argv)

    started = time.time()
    result = run_traced_inference(args.module, args.out, seed=args.seed,
                                  fault_profile=args.faults)
    report = result["report"]
    print(render_report(report))
    print()
    print(f"profile: {result['profile'].summary()}")
    print(f"artifacts: {result['out']}")
    evidence = result["obs"].evidence.summary()
    print(f"evidence: {evidence['decisions']} decision(s), "
          f"{evidence['accepted']} accepted, "
          f"{evidence['commands']} command(s) attributed, "
          f"{evidence['empty_chains']} empty chain(s)")
    if args.history:
        obs = result["obs"]
        RunHistory(args.history).record(
            "obs.smoke", manifest=obs.manifest, metrics=obs.metrics,
            spans=obs.spans, wall_s=time.time() - started)
    if not report.ledger_ok:
        print("ERROR: trace does not replay to the host ledger",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
