"""``python -m repro.obs.serve`` — curl a sweep while it runs.

A stdlib-only HTTP endpoint over a telemetry spool directory
(:mod:`repro.obs.live`).  Point it at the ``--telemetry`` spool of a
running ``python -m repro.eval`` sweep and scrape:

- ``/metrics``  — Prometheus text format: every unit's folded counter
  /gauge/histogram state plus live progress gauges
  (``telemetry.units_done`` and friends);
- ``/progress`` — JSON progress summary (units done/running/failed,
  ETA, per-unit current span, stalls when ``--stall-deadline`` is set);
- ``/spans``    — the merged distributed span timeline across every
  worker, JSON;
- ``/events``   — the raw merged JSONL event stream;
- ``/evidence`` — JSON fold of the per-unit inference-provenance
  summaries (decision/outcome counts, commands-to-discovery, a
  per-parameter breakdown) that ``unit-done`` events carry when the
  sweep runs with ``--evidence``.

The server holds no state: every request re-reads the spool, so it can
be started before, during, or after the sweep it observes — the first
concrete step toward the ROADMAP's evaluation-as-a-service run server.

Usage::

    python -m repro.eval fig9 --telemetry /tmp/spool &
    python -m repro.obs.serve /tmp/spool --port 8321 &
    curl -s localhost:8321/progress | python -m json.tool
    curl -s localhost:8321/metrics | head

``--once`` renders every endpoint to stdout and exits (no socket) —
useful for smoke tests and cron snapshots.
"""

from __future__ import annotations

import argparse
import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from .export import PROMETHEUS_CONTENT_TYPE, render_prometheus
from .live import (Watchdog, aggregate_evidence, aggregate_metrics,
                   assemble_timeline, progress, read_spool)

ENDPOINTS = ("/metrics", "/progress", "/spans", "/events", "/evidence")


def render_endpoint(spool, path: str,
                    stall_deadline_s: float | None = None
                    ) -> tuple[int, str, str]:
    """One endpoint's response: ``(status, content_type, body)``.

    Pure function of the spool contents so tests (and ``--once``) can
    exercise every route without opening a socket.
    """
    events = read_spool(spool)
    if path == "/metrics":
        registry = aggregate_metrics(events)
        summary = progress(events)
        registry.set_gauge("telemetry.units_total",
                           summary["units_total"])
        registry.set_gauge("telemetry.units_done",
                           summary["units_done"])
        registry.set_gauge("telemetry.units_running",
                           len(summary["units_running"]))
        registry.set_gauge("telemetry.units_cached",
                           summary.get("units_cached", 0))
        registry.set_gauge("telemetry.commands", summary["commands"])
        if summary.get("eta_s") is not None:
            registry.set_gauge("telemetry.eta_s", summary["eta_s"])
        return 200, PROMETHEUS_CONTENT_TYPE, render_prometheus(registry)
    if path == "/progress":
        summary = progress(events)
        if stall_deadline_s is not None:
            summary["stalled"] = [
                {"unit": stall.unit_id, "age_s": stall.age_s,
                 "last": stall.last_kind, "span": stall.span}
                for stall in Watchdog(stall_deadline_s).scan(events)]
        return 200, "application/json", json.dumps(summary, indent=2)
    if path == "/spans":
        return (200, "application/json",
                json.dumps(assemble_timeline(events), indent=2))
    if path == "/events":
        body = "\n".join(json.dumps(event, separators=(",", ":"))
                         for event in events)
        return 200, "application/jsonl", body
    if path == "/evidence":
        return (200, "application/json",
                json.dumps(aggregate_evidence(events), indent=2))
    if path in ("/", ""):
        return (200, "text/plain",
                "repro.obs.serve endpoints: "
                + " ".join(ENDPOINTS))
    return 404, "text/plain", f"unknown endpoint {path!r}\n"


def make_handler(spool, stall_deadline_s: float | None = None,
                 quiet: bool = True):
    class Handler(BaseHTTPRequestHandler):
        def do_GET(self) -> None:  # noqa: N802 — stdlib API
            path = self.path.split("?", 1)[0].rstrip("/") or "/"
            status, content_type, body = render_endpoint(
                spool, path, stall_deadline_s)
            payload = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        def log_message(self, fmt, *args) -> None:
            if not quiet:
                super().log_message(fmt, *args)

    return Handler


def serve(spool, host: str = "127.0.0.1", port: int = 8321,
          stall_deadline_s: float | None = None,
          quiet: bool = True) -> ThreadingHTTPServer:
    """Bind and return the server (caller drives ``serve_forever``)."""
    handler = make_handler(spool, stall_deadline_s, quiet=quiet)
    return ThreadingHTTPServer((host, port), handler)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.serve",
        description="Serve /metrics, /progress, /spans and /events "
                    "over a live telemetry spool directory.")
    parser.add_argument("spool", help="telemetry spool directory "
                        "(the --telemetry path of a sweep)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8321,
                        help="listen port (0 picks a free one)")
    parser.add_argument("--stall-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="flag units with no progress within this "
                             "deadline in /progress")
    parser.add_argument("--once", action="store_true",
                        help="render every endpoint to stdout and exit "
                             "(no socket)")
    parser.add_argument("--verbose", action="store_true",
                        help="log one line per request to stderr")
    args = parser.parse_args(argv)

    if args.once:
        for path in ENDPOINTS:
            _, content_type, body = render_endpoint(
                args.spool, path, args.stall_deadline)
            print(f"== {path} ({content_type})")
            print(body)
        return 0

    server = serve(args.spool, args.host, args.port,
                   stall_deadline_s=args.stall_deadline,
                   quiet=not args.verbose)
    bound_host, bound_port = server.server_address[:2]
    print(f"serving telemetry from {args.spool} on "
          f"http://{bound_host}:{bound_port} "
          f"({' '.join(ENDPOINTS)})", file=sys.stderr, flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
