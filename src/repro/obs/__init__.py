"""repro.obs — observability for the U-TRR pipeline.

The paper's methodology treats the DDR command stream plus read-back
data as the *only* window into a module; this package turns that window
into auditable artifacts:

- :class:`TraceRecorder` — command-level JSONL traces (ACT/RD/WR/REF/
  WAIT with host timestamps and REF indices), streamed with bounded
  memory; :class:`NullRecorder` is the strict-no-op disabled path.
- :class:`MetricsRegistry` — counters, gauges, and power-of-two
  histograms threaded through Row Scout, TRR Analyzer, the calibrator,
  inference, the attack executor, and the fault injector.
- :class:`SpanTracker` — nested wall-clock stage spans exported as a
  timeline.
- :func:`build_manifest` — the run manifest (seed, module, fault
  profile, scale, git describe) stamped into eval artifacts.
- :class:`StructuredLog` — key=value progress logging for the CLIs.
- ``python -m repro.obs.report trace.jsonl`` — trace summarizer and
  ledger cross-checker.
- ``python -m repro.obs.replay trace.jsonl`` — re-executes a schema-v2
  trace against a freshly built module and verifies clocks, per-read
  CRC digests, and the final ledger (record/replay verification).
- ``python -m repro.obs.diff a.jsonl b.jsonl`` — localizes the first
  divergence between two traces and summarizes downstream drift.
- ``python -m repro.obs.history store.jsonl --gate`` — append-only run
  history with a cross-run regression sentinel.
- ``python -m repro.obs.evidence sidecar.jsonl`` — inference
  provenance report: every accepted/rejected hypothesis, its evidence
  chain, and its commands-to-discovery budget.
- ``python -m repro.obs`` — a traced end-to-end inference smoke run.

Everything is stdlib + numpy only (numpy solely for the version stamp).

:class:`Observability` bundles one recorder + registry + tracker and is
what the rest of the library passes around; ``NULL_OBS`` is the shared
all-disabled instance components fall back to, so instrumented code
never branches on "is observability on?".
"""

from __future__ import annotations

import importlib

from .manifest import MANIFEST_SCHEMA, build_manifest, git_describe
from .metrics import Histogram, MetricsRegistry, NullMetrics, bucket_bound
from .profile import (CollapsedStackSampler, CommandProfiler,
                      NullProfiler, profile_report)
from .recorder import (TRACE_VERSION, NullRecorder, TraceRecorder,
                       data_digest, mismatch_digest, read_trace,
                       replay_ledger)
from .spans import NullSpans, SpanTracker
from .structlog import StructuredLog

#: Lazily-exported names from the replay/diff/history submodules.  Those
#: modules double as ``python -m`` entry points; importing them eagerly
#: here would make every such invocation re-import them under runpy.
_LAZY_EXPORTS = {
    "TraceDiff": ".diff",
    "diff_traces": ".diff",
    "EVIDENCE_SCHEMA": ".evidence",
    "EvidenceLedger": ".evidence",
    "command_stamp": ".evidence",
    "ev_error": ".evidence",
    "ev_probe": ".evidence",
    "ev_refs": ".evidence",
    "ev_rows": ".evidence",
    "ev_value": ".evidence",
    "ev_window": ".evidence",
    "nodes_summary": ".evidence",
    "read_evidence": ".evidence",
    "render_evidence_report": ".evidence",
    "write_evidence": ".evidence",
    "PROMETHEUS_CONTENT_TYPE": ".export",
    "parse_prometheus": ".export",
    "render_prometheus": ".export",
    "HISTORY_SCHEMA": ".history",
    "Regression": ".history",
    "RunHistory": ".history",
    "flatten_metrics": ".history",
    "gate": ".history",
    "span_wallclocks": ".history",
    "Heartbeat": ".live",
    "NullTelemetrySink": ".live",
    "StalledUnit": ".live",
    "TelemetryConfig": ".live",
    "TelemetrySink": ".live",
    "TraceContext": ".live",
    "Watchdog": ".live",
    "aggregate_metrics": ".live",
    "assemble_timeline": ".live",
    "pool_breakdown": ".live",
    "progress": ".live",
    "read_spool": ".live",
    "render_progress": ".live",
    "ReplayResult": ".replay",
    "host_from_manifest": ".replay",
    "replay_trace": ".replay",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute "
                             f"{name!r}")
    value = getattr(importlib.import_module(module_name, __name__), name)
    globals()[name] = value
    return value


class NullEvidence:
    """Strict no-op provenance ledger: the disabled path for
    :class:`~repro.obs.evidence.EvidenceLedger`.

    Lives here (not in :mod:`.evidence`) so building ``NULL_OBS`` at
    package import never pulls in the lazily-imported evidence module
    — that module doubles as a ``python -m`` entry point.
    """

    enabled = False
    nodes: tuple = ()
    module = None

    def decide(self, parameter, value=None, **kwargs) -> None:
        return None

    def merge(self, other, unit=None) -> None:
        return None

    def dump(self) -> list:
        return []

    def emit_metrics(self, metrics) -> None:
        return None

    def summary(self) -> dict:
        return {"decisions": 0, "accepted": 0, "rejected": 0,
                "degraded": 0, "empty_chains": 0, "commands": 0,
                "parameters": {}}


#: Shared disabled evidence ledger (the default ``evidence`` slot).
NULL_EVIDENCE = NullEvidence()


class Observability:
    """One run's observability bundle: recorder + metrics + spans.

    Components accept an ``obs`` argument and fall back to the host's
    bundle, and finally to :data:`NULL_OBS`; metrics and span calls are
    made unconditionally (no-ops when disabled), while the per-command
    host hot path additionally gates on ``recorder.enabled`` /
    ``metrics.enabled`` so the disabled path costs nothing.
    """

    def __init__(self, recorder=None, metrics=None, spans=None,
                 manifest: dict | None = None, profiler=None,
                 evidence=None) -> None:
        self.recorder = recorder if recorder is not None else NullRecorder()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.spans = spans if spans is not None else SpanTracker()
        #: Command-bus profiler (opt-in: defaults to the null profiler
        #: so the host hot path keeps its single identity check).
        self.profiler = profiler if profiler is not None \
            else NullProfiler()
        #: Provenance ledger (opt-in: decision sites call it
        #: unconditionally, the null ledger records nothing).
        self.evidence = evidence if evidence is not None \
            else NULL_EVIDENCE
        self.manifest = manifest

    @property
    def enabled(self) -> bool:
        return (self.recorder.enabled or self.metrics.enabled
                or self.spans.enabled or self.profiler.enabled
                or self.evidence.enabled)

    def span(self, name: str, **attrs):
        return self.spans.span(name, **attrs)

    def event(self, kind: str, ps: int = 0, **fields) -> None:
        """Record a pipeline-level event into the trace (if recording)."""
        if self.recorder.enabled:
            self.recorder.event(kind, ps=ps, **fields)

    def export(self) -> dict:
        """JSON-compatible dump of metrics, spans, and the manifest."""
        return {"metrics": self.metrics.as_dict(),
                "spans": self.spans.as_timeline(),
                "manifest": self.manifest}

    def finalize(self, host=None) -> None:
        """Close the trace, stamping the host's ledger as the summary.

        *host* is anything exposing ``ref_count`` and ``acts_per_bank``
        (duck-typed so this package never imports the simulator).
        """
        summary = None
        if host is not None:
            summary = {
                "ref_count": host.ref_count,
                "acts_per_bank": {str(bank): count for bank, count
                                  in sorted(host.acts_per_bank.items())},
            }
        self.recorder.close(summary)


#: Shared all-disabled bundle: the default for every instrumented
#: component.  Never used for a host hot path (hosts gate on ``enabled``).
NULL_OBS = Observability(recorder=NullRecorder(), metrics=NullMetrics(),
                         spans=NullSpans(), profiler=NullProfiler())


def traced(path, *, manifest: dict | None = None,
           flush_every: int = 1024,
           profile: bool = False,
           evidence: bool = False) -> Observability:
    """Convenience: a fully-enabled bundle recording to *path*.

    ``profile=True`` additionally attaches a :class:`CommandProfiler`
    (per-opcode wall-time attribution on the host hot path);
    ``evidence=True`` attaches an
    :class:`~repro.obs.evidence.EvidenceLedger` capturing inference
    provenance.
    """
    spans = SpanTracker()
    profiler = CommandProfiler(spans=spans) if profile else None
    ledger = None
    if evidence:
        from .evidence import EvidenceLedger
        ledger = EvidenceLedger()
    return Observability(
        recorder=TraceRecorder(path, meta=manifest, flush_every=flush_every),
        metrics=MetricsRegistry(), spans=spans, manifest=manifest,
        profiler=profiler, evidence=ledger)


__all__ = [
    "CollapsedStackSampler",
    "CommandProfiler",
    "EVIDENCE_SCHEMA",
    "EvidenceLedger",
    "HISTORY_SCHEMA",
    "Heartbeat",
    "MANIFEST_SCHEMA",
    "PROMETHEUS_CONTENT_TYPE",
    "TRACE_VERSION",
    "Histogram",
    "MetricsRegistry",
    "NullEvidence",
    "NullMetrics",
    "NullProfiler",
    "NullRecorder",
    "NullSpans",
    "NullTelemetrySink",
    "NULL_EVIDENCE",
    "NULL_OBS",
    "Observability",
    "Regression",
    "ReplayResult",
    "RunHistory",
    "SpanTracker",
    "StalledUnit",
    "StructuredLog",
    "TelemetryConfig",
    "TelemetrySink",
    "TraceContext",
    "TraceDiff",
    "TraceRecorder",
    "Watchdog",
    "aggregate_metrics",
    "assemble_timeline",
    "bucket_bound",
    "build_manifest",
    "command_stamp",
    "data_digest",
    "diff_traces",
    "ev_error",
    "ev_probe",
    "ev_refs",
    "ev_rows",
    "ev_value",
    "ev_window",
    "flatten_metrics",
    "gate",
    "git_describe",
    "host_from_manifest",
    "mismatch_digest",
    "nodes_summary",
    "parse_prometheus",
    "pool_breakdown",
    "profile_report",
    "progress",
    "read_evidence",
    "read_spool",
    "read_trace",
    "render_evidence_report",
    "render_progress",
    "render_prometheus",
    "replay_ledger",
    "replay_trace",
    "span_wallclocks",
    "traced",
    "write_evidence",
]
