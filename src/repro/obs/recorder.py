"""Command-level trace recording (the observability tentpole).

The whole U-TRR methodology observes a module *only* through the DDR
command stream and read-back data; a trace recorder makes that stream a
first-class artifact.  :class:`TraceRecorder` hooks into
:class:`~repro.softmc.SoftMCHost` and streams one JSON object per line
(JSONL) for every host-level command — ACT batches, WR/RD row accesses,
REF bursts (with the host's REF index), and idle WAITs — each stamped
with the host's picosecond clock.  Precharges are implicit: the
simulated controller runs a closed-row policy, so every ACT carries its
own PRE and no separate PRE records are emitted.

Memory stays bounded no matter how long the run: records are serialized
immediately into a small line buffer that is flushed to disk every
``flush_every`` events, so a multi-minute inference run (hundreds of
thousands of commands) never holds more than the buffer in memory.

Traces are *deterministic*: every field derives from the simulation
(host clock, REF index, row addresses), never from the wall clock, so
two identically-seeded runs produce byte-identical event streams.

Schema **v2** additionally makes a trace *executable*: WR records carry
the written pattern's spec, RD records carry a CRC-32 digest of the
read-back payload, and multi-bank hammer batches are group-stamped, so
:mod:`repro.obs.replay` can re-issue the whole command stream against a
freshly built module and verify every read.  v1 traces (no digests)
still load, report, and ledger-replay.

The disabled path is :class:`NullRecorder` — a strict no-op whose
``enabled`` flag lets hot paths skip even the method call.
"""

from __future__ import annotations

import json
import zlib
from typing import IO, Iterable, Iterator

import numpy as np

from ..errors import ConfigError

#: Bump when the record schema changes shape (see docs/OBSERVABILITY.md).
#: v2 added RD digests, WR pattern specs, and multi-batch group stamps.
TRACE_VERSION = 2


def data_digest(bits) -> int:
    """CRC-32 of a read-back bit array (cheap, deterministic).

    The digest covers exactly what the experimenter sees — post
    fault-injection — so a replayed run with the same injector seed must
    reproduce it bit for bit.
    """
    return zlib.crc32(np.ascontiguousarray(bits).tobytes())


def mismatch_digest(positions) -> int:
    """CRC-32 of a mismatch-position list (``read_row_mismatches``)."""
    return zlib.crc32(np.asarray(positions, dtype=np.int64).tobytes())


def _dumps(record: dict) -> str:
    return json.dumps(record, separators=(",", ":"), sort_keys=False)


class NullRecorder:
    """The disabled recorder: every hook is a strict no-op.

    ``enabled`` is False so :class:`~repro.softmc.SoftMCHost` caches
    ``None`` for its recorder slot and the per-command hot path stays
    bit-identical to a host built with no observability at all (the
    overhead bound is enforced by ``benchmarks/bench_components.py``).
    """

    enabled = False
    events = 0
    path = None

    def on_write(self, ps: int, bank: int, row: int,
                 pattern=None) -> None:
        pass

    def on_read(self, ps: int, bank: int, row: int, digest=None,
                mismatches: bool = False) -> None:
        pass

    def on_act(self, ps: int, bank: int, entries, mode,
               group: int | None = None) -> None:
        pass

    def on_ref(self, ps: int, index: int, count: int,
               nominal: bool = False) -> None:
        pass

    def on_wait(self, ps: int, duration_ps: int) -> None:
        pass

    def event(self, kind: str, ps: int = 0, **fields) -> None:
        pass

    def close(self, summary: dict | None = None) -> None:
        pass

    def __enter__(self) -> "NullRecorder":
        return self

    def __exit__(self, *exc) -> None:
        pass


class TraceRecorder:
    """Streams host-level DDR commands to a JSONL file.

    Record shapes (all share the host picosecond timestamp ``ps``):

    - ``{"type":"header","version":2,"meta":{...}}`` — first line.
    - ``{"t":"WR","ps":..,"bk":..,"row":..,"pat":..}`` — row write
      (1 implicit ACT); ``pat`` is the written pattern's spec
      (:func:`repro.dram.pattern_spec`).
    - ``{"t":"RD","ps":..,"bk":..,"row":..,"crc":..}`` — row read
      (1 implicit ACT); ``crc`` digests the read-back bits, ``"mm":1``
      marks a mismatch-positions read (``crc`` then digests positions).
    - ``{"t":"ACT","ps":..,"bk":..,"n":..,"rows":[[row,count],..],
      "mode":"cascaded"}`` — one hammer batch; ``"mg":k`` marks a record
      belonging to a k-bank ``hammer_multi`` group.
    - ``{"t":"REF","ps":..,"idx":..,"n":..}`` — REF burst; ``idx`` is the
      host's REF counter *before* the burst.
    - ``{"t":"WAIT","ps":..,"dur":..}`` — idle time, refresh disabled.
    - ``{"t":"EVT","ps":..,"kind":..,...}`` — pipeline-level event
      (``trr-hit``, ``fault:*``, stage markers).
    - ``{"type":"summary","ref_count":..,"acts_per_bank":{..}}`` — last
      line, the host's own ledger for cross-checking.
    """

    enabled = True

    def __init__(self, path, *, meta: dict | None = None,
                 flush_every: int = 1024) -> None:
        if flush_every < 1:
            raise ConfigError("flush_every must be >= 1")
        self.path = str(path)
        self._fh: IO[str] | None = open(path, "w", encoding="utf-8")
        self._buffer: list[str] = []
        self._flush_every = flush_every
        #: Events recorded so far (header and summary excluded).
        self.events = 0
        header: dict = {"type": "header", "version": TRACE_VERSION}
        if meta:
            header["meta"] = meta
        self._fh.write(_dumps(header) + "\n")

    # -- internals -----------------------------------------------------------

    def _emit(self, record: dict) -> None:
        if self._fh is None:
            raise ConfigError(f"trace {self.path} is already closed")
        self._buffer.append(_dumps(record))
        self.events += 1
        if len(self._buffer) >= self._flush_every:
            self._flush()

    def _flush(self) -> None:
        if self._buffer:
            self._fh.write("\n".join(self._buffer) + "\n")
            self._buffer.clear()

    # -- command hooks (called by SoftMCHost) --------------------------------

    def on_write(self, ps: int, bank: int, row: int,
                 pattern=None) -> None:
        """*pattern* is the written pattern's replayable spec (v2)."""
        record = {"t": "WR", "ps": ps, "bk": bank, "row": row}
        if pattern is not None:
            record["pat"] = pattern
        self._emit(record)

    def on_read(self, ps: int, bank: int, row: int, digest=None,
                mismatches: bool = False) -> None:
        """*digest* is the CRC-32 of the read-back payload (v2);
        *mismatches* marks a ``read_row_mismatches`` call."""
        record = {"t": "RD", "ps": ps, "bk": bank, "row": row}
        if mismatches:
            record["mm"] = 1
        if digest is not None:
            record["crc"] = digest
        self._emit(record)

    def on_act(self, ps: int, bank: int, entries, mode,
               group: int | None = None) -> None:
        """One hammer batch: *entries* is a ``((row, count), ...)`` tuple;
        *group* stamps the batch count of a ``hammer_multi`` call."""
        record = {"t": "ACT", "ps": ps, "bk": bank,
                  "n": sum(count for _, count in entries),
                  "rows": [[row, count] for row, count in entries],
                  "mode": mode.value}
        if group is not None:
            record["mg"] = group
        self._emit(record)

    def on_ref(self, ps: int, index: int, count: int,
               nominal: bool = False) -> None:
        record = {"t": "REF", "ps": ps, "idx": index, "n": count}
        if nominal:
            record["nominal"] = True
        self._emit(record)

    def on_wait(self, ps: int, duration_ps: int) -> None:
        self._emit({"t": "WAIT", "ps": ps, "dur": duration_ps})

    def event(self, kind: str, ps: int = 0, **fields) -> None:
        """Pipeline-level event (TRR hit, injected fault, stage marker)."""
        self._emit({"t": "EVT", "ps": ps, "kind": kind, **fields})

    # -- lifecycle -----------------------------------------------------------

    def close(self, summary: dict | None = None) -> None:
        """Flush and close; *summary* (the host ledger) becomes the last
        line so a reader can cross-check the replayed counts."""
        if self._fh is None:
            return
        self._flush()
        if summary is not None:
            self._fh.write(_dumps({"type": "summary", **summary}) + "\n")
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path) -> Iterator[dict]:
    """Yield every record of a JSONL trace (header and summary included)."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def replay_ledger(records: Iterable[dict]) -> dict:
    """Reconstruct the host's ledger by replaying a trace's commands.

    Returns ``{"ref_count", "acts_per_bank", "events", "by_type",
    "header", "summary"}`` where ``acts_per_bank`` counts one implicit
    ACT per WR/RD and ``n`` ACTs per ACT batch — exactly the accounting
    :class:`~repro.softmc.SoftMCHost` applies to its own ledger, so a
    faithful trace replays to identical numbers.
    """
    ref_count = 0
    acts: dict[str, int] = {}
    by_type: dict[str, int] = {}
    events = 0
    header: dict | None = None
    summary: dict | None = None
    for record in records:
        kind = record.get("type")
        if kind == "header":
            header = record
            continue
        if kind == "summary":
            summary = record
            continue
        op = record["t"]
        by_type[op] = by_type.get(op, 0) + 1
        events += 1
        if op in ("WR", "RD"):
            bank = str(record["bk"])
            acts[bank] = acts.get(bank, 0) + 1
        elif op == "ACT":
            bank = str(record["bk"])
            acts[bank] = acts.get(bank, 0) + record["n"]
        elif op == "REF":
            ref_count += record["n"]
    return {"ref_count": ref_count, "acts_per_bank": acts,
            "events": events, "by_type": by_type,
            "header": header, "summary": summary}
