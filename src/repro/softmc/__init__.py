"""SoftMC-style command-level host access (the experiment boundary)."""

from .bus import Ddr, DdrBus, TimedCommand
from .interface import SoftMCHost
from .program import (CheckRow, Hammer, Loop, MultiHammer, ProgramResult,
                      ReadRow, Refresh, SoftMCProgram, Wait, WriteRow)

__all__ = [
    "CheckRow",
    "Ddr",
    "DdrBus",
    "TimedCommand",
    "Hammer",
    "Loop",
    "MultiHammer",
    "ProgramResult",
    "ReadRow",
    "Refresh",
    "SoftMCHost",
    "SoftMCProgram",
    "Wait",
    "WriteRow",
]
