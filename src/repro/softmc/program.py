"""Declarative SoftMC programs.

Real SoftMC experiments are compiled instruction sequences shipped to the
FPGA; results (read-back rows) come back when the program completes.
This module mirrors that shape: build a :class:`SoftMCProgram` out of
instructions, run it against a host, and collect the read results.  The
imperative :class:`~repro.softmc.interface.SoftMCHost` API remains the
primary interface — programs are for experiments that want an auditable,
replayable command list (and for the examples).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from ..dram import DataPattern, HammerMode
from ..errors import ConfigError
from .interface import SoftMCHost

if TYPE_CHECKING:
    from ..program import CompiledPayload


@dataclass(frozen=True)
class WriteRow:
    bank: int
    row: int
    pattern: DataPattern


@dataclass(frozen=True)
class ReadRow:
    bank: int
    row: int
    #: Key under which the result is stored; defaults to (bank, row).
    label: str | None = None


@dataclass(frozen=True)
class CheckRow:
    """Read a row and record only its mismatch positions."""

    bank: int
    row: int
    label: str | None = None


@dataclass(frozen=True)
class Hammer:
    bank: int
    pattern: tuple[tuple[int, int], ...]
    mode: HammerMode = HammerMode.INTERLEAVED


@dataclass(frozen=True)
class MultiHammer:
    """Hammer up to four banks in parallel (tFAW-limited).

    ``per_bank`` is an ordered tuple of ``(bank, ((row, count), ...))``
    entries — the same shape :meth:`SoftMCHost.hammer_multi` takes as a
    mapping, frozen for the instruction stream.
    """

    per_bank: tuple[tuple[int, tuple[tuple[int, int], ...]], ...]
    mode: HammerMode = HammerMode.CASCADED

    def __post_init__(self) -> None:
        if not self.per_bank:
            raise ConfigError("MultiHammer needs at least one bank")
        banks = [bank for bank, _ in self.per_bank]
        if len(set(banks)) != len(banks):
            raise ConfigError("MultiHammer requires distinct banks")


@dataclass(frozen=True)
class Refresh:
    count: int = 1
    at_nominal_rate: bool = False


@dataclass(frozen=True)
class Wait:
    duration_ps: int


@dataclass(frozen=True)
class Loop:
    """Repeat a block of instructions *times* times."""

    times: int
    body: tuple["Instruction", ...]


Instruction = (WriteRow | ReadRow | CheckRow | Hammer | MultiHammer
               | Refresh | Wait | Loop)


@dataclass
class ProgramResult:
    """Read-backs produced by one program run."""

    rows: dict[str, np.ndarray] = field(default_factory=dict)
    mismatches: dict[str, list[int]] = field(default_factory=dict)
    #: Host clock at program start/end.
    started_ps: int = 0
    finished_ps: int = 0

    @property
    def duration_ps(self) -> int:
        return self.finished_ps - self.started_ps


class SoftMCProgram:
    """An ordered list of instructions executable on a host."""

    def __init__(self, instructions: list[Instruction] | None = None) -> None:
        self.instructions: list[Instruction] = list(instructions or [])

    # Builder-style helpers -------------------------------------------------

    def write(self, bank: int, row: int, pattern: DataPattern
              ) -> "SoftMCProgram":
        self.instructions.append(WriteRow(bank, row, pattern))
        return self

    def read(self, bank: int, row: int, label: str | None = None
             ) -> "SoftMCProgram":
        self.instructions.append(ReadRow(bank, row, label))
        return self

    def check(self, bank: int, row: int, label: str | None = None
              ) -> "SoftMCProgram":
        self.instructions.append(CheckRow(bank, row, label))
        return self

    def hammer(self, bank: int, pattern, mode=HammerMode.INTERLEAVED
               ) -> "SoftMCProgram":
        self.instructions.append(Hammer(bank, tuple(pattern), mode))
        return self

    def hammer_multi(self, per_bank, mode=HammerMode.CASCADED
                     ) -> "SoftMCProgram":
        """Queue a parallel multi-bank hammer; *per_bank* maps bank ->
        iterable of ``(row, count)`` pairs (insertion order preserved)."""
        entries = tuple(
            (bank, tuple((row, count) for row, count in rows))
            for bank, rows in per_bank.items())
        self.instructions.append(MultiHammer(entries, mode))
        return self

    def refresh(self, count: int = 1, at_nominal_rate: bool = False
                ) -> "SoftMCProgram":
        self.instructions.append(Refresh(count, at_nominal_rate))
        return self

    def wait(self, duration_ps: int) -> "SoftMCProgram":
        self.instructions.append(Wait(duration_ps))
        return self

    def loop(self, times: int, body: "SoftMCProgram") -> "SoftMCProgram":
        self.instructions.append(Loop(times, tuple(body.instructions)))
        return self

    # Execution -----------------------------------------------------------

    def compile(self, timing) -> "CompiledPayload":  # noqa: A003
        """Compile to a flat :class:`~repro.program.CompiledPayload`.

        Loops are unrolled, labels resolved, operands interned, and each
        command's fault-free clock advance scheduled from *timing* (the
        host's :class:`~repro.dram.TimingParameters`).
        """
        from ..program import compile_program
        return compile_program(self.instructions, timing)

    def run(self, host: SoftMCHost,
            compiled: bool | None = None) -> ProgramResult:
        """Execute the program; duplicate labels are rejected up front.

        Routed through the compiled payload executor by default (the
        command stream is byte-identical either way); pass
        ``compiled=False`` — or set ``REPRO_PAYLOAD=legacy`` in the
        environment — to force the per-command reference interpreter.
        """
        labels: set[str] = set()
        self._collect_labels(self.instructions, labels)
        if compiled is None:
            from ..program import payloads_enabled
            compiled = payloads_enabled()
        if compiled:
            obs = host.obs
            if obs is not None:
                with obs.span("payload.compile",
                              instructions=len(self.instructions)):
                    payload = self.compile(host.timing)
            else:
                payload = self.compile(host.timing)
            return host.execute_payload(payload)
        result = ProgramResult(started_ps=host.now_ps)
        self._run_block(host, self.instructions, result)
        result.finished_ps = host.now_ps
        return result

    @staticmethod
    def _label(instruction: ReadRow | CheckRow) -> str:
        if instruction.label is not None:
            return instruction.label
        return f"{instruction.bank}:{instruction.row}"

    def _collect_labels(self, block, labels: set[str]) -> None:
        for instruction in block:
            if isinstance(instruction, (ReadRow, CheckRow)):
                label = self._label(instruction)
                if label in labels:
                    raise ConfigError(
                        f"duplicate read label {label!r}; results would "
                        "silently overwrite each other")
                labels.add(label)
            elif isinstance(instruction, Loop):
                if instruction.times > 1:
                    inner: set[str] = set()
                    self._collect_labels(instruction.body, inner)
                    if inner:
                        raise ConfigError(
                            "reads inside a multi-iteration loop need "
                            "iteration-unique labels; unroll the loop")
                else:
                    self._collect_labels(instruction.body, labels)

    def _run_block(self, host: SoftMCHost, block, result: ProgramResult
                   ) -> None:
        for instruction in block:
            if isinstance(instruction, WriteRow):
                host.write_row(instruction.bank, instruction.row,
                               instruction.pattern)
            elif isinstance(instruction, ReadRow):
                result.rows[self._label(instruction)] = host.read_row(
                    instruction.bank, instruction.row)
            elif isinstance(instruction, CheckRow):
                result.mismatches[self._label(instruction)] = (
                    host.read_row_mismatches(instruction.bank,
                                             instruction.row))
            elif isinstance(instruction, Hammer):
                host.hammer(instruction.bank, instruction.pattern,
                            instruction.mode)
            elif isinstance(instruction, MultiHammer):
                host.hammer_multi(
                    {bank: rows for bank, rows in instruction.per_bank},
                    instruction.mode)
            elif isinstance(instruction, Refresh):
                host.refresh(instruction.count, instruction.at_nominal_rate)
            elif isinstance(instruction, Wait):
                host.wait(instruction.duration_ps)
            elif isinstance(instruction, Loop):
                for _ in range(instruction.times):
                    self._run_block(host, instruction.body, result)
            else:
                raise ConfigError(
                    f"unknown instruction {type(instruction).__name__}")
