"""Command-granular DDR bus: the abstraction level real SoftMC exposes.

:class:`SoftMCHost` offers convenient row-level operations; real
experiments compile down to individual DDR commands with the memory
controller responsible for every timing rule.  :class:`DdrBus` is that
layer: one method per DDR command, a per-bank open-row state machine,
and enforcement of the constraints U-TRR's analysis leans on —

* ACT only on a precharged (idle) bank, PRE only after tRAS, re-ACT only
  after tRP (together: the tRC hammer cost);
* RD/WR only on an open row and only after tRCD;
* cross-bank ACTs spaced by tRRD and at most four per tFAW window
  (footnote 12's limit on multi-bank dummy hammering);
* REF only with every bank precharged, occupying tRFC.

Commands auto-delay to their earliest legal issue time by default; pass
``at_ps`` to demand an exact issue time and get a
:class:`~repro.errors.TimingViolationError` when it is too early.  Every
issued command lands in :attr:`DdrBus.trace` for audit/replay.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..dram import DataPattern, DramChip
from ..errors import ProtocolError, TimingViolationError


class Ddr(enum.Enum):
    """DDR command mnemonics."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"


@dataclass(frozen=True)
class TimedCommand:
    """One issued command, as recorded in the bus trace."""

    command: Ddr
    issue_ps: int
    bank: int | None = None
    row: int | None = None


class _BankState:
    __slots__ = ("open_row", "act_ps", "pre_ps")

    def __init__(self) -> None:
        self.open_row: int | None = None
        self.act_ps = -(10 ** 15)
        self.pre_ps = -(10 ** 15)


class DdrBus:
    """Command-level access to one chip with full timing enforcement."""

    def __init__(self, chip: DramChip, record_trace: bool = True) -> None:
        self._chip = chip
        self._timing = chip.config.timing
        self._banks = [_BankState() for _ in range(chip.config.num_banks)]
        self._recent_acts: deque[int] = deque(maxlen=4)
        self._last_act_ps = -(10 ** 15)
        self._busy_until_ps = 0
        self.record_trace = record_trace
        self.trace: list[TimedCommand] = []
        self.ref_count = 0

    # -- scheduling helpers ---------------------------------------------------

    @property
    def now_ps(self) -> int:
        return self._chip.now_ps

    def _issue(self, earliest_ps: int, at_ps: int | None,
               command: Ddr, bank: int | None = None,
               row: int | None = None) -> int:
        earliest_ps = max(earliest_ps, self._busy_until_ps, self.now_ps)
        if at_ps is None:
            issue_ps = earliest_ps
        else:
            if at_ps < earliest_ps:
                raise TimingViolationError(
                    f"{command.value} at {at_ps} ps violates timing; "
                    f"earliest legal issue is {earliest_ps} ps")
            issue_ps = at_ps
        if issue_ps > self.now_ps:
            self._chip.wait(issue_ps - self.now_ps)
        if self.record_trace:
            self.trace.append(TimedCommand(command, issue_ps, bank, row))
        return issue_ps

    def _bank(self, bank: int) -> _BankState:
        try:
            return self._banks[bank]
        except IndexError:
            raise ProtocolError(f"bank {bank} does not exist") from None

    # -- the five commands ----------------------------------------------------

    def activate(self, bank: int, row: int,
                 at_ps: int | None = None) -> int:
        """ACT: open *row* in *bank* (the RowHammer-relevant command)."""
        state = self._bank(bank)
        if state.open_row is not None:
            raise ProtocolError(
                f"bank {bank} already has row {state.open_row} open; "
                "PRE first")
        timing = self._timing
        earliest = state.pre_ps + timing.trp_ps
        earliest = max(earliest, self._last_act_ps + timing.trrd_ps)
        if len(self._recent_acts) == 4:
            earliest = max(earliest,
                           self._recent_acts[0] + timing.tfaw_ps)
        issue = self._issue(earliest, at_ps, Ddr.ACT, bank, row)
        self._chip.raw_activate(bank, row)
        state.open_row = row
        state.act_ps = issue
        self._last_act_ps = issue
        self._recent_acts.append(issue)
        return issue

    def precharge(self, bank: int, at_ps: int | None = None) -> int:
        """PRE: close the bank's open row (legal tRAS after its ACT)."""
        state = self._bank(bank)
        if state.open_row is None:
            raise ProtocolError(f"bank {bank} has no open row")
        issue = self._issue(state.act_ps + self._timing.tras_ps, at_ps,
                            Ddr.PRE, bank, state.open_row)
        state.open_row = None
        state.pre_ps = issue
        return issue

    def read(self, bank: int, at_ps: int | None = None) -> np.ndarray:
        """RD: burst out the open row (modeled at row granularity)."""
        state = self._bank(bank)
        if state.open_row is None:
            raise ProtocolError(f"bank {bank} has no open row to read")
        self._issue(state.act_ps + self._timing.trcd_ps, at_ps, Ddr.RD,
                    bank, state.open_row)
        self._busy_until_ps = self.now_ps + self._timing.burst_read_ps
        return self._chip.raw_read(bank, state.open_row)

    def write(self, bank: int, pattern: DataPattern,
              at_ps: int | None = None) -> int:
        """WR: burst *pattern* into the open row."""
        state = self._bank(bank)
        if state.open_row is None:
            raise ProtocolError(f"bank {bank} has no open row to write")
        issue = self._issue(state.act_ps + self._timing.trcd_ps, at_ps,
                            Ddr.WR, bank, state.open_row)
        self._chip.raw_write(bank, state.open_row, pattern)
        self._busy_until_ps = self.now_ps + self._timing.burst_write_ps
        return issue

    def refresh(self, at_ps: int | None = None) -> int:
        """REF: all banks must be precharged; occupies tRFC."""
        open_banks = [index for index, state in enumerate(self._banks)
                      if state.open_row is not None]
        if open_banks:
            raise ProtocolError(
                f"REF with open rows in banks {open_banks}; PRE them first")
        issue = self._issue(0, at_ps, Ddr.REF)
        self._busy_until_ps = issue + self._timing.trfc_ps
        self._chip.wait(self._busy_until_ps - self.now_ps)
        self._chip.raw_refresh()
        self.ref_count += 1
        return issue

    # -- composite conveniences -----------------------------------------------

    def hammer_once(self, bank: int, row: int) -> int:
        """One full ACT/PRE cycle (the unit the paper counts)."""
        issue = self.activate(bank, row)
        self.precharge(bank)
        return issue

    def open_rows(self) -> dict[int, int]:
        """Currently open row per bank."""
        return {index: state.open_row
                for index, state in enumerate(self._banks)
                if state.open_row is not None}
