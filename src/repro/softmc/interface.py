"""SoftMC-style host interface.

The paper implements Row Scout and TRR Analyzer on SoftMC, an FPGA-based
infrastructure giving the experimenter command-level control over a DDR4
module (§3.3).  :class:`SoftMCHost` is that boundary in this
reproduction: it owns the experimenter's view of time and REF counts, and
forwards DDR-shaped operations to the device under test.

Everything in :mod:`repro.core` and :mod:`repro.attacks` talks to the
chip exclusively through this class — never through the chip's internals
— which is what keeps the reverse-engineering honest: the only
observables are read-back data and the host's own clock.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from ..dram import (ActBatch, DataPattern, DramChip, HammerMode,
                    pattern_spec)
from ..errors import ConfigError
from ..obs.recorder import data_digest, mismatch_digest
from ..units import ms, us

if TYPE_CHECKING:
    from ..faults import FaultInjector
    from ..obs import Observability


class SoftMCHost:
    """Command-level host access to one DRAM module.

    An optional :class:`~repro.faults.FaultInjector` perturbs the
    boundary this class models: commands may be dropped or duplicated
    and readback data transiently corrupted, while the injector drives
    the chip's physical environment (VRT storms, temperature drift).
    Without an injector every operation reaches the chip verbatim.

    An optional :class:`~repro.obs.Observability` bundle records the
    command stream the host issues (the experimenter's only window into
    the module) and the activation pressure per REF window.  The
    recorder and metrics slots are resolved once at construction: with a
    null/absent bundle both cache to ``None`` and every per-command hook
    reduces to a single ``is not None`` check, keeping the disabled path
    within the benchmarked overhead bound.
    """

    def __init__(self, chip: DramChip,
                 faults: "FaultInjector | None" = None,
                 obs: "Observability | None" = None) -> None:
        self._chip = chip
        self._faults = faults
        self._obs = obs
        recorder = obs.recorder if obs is not None else None
        self._rec = recorder if (recorder is not None
                                 and recorder.enabled) else None
        metrics = obs.metrics if obs is not None else None
        self._metrics = metrics if (metrics is not None
                                    and metrics.enabled) else None
        profiler = getattr(obs, "profiler", None) if obs is not None \
            else None
        #: Command-bus profiler, resolved once like the recorder: the
        #: disabled hot path pays one ``is not None`` check per command.
        self._prof = profiler if (profiler is not None
                                  and profiler.enabled) else None
        #: ACTs accumulated since the last REF burst (metrics only).
        self._window_acts = 0
        #: Identity-keyed memo of written-pattern trace specs (recording
        #: only): aggressor data patterns are reused across many writes,
        #: so each is serialized once, not per WR record.
        self._pattern_specs: dict[int, tuple] = {}
        if faults is not None:
            faults.attach(chip)
            if obs is not None:
                faults.bind_observability(obs)
        #: REF commands issued by this host (the experimenter's counter;
        #: regular-refresh periodicity is expressed in this index).
        self.ref_count = 0
        #: Activations issued per bank (the experimenter's own ledger —
        #: phase-locked attacks track the deterministic sampler with it).
        self.acts_per_bank: dict[int, int] = {}

    @property
    def faults(self) -> "FaultInjector | None":
        return self._faults

    @property
    def obs(self) -> "Observability | None":
        """The observability bundle, inherited by pipeline components."""
        return self._obs

    def ledger(self) -> dict:
        """The host's own counts, in trace-summary shape."""
        return {"ref_count": self.ref_count,
                "acts_per_bank": {str(bank): count for bank, count
                                  in sorted(self.acts_per_bank.items())}}

    def _tick(self) -> None:
        if self._faults is not None:
            self._faults.advance(self._chip.now_ps)

    def _count_acts(self, bank: int, count: int) -> None:
        self.acts_per_bank[bank] = self.acts_per_bank.get(bank, 0) + count
        if self._metrics is not None:
            self._window_acts += count
            self._metrics.inc("host.acts", count)

    # -- experimenter-visible module facts ---------------------------------

    @property
    def now_ps(self) -> int:
        """The host's wall clock (it drives the bus, so it knows time)."""
        return self._chip.now_ps

    @property
    def num_banks(self) -> int:
        return self._chip.config.num_banks

    @property
    def rows_per_bank(self) -> int:
        return self._chip.config.rows_per_bank

    @property
    def row_bits(self) -> int:
        return self._chip.config.row_bits

    @property
    def timing(self):
        return self._chip.config.timing

    def hammers_per_ref_interval(self) -> int:
        """Single-bank ACT budget between two nominal REFs (footnote 10)."""
        return self.timing.hammers_per_ref_interval()

    # -- data movement -------------------------------------------------------

    def _pattern_spec(self, pattern: DataPattern):
        """Memoized :func:`repro.dram.pattern_spec` (identity-keyed)."""
        key = id(pattern)
        hit = self._pattern_specs.get(key)
        if hit is not None and hit[0] is pattern:
            return hit[1]
        spec = pattern_spec(pattern)
        if len(self._pattern_specs) >= 128:
            self._pattern_specs.clear()
        self._pattern_specs[key] = (pattern, spec)
        return spec

    def write_row(self, bank: int, row: int, pattern: DataPattern) -> None:
        """Write *pattern* into the row (logical addressing)."""
        start = perf_counter() if self._prof is not None else 0.0
        if self._rec is not None:
            self._rec.on_write(self._chip.now_ps, bank, row,
                               pattern=self._pattern_spec(pattern))
        self._count_acts(bank, 1)
        self._tick()
        if self._faults is None or not self._faults.drop_write(
                self._chip.now_ps):
            self._chip.write_row(bank, row, pattern)
        if self._prof is not None:
            self._prof.add("WR", perf_counter() - start)

    def read_row(self, bank: int, row: int) -> np.ndarray:
        """Read the row's current bits."""
        start = perf_counter() if self._prof is not None else 0.0
        issue_ps = self._chip.now_ps if self._rec is not None else 0
        self._count_acts(bank, 1)
        self._tick()
        bits = self._chip.read_row(bank, row)
        if self._faults is not None:
            bits = self._faults.corrupt_bits(bits)
        if self._rec is not None:
            # Recorded after the data round-trip so the record can carry
            # the payload digest; ``ps`` is still the issue-time clock.
            self._rec.on_read(issue_ps, bank, row,
                              digest=data_digest(bits))
        if self._prof is not None:
            self._prof.add("RD", perf_counter() - start)
        return bits

    def read_row_mismatches(self, bank: int, row: int) -> list[int]:
        """Bit positions differing from the last written data."""
        start = perf_counter() if self._prof is not None else 0.0
        issue_ps = self._chip.now_ps if self._rec is not None else 0
        self._count_acts(bank, 1)
        self._tick()
        mismatches = self._chip.read_row_mismatches(bank, row)
        if self._faults is not None:
            mismatches = self._faults.corrupt_mismatches(
                self._chip.config.row_bits, mismatches)
        if self._rec is not None:
            self._rec.on_read(issue_ps, bank, row,
                              digest=mismatch_digest(mismatches),
                              mismatches=True)
        if self._prof is not None:
            self._prof.add("RD", perf_counter() - start)
        return mismatches

    # -- hammering ------------------------------------------------------------

    def hammer(self, bank: int, pattern: Iterable[tuple[int, int]],
               mode: HammerMode = HammerMode.INTERLEAVED) -> None:
        """Hammer rows of one bank with per-row counts in *mode* order."""
        start = perf_counter() if self._prof is not None else 0.0
        entries = tuple((row, count) for row, count in pattern)
        if self._rec is not None:
            self._rec.on_act(self._chip.now_ps, bank, entries, mode)
        self._count_acts(bank, sum(count for _, count in entries))
        self._hammer_batch(ActBatch(bank=bank, pattern=entries, mode=mode))
        if self._prof is not None:
            self._prof.add("ACT", perf_counter() - start)

    def _hammer_prebuilt(self, batch: ActBatch) -> None:
        """:meth:`hammer` with a precompiled batch (payload executor)."""
        start = perf_counter() if self._prof is not None else 0.0
        if self._rec is not None:
            self._rec.on_act(self._chip.now_ps, batch.bank, batch.pattern,
                             batch.mode)
        self._count_acts(batch.bank, batch.total)
        self._hammer_batch(batch)
        if self._prof is not None:
            self._prof.add("ACT", perf_counter() - start)

    def _try_fused_hammer(self, batch: ActBatch, repeats: int,
                          step_ps: int) -> bool:
        """Execute *repeats* identical hammer commands in one fused pass.

        Returns ``False`` — having done nothing — unless fusion is
        provably equivalent to the per-command loop: no fault injector
        (whose per-command RNG draws fusion would skip), and the chip
        certifies the intermediate settles as no-ops
        (:meth:`~repro.dram.DramChip.fusion_safe`).  On the fused path
        the trace records are emitted with the same computed timestamps
        the per-command loop would have stamped, and the profiler
        accounts *repeats* ACT commands.
        """
        if (self._faults is not None or repeats < 2
                or step_ps != self.timing.hammer_duration_ps(batch.total)
                or not self._chip.fusion_safe(batch, step_ps)):
            return False
        start = perf_counter() if self._prof is not None else 0.0
        if self._rec is not None:
            now = self._chip.now_ps
            for index in range(repeats):
                self._rec.on_act(now + index * step_ps, batch.bank,
                                 batch.pattern, batch.mode)
        self._count_acts(batch.bank, batch.total * repeats)
        self._chip.hammer_repeated(batch, repeats)
        if self._prof is not None:
            self._prof.add_bulk("ACT", repeats, perf_counter() - start)
        return True

    def hammer_single(self, bank: int, row: int, count: int) -> None:
        """Hammer one row *count* times (a cascaded run)."""
        start = perf_counter() if self._prof is not None else 0.0
        if self._rec is not None:
            self._rec.on_act(self._chip.now_ps, bank, ((row, count),),
                             HammerMode.CASCADED)
        self._count_acts(bank, count)
        self._hammer_batch(ActBatch(bank=bank, pattern=((row, count),),
                                    mode=HammerMode.CASCADED))
        if self._prof is not None:
            self._prof.add("ACT", perf_counter() - start)

    def _hammer_batch(self, batch: ActBatch) -> None:
        self._tick()
        self._chip.hammer(batch)
        if self._faults is not None and self._faults.duplicate_hammer(
                self._chip.now_ps):
            self._chip.hammer(batch)

    def hammer_multi(self, per_bank: Mapping[int, Iterable[tuple[int, int]]],
                     mode: HammerMode = HammerMode.CASCADED) -> None:
        """Hammer several banks in parallel (at most 4: tFAW)."""
        start = perf_counter() if self._prof is not None else 0.0
        batches = [
            ActBatch(bank=bank,
                     pattern=tuple((row, count) for row, count in rows),
                     mode=mode)
            for bank, rows in per_bank.items()
        ]
        for batch in batches:
            if self._rec is not None:
                self._rec.on_act(self._chip.now_ps, batch.bank,
                                 batch.pattern, batch.mode,
                                 group=len(batches))
            self._count_acts(batch.bank, batch.total)
        self._tick()
        self._chip.hammer_multi(batches)
        if self._prof is not None:
            self._prof.add("ACT", perf_counter() - start)

    def _hammer_multi_prebuilt(self, batches: tuple[ActBatch, ...]) -> None:
        """:meth:`hammer_multi` with precompiled batches (payload path)."""
        start = perf_counter() if self._prof is not None else 0.0
        for batch in batches:
            if self._rec is not None:
                self._rec.on_act(self._chip.now_ps, batch.bank,
                                 batch.pattern, batch.mode,
                                 group=len(batches))
            self._count_acts(batch.bank, batch.total)
        self._tick()
        self._chip.hammer_multi(list(batches))
        if self._prof is not None:
            self._prof.add("ACT", perf_counter() - start)

    # -- compiled payloads ----------------------------------------------------

    def execute_payload(self, payload, *, fuse: bool | None = None):
        """Execute a :class:`~repro.program.CompiledPayload`.

        Returns a :class:`~repro.softmc.ProgramResult`.  The executed
        command stream — trace records, ledger, metrics, chip state — is
        byte-identical to interpreting the source program per command;
        see ``docs/PERFORMANCE.md`` ("Compiled payloads").
        """
        from ..program.executor import execute_payload
        if self._obs is not None:
            with self._obs.span("payload.execute",
                                commands=len(payload)):
                return execute_payload(self, payload, fuse=fuse)
        return execute_payload(self, payload, fuse=fuse)

    # -- refresh and time -----------------------------------------------------

    def refresh(self, count: int = 1, at_nominal_rate: bool = False) -> None:
        """Issue *count* REF commands.

        ``at_nominal_rate`` spaces them at tREFI (one per 7.8 us), as a
        standard memory controller would; otherwise they are issued
        back-to-back (each still occupying tRFC).
        """
        start = perf_counter() if self._prof is not None else 0.0
        spacing = self.timing.trefi_ps if at_nominal_rate else None
        if self._rec is not None:
            self._rec.on_ref(self._chip.now_ps, self.ref_count, count,
                             nominal=at_nominal_rate)
        if self._metrics is not None:
            self._metrics.observe("host.acts_per_ref_window",
                                  self._window_acts)
            self._metrics.inc("host.refs", count)
            self._window_acts = 0
        self._tick()
        if self._faults is not None and self._faults.perturbs_refs:
            self._refresh_faulty(count, spacing)
        else:
            self._chip.refresh(count=count, spacing_ps=spacing)
        self.ref_count += count
        if self._prof is not None:
            self._prof.add("REF", perf_counter() - start)

    def _refresh_faulty(self, count: int, spacing: int | None) -> None:
        """Issue REFs one at a time so each can be dropped or duplicated.

        The host's own ledger (:attr:`ref_count`) advances by the full
        *count* regardless: a flaky rig desynchronizes the experimenter's
        REF index from the chip's refresh engine, which is precisely the
        fault the hardened calibrator must survive.
        """
        chip = self._chip
        for _ in range(count):
            repeats = self._faults.ref_repeats(chip.now_ps)
            if repeats == 0:
                # The command was lost but its bus slot still passes.
                chip.wait(spacing if spacing is not None
                          else self.timing.trfc_ps)
                continue
            chip.refresh(count=1, spacing_ps=spacing)
            for _ in range(repeats - 1):
                chip.raw_refresh()

    def wait(self, duration_ps: int) -> None:
        """Idle without issuing any command (refresh stays disabled)."""
        start = perf_counter() if self._prof is not None else 0.0
        if self._rec is not None:
            self._rec.on_wait(self._chip.now_ps, duration_ps)
        self._chip.wait(duration_ps)
        self._tick()
        if self._prof is not None:
            self._prof.add("WAIT", perf_counter() - start)

    def wait_us(self, duration_us: float) -> None:
        self.wait(us(duration_us))

    def wait_ms(self, duration_ms: float) -> None:
        self.wait(ms(duration_ms))

    # -- convenience for dummy-row selection ---------------------------------

    def pick_rows_away_from(self, bank: int, keep_clear: Iterable[int],
                            count: int, min_distance: int = 100,
                            rng: np.random.Generator | None = None
                            ) -> list[int]:
        """Pick *count* rows at least *min_distance* away from every row in
        *keep_clear* (TRR Analyzer's dummy-row rule, §5.2)."""
        protected = sorted(set(keep_clear))
        if rng is None:
            rng = np.random.default_rng(0)
        candidates = []
        seen: set[int] = set()
        attempts = 0
        limit = 200 * max(count, 1)
        while len(candidates) < count:
            attempts += 1
            if attempts > limit:
                raise ConfigError(
                    f"cannot find {count} rows {min_distance} away from "
                    f"{len(protected)} protected rows in bank {bank}")
            row = int(rng.integers(0, self.rows_per_bank))
            if row in seen:
                continue
            seen.add(row)
            if all(abs(row - p) >= min_distance for p in protected):
                candidates.append(row)
        return candidates
