"""Fault injection: a seeded noisy-substrate layer for chaos testing.

The U-TRR methodology only works on real hardware because it survives a
noisy substrate (VRT, drifting retention, flaky modules — §4.1).  This
package makes the simulator equally hostile on demand: a
:class:`FaultInjector`, configured by a named :class:`FaultProfile`,
wraps the SoftMC/chip boundary and injects exactly the perturbations
real rigs suffer.  ``repro.eval.resilience`` drives the full pipeline
under these profiles and reports the retry/quarantine work the hardened
tools performed.

Attach via the host::

    injector = FaultInjector("default", seed=7)
    host = SoftMCHost(chip, faults=injector)

With no injector (or the ``"none"`` profile) every code path is a
strict no-op and the simulator behaves bit-identically to before.
"""

from .injector import FaultInjector
from .profiles import (COMMAND_FAULTS, DEFAULT, NONE, PROFILES, READ_NOISE,
                       STALE_PROFILE, TEMPERATURE_DRIFT, VRT_STORM,
                       FaultProfile, get_profile)

__all__ = [
    "COMMAND_FAULTS",
    "DEFAULT",
    "FaultInjector",
    "FaultProfile",
    "NONE",
    "PROFILES",
    "READ_NOISE",
    "STALE_PROFILE",
    "TEMPERATURE_DRIFT",
    "VRT_STORM",
    "get_profile",
]
