"""Fault profiles: named, declarative descriptions of substrate noise.

A :class:`FaultProfile` bundles the intensities of every fault family
the injector knows how to produce.  The zero profile (``NONE``) disables
everything and is guaranteed to be a strict no-op; ``DEFAULT`` is the
"representative noisy rig" used by the chaos harness and is calibrated
so the hardened U-TRR pipeline still recovers exact ground truth while
its retry/quarantine machinery is demonstrably exercised.

Fault families (what real SoftMC rigs suffer, §4.1 / TRRespass §V):

* **VRT storms** — burst periods during which VRT cells toggle their
  retention state far more often than the quiescent rate.
* **Temperature drift** — slow sinusoidal ambient change scaling every
  cell's retention time mid-experiment.
* **Readback noise** — transient single-bit corruption on the data the
  host reads back (the stored cell is unaffected).
* **Command faults** — occasional dropped writes/REFs and duplicated
  hammer batches at the host/module boundary.
* **Retention-profile staleness** — a per-row, session-scoped retention
  shift: the profile measured last session is slightly wrong now.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ConfigError


@dataclass(frozen=True)
class FaultProfile:
    """Intensities for every injectable fault family (all off by zero)."""

    name: str = "custom"

    # -- VRT storms --------------------------------------------------------
    #: Mean storm arrivals per simulated second (Poisson process).
    vrt_storm_rate_per_s: float = 0.0
    #: Mean storm duration (exponential), in simulated milliseconds.
    vrt_storm_duration_ms: float = 120.0
    #: Multiplier on ``vrt_toggle_probability`` while a storm is active.
    vrt_storm_toggle_scale: float = 20.0

    # -- temperature drift -------------------------------------------------
    #: Peak deviation from the reference temperature, in degrees C.
    temperature_drift_amplitude_c: float = 0.0
    #: Sinusoid period in simulated seconds (slow vs experiment scale).
    temperature_drift_period_s: float = 20.0

    # -- transient readback noise ------------------------------------------
    #: Per-read probability that one random readout bit is corrupted.
    read_noise_probability: float = 0.0

    # -- command-layer faults ----------------------------------------------
    #: Per-write probability the WRITE never reaches the module.
    write_drop_probability: float = 0.0
    #: Per-REF probability the chip misses the REF (host still counts it).
    ref_drop_probability: float = 0.0
    #: Per-REF probability the chip executes the REF twice.
    ref_duplicate_probability: float = 0.0
    #: Per-batch probability a hammer batch is executed twice.
    hammer_duplicate_probability: float = 0.0

    # -- cross-session retention staleness ---------------------------------
    #: Fraction of rows whose retention drifted since last session.
    stale_row_fraction: float = 0.0
    #: Multiplicative retention shift range for stale rows (log-uniform).
    stale_scale_range: tuple[float, float] = (0.8, 1.25)

    def __post_init__(self) -> None:
        probabilities = (self.read_noise_probability,
                         self.write_drop_probability,
                         self.ref_drop_probability,
                         self.ref_duplicate_probability,
                         self.hammer_duplicate_probability,
                         self.stale_row_fraction)
        if any(not 0.0 <= p <= 1.0 for p in probabilities):
            raise ConfigError("fault probabilities must be in [0, 1]")
        if self.vrt_storm_rate_per_s < 0:
            raise ConfigError("vrt_storm_rate_per_s must be >= 0")
        if self.vrt_storm_duration_ms <= 0:
            raise ConfigError("vrt_storm_duration_ms must be positive")
        if self.vrt_storm_toggle_scale < 1.0:
            raise ConfigError("vrt_storm_toggle_scale must be >= 1")
        if self.temperature_drift_amplitude_c < 0:
            raise ConfigError("drift amplitude must be >= 0")
        if self.temperature_drift_period_s <= 0:
            raise ConfigError("drift period must be positive")
        low, high = self.stale_scale_range
        if not 0 < low <= high:
            raise ConfigError("stale_scale_range must satisfy 0 < low <= high")

    @property
    def enabled(self) -> bool:
        """Does this profile inject anything at all?"""
        return (self.vrt_storm_rate_per_s > 0
                or self.temperature_drift_amplitude_c > 0
                or self.read_noise_probability > 0
                or self.write_drop_probability > 0
                or self.ref_drop_probability > 0
                or self.ref_duplicate_probability > 0
                or self.hammer_duplicate_probability > 0
                or self.stale_row_fraction > 0)

    def scaled(self, **overrides) -> "FaultProfile":
        """Copy with some intensities replaced (chaos-sweep helper)."""
        return replace(self, **overrides)


#: Strict no-op: attach it and nothing observable changes.
NONE = FaultProfile(name="none")

#: One family at a time — used to attribute failures during chaos runs.
VRT_STORM = FaultProfile(
    name="vrt-storm", vrt_storm_rate_per_s=1.2,
    vrt_storm_duration_ms=150.0, vrt_storm_toggle_scale=25.0)
TEMPERATURE_DRIFT = FaultProfile(
    name="temperature-drift", temperature_drift_amplitude_c=3.0,
    temperature_drift_period_s=15.0)
READ_NOISE = FaultProfile(name="read-noise", read_noise_probability=0.002)
COMMAND_FAULTS = FaultProfile(
    name="command-faults", write_drop_probability=0.0015,
    ref_drop_probability=2e-05, ref_duplicate_probability=2e-05,
    hammer_duplicate_probability=0.001)
STALE_PROFILE = FaultProfile(
    name="stale-profile", stale_row_fraction=0.08,
    stale_scale_range=(0.9, 1.12))

#: The representative noisy rig: every family on at moderate intensity.
DEFAULT = FaultProfile(
    name="default",
    vrt_storm_rate_per_s=0.8, vrt_storm_duration_ms=120.0,
    vrt_storm_toggle_scale=20.0,
    temperature_drift_amplitude_c=2.0, temperature_drift_period_s=20.0,
    read_noise_probability=0.001,
    write_drop_probability=0.001, ref_drop_probability=1e-05,
    ref_duplicate_probability=1e-05, hammer_duplicate_probability=0.0005,
    stale_row_fraction=0.05, stale_scale_range=(0.92, 1.09))

PROFILES: dict[str, FaultProfile] = {
    profile.name: profile
    for profile in (NONE, VRT_STORM, TEMPERATURE_DRIFT, READ_NOISE,
                    COMMAND_FAULTS, STALE_PROFILE, DEFAULT)
}


def get_profile(name: str) -> FaultProfile:
    """Look up a named fault profile."""
    try:
        return PROFILES[name]
    except KeyError:
        raise ConfigError(
            f"unknown fault profile {name!r}; "
            f"known: {', '.join(sorted(PROFILES))}") from None
