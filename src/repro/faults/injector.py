"""The fault injector: seeded noise at the SoftMC/chip boundary.

A :class:`FaultInjector` sits between :class:`~repro.softmc.SoftMCHost`
and the chip.  The host consults it around every operation; the injector
in turn drives the chip's :class:`~repro.dram.ChipEnvironment` (VRT
storms, temperature drift, per-row staleness) and perturbs the command
and readback streams (drops, duplicates, bit noise).

Everything is drawn from *named* :mod:`repro.rng` seed streams
(``"fault-vrt"``, ``"fault-temp"``, ``"fault-readnoise"``,
``"fault-commands"``, ``"fault-stale"``), so a chaos run is a pure
function of ``(profile, seed, experiment)``: two identically-seeded runs
produce identical fault traces, bit for bit.  The injector also keeps a
human-readable :attr:`trace` and per-family :attr:`counters` so the
resilience harness can report exactly which faults fired.
"""

from __future__ import annotations

import math

from ..errors import ConfigError
from ..rng import derive_seed, stream
from .profiles import FaultProfile, get_profile

_PS_PER_S = 1_000_000_000_000
_PS_PER_MS = 1_000_000_000


class FaultInjector:
    """Seeded, profile-driven fault source for one chip."""

    def __init__(self, profile: FaultProfile | str = "default",
                 seed: int = 0) -> None:
        if isinstance(profile, str):
            profile = get_profile(profile)
        self.profile = profile
        self.seed = seed
        self.session = 0
        #: (event, now_ps, detail) triples, in injection order.
        self.trace: list[tuple[str, int, int]] = []
        self.counters: dict[str, int] = {}
        self._chip = None
        self._obs = None
        self._vrt_rng = stream("fault-vrt", seed)
        self._temp_rng = stream("fault-temp", seed)
        self._read_rng = stream("fault-readnoise", seed)
        self._command_rng = stream("fault-commands", seed)
        self._stale_cache: dict[tuple[int, int], float] = {}
        # VRT storm schedule (Poisson arrivals, exponential durations).
        self._next_storm_ps: int | None = None
        self._storm_end_ps = -1
        self._storm_active = False
        # Temperature drift phase (radians), fixed per injector.
        self._drift_phase = float(self._temp_rng.uniform(0, 2 * math.pi))

    # -- lifecycle ---------------------------------------------------------

    def attach(self, chip) -> None:
        """Bind to *chip* and start perturbing its environment."""
        if self._chip is not None and self._chip is not chip:
            raise ConfigError("FaultInjector is already attached to a chip")
        self._chip = chip
        if self.profile.stale_row_fraction > 0:
            chip.environment.row_retention_scale = self._stale_scale
        if self.profile.vrt_storm_rate_per_s > 0:
            self._next_storm_ps = chip.now_ps + self._storm_gap_ps()
        self.advance(chip.now_ps)

    def bind_observability(self, obs) -> None:
        """Mirror every injected fault into *obs* (metrics + trace).

        Called by the host at construction when both an injector and an
        observability bundle are present; a null bundle is fine (all the
        mirrored calls are no-ops then).
        """
        self._obs = obs

    def stream_seeds(self) -> dict[str, int]:
        """The derived seed of each named fault stream (for manifests)."""
        return {name: derive_seed(name, self.seed)
                for name in ("fault-vrt", "fault-temp", "fault-readnoise",
                             "fault-commands", "fault-stale")}

    def new_session(self) -> None:
        """Start a new measurement session: stale rows are re-drawn.

        Models the cross-session staleness of a retention profile: rows
        that drifted last session may be fine now and vice versa.
        """
        self.session += 1
        self._stale_cache.clear()
        self._record("session", self._chip.now_ps if self._chip else 0,
                     self.session)

    # -- bookkeeping -------------------------------------------------------

    def _record(self, event: str, now_ps: int, detail: int = 0) -> None:
        self.trace.append((event, now_ps, detail))
        self.counters[event] = self.counters.get(event, 0) + 1
        obs = self._obs
        if obs is not None:
            obs.metrics.inc("faults." + event)
            obs.event("fault:" + event, ps=now_ps, detail=detail)

    def fault_count(self) -> int:
        """Total faults injected (sessions excluded)."""
        return sum(count for event, count in self.counters.items()
                   if event != "session")

    # -- environment: VRT storms + temperature drift -----------------------

    def _storm_gap_ps(self) -> int:
        mean_gap_s = 1.0 / self.profile.vrt_storm_rate_per_s
        return max(int(self._vrt_rng.exponential(mean_gap_s) * _PS_PER_S), 1)

    def _storm_duration_ps(self) -> int:
        mean_ms = self.profile.vrt_storm_duration_ms
        return max(int(self._vrt_rng.exponential(mean_ms) * _PS_PER_MS), 1)

    def advance(self, now_ps: int) -> None:
        """Bring the chip environment up to the simulated time *now_ps*."""
        profile = self.profile
        environment = self._chip.environment if self._chip else None
        if environment is None:
            return
        if self._next_storm_ps is not None:
            while now_ps >= self._next_storm_ps:
                start = self._next_storm_ps
                self._storm_end_ps = max(self._storm_end_ps,
                                         start + self._storm_duration_ps())
                self._next_storm_ps = start + self._storm_gap_ps()
                self._record("vrt-storm", start,
                             self._storm_end_ps - start)
            active = now_ps < self._storm_end_ps
            if active != self._storm_active:
                self._storm_active = active
            environment.vrt_toggle_scale = (
                profile.vrt_storm_toggle_scale if active else 1.0)
        if profile.temperature_drift_amplitude_c > 0:
            angle = (2 * math.pi * now_ps
                     / (profile.temperature_drift_period_s * _PS_PER_S)
                     + self._drift_phase)
            delta_c = profile.temperature_drift_amplitude_c * math.sin(angle)
            # Retention halves per +10 C: hotter -> faster decay.
            environment.retention_scale = 2.0 ** (-delta_c / 10.0)

    def _stale_scale(self, bank: int, row: int) -> float:
        key = (bank, row)
        cached = self._stale_cache.get(key)
        if cached is not None:
            return cached
        profile = self.profile
        row_rng = stream("fault-stale", self.seed, self.session, bank, row)
        if row_rng.random() >= profile.stale_row_fraction:
            scale = 1.0
        else:
            low, high = profile.stale_scale_range
            scale = float(math.exp(row_rng.uniform(math.log(low),
                                                   math.log(high))))
            self._record("stale-row", derive_seed(bank, row) % 1000, row)
        self._stale_cache[key] = scale
        return scale

    # -- command-layer faults ----------------------------------------------

    def drop_write(self, now_ps: int) -> bool:
        """Should this WRITE be silently lost?"""
        p = self.profile.write_drop_probability
        if p <= 0 or self._command_rng.random() >= p:
            return False
        self._record("write-drop", now_ps)
        return True

    def duplicate_hammer(self, now_ps: int) -> bool:
        """Should this hammer batch execute twice?"""
        p = self.profile.hammer_duplicate_probability
        if p <= 0 or self._command_rng.random() >= p:
            return False
        self._record("hammer-duplicate", now_ps)
        return True

    def ref_repeats(self, now_ps: int) -> int:
        """How many times the chip actually executes one host REF.

        0 = the REF was lost, 1 = normal, 2 = duplicated.  The host's
        own REF ledger always advances by one either way — exactly the
        desynchronization a flaky rig produces.
        """
        drop = self.profile.ref_drop_probability
        duplicate = self.profile.ref_duplicate_probability
        if drop <= 0 and duplicate <= 0:
            return 1
        draw = self._command_rng.random()
        if draw < drop:
            self._record("ref-drop", now_ps)
            return 0
        if draw < drop + duplicate:
            self._record("ref-duplicate", now_ps)
            return 2
        return 1

    @property
    def perturbs_refs(self) -> bool:
        return (self.profile.ref_drop_probability > 0
                or self.profile.ref_duplicate_probability > 0)

    # -- readback noise ----------------------------------------------------

    def corrupt_mismatches(self, row_bits: int,
                           mismatches: list[int]) -> list[int]:
        """Transiently corrupt one readout bit with the profiled odds.

        Toggles membership of a random bit position: a clean bit reads
        as a spurious mismatch, a real mismatch is masked.  The stored
        cell is untouched — re-reading sees the true data again.
        """
        p = self.profile.read_noise_probability
        if p <= 0 or self._read_rng.random() >= p:
            return mismatches
        position = int(self._read_rng.integers(0, row_bits))
        self._record("read-noise", self._now(), position)
        if position in mismatches:
            return [m for m in mismatches if m != position]
        return sorted(mismatches + [position])

    def corrupt_bits(self, bits):
        """Same single-bit transient noise, for full-row reads."""
        p = self.profile.read_noise_probability
        if p <= 0 or self._read_rng.random() >= p:
            return bits
        position = int(self._read_rng.integers(0, len(bits)))
        self._record("read-noise", self._now(), position)
        bits = bits.copy()
        bits[position] ^= 1
        return bits

    def _now(self) -> int:
        return self._chip.now_ps if self._chip is not None else 0
