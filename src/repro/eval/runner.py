"""Per-module evaluation: pattern selection and vulnerability sweeps.

The paper selects, per module, the hammer count that maximizes the
number of vulnerable rows (§7.3, footnote 18's protocol) and then sweeps
a whole bank.  :func:`evaluate_module` mirrors that: synthesize attack
candidates from the module's TRR family, pick the best on canary
victims, then run the full position sweep.  The result feeds Figure 9
(vulnerable fraction), Figure 10 (per-word flips), and Table 1's result
columns.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..attacks import (AccessPattern, AttackExecutor,
                       PhaseLockedSamplerPattern, VendorAPattern,
                       VendorBPattern, VendorCPattern,
                       calibrate_phase_offset, default_context,
                       run_vulnerability_sweep, victim_positions)
from ..attacks.sweep import VulnerabilityResult
from ..core.mapping_re import CouplingTopology
from ..errors import AttackConfigError
from ..parallel import WorkUnit, unit_observability
from ..softmc import SoftMCHost
from ..vendors import ModuleSpec, get_module
from .engine import EngineConfig
from .scale import EvalScale


@dataclass
class ModuleEvaluation:
    """Everything the figure/table harnesses need for one module."""

    spec: ModuleSpec
    pattern_name: str
    hammers_per_aggressor_per_ref: float
    result: VulnerabilityResult

    @property
    def vulnerable_fraction(self) -> float:
        return self.result.vulnerable_fraction

    @property
    def max_flips_per_row(self) -> int:
        return self.result.max_flips_per_row()

    @property
    def max_flips_per_row_per_hammer(self) -> float:
        hammers = self.hammers_per_aggressor_per_ref
        if hammers <= 0:
            return 0.0
        return self.max_flips_per_row / hammers


def candidate_patterns(spec: ModuleSpec, host: SoftMCHost,
                       trr_period: int, windows: int
                       ) -> list[tuple[AccessPattern, float]]:
    """Attack candidates for one module's TRR family.

    Returns (pattern, hammers-per-aggressor-per-REF) pairs; the runner
    tries each on canary victims and keeps the best, mirroring the
    paper's per-module hammer-count selection.
    """
    params = spec.trr_parameters()
    kind = params.get("kind")
    interval_acts = host.hammers_per_ref_interval()
    if kind == "counter":
        return [(VendorAPattern(aggressor_hammers=h), h / trr_period)
                for h in (36, 72, 108)]
    if kind == "sampling" and not params.get("per_bank"):
        return [(VendorBPattern(aggressor_hammers=h), h / trr_period)
                for h in (50, 80, 95)]
    if kind == "sampling":  # B_TRR3: phase-locked diversion
        period = params["sample_period"]
        candidates = []
        for guard in (1,):
            # Offsets are calibrated lazily in evaluate_module.
            candidates.append((PhaseLockedSamplerPattern(period, 0, guard),
                               interval_acts / 2))
        return candidates
    if kind == "window":
        out = []
        for fraction in (0.65, 0.8):
            per_ref = interval_acts * (1 - fraction) / 2
            out.append((VendorCPattern(dummy_fraction=fraction), per_ref))
        return out
    raise AttackConfigError(f"no candidates for TRR kind {kind!r}")


def evaluate_module(spec: ModuleSpec, scale: EvalScale,
                    positions: int | None = None,
                    obs=None) -> ModuleEvaluation:
    """Select the best pattern on canaries, then sweep the bank.

    *obs* defaults to the ambient work-unit bundle
    (:func:`repro.parallel.unit_observability`), so the host's metrics
    reach the caller's registry for any worker count.
    """
    if obs is None:
        obs = unit_observability()
    host = scale.build_host(spec, obs=obs)
    mapping = host._chip.mapping
    trr_period = spec.trr_parameters().get("trr_ref_period", 9)
    cycle = scale.scaled_cycle(spec)
    # Two refresh cycles: every victim, whatever its refresh slot, sees
    # one full between-regular-refreshes gap (the paper's SoftMC program
    # runs each pattern "for a fixed interval of time", 7.2).
    windows = max(2 * cycle // trr_period, 1)
    coupling = (CouplingTopology.PAIRED if spec.paired_rows
                else CouplingTopology.STANDARD)
    executor = AttackExecutor(host, mapping)

    def make_context(victim: int):
        return default_context(0, victim, mapping, trr_period,
                               host.num_banks, paired=spec.paired_rows)

    candidates = candidate_patterns(spec, host, trr_period, windows)
    canaries = victim_positions(host.rows_per_bank, 4, coupling,
                                margin=128)
    best = None
    for pattern, hammers_per_ref in candidates:
        if isinstance(pattern, PhaseLockedSamplerPattern):
            try:
                offset = calibrate_phase_offset(
                    executor, make_context, trr_period,
                    pattern.sample_period, windows, canaries[:1],
                    guard=pattern.guard)
            except AttackConfigError:
                continue
            pattern = PhaseLockedSamplerPattern(pattern.sample_period,
                                                offset, pattern.guard)
        flips = sum(
            executor.run(pattern, make_context(victim), windows)
            .flips_at(victim)
            for victim in canaries)
        if best is None or flips > best[0]:
            best = (flips, pattern, hammers_per_ref)
    _, pattern, hammers_per_ref = best

    sweep_positions = victim_positions(
        host.rows_per_bank, positions or scale.positions, coupling,
        margin=16)

    def fresh_host():
        new_host = scale.build_host(spec, obs=obs)
        return new_host, new_host._chip.mapping

    result = run_vulnerability_sweep(host, mapping, pattern,
                                     sweep_positions, trr_period, windows,
                                     paired=spec.paired_rows,
                                     host_factory=fresh_host)
    return ModuleEvaluation(spec=spec, pattern_name=pattern.name,
                            hammers_per_aggressor_per_ref=hammers_per_ref,
                            result=result)


def evaluate_module_unit(module_id: str, scale: EvalScale,
                         positions: int | None = None) -> ModuleEvaluation:
    """Process-pool work unit: one module's full evaluation.

    Top-level (hence picklable) and fully self-contained — the spec is
    re-resolved and the host rebuilt inside the worker, so the result
    depends only on ``(module_id, scale, positions)``.
    """
    return evaluate_module(get_module(module_id), scale, positions)


def evaluate_modules(module_ids, scale: EvalScale,
                     positions: int | None = None, workers: int = 1,
                     log=None, metrics=None, telemetry=None,
                     profiler=None, cache=None,
                     evidence=None) -> list[ModuleEvaluation]:
    """Evaluate many modules, sharded over *workers* processes.

    Results come back in *module_ids* order whatever the scheduling;
    ``workers=1`` runs each evaluation inline on the sequential path.
    *metrics* receives every unit's host metrics (identical totals for
    any worker count); *telemetry* (a
    :class:`~repro.obs.TelemetryConfig`) publishes live progress into
    its spool, and *profiler* (a :class:`~repro.obs.CommandProfiler`)
    collects the folded per-opcode command-bus attribution — both are
    side channels that leave the artifacts byte-identical.  *cache* (a
    :class:`~repro.cache.ResultCache`) serves previously computed
    units from the content-addressed store and publishes fresh ones —
    the ``eval/<module>`` unit ids are shared with the fig9/fig10
    harnesses, so a fig9 run warms fig10 and vice versa.
    """
    units = [WorkUnit(unit_id=f"eval/{module_id}",
                      fn=evaluate_module_unit,
                      args=(module_id, scale, positions),
                      meta={"module": module_id, "scale": scale.name})
             for module_id in module_ids]
    engine = EngineConfig(workers=workers, log=log, metrics=metrics,
                          telemetry=telemetry, profiler=profiler,
                          cache=cache, evidence=evidence)
    return engine.run(units).values


def evaluate_baseline(spec: ModuleSpec, scale: EvalScale,
                      pattern: AccessPattern,
                      positions: int = 8, obs=None) -> VulnerabilityResult:
    """Run a (classic) pattern against a module for the ablations."""
    if obs is None:
        obs = unit_observability()
    host = scale.build_host(spec, obs=obs)
    mapping = host._chip.mapping
    trr_period = spec.trr_parameters().get("trr_ref_period", 9)
    windows = max(2 * scale.scaled_cycle(spec) // trr_period, 1)
    coupling = (CouplingTopology.PAIRED if spec.paired_rows
                else CouplingTopology.STANDARD)
    rows = victim_positions(host.rows_per_bank, positions, coupling,
                            margin=16)

    def fresh_host():
        new_host = scale.build_host(spec, obs=obs)
        return new_host, new_host._chip.mapping

    return run_vulnerability_sweep(host, mapping, pattern, rows,
                                   trr_period, windows,
                                   paired=spec.paired_rows,
                                   host_factory=fresh_host)
